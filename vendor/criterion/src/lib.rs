//! A tiny, dependency-free, offline stand-in for the subset of `criterion`
//! this workspace's benches use.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` cannot be fetched. This stub keeps the bench sources
//! compiling and, when run via `cargo bench`, executes each benchmark with
//! a simple calibrated timing loop and prints a median per-iteration time.
//! It does no statistics, outlier rejection, or HTML reporting — regression
//! tracking at that fidelity needs the real crate.

use std::time::{Duration, Instant};

/// Opaque value barrier, like `criterion::black_box` (stable-Rust version).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Default number of timed samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets a target measurement time. Accepted for API compatibility; the
    /// stub's timing loop is bounded by sample count instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!("{}/{}: median {:?}/iter", self.name, id, median);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; its `iter` runs the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording one per-iteration duration per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: grow the inner batch until one batch takes >= 1 ms or
        // the batch is large enough that timer overhead is negligible.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

/// Benchmark identifier helper, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId;

impl BenchmarkId {
    /// A composite id rendered as `function/parameter`.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> String {
        format!("{}/{}", function.into(), parameter)
    }
}

/// Declares a group-runner function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from one or more group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        let mut acc = 0u64;
        g.bench_function("add", |b| b.iter(|| acc = acc.wrapping_add(1)));
        g.bench_function(BenchmarkId::new("add", 7), |b| {
            b.iter(|| black_box(7u32))
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        criterion_group!(benches, sample_bench);
        benches();
    }
}
