//! A tiny, dependency-free, offline stand-in for the subset of the `rand`
//! crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. Every consumer in this repository only needs a
//! deterministic, seedable small RNG with `gen_bool` / `gen_range` / `gen` —
//! exactly what this stub provides, backed by xorshift64* (a well-studied
//! generator with good statistical spread for simulation workloads).
//!
//! Determinism is a *feature* here: all workloads and experiments are seeded
//! so results are bit-identical across runs, which the fault-injection
//! harness additionally relies on.

/// Trait for seedable RNGs, mirroring `rand::SeedableRng`'s subset we use.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling trait, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits -> uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform sample from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[range.start, range.end)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Modulo bias is negligible for the spans used here (all far
                // below 2^64) and irrelevant for simulation inputs.
                range.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

impl SampleUniform for i32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let span = (range.end as i64 - range.start as i64) as u64;
        range.start + (rng.next_u64() % span) as i32
    }
}

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + u * (range.end - range.start)
    }
}

/// Types with a "standard" full-width distribution (the `rand::Standard`
/// distribution, folded into a trait for simplicity).
pub trait Standard: Sized {
    /// A uniformly random value.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for u32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast xorshift64* generator (stand-in for `rand`'s
    /// `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 the seed so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            Self {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }
}
