//! A tiny, dependency-free, offline stand-in for the subset of `proptest`
//! this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be fetched. This stub keeps the same *source* API the
//! tests are written against (`proptest! { #[test] fn p(x in strat) {..} }`,
//! `prop_assert*`, `any::<T>()`, `proptest::collection::{vec, btree_set}`,
//! `prop::sample::select`) and runs each property over a fixed number of
//! deterministically generated cases. No shrinking is performed: on failure
//! the panic message carries the seed-case index and a `Debug` dump of the
//! generated inputs, which is enough to reproduce (generation is a pure
//! function of test name + case index).

use std::ops::Range;

/// Number of random cases each property is executed with.
pub const CASES: u64 = 64;

/// Error produced by a failing `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG (xorshift64*, seeded from the test name and
/// case index via SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `(name, case)`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut z = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A value generator. The stub's equivalent of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// Type of the generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        self.start + (rng.next_u64() % span) as i32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Types with a default "arbitrary" distribution (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// One uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The default strategy for `T` — mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for a `Vec` of `element` values with a length drawn from
    /// `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below(self.size.start, self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for a `BTreeSet` of `element` values whose size lands in
    /// `size` when the element space allows it (duplicates are retried a
    /// bounded number of times, then the smaller set is accepted).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.below(self.size.start, self.size.end);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target.max(self.size.start) && attempts < 10 * target + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy that picks one element of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(0, self.options.len())].clone()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy, TestCaseError,
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), l, r
        );
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "{} (both: `{:?}`)",
            format!($($fmt)*), l
        );
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over [`CASES`] generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            for case in 0..$crate::CASES {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = __result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case, $crate::CASES, e, __inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in 0u8..4, n in 1usize..9) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((1..9).contains(&n));
        }

        /// Collection sizes land inside the requested range.
        #[test]
        fn vec_sizes_in_bounds(v in prop::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        /// Tuples and `any` compose.
        #[test]
        fn tuples_compose(t in (0u32..5, any::<bool>(), 1u64..3)) {
            prop_assert!(t.0 < 5);
            prop_assert!(t.2 == 1 || t.2 == 2);
        }

        /// `select` only returns listed options.
        #[test]
        fn select_picks_option(w in prop::sample::select(vec![1u32, 2, 4])) {
            prop_assert!(w == 1 || w == 2 || w == 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(0u32..1000, 1..50);
        let a = crate::Strategy::generate(&s, &mut crate::TestRng::for_case("d", 3));
        let b = crate::Strategy::generate(&s, &mut crate::TestRng::for_case("d", 3));
        assert_eq!(a, b);
        let c = crate::Strategy::generate(&s, &mut crate::TestRng::for_case("d", 4));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_reports_case() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
