//! Property-based tests for the kernel simulator's core invariants.

use proptest::prelude::*;

use kernel_sim::kconfig::VsidPolicy;
use kernel_sim::linuxpt::{LinuxPageTables, LinuxPte, PTE_RW};
use kernel_sim::physmem::{FrameAllocator, PhysMem};
use kernel_sim::sched::USER_BASE;
use kernel_sim::vsid::VsidAllocator;
use kernel_sim::{Kernel, KernelConfig};
use ppc_cache::stats::CacheStats;
use ppc_machine::monitor::MonitorSnapshot;
use ppc_machine::pmu::{Mmcr0, PmcEvent, Pmu};
use ppc_machine::MachineConfig;
use ppc_mmu::addr::{EffectiveAddress, PAGE_SIZE};
use ppc_mmu::tlb::TlbStats;

/// Counter fields in a [`MonitorSnapshot`]: cycles + 2 TLBs (6 each) +
/// 2 caches (9 each) + 2 BAT-hit counters.
const SNAP_FIELDS: usize = 33;

/// Builds a [`MonitorSnapshot`] from [`SNAP_FIELDS`] arbitrary values.
fn snapshot_from(v: &[u64]) -> MonitorSnapshot {
    let tlb = |v: &[u64]| TlbStats {
        lookups: v[0],
        hits: v[1],
        misses: v[2],
        reloads: v[3],
        tlbie: v[4],
        flush_all: v[5],
    };
    let cache = |v: &[u64]| CacheStats {
        accesses: v[0],
        hits: v[1],
        misses: v[2],
        evictions: v[3],
        writebacks: v[4],
        inhibited: v[5],
        zero_fills: v[6],
        prefetch_fills: v[7],
        prefetch_redundant: v[8],
    };
    MonitorSnapshot {
        cycles: v[0],
        itlb: tlb(&v[1..7]),
        dtlb: tlb(&v[7..13]),
        icache: cache(&v[13..22]),
        dcache: cache(&v[22..31]),
        ibat_hits: v[31],
        dbat_hits: v[32],
    }
}

/// Flattens a snapshot back into the same [`SNAP_FIELDS`]-value order.
fn snapshot_fields(s: &MonitorSnapshot) -> [u64; SNAP_FIELDS] {
    [
        s.cycles,
        s.itlb.lookups,
        s.itlb.hits,
        s.itlb.misses,
        s.itlb.reloads,
        s.itlb.tlbie,
        s.itlb.flush_all,
        s.dtlb.lookups,
        s.dtlb.hits,
        s.dtlb.misses,
        s.dtlb.reloads,
        s.dtlb.tlbie,
        s.dtlb.flush_all,
        s.icache.accesses,
        s.icache.hits,
        s.icache.misses,
        s.icache.evictions,
        s.icache.writebacks,
        s.icache.inhibited,
        s.icache.zero_fills,
        s.icache.prefetch_fills,
        s.icache.prefetch_redundant,
        s.dcache.accesses,
        s.dcache.hits,
        s.dcache.misses,
        s.dcache.evictions,
        s.dcache.writebacks,
        s.dcache.inhibited,
        s.dcache.zero_fills,
        s.dcache.prefetch_fills,
        s.dcache.prefetch_redundant,
        s.ibat_hits,
        s.dbat_hits,
    ]
}

proptest! {
    /// Frame-allocator conservation: frames handed out are unique, frees
    /// restore them, and the free count is exact.
    #[test]
    fn allocator_conserves_frames(ops in proptest::collection::vec(any::<bool>(), 1..500)) {
        let mut a = FrameAllocator::new();
        let total = a.free_frames();
        let mut held: Vec<u32> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &alloc in &ops {
            if alloc {
                if let Some((pa, _)) = a.get_free_page() {
                    prop_assert!(seen.insert(pa), "frame {pa:#x} double-allocated");
                    held.push(pa);
                }
            } else if let Some(pa) = held.pop() {
                a.free_page(pa);
                seen.remove(&pa);
            }
            prop_assert_eq!(a.free_frames() + held.len(), total);
        }
    }

    /// Page tables: map → walk returns the mapped frame; unmap removes it;
    /// distinct addresses never interfere.
    #[test]
    fn page_tables_round_trip(pages in proptest::collection::btree_set(0u32..0x8_0000, 1..60)) {
        let mut mem = PhysMem::new();
        let pt = LinuxPageTables::new(0x22_0000);
        let mut next_pt_page = 0x22_1000u32;
        let pages: Vec<u32> = pages.into_iter().collect();
        for (i, &vpn) in pages.iter().enumerate() {
            let ea = EffectiveAddress(vpn << 12);
            let pte = LinuxPte::present(0x300 + i as u32, PTE_RW);
            pt.map(&mut mem, ea, pte, || {
                let p = next_pt_page;
                next_pt_page += 0x1000;
                Some(p)
            }).expect("pool big enough");
        }
        for (i, &vpn) in pages.iter().enumerate() {
            let ea = EffectiveAddress(vpn << 12);
            let w = pt.walk(&mem, ea);
            prop_assert_eq!(w.pte.expect("mapped page present").pfn(), 0x300 + i as u32);
        }
        // Unmap every other page; the rest must survive.
        for &vpn in pages.iter().step_by(2) {
            pt.unmap(&mut mem, EffectiveAddress(vpn << 12));
        }
        for (i, &vpn) in pages.iter().enumerate() {
            let present = pt.walk(&mem, EffectiveAddress(vpn << 12)).pte.is_some();
            prop_assert_eq!(present, i % 2 == 1);
        }
    }

    /// VSID liveness: after any alloc/retire interleaving, exactly the
    /// non-retired contexts are live, and the context counter never hands
    /// out the same VSIDs twice.
    #[test]
    fn vsid_liveness_model(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut a = VsidAllocator::new(VsidPolicy::ContextCounter { constant: 897 });
        let mut live: Vec<[ppc_mmu::addr::Vsid; 12]> = Vec::new();
        let mut ever = std::collections::HashSet::new();
        for (i, &alloc) in ops.iter().enumerate() {
            if alloc || live.is_empty() {
                let v = a.alloc_context(i as u32);
                for x in v {
                    prop_assert!(ever.insert(x.raw()), "VSID {:#x} reused", x.raw());
                }
                live.push(v);
            } else {
                let v = live.swap_remove(0);
                a.retire(&v);
                prop_assert!(!a.is_live(v[0]));
            }
            for set in &live {
                for &x in set.iter() {
                    prop_assert!(a.is_live(x));
                }
            }
        }
    }

    /// End-to-end translation stability: after faulting a page in, repeated
    /// references translate to the same physical frame, whatever mix of
    /// reads and writes follows.
    #[test]
    fn translation_is_stable(offsets in proptest::collection::vec(
        (0u32..16, 0u32..(PAGE_SIZE / 4), any::<bool>()), 1..60)) {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let pid = k.spawn_process(16).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 16).unwrap();
        let mut frame_of = std::collections::HashMap::new();
        for &(page, word, write) in &offsets {
            let ea = EffectiveAddress(USER_BASE + page * PAGE_SIZE + word * 4);
            let (pa, cached) = k.translate_ref(ea, if write {
                ppc_mmu::translate::AccessType::DataWrite
            } else {
                ppc_mmu::translate::AccessType::DataRead
            }).unwrap();
            prop_assert!(cached);
            prop_assert_eq!(pa & 0xfff, ea.0 & 0xfff, "offset preserved");
            let frame = pa >> 12;
            if let Some(&prev) = frame_of.get(&page) {
                prop_assert_eq!(prev, frame, "page {} moved frames", page);
            }
            frame_of.insert(page, frame);
        }
    }

    /// Cycle monotonicity: no kernel operation ever rewinds the clock, and
    /// every user reference costs at least one cycle.
    #[test]
    fn cycles_monotone(ops in proptest::collection::vec((0u32..8, any::<bool>()), 1..80)) {
        let mut k = Kernel::boot(MachineConfig::ppc603_133(), KernelConfig::optimized());
        let pid = k.spawn_process(8).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 8).unwrap();
        let mut last = k.machine.cycles;
        for &(page, write) in &ops {
            k.data_ref(EffectiveAddress(USER_BASE + page * PAGE_SIZE), write).unwrap();
            prop_assert!(k.machine.cycles > last);
            last = k.machine.cycles;
        }
    }

    /// The zombie-reclaim safety property on a live kernel: reclaim never
    /// invalidates a translation the process still uses.
    #[test]
    fn reclaim_never_breaks_live_mappings(churns in 1u32..6) {
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
        let pid = k.spawn_process(32).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 32).unwrap();
        for _ in 0..churns {
            let addr = k.sys_mmap(None, 64 * PAGE_SIZE);
            k.prefault(addr, 8).unwrap();
            k.sys_munmap(addr, 64 * PAGE_SIZE);
            k.run_idle(2_000_000); // full reclaim sweep
            // The working set must still be readable (and re-faultable).
            k.user_read(USER_BASE, 32 * PAGE_SIZE).unwrap();
        }
        prop_assert_eq!(k.stats.segfaults, 0);
    }

    /// Robustness under fire: random mixes of syscalls, in-VMA accesses and
    /// wild pointers, driven under a heavy fault injector, never panic the
    /// host — every failure surfaces as a `KernelError` — and after tearing
    /// every task down the allocator has all its user frames back.
    #[test]
    fn fault_injection_never_panics_host(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..8, 0u32..64), 1..50),
    ) {
        let mut cfg = KernelConfig::optimized();
        cfg.fault_injection = Some(kernel_sim::FaultInjection::heavy(seed));
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), cfg);
        let free0 = k.frames.free_frames();
        for &(op, arg) in &ops {
            if k.current.is_none() {
                match k.spawn_process(4) {
                    Ok(pid) => k.switch_to(pid),
                    Err(_) => break,
                }
            }
            match op {
                0 => { let _ = k.user_write(USER_BASE + (arg % 4) * PAGE_SIZE, 4); }
                // May run past the 4-page working set: SIGSEGV territory.
                1 => { let _ = k.user_read(USER_BASE + arg * PAGE_SIZE, 4); }
                2 => { let _ = k.sys_brk(1 + arg % 16); }
                3 => { let _ = k.sys_fork(); }
                4 => k.sys_null(),
                // Wild pointer between heap and stack: no VMA can be there.
                5 => { let _ = k.user_write(0x5000_0000 + arg * PAGE_SIZE, 4); }
                6 => { let _ = k.signal_roundtrip(USER_BASE); }
                _ => {
                    if let Ok(pid) = k.spawn_process(2) {
                        k.switch_to(pid);
                    }
                }
            }
        }
        // Tear everything down; the allocator must get every frame back.
        while let Some(pid) = k.tasks.iter().find(|t| t.is_alive()).map(|t| t.pid) {
            k.switch_to(pid);
            k.exit_current();
        }
        prop_assert_eq!(k.frames.free_frames(), free0);
    }

    /// Counter-window safety: [`MonitorSnapshot::delta`] saturates on every
    /// field, for *any* pair of snapshots — even "windows" whose earlier
    /// edge postdates the later one (a reset, an out-of-order read). No
    /// underflow into a bogus astronomically-large count, ever.
    #[test]
    fn monitor_delta_never_underflows(
        a in proptest::collection::vec(any::<u64>(), SNAP_FIELDS..SNAP_FIELDS + 1),
        b in proptest::collection::vec(any::<u64>(), SNAP_FIELDS..SNAP_FIELDS + 1),
    ) {
        let (sa, sb) = (snapshot_from(&a), snapshot_from(&b));
        let fwd = snapshot_fields(&sa.delta(&sb));
        let rev = snapshot_fields(&sb.delta(&sa));
        for i in 0..SNAP_FIELDS {
            prop_assert_eq!(fwd[i], a[i].saturating_sub(b[i]));
            prop_assert_eq!(rev[i], b[i].saturating_sub(a[i]));
        }
        // A self-window is empty.
        prop_assert_eq!(sa.delta(&sa), MonitorSnapshot::default());
    }

    /// PMU robustness: arbitrary interleavings of out-of-order snapshot
    /// syncs, freeze/unfreeze flips, counter resets and counter writes never
    /// produce an underflowed (near-wraparound) count, freezes really stop
    /// the counters, and resets really zero them.
    #[test]
    fn pmu_counters_never_underflow(
        ops in proptest::collection::vec(
            (0u8..6, 0u64..10_000, any::<bool>()), 1..80),
    ) {
        let mut p = Pmu::new(Mmcr0 {
            pmc1: PmcEvent::Cycles,
            pmc2: PmcEvent::TlbMissBoth,
            ..Mmcr0::default()
        });
        // Upper bound on legitimate counting: every sync delta is capped by
        // the snapshot's own field values, so the counters can never exceed
        // the sum of everything ever presented. An underflow bug would blow
        // straight past this (u32::MAX-ish jumps).
        let mut budget = [0u64; 2];
        for &(op, v, sup) in &ops {
            match op {
                0 | 1 => {
                    // Out-of-order windows on purpose: v is not monotonic.
                    let mut s = MonitorSnapshot { cycles: v, ..Default::default() };
                    s.itlb.misses = v / 2;
                    s.dtlb.misses = v / 3;
                    let before = [p.read_pmc(0), p.read_pmc(1)];
                    let frozen = p.mmcr0.frozen(sup);
                    p.sync(&s, sup);
                    if frozen {
                        prop_assert_eq!(before[0], p.read_pmc(0), "frozen PMC1 moved");
                        prop_assert_eq!(before[1], p.read_pmc(1), "frozen PMC2 moved");
                    }
                    budget[0] += v;
                    budget[1] += v / 2 + v / 3;
                }
                2 => p.mmcr0.freeze = !p.mmcr0.freeze,
                3 => p.mmcr0.freeze_supervisor = !p.mmcr0.freeze_supervisor,
                4 => {
                    p.reset_counters();
                    prop_assert_eq!(p.read_pmc(0), 0);
                    prop_assert_eq!(p.read_pmc(1), 0);
                    budget = [0, 0];
                }
                _ => {
                    let x = (v % 1024) as u32;
                    p.write_pmc(0, x);
                    prop_assert_eq!(p.read_pmc(0), x);
                    budget[0] = u64::from(x);
                }
            }
            for (i, &cap) in budget.iter().enumerate() {
                prop_assert!(
                    u64::from(p.read_pmc(i)) <= cap,
                    "PMC{} = {} exceeds every event ever presented ({})",
                    i + 1, p.read_pmc(i), cap
                );
            }
        }
    }

    /// Determinism: the same injector seed produces bit-identical statistics
    /// and cycle counts across two runs of the same workload.
    #[test]
    fn same_seed_is_bit_identical(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut cfg = KernelConfig::optimized();
            cfg.fault_injection = Some(kernel_sim::FaultInjection::heavy(seed));
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), cfg);
            let pid = k.spawn_process(8).unwrap();
            k.switch_to(pid);
            for i in 0..24u32 {
                let _ = k.user_write(USER_BASE + (i % 12) * PAGE_SIZE, 8);
                if i % 5 == 0 && k.current.is_some() {
                    let _ = k.sys_fork();
                }
                if k.current.is_none() {
                    break;
                }
            }
            (k.stats, k.machine.cycles)
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

proptest! {
    /// The tail-exemplar reservoir is deterministic under tied latencies:
    /// replaying the same offer sequence reproduces it exactly, and the
    /// retained set matches the specification — top-N by latency
    /// descending, completion cycle then capture sequence breaking ties,
    /// so the earliest captures survive.
    #[test]
    fn tail_reservoir_is_deterministic_under_ties(
        offers in proptest::collection::vec((0u64..6, 0usize..3), 1..80),
        top_n in 1usize..6,
    ) {
        use kernel_sim::tail::{MmuSnapshot, TailConfig, TailState};
        use kernel_sim::trace::LatencyPath;
        use kernel_sim::KernelStats;
        use ppc_mmu::HtabStats;

        let cfg = TailConfig { threshold: Some(1), top_n, window: 4 };
        let run = || {
            let mut tl = TailState::new(cfg);
            for (i, (lat, p)) in offers.iter().enumerate() {
                tl.offer(
                    LatencyPath::ALL[*p],
                    *lat,
                    // Repeat each cycle stamp twice so cycle ties happen
                    // and the sequence number must break them.
                    100 + (i as u64 / 2),
                    1,
                    Vec::new(),
                    Vec::new(),
                    MmuSnapshot::default(),
                    &KernelStats::default(),
                    &HtabStats::default(),
                );
            }
            tl
        };
        let a = run();
        let b = run();
        for (pi, path) in LatencyPath::ALL.iter().enumerate() {
            prop_assert_eq!(a.exemplars(*path), b.exemplars(*path));
            // Brute-force the specification ordering over every offer.
            let mut expect: Vec<(u64, u64, u64)> = offers
                .iter()
                .enumerate()
                .filter(|(_, (_, p))| *p == pi)
                .map(|(i, (lat, _))| (*lat, 100 + (i as u64 / 2), i as u64))
                .collect();
            expect.sort_by(|x, y| {
                y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2))
            });
            expect.truncate(top_n);
            let got: Vec<(u64, u64, u64)> = a
                .exemplars(*path)
                .iter()
                .map(|e| (e.latency, e.cycle, e.seq))
                .collect();
            prop_assert_eq!(got, expect, "path {:?}", path);
        }
    }
}

proptest! {
    /// The causal-profiling identity guarantee, fuzzed: *any* all-1/1
    /// [`CausalConfig`] — every ratio num == den, values arbitrary — must
    /// be cycle- and counter-identical to a plain `causal: None` run, on
    /// every sampled kernel configuration. The workload is kept small
    /// (each case boots two kernels); the fixed-ratio identity matrix over
    /// full workloads lives in the kernel-sim unit tests.
    #[test]
    fn random_all_one_causal_is_cycle_identical(
        subs in proptest::collection::vec(
            1u32..1001,
            kernel_sim::prof::NUM_SUBSYSTEMS..kernel_sim::prof::NUM_SUBSYSTEMS + 1,
        ),
        paths in proptest::collection::vec(
            1u32..1001,
            kernel_sim::causal::NUM_PATHS..kernel_sim::causal::NUM_PATHS + 1,
        ),
        optimized in any::<bool>(),
    ) {
        use kernel_sim::causal::{CausalConfig, Ratio};

        let mut causal = CausalConfig::identity();
        for (i, &d) in subs.iter().enumerate() {
            causal.subsystem[i] = Ratio { num: d, den: d };
        }
        for (i, &d) in paths.iter().enumerate() {
            causal.path[i] = Ratio { num: d, den: d };
        }
        let run = |causal: Option<CausalConfig>| {
            let mut cfg = if optimized {
                KernelConfig::optimized()
            } else {
                KernelConfig::unoptimized()
            };
            cfg.causal = causal;
            let mut k = Kernel::boot(MachineConfig::ppc604_185(), cfg);
            let pid = k.spawn_process(8).expect("spawn");
            k.switch_to(pid);
            let base = k.sys_mmap(None, 8 * PAGE_SIZE);
            for i in 0..8 {
                k.user_write(base + i * PAGE_SIZE, 64).expect("mapped");
            }
            k.run_idle(10_000);
            k.sys_munmap(base, 8 * PAGE_SIZE);
            k.sys_null();
            (k.machine.cycles, k.stats)
        };
        let plain = run(None);
        let ident = run(Some(causal));
        prop_assert_eq!(plain, ident, "all-1/1 must be invisible");
    }
}

proptest! {
    /// Fast-path fusion is a pure host-side encoding choice (DESIGN.md
    /// §16): one random stream of loads, stores and instruction fetches —
    /// spanning BAT-covered kernel structures, TLB-resident user pages,
    /// never-touched pages (hash-table reload and demand-fault territory),
    /// read-only copy-on-write pages planted by `fork`, and wild pointers —
    /// produces identical per-op outcomes, the same final cycle count, and
    /// bit-identical kernel and hardware counters whether the kernel serves
    /// it through the fused path or the layered one.
    #[test]
    fn fused_and_layered_streams_are_bit_identical(
        ops in proptest::collection::vec((0u8..9, 0u32..48, 0u32..(PAGE_SIZE / 4)), 1..120),
    ) {
        let run = |fused: bool| {
            let mut cfg = KernelConfig::optimized();
            cfg.fused = fused;
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), cfg);
            let pid = k.spawn_process(48).unwrap();
            k.switch_to(pid);
            // A prefaulted region for guaranteed TLB/cache hits; pages past
            // it exercise the reload and fault paths on first touch.
            k.prefault(USER_BASE, 12).unwrap();
            let mut outcomes: Vec<Result<u64, kernel_sim::KernelError>> = Vec::new();
            for &(op, page, word) in &ops {
                if k.current.is_none() {
                    // A wild pointer killed the task: respawn so both runs
                    // continue the stream from identical state.
                    let pid = k.spawn_process(48).unwrap();
                    k.switch_to(pid);
                    k.prefault(USER_BASE, 12).unwrap();
                }
                let hot = EffectiveAddress(USER_BASE + (page % 12) * PAGE_SIZE + word * 4);
                let cold = EffectiveAddress(USER_BASE + page * PAGE_SIZE + word * 4);
                let r = match op {
                    0 => k.data_ref(hot, false),
                    1 => k.data_ref(hot, true),
                    2 => k.exec_code(hot, 1 + word % 32),
                    3 => k.data_ref(cold, false),
                    4 => k.data_ref(cold, true),
                    5 => k.exec_code(cold, 1 + word % 32),
                    // Kernel linear map: BAT-covered territory.
                    6 => Ok(k.mem_map_ref(page * PAGE_SIZE, word % 2 == 0)),
                    // Plants read-only COW pages: the next store to a hot
                    // page protection-faults instead of hitting.
                    7 => k.sys_fork().map(|_| 0),
                    // Wild pointer between heap and stack: SIGSEGV.
                    _ => k.data_ref(EffectiveAddress(0x5000_0000 + page * PAGE_SIZE), true),
                };
                outcomes.push(r);
            }
            (outcomes, k.machine.cycles, k.stats_snapshot())
        };
        prop_assert_eq!(run(true), run(false));
    }
}
