//! The OS half of the performance-monitor unit: sample collection.
//!
//! The hardware half ([`ppc_machine::pmu`]) counts events and latches the
//! counter-negative exception; this module is the kernel's sampling
//! interrupt handler state — what Linux's `perf_event` subsystem is to the
//! bare PMU. Each delivered interrupt captures the running task, the
//! privilege state, and the kernel span stack at that instant, and
//! aggregates them into the breakdowns `repro perf report` renders:
//! per-subsystem weighted self-time, per-task totals, and collapsed call
//! stacks for flamegraphs.
//!
//! ## Why weighted samples converge to the exact profiler
//!
//! The kernel polls the PMU at **every span transition** (see
//! `Kernel::pmu_poll`), before the span stack changes. Between two
//! consecutive polls the stack is therefore constant, so every cycle of that
//! window belongs to the subsystem on top of the stack — the same
//! attribution rule the exact profiler ([`crate::prof`]) applies. When the
//! sampling counter is found negative at a poll, the sample is recorded with
//! a *weight* of however many whole periods elapsed since the counter was
//! armed, all of which lie inside windows topped by... possibly different
//! subsystems — and that is the entire statistical error: a multi-span
//! period charges all its periods to the subsystem current at the poll that
//! observed the crossing. As the period shrinks below the typical span
//! length, that error vanishes, which is exactly what the E-PMU experiment
//! demonstrates.

use std::collections::BTreeMap;

use ppc_machine::Cycles;

use crate::kconfig::PmuConfig;
use crate::prof::{Subsystem, NUM_SUBSYSTEMS};
use crate::task::Pid;

/// Raw samples kept verbatim before the recorder switches to
/// aggregates-only (the aggregates are always complete).
pub const SAMPLE_CAP: usize = 65_536;

/// One sampling-interrupt capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmuSample {
    /// Cycle the interrupt was serviced at.
    pub cycle: Cycles,
    /// PID of the running task (0 = the kernel itself / idle).
    pub pid: Pid,
    /// Whether the sample hit supervisor state (an open kernel span or no
    /// current task) rather than user compute.
    pub supervisor: bool,
    /// Subsystem on top of the span stack ([`Subsystem::User`] when none).
    pub subsystem: Subsystem,
    /// Kernel span stack at the interrupt, outermost first (empty = user).
    pub stack: Vec<Subsystem>,
    /// Whole sampling periods this sample stands for.
    pub weight: u64,
}

/// The kernel's sampling state: configuration, the live span-stack mirror,
/// and every aggregate the `perf` surface reports.
///
/// The span-stack mirror exists so sampling works with the event tracer off
/// — the PMU must not require paying for a [`crate::trace::Tracer`] ring
/// and heatmap nobody asked for.
#[derive(Debug, Clone)]
pub struct PmuState {
    /// The boot-time programming.
    pub cfg: PmuConfig,
    /// Mirror of the profiler span stack (pushed/popped by the kernel's
    /// `t_enter`/`t_exit` hooks).
    pub stack: Vec<Subsystem>,
    /// Raw samples, newest last, capped at [`SAMPLE_CAP`].
    pub samples: Vec<PmuSample>,
    /// Weighted sample counts per subsystem (the sampled self-time profile,
    /// in units of sampling periods).
    pub by_subsystem: [u64; NUM_SUBSYSTEMS],
    /// Weighted sample counts per task.
    pub by_pid: BTreeMap<Pid, u64>,
    /// Weighted sample counts per collapsed stack
    /// (`pid;span;span;...` — the flamegraph input format).
    pub folded: BTreeMap<String, u64>,
    /// Weighted samples that hit supervisor state.
    pub supervisor_weight: u64,
    /// Weighted samples that hit user state.
    pub user_weight: u64,
    /// Sampling interrupts delivered (unweighted).
    pub interrupts: u64,
}

impl PmuState {
    /// Fresh sampling state for a booted kernel.
    pub fn new(cfg: PmuConfig) -> Self {
        Self {
            cfg,
            stack: Vec::with_capacity(16),
            samples: Vec::new(),
            by_subsystem: [0; NUM_SUBSYSTEMS],
            by_pid: BTreeMap::new(),
            folded: BTreeMap::new(),
            supervisor_weight: 0,
            user_weight: 0,
            interrupts: 0,
        }
    }

    /// The subsystem a sample taken right now would be attributed to.
    pub fn current_subsystem(&self) -> Subsystem {
        *self.stack.last().unwrap_or(&Subsystem::User)
    }

    /// Records one delivered sampling interrupt.
    pub fn record(&mut self, cycle: Cycles, pid: Pid, supervisor: bool, weight: u64) {
        let subsystem = self.current_subsystem();
        self.interrupts += 1;
        self.by_subsystem[subsystem as usize] += weight;
        *self.by_pid.entry(pid).or_insert(0) += weight;
        if supervisor {
            self.supervisor_weight += weight;
        } else {
            self.user_weight += weight;
        }
        *self.folded.entry(Self::fold(pid, &self.stack)).or_insert(0) += weight;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(PmuSample {
                cycle,
                pid,
                supervisor,
                subsystem,
                stack: self.stack.clone(),
                weight,
            });
        }
    }

    /// The collapsed-stack key for a sample: `pid<N>;outermost;...;innermost`
    /// (`pid<N>;user` for an empty stack) — one line of Brendan Gregg's
    /// folded format once the weight is appended.
    fn fold(pid: Pid, stack: &[Subsystem]) -> String {
        let mut s = format!("pid{pid}");
        if stack.is_empty() {
            s.push_str(";user");
        } else {
            for sub in stack {
                s.push(';');
                s.push_str(sub.name());
            }
        }
        s
    }

    /// Total weighted samples (periods observed).
    pub fn total_weight(&self) -> u64 {
        self.by_subsystem.iter().sum()
    }

    /// Sampled share of `s` in parts-per-million of all weighted samples.
    pub fn share_ppm(&self, s: Subsystem) -> u64 {
        (self.by_subsystem[s as usize] * 1_000_000)
            .checked_div(self.total_weight())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_aggregates_by_every_axis() {
        let mut st = PmuState::new(PmuConfig::sampling(1000));
        st.stack.push(Subsystem::Translate);
        st.record(100, 3, true, 2);
        st.stack.push(Subsystem::HtabInsert);
        st.record(200, 3, true, 1);
        st.stack.clear();
        st.record(300, 4, false, 5);

        assert_eq!(st.interrupts, 3);
        assert_eq!(st.total_weight(), 8);
        assert_eq!(st.by_subsystem[Subsystem::Translate as usize], 2);
        assert_eq!(st.by_subsystem[Subsystem::HtabInsert as usize], 1);
        assert_eq!(st.by_subsystem[Subsystem::User as usize], 5);
        assert_eq!(st.by_pid[&3], 3);
        assert_eq!(st.by_pid[&4], 5);
        assert_eq!(st.supervisor_weight, 3);
        assert_eq!(st.user_weight, 5);
        assert_eq!(st.folded["pid3;translate"], 2);
        assert_eq!(st.folded["pid3;translate;htab_insert"], 1);
        assert_eq!(st.folded["pid4;user"], 5);
        assert_eq!(st.share_ppm(Subsystem::User), 625_000);
    }

    #[test]
    fn sample_cap_keeps_aggregates_complete() {
        let mut st = PmuState::new(PmuConfig::sampling(10));
        for i in 0..(SAMPLE_CAP as u64 + 10) {
            st.record(i, 1, false, 1);
        }
        assert_eq!(st.samples.len(), SAMPLE_CAP);
        assert_eq!(st.total_weight(), SAMPLE_CAP as u64 + 10, "aggregates uncapped");
    }

    #[test]
    fn empty_state_shares_are_zero() {
        let st = PmuState::new(PmuConfig::sampling(10));
        assert_eq!(st.share_ppm(Subsystem::Idle), 0);
        assert_eq!(st.current_subsystem(), Subsystem::User);
    }
}
