//! Process lifecycle beyond spawn: `fork()` with copy-on-write, `exec()`,
//! `brk()`, and the protection-fault path that breaks COW sharing.
//!
//! The paper's process-start costs (Table 1's `pstart`, §7's dynamic-linker
//! remapping) rest on these paths: fork write-protects every anonymous page
//! in both parent and child (a flush-heavy operation — exactly the kind the
//! lazy VSID scheme accelerates), and the first store to a shared page takes
//! a protection fault, copies the frame, and remaps.

use ppc_mmu::addr::{EffectiveAddress, PhysAddr, PAGE_SIZE};

use crate::errors::{KResult, KernelError, Signal};
use crate::kernel::Kernel;
use crate::layout::KernelPath;
use crate::linuxpt::{LinuxPageTables, LinuxPte, PTE_COW, PTE_RW};
use crate::prof::Subsystem;
use crate::task::{Pid, Task, VmaKind};
use crate::trace::{LatencyPath, TraceEvent};

impl Kernel {
    /// `fork()`: clones the current task. Anonymous pages are shared
    /// copy-on-write: both parent and child PTEs are downgraded to
    /// read-only+COW and the parent's stale writable translations are
    /// flushed (policy-dependent cost). Returns the child PID, or `ENOMEM`
    /// if out of page-table pages (the half-built child is rolled back; the
    /// parent keeps running).
    pub fn sys_fork(&mut self) -> KResult<Pid> {
        self.t_enter(Subsystem::Exec);
        let r = self.sys_fork_inner();
        self.t_exit();
        r
    }

    fn sys_fork_inner(&mut self) -> KResult<Pid> {
        self.syscall_entry();
        let insns = self.paths.spawn / 2;
        self.run_kernel_path(KernelPath::Exec, insns);
        let parent_idx = self.current.expect("fork with no current task");
        let child_pid = self.alloc_pid();
        let child_pgd = match self.frames.get_pt_page() {
            Some(pgd) => pgd,
            None => {
                self.syscall_exit();
                return Err(KernelError::OutOfMemory);
            }
        };
        self.phys.zero_page(child_pgd);
        self.machine.zero_page_pa(child_pgd, true);
        let vsids = self.vsids.alloc_context(child_pid);
        let mut child = Task::new(child_pid, vsids, LinuxPageTables::new(child_pgd));
        child.vmas = self.tasks[parent_idx].vmas.clone();
        // Share every anonymous frame copy-on-write.
        let parent_frames: Vec<(u32, PhysAddr)> = self.tasks[parent_idx].frames.clone();
        let parent_pt = self.tasks[parent_idx].pt;
        let cached = self.cfg.linux_pt_cached;
        let mut failed = false;
        for &(ea_raw, pa) in &parent_frames {
            let ea = EffectiveAddress(ea_raw);
            // Downgrade the parent PTE: read-only, COW.
            parent_pt.update_flags(&mut self.phys, ea, PTE_COW, PTE_RW);
            let c = self.machine.mem.data_write(
                parent_pt
                    .walk(&self.phys, ea)
                    .pte_entry_pa
                    .expect("parent page mapped"),
                cached,
            );
            self.machine.charge(c);
            // Map the same frame read-only in the child.
            let pte = LinuxPte::present(pa >> 12, PTE_COW);
            let frames = &mut self.frames;
            let walk = match child.pt.map(&mut self.phys, ea, pte, || frames.get_pt_page()) {
                Some(w) => w,
                None => {
                    failed = true;
                    break;
                }
            };
            let c = self
                .machine
                .mem
                .data_write(walk.pte_entry_pa.expect("map writes a PTE"), cached);
            self.machine.charge(c);
            child.frames.push((ea_raw, pa));
            *self.shared_frames.entry(pa).or_insert(1) += 1;
        }
        if failed {
            // Roll back: drop the child's share counts and page tables. The
            // leftover COW downgrades on the parent are harmless — its next
            // store upgrades the sole-owner page in place.
            for &(_, pa) in &child.frames {
                self.release_user_frame(pa, false);
            }
            let mut freed = std::collections::HashSet::new();
            for vma in &child.vmas {
                let mut ea = vma.start;
                while ea < vma.end {
                    let entry = self.phys.read_u32(child.pt.pgd_entry_pa(EffectiveAddress(ea)));
                    if entry & crate::linuxpt::PTE_PRESENT != 0 && freed.insert(entry & !0xfff) {
                        self.frames.free_pt_page(entry & !0xfff);
                    }
                    ea = ea.saturating_add(4 << 20);
                    if ea == 0 {
                        break;
                    }
                }
            }
            self.frames.free_pt_page(child_pgd);
            self.flush_context(parent_idx);
            self.syscall_exit();
            return Err(KernelError::OutOfMemory);
        }
        // The parent's cached translations still say "writable": flush them.
        self.flush_context(parent_idx);
        let idx = self.tasks.len();
        self.tasks.push(child);
        self.run_queue.push_back(idx);
        self.stats.processes_spawned += 1;
        self.syscall_exit();
        Ok(child_pid)
    }

    /// `exec(binary, text_pages, heap_pages)`: replaces the current address
    /// space with a fresh image backed by `binary`'s page cache, plus an
    /// anonymous heap and stack. The old space is torn down with the
    /// configured flush policy — the §7 narrative's "doing an exec()" flush.
    pub fn sys_exec(&mut self, binary: usize, text_pages: u32, heap_pages: u32) -> KResult<()> {
        self.t_enter(Subsystem::Exec);
        let r = self.sys_exec_inner(binary, text_pages, heap_pages);
        self.t_exit();
        r
    }

    fn sys_exec_inner(&mut self, binary: usize, text_pages: u32, heap_pages: u32) -> KResult<()> {
        self.syscall_entry();
        let insns = self.paths.spawn;
        self.run_kernel_path(KernelPath::Exec, insns);
        let cur = self.current.expect("exec with no current task");
        // Tear down the old image.
        let vmas: Vec<(u32, u32)> = self.tasks[cur]
            .vmas
            .iter()
            .map(|v| (v.start, v.end))
            .collect();
        for (start, end) in &vmas {
            self.unmap_range(cur, *start, *end);
            self.flush_range(cur, *start, *end);
        }
        self.tasks[cur].vmas.clear();
        // Build the new one: file-backed text, anonymous heap, stack.
        let task = &mut self.tasks[cur];
        task.insert_vma(crate::task::Vma {
            start: crate::sched::USER_BASE,
            end: crate::sched::USER_BASE + text_pages * PAGE_SIZE,
            kind: VmaKind::File {
                file: binary,
                offset: 0,
            },
        });
        let heap_base = crate::sched::USER_BASE + text_pages * PAGE_SIZE;
        task.insert_vma(crate::task::Vma {
            start: heap_base,
            end: heap_base + heap_pages.max(1) * PAGE_SIZE,
            kind: VmaKind::Anon,
        });
        task.insert_vma(crate::task::Vma {
            start: crate::sched::STACK_BASE,
            end: crate::sched::STACK_BASE + crate::sched::STACK_PAGES * PAGE_SIZE,
            kind: VmaKind::Anon,
        });
        self.syscall_exit();
        Ok(())
    }

    /// `brk()`: grows (or shrinks) the heap VMA — the second VMA of an
    /// exec'd image — to `new_pages`. Shrinking unmaps and flushes the
    /// abandoned tail. Growth past what physical memory could ever satisfy
    /// (no overcommit) fails with `ENOMEM` after a reclaim attempt, as does
    /// an injected allocation failure. Returns the new break address.
    ///
    /// # Panics
    ///
    /// Panics if the task has no heap VMA (never exec'd or spawned with one).
    pub fn sys_brk(&mut self, new_pages: u32) -> KResult<u32> {
        self.syscall_entry();
        let insns = self.paths.mm_op / 2;
        self.run_kernel_path(KernelPath::Mm, insns);
        let cur = self.current.expect("brk with no current task");
        let heap_idx = self.tasks[cur]
            .vmas
            .iter()
            .position(|v| matches!(v.kind, VmaKind::Anon) && v.start < crate::sched::STACK_BASE)
            .expect("no heap VMA");
        let heap = self.tasks[cur].vmas[heap_idx];
        let new_end = heap.start + new_pages.max(1) * PAGE_SIZE;
        if new_end > heap.end {
            // No overcommit: growth must be coverable by free frames, after
            // giving reclaim a chance to produce some.
            let growth = ((new_end - heap.end) / PAGE_SIZE) as usize;
            let mut denied = self.roll_injected_alloc_fail();
            while !denied && self.frames.free_frames() < growth {
                if self.memory_pressure_reclaim() == 0 {
                    denied = true;
                }
            }
            if denied {
                self.syscall_exit();
                return Err(KernelError::OutOfMemory);
            }
        }
        if new_end < heap.end {
            self.unmap_range(cur, new_end, heap.end);
            self.flush_range(cur, new_end, heap.end);
        }
        self.tasks[cur].vmas[heap_idx].end = new_end;
        self.syscall_exit();
        Ok(new_end)
    }

    /// Handles a store through a read-only translation. For a COW page this
    /// copies (or upgrades) the frame and remaps it writable; anything else
    /// — a store to file-backed text, say — is a genuine write-protection
    /// violation: SIGSEGV is delivered and the task dies.
    pub(crate) fn protection_fault(&mut self, ea: EffectiveAddress) -> KResult<()> {
        // Span bracket around the fallible body so the profiler stack stays
        // balanced on the SIGSEGV early return.
        let t0 = self.t_enter(Subsystem::PageFault);
        let r = self.protection_fault_inner(ea);
        self.t_exit_lat(t0, LatencyPath::PageFault);
        r
    }

    fn protection_fault_inner(&mut self, ea: EffectiveAddress) -> KResult<()> {
        let costs = self.machine.cfg.costs;
        self.machine.charge(costs.exception_entry);
        let insns = self.paths.fault_c;
        self.run_kernel_path(KernelPath::FaultHandler, insns);
        let cur = self.current.expect("protection fault with no current task");
        let page_ea = ea.page_base();
        let pt = self.tasks[cur].pt;
        let walk = pt.walk(&self.phys, page_ea);
        let pte = match walk.pte {
            Some(p) if p.is_cow() => p,
            _ => {
                self.stats.segfaults += 1;
                return Err(self.deliver_fatal_signal(Signal::Segv, ea.0));
            }
        };
        self.stats.cow_faults += 1;
        self.t_event(|| TraceEvent::CowFault { ea: ea.0 });
        let old_pa = pte.pfn() << 12;
        let shared = self.shared_frames.get(&old_pa).copied().unwrap_or(1);
        if shared > 1 {
            // Copy the frame for this task; the others keep the original.
            let new_pa = self.get_free_page_charged(false)?;
            self.machine.copy_pa(old_pa, new_pa, PAGE_SIZE, true);
            self.phys.copy_page(old_pa, new_pa);
            self.release_user_frame(old_pa, false);
            let task = &mut self.tasks[cur];
            if let Some(slot) = task.frames.iter_mut().find(|(a, _)| *a == page_ea.0) {
                slot.1 = new_pa;
            } else {
                task.frames.push((page_ea.0, new_pa));
            }
            self.map_user_page(cur, page_ea, new_pa)?;
        } else {
            // Sole owner left: upgrade in place.
            self.shared_frames.remove(&old_pa);
            pt.update_flags(&mut self.phys, page_ea, PTE_RW, PTE_COW);
            let c = self.machine.mem.data_write(
                walk.pte_entry_pa.expect("COW page is mapped"),
                self.cfg.linux_pt_cached,
            );
            self.machine.charge(c);
        }
        // The stale read-only translation must go.
        self.flush_one_page(cur, page_ea);
        self.machine.charge(costs.exception_exit);
        Ok(())
    }

    /// Drops one reference to a user frame, freeing it when this was the
    /// last. `charge` selects whether allocator costs are billed (false
    /// inside paths that already charged).
    pub(crate) fn release_user_frame(&mut self, pa: PhysAddr, charge: bool) {
        match self.shared_frames.get_mut(&pa) {
            Some(count) if *count > 1 => {
                *count -= 1;
                if *count == 1 {
                    self.shared_frames.remove(&pa);
                }
                if charge {
                    self.machine.charge(4);
                }
            }
            _ => {
                self.shared_frames.remove(&pa);
                if charge {
                    self.free_page_charged(pa);
                } else {
                    self.frames.free_page(pa);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kconfig::KernelConfig;
    use crate::sched::USER_BASE;
    use ppc_machine::MachineConfig;

    fn kernel_with_proc() -> Kernel {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let pid = k.spawn_process(16).unwrap();
        k.switch_to(pid);
        k
    }

    #[test]
    fn fork_shares_frames_cow() {
        let mut k = kernel_with_proc();
        k.prefault(USER_BASE, 8).unwrap();
        let free_before = k.frames.free_frames();
        let child = k.sys_fork().unwrap();
        // No user frames copied at fork time (only page-table pages moved).
        assert_eq!(k.frames.free_frames(), free_before);
        let parent_idx = k.current.unwrap();
        let child_idx = k.task_idx(child).unwrap();
        assert_eq!(
            k.tasks[parent_idx].frames.len(),
            k.tasks[child_idx].frames.len()
        );
        for (p, c) in k.tasks[parent_idx]
            .frames
            .iter()
            .zip(&k.tasks[child_idx].frames)
        {
            assert_eq!(p, c, "parent and child share frames after fork");
        }
    }

    #[test]
    fn cow_write_copies_exactly_one_frame() {
        let mut k = kernel_with_proc();
        k.prefault(USER_BASE, 4).unwrap();
        let child = k.sys_fork().unwrap();
        let parent_pid = k.cur().pid;
        // Child writes one page: one new frame, parent's data untouched.
        k.switch_to(child);
        let free_before = k.frames.free_frames();
        k.data_ref(EffectiveAddress(USER_BASE), true).unwrap();
        assert_eq!(k.frames.free_frames(), free_before - 1);
        assert_eq!(k.stats.cow_faults, 1);
        let child_idx = k.task_idx(child).unwrap();
        let parent_idx = k.task_idx(parent_pid).unwrap();
        let child_pa = k.tasks[child_idx]
            .frames
            .iter()
            .find(|(a, _)| *a == USER_BASE)
            .unwrap()
            .1;
        let parent_pa = k.tasks[parent_idx]
            .frames
            .iter()
            .find(|(a, _)| *a == USER_BASE)
            .unwrap()
            .1;
        assert_ne!(child_pa, parent_pa, "child got a private copy");
        // The untouched pages are still shared.
        let child_pa2 = k.tasks[child_idx]
            .frames
            .iter()
            .find(|(a, _)| *a == USER_BASE + PAGE_SIZE)
            .unwrap()
            .1;
        let parent_pa2 = k.tasks[parent_idx]
            .frames
            .iter()
            .find(|(a, _)| *a == USER_BASE + PAGE_SIZE)
            .unwrap()
            .1;
        assert_eq!(child_pa2, parent_pa2);
    }

    #[test]
    fn parent_write_after_fork_also_breaks_cow() {
        let mut k = kernel_with_proc();
        k.prefault(USER_BASE, 2).unwrap();
        let _child = k.sys_fork().unwrap();
        let faults = k.stats.cow_faults;
        k.data_ref(EffectiveAddress(USER_BASE), true).unwrap();
        assert_eq!(
            k.stats.cow_faults,
            faults + 1,
            "parent store takes the COW fault"
        );
    }

    #[test]
    fn sole_owner_upgrade_allocates_nothing() {
        let mut k = kernel_with_proc();
        k.prefault(USER_BASE, 2).unwrap();
        let child = k.sys_fork().unwrap();
        // Child exits: parent is sole owner, pages still marked COW.
        k.switch_to(child);
        k.exit_current();
        let free_before = k.frames.free_frames();
        k.data_ref(EffectiveAddress(USER_BASE), true).unwrap();
        assert_eq!(
            k.frames.free_frames(),
            free_before,
            "upgrade in place, no copy"
        );
    }

    #[test]
    fn fork_exit_conserves_frames() {
        let mut k = kernel_with_proc();
        k.prefault(USER_BASE, 8).unwrap();
        let free0 = k.frames.free_frames();
        for _ in 0..5 {
            let child = k.sys_fork().unwrap();
            k.switch_to(child);
            // Child dirties half its pages, then dies.
            k.user_write(USER_BASE, 4 * PAGE_SIZE).unwrap();
            k.exit_current();
        }
        assert_eq!(k.frames.free_frames(), free0, "all child frames recycled");
        assert!(k.shared_frames.is_empty(), "no stale share counts");
    }

    #[test]
    fn exec_replaces_address_space() {
        let mut k = kernel_with_proc();
        k.prefault(USER_BASE, 8).unwrap();
        let bin = k.create_file(16 * PAGE_SIZE).unwrap();
        let free_mid = k.frames.free_frames();
        k.sys_exec(bin, 16, 4).unwrap();
        assert!(
            k.frames.free_frames() >= free_mid + 8,
            "old anon frames freed"
        );
        // New image is usable: text reads, heap writes.
        k.user_read(USER_BASE, 4 * PAGE_SIZE).unwrap();
        k.user_write(USER_BASE + 16 * PAGE_SIZE, PAGE_SIZE).unwrap();
        assert_eq!(k.stats.segfaults, 0);
    }

    #[test]
    fn brk_grows_and_shrinks_heap() {
        let mut k = kernel_with_proc();
        let bin = k.create_file(4 * PAGE_SIZE).unwrap();
        k.sys_exec(bin, 4, 2).unwrap();
        let heap_base = USER_BASE + 4 * PAGE_SIZE;
        let end = k.sys_brk(16).unwrap();
        assert_eq!(end, heap_base + 16 * PAGE_SIZE);
        k.user_write(heap_base, 16 * PAGE_SIZE).unwrap();
        let free_before = k.frames.free_frames();
        k.sys_brk(2).unwrap();
        assert!(
            k.frames.free_frames() >= free_before + 14,
            "shrink frees tail frames"
        );
    }

    #[test]
    fn write_to_file_text_delivers_sigsegv() {
        let mut k = kernel_with_proc();
        let bin = k.create_file(4 * PAGE_SIZE).unwrap();
        k.sys_exec(bin, 4, 1).unwrap();
        k.user_read(USER_BASE, PAGE_SIZE).unwrap(); // fault the text in, read-only
        let pid = k.cur().pid;
        // Stores to text trap: SIGSEGV, and the task is gone.
        let err = k.data_ref(EffectiveAddress(USER_BASE), true).unwrap_err();
        assert_eq!(
            err,
            crate::errors::KernelError::Fatal {
                signal: crate::errors::Signal::Segv,
                ea: USER_BASE,
            }
        );
        assert_eq!(k.stats.sigsegvs, 1);
        assert!(k.task_idx(pid).is_none(), "task torn down");
    }
}
