//! Edge-case tests: boundary values of the paper's tunables, policy
//! interactions, and failure injection.

use ppc_machine::MachineConfig;
use ppc_mmu::addr::{EffectiveAddress, PAGE_SIZE};

use crate::kconfig::{KernelConfig, PageClearing, VsidPolicy};
use crate::kernel::Kernel;
use crate::sched::USER_BASE;

fn boot(kcfg: KernelConfig) -> Kernel {
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), kcfg);
    let pid = k.spawn_process(64).unwrap();
    k.switch_to(pid);
    k
}

#[test]
fn flush_cutoff_boundary_is_strict() {
    // `pages > cutoff` bumps; `pages == cutoff` flushes per page.
    let mut k = boot(KernelConfig {
        flush_cutoff_pages: Some(20),
        ..KernelConfig::optimized()
    });
    let addr = k.sys_mmap(None, 20 * PAGE_SIZE);
    k.prefault(addr, 20).unwrap();
    let bumps = k.stats.context_bumps;
    k.sys_munmap(addr, 20 * PAGE_SIZE);
    assert_eq!(
        k.stats.context_bumps, bumps,
        "exactly-at-cutoff flushes per page"
    );
    assert_eq!(k.stats.flushed_pages, 20);
    let addr = k.sys_mmap(None, 21 * PAGE_SIZE);
    k.prefault(addr, 21).unwrap();
    k.sys_munmap(addr, 21 * PAGE_SIZE);
    assert_eq!(
        k.stats.context_bumps,
        bumps + 1,
        "one past the cutoff bumps"
    );
}

#[test]
fn cutoff_of_one_bumps_for_everything_bigger() {
    let mut k = boot(KernelConfig {
        flush_cutoff_pages: Some(1),
        ..KernelConfig::optimized()
    });
    let addr = k.sys_mmap(None, 2 * PAGE_SIZE);
    k.sys_munmap(addr, 2 * PAGE_SIZE);
    assert_eq!(k.stats.context_bumps, 1);
    assert_eq!(k.stats.flushed_pages, 0);
}

#[test]
fn zero_length_user_access_is_free() {
    let mut k = boot(KernelConfig::optimized());
    let c0 = k.machine.cycles;
    let cost = k.user_read(USER_BASE, 0).unwrap();
    assert_eq!(cost, 0);
    assert_eq!(k.machine.cycles, c0);
}

#[test]
fn one_byte_pipe_write_costs_a_full_line_copy() {
    let mut k = boot(KernelConfig::optimized());
    k.prefault(USER_BASE, 1).unwrap();
    let p = k.pipe_create().unwrap();
    k.pipe_write(p, USER_BASE, 1).unwrap();
    assert_eq!(k.pipes[p].len, 1);
    k.pipe_read(p, USER_BASE, 1).unwrap();
    assert_eq!(k.pipes[p].len, 0);
}

#[test]
fn pipe_exact_capacity_fits_without_blocking() {
    let mut k = boot(KernelConfig::optimized());
    k.prefault(USER_BASE, 1).unwrap();
    let p = k.pipe_create().unwrap();
    k.pipe_write(p, USER_BASE, PAGE_SIZE).unwrap();
    assert_eq!(k.pipes[p].len, PAGE_SIZE);
    k.pipe_read(p, USER_BASE, PAGE_SIZE).unwrap();
}

#[test]
fn vsid_wraparound_keeps_contexts_distinct() {
    // Drive the context counter through many allocations; translations must
    // stay consistent (VSIDs are 24-bit and wrap via masking).
    let kcfg = KernelConfig {
        vsid_policy: VsidPolicy::ContextCounter {
            constant: 0x3f_ffff,
        },
        ..KernelConfig::optimized()
    };
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), kcfg);
    for _ in 0..32 {
        let pid = k.spawn_process(2).unwrap();
        k.switch_to(pid);
        k.user_write(USER_BASE, PAGE_SIZE).unwrap();
        k.exit_current();
    }
    assert_eq!(k.stats.segfaults, 0);
}

#[test]
fn stack_grows_from_its_own_vma() {
    let mut k = boot(KernelConfig::optimized());
    // Stack pages are demand-zero from the stack VMA.
    k.data_ref(EffectiveAddress(crate::sched::STACK_BASE), true).unwrap();
    k.data_ref(
        EffectiveAddress(crate::sched::STACK_BASE + (crate::sched::STACK_PAGES - 1) * PAGE_SIZE),
        true,
    )
    .unwrap();
    assert_eq!(k.stats.page_faults, 2);
}

#[test]
fn mmap_between_existing_regions_never_overlaps_stack() {
    let mut k = boot(KernelConfig::optimized());
    // Map until close to the stack; allocations must stay below it.
    for _ in 0..6 {
        let addr = k.sys_mmap(None, 1024 * PAGE_SIZE);
        assert!(addr + 1024 * PAGE_SIZE <= crate::sched::STACK_BASE);
    }
}

#[test]
fn idle_zero_budget_is_a_noop() {
    let mut k = boot(KernelConfig::optimized());
    let c0 = k.machine.cycles;
    k.run_idle(0);
    assert_eq!(k.machine.cycles, c0);
}

#[test]
fn page_clearing_policies_preserve_zeroing_semantics() {
    // Whatever the policy, a fresh demand-zero page must read as zero.
    for policy in [
        PageClearing::OnDemand,
        PageClearing::IdleCached,
        PageClearing::IdleUncachedNoList,
        PageClearing::IdleUncached,
    ] {
        let kcfg = KernelConfig {
            page_clearing: policy,
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), kcfg);
        let pid = k.spawn_process(4).unwrap();
        k.switch_to(pid);
        k.run_idle(100_000);
        // Dirty a frame, free it, reallocate it.
        let addr = k.sys_mmap(None, PAGE_SIZE);
        k.data_ref(EffectiveAddress(addr), true).unwrap();
        let (pa, _) = k
            .translate_ref(
                EffectiveAddress(addr),
                ppc_mmu::translate::AccessType::DataRead,
            )
            .unwrap();
        k.phys.write_u32(pa, 0xdead_beef);
        k.sys_munmap(addr, PAGE_SIZE);
        k.run_idle(200_000);
        let addr2 = k.sys_mmap(None, PAGE_SIZE);
        k.data_ref(EffectiveAddress(addr2), false).unwrap();
        let (pa2, _) = k
            .translate_ref(
                EffectiveAddress(addr2),
                ppc_mmu::translate::AccessType::DataRead,
            )
            .unwrap();
        assert_eq!(
            k.phys.read_u32(pa2),
            0,
            "{policy:?}: demand-zero page must actually be zero"
        );
    }
}

#[test]
fn kernel_survives_heavy_fragmentation() {
    // Interleave many map/unmap cycles of varied sizes; the allocator and
    // page tables must stay consistent throughout.
    let mut k = boot(KernelConfig::optimized());
    let mut live: Vec<(u32, u32)> = Vec::new();
    for i in 0..60u32 {
        let pages = 1 + (i * 7) % 40;
        let addr = k.sys_mmap(None, pages * PAGE_SIZE);
        k.prefault(addr, pages.min(8)).unwrap();
        live.push((addr, pages));
        if i % 3 == 2 {
            let (a, p) = live.remove((i as usize * 5) % live.len());
            k.sys_munmap(a, p * PAGE_SIZE);
        }
    }
    for (a, p) in live {
        k.sys_munmap(a, p * PAGE_SIZE);
    }
    assert_eq!(k.stats.segfaults, 0);
}

#[test]
fn sixteen_generations_of_fork_chain() {
    let mut k = boot(KernelConfig::optimized());
    k.prefault(USER_BASE, 8).unwrap();
    // Each child forks the next, then everyone exits in reverse.
    let mut chain = vec![k.cur().pid];
    for _ in 0..16 {
        let child = k.sys_fork().expect("fork chain");
        k.switch_to(child);
        chain.push(child);
    }
    // The deepest child writes everything (COW storm through 16 sharers).
    k.user_write(USER_BASE, 8 * PAGE_SIZE).unwrap();
    while chain.len() > 1 {
        let pid = chain.pop().unwrap();
        k.switch_to(pid);
        k.exit_current();
    }
    assert_eq!(k.stats.segfaults, 0);
    assert!(k.stats.cow_faults >= 8);
}

#[test]
fn unoptimized_and_optimized_agree_on_semantics() {
    // The policies change costs, never results: the same workload leaves
    // the same architectural state.
    let run = |kcfg: KernelConfig| {
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
        let pid = k.spawn_process(16).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 16).unwrap();
        let addr = k.sys_mmap(None, 8 * PAGE_SIZE);
        k.user_write(addr, 8 * PAGE_SIZE).unwrap();
        k.sys_munmap(addr, 8 * PAGE_SIZE);
        let f = k.create_file(8 * PAGE_SIZE).unwrap();
        k.sys_read(f, 0, USER_BASE, 4 * PAGE_SIZE).unwrap();
        (
            k.stats.page_faults,
            k.stats.segfaults,
            k.frames.free_frames(),
        )
    };
    let a = run(KernelConfig::unoptimized());
    let b = run(KernelConfig::optimized());
    assert_eq!(a.0, b.0, "same faults");
    assert_eq!(a.1, 0);
    assert_eq!(b.1, 0);
    assert_eq!(a.2, b.2, "same frames free at the end");
}
