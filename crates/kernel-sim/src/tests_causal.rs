//! Integration tests for causal what-if profiling (DESIGN.md §15): the
//! identity guarantee (`causal = None` ≡ all-1/1) over a sample of kernel
//! configurations, and the scaling semantics on a real workload.

use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

use crate::causal::{CausalConfig, CausalPath, Ratio};
use crate::kconfig::KernelConfig;
use crate::kernel::Kernel;
use crate::prof::Subsystem;
use crate::sched::USER_BASE;

/// The same every-path workload the trace identity tests use: faults,
/// reloads, flushes, signals, fork/COW, reclaim, idle, syscalls.
fn workload(k: &mut Kernel) {
    let a = k.spawn_process(16).unwrap();
    let b = k.spawn_process(8).unwrap();
    k.switch_to(a);
    k.user_write(USER_BASE, 8 * PAGE_SIZE).unwrap();
    k.sys_signal_install();
    k.signal_roundtrip(USER_BASE).unwrap();
    let child = k.sys_fork().unwrap();
    k.switch_to(child);
    k.user_write(USER_BASE, 2 * PAGE_SIZE).unwrap();
    k.exit_current();
    k.switch_to(b);
    k.user_read(USER_BASE, 4 * PAGE_SIZE).unwrap();
    let m = k.sys_mmap(None, 32 * PAGE_SIZE);
    k.prefault(m, 32).unwrap();
    k.sys_munmap(m, 32 * PAGE_SIZE);
    k.run_idle(40_000);
    k.sys_null();
}

fn run(machine: MachineConfig, mut cfg: KernelConfig, causal: Option<CausalConfig>) -> Kernel {
    cfg.causal = causal;
    let mut k = Kernel::boot(machine, cfg);
    workload(&mut k);
    k
}

/// A small matrix sample: both presets, both processor families, plus the
/// observability stack layered on (tracing + sampling PMU + mmtune), since
/// those are exactly the features whose own cycle-identity guarantees a
/// buggy causal layer would break.
fn config_sample() -> Vec<(MachineConfig, KernelConfig)> {
    let mut instrumented = KernelConfig::optimized();
    instrumented.trace = true;
    instrumented.pmu = Some(crate::kconfig::PmuConfig::sampling(4096));
    instrumented.mmtune = Some(crate::tune::MmtuneConfig::default());
    vec![
        (MachineConfig::ppc604_185(), KernelConfig::unoptimized()),
        (MachineConfig::ppc604_185(), KernelConfig::optimized()),
        (MachineConfig::ppc603_133(), KernelConfig::optimized()),
        (MachineConfig::ppc604_185(), instrumented),
    ]
}

#[test]
fn all_one_causal_is_cycle_and_counter_identical_across_matrix_sample() {
    for (machine, cfg) in config_sample() {
        let plain = run(machine, cfg, None);
        let ident = run(machine, cfg, Some(CausalConfig::identity()));
        assert_eq!(
            ident.machine.cycles, plain.machine.cycles,
            "all-1/1 causal must charge identical cycles ({})",
            cfg.summary()
        );
        assert_eq!(
            ident.stats, plain.stats,
            "and count identical kernel events ({})",
            cfg.summary()
        );
        let (_, snap_i) = ident.stats_snapshot();
        let (_, snap_p) = plain.stats_snapshot();
        assert_eq!(snap_i, snap_p, "down to the cache/TLB monitors");
    }
}

#[test]
fn zeroing_everything_freezes_the_clock_but_not_the_state() {
    let zero = CausalConfig {
        subsystem: [Ratio::ZERO; crate::prof::NUM_SUBSYSTEMS],
        path: [Ratio::ZERO; crate::causal::NUM_PATHS],
    };
    let cfg = KernelConfig::optimized();
    let k = run(MachineConfig::ppc604_185(), cfg, Some(zero));
    // Every *charge* scales to zero, but the workload's run_idle(40_000)
    // models an I/O stall, and Machine::wait bypasses the causal scale — a
    // virtual speedup cannot make a device answer sooner. With all work
    // free, exactly the stall remains on the clock.
    assert_eq!(
        k.machine.cycles, 40_000,
        "all work free; only the I/O wait remains"
    );
    let plain = run(MachineConfig::ppc604_185(), cfg, None);
    // The run still *happened*: same faults, reloads, switches — causal
    // scaling touches the clock, never the state evolution.
    assert_eq!(k.stats.page_faults, plain.stats.page_faults);
    assert_eq!(k.stats.tlb_reloads, plain.stats.tlb_reloads);
    assert_eq!(k.stats.ctx_switches, plain.stats.ctx_switches);
}

#[test]
fn scaled_run_is_deterministic() {
    let causal = CausalConfig::identity()
        .scale_path(CausalPath::TlbReload, Ratio { num: 1, den: 2 })
        .scale_subsystem(Subsystem::Sched, Ratio { num: 3, den: 4 });
    let cfg = KernelConfig::optimized();
    let a = run(MachineConfig::ppc604_185(), cfg, Some(causal));
    let b = run(MachineConfig::ppc604_185(), cfg, Some(causal));
    assert_eq!(a.machine.cycles, b.machine.cycles);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn speeding_up_a_hot_path_speeds_up_the_run_monotonically() {
    let cfg = KernelConfig::unoptimized();
    let cycles_at = |f: u32| {
        let causal =
            CausalConfig::identity().scale_path(CausalPath::TlbReload, Ratio::speedup_pct(f));
        run(MachineConfig::ppc604_185(), cfg, Some(causal))
            .machine
            .cycles
    };
    let c0 = cycles_at(0);
    let c25 = cycles_at(25);
    let c75 = cycles_at(75);
    let c100 = cycles_at(100);
    assert_eq!(
        c0,
        run(MachineConfig::ppc604_185(), cfg, None).machine.cycles,
        "0% speedup is the identity"
    );
    assert!(c25 < c0, "25% faster reloads must shorten the run");
    assert!(c75 < c25);
    assert!(c100 < c75, "free reloads are the lower bound");
    assert!(c100 > 0, "but only the reload extent got cheaper");
}

#[test]
fn subsystem_self_time_scaling_affects_only_that_bucket() {
    // Zero the Flush subsystem's self-time; the profiler (running in the
    // same kernel) must observe a Flush bucket of ~0 self cycles while
    // other buckets keep charging.
    let mut cfg = KernelConfig::optimized();
    cfg.trace = true;
    let causal = CausalConfig::identity().scale_subsystem(Subsystem::Flush, Ratio::ZERO);
    let mut k = run(MachineConfig::ppc604_185(), cfg, Some(causal));
    let now = k.machine.cycles;
    let t = k.tracer.as_mut().unwrap();
    t.prof.finish(now);
    assert_eq!(
        t.prof.self_cycles(Subsystem::Flush),
        0,
        "flush self-time was virtually zeroed"
    );
    assert!(t.prof.self_cycles(Subsystem::Translate) > 0);
    assert!(t.prof.self_cycles(Subsystem::Sched) > 0);
}

#[test]
fn causal_state_is_exposed_and_balanced_at_rest() {
    let causal = CausalConfig::identity();
    let k = run(MachineConfig::ppc604_185(), KernelConfig::optimized(), Some(causal));
    let st = k.causal.as_ref().expect("causal state installed");
    assert_eq!(st.scale(), (1, 1), "identity config folds to 1/1");
    assert_eq!(k.machine.scale(), (1, 1));
}
