//! Process lifecycle and the scheduler.

use ppc_mmu::addr::PAGE_SIZE;

use crate::errors::{KResult, KernelError};
use crate::kernel::Kernel;
use crate::layout::KernelPath;
use crate::linuxpt::LinuxPageTables;
use crate::prof::Subsystem;
use crate::task::{Pid, Task, TaskState, Vma, VmaKind};
use crate::trace::TraceEvent;

/// Default user text/data/heap base.
pub const USER_BASE: u32 = 0x1000_0000;

/// Default user stack top region.
pub const STACK_BASE: u32 = 0x7ff0_0000;

/// Pages of stack given to each process.
pub const STACK_PAGES: u32 = 16;

impl Kernel {
    /// Creates a process with a `ws_pages`-page anonymous working-set region
    /// at [`USER_BASE`] and a stack. Returns its PID, or `ENOMEM` when the
    /// page-table pool is exhausted.
    pub fn spawn_process(&mut self, ws_pages: u32) -> KResult<Pid> {
        self.t_enter(Subsystem::Exec);
        let r = self.spawn_process_inner(ws_pages);
        self.t_exit();
        r
    }

    fn spawn_process_inner(&mut self, ws_pages: u32) -> KResult<Pid> {
        let insns = self.paths.spawn;
        self.run_kernel_path(KernelPath::Exec, insns);
        let pid = self.alloc_pid();
        let pgd = self.frames.get_pt_page().ok_or(KernelError::OutOfMemory)?;
        self.phys.zero_page(pgd);
        self.machine.zero_page_pa(pgd, true);
        let vsids = self.vsids.alloc_context(pid);
        let mut task = Task::new(pid, vsids, LinuxPageTables::new(pgd));
        if ws_pages > 0 {
            task.insert_vma(Vma {
                start: USER_BASE,
                end: USER_BASE + ws_pages * PAGE_SIZE,
                kind: VmaKind::Anon,
            });
        }
        task.insert_vma(Vma {
            start: STACK_BASE,
            end: STACK_BASE + STACK_PAGES * PAGE_SIZE,
            kind: VmaKind::Anon,
        });
        let idx = self.tasks.len();
        self.tasks.push(task);
        self.run_queue.push_back(idx);
        self.stats.processes_spawned += 1;
        Ok(pid)
    }

    /// Finds the task slot for `pid`.
    pub fn task_idx(&self, pid: Pid) -> Option<usize> {
        self.tasks
            .iter()
            .position(|t| t.pid == pid && t.state != TaskState::Dead)
    }

    /// Switches directly to `pid` (harness-level control).
    ///
    /// # Panics
    ///
    /// Panics if `pid` does not exist.
    pub fn switch_to(&mut self, pid: Pid) {
        let idx = self.task_idx(pid).expect("switch_to: no such pid");
        self.context_switch(idx);
    }

    /// The context-switch path: scheduler body, task-struct save/restore
    /// traffic, and the segment-register reload that changes address space.
    pub fn context_switch(&mut self, to: usize) {
        if self.current == Some(to) {
            return;
        }
        let to_pid = self.tasks[to].pid;
        self.t_event(|| TraceEvent::CtxSwitch { to: to_pid });
        self.t_enter(Subsystem::Sched);
        // The switch body transiently violates SchedInv (the outgoing task
        // is pushed onto the queue while still `current`); bracket it so the
        // checker treats it as one atomic step, as the TLA model does.
        self.check_sched_enter();
        // The chosen task leaves the ready queue while it runs; the
        // displaced task goes back on it if still runnable.
        self.run_queue.retain(|&i| i != to);
        if let Some(old) = self.current {
            if self.tasks[old].state == TaskState::Runnable && !self.run_queue.contains(&old) {
                self.run_queue.push_back(old);
            }
        }
        let insns = self.paths.sched;
        self.run_kernel_path(KernelPath::Schedule, insns);
        // Save the outgoing task's register state to its task struct.
        if let Some(old) = self.current {
            let ts = self.tasks[old].task_struct_pa();
            for i in 0..32 {
                self.kdata_ref(ts + i * 4, true);
            }
        }
        // Load the incoming task's state.
        let ts = self.tasks[to].task_struct_pa();
        if self.cfg.cache_preloads {
            // §10.2: software prefetch of the new task struct before use.
            for i in 0..4 {
                let c = self.machine.mem.prefetch(ts + i * 32);
                self.machine.charge(c);
            }
        }
        for i in 0..32 {
            self.kdata_ref(ts + i * 4, false);
        }
        // Reload the user segment registers with the new task's VSIDs: this
        // is the entire address-space switch (no TLB flush — VSIDs
        // disambiguate, which is what makes PPC context switches cheap).
        let vsids = self.tasks[to].vsids;
        for (sr, v) in vsids.iter().enumerate() {
            self.machine.mmu.segments.set(sr, *v);
        }
        self.machine.charge(16 + 3); // 12 mtsr + isync, rounded as the paper's code does
        self.current = Some(to);
        self.stats.ctx_switches += 1;
        self.check_sched_exit();
        self.t_exit();
    }

    /// Voluntarily yields to the next runnable task (round robin).
    pub fn yield_next(&mut self) {
        if let Some(next) = self.pick_next() {
            self.context_switch(next);
        }
    }

    /// Blocks the current task and switches away.
    ///
    /// # Panics
    ///
    /// Panics if no other runnable task exists (simulated deadlock).
    pub fn block_current(&mut self) {
        let cur = self.current.expect("block with no current task");
        self.tasks[cur].state = TaskState::Blocked;
        let next = self.pick_next().expect("deadlock: all tasks blocked");
        self.context_switch(next);
    }

    /// Wakes a blocked task.
    pub fn wake(&mut self, idx: usize) {
        if self.tasks[idx].state == TaskState::Blocked {
            self.tasks[idx].state = TaskState::Runnable;
            self.run_queue.push_back(idx);
        }
    }

    fn pick_next(&mut self) -> Option<usize> {
        while let Some(idx) = self.run_queue.pop_front() {
            if self.tasks[idx].state == TaskState::Runnable {
                return Some(idx);
            }
        }
        None
    }

    /// Terminates the current task: frees its frames and page tables,
    /// flushes its translations (policy-dependent cost!), and switches to
    /// the next runnable task if any.
    pub fn exit_current(&mut self) {
        let cur = self.current.expect("exit with no current task");
        self.teardown_task(cur);
    }

    /// Tears down task `idx` — the shared back half of `exit()`, fatal
    /// signal delivery, and the OOM killer. Flushes its translations
    /// (policy-dependent cost), returns its frames and page tables, drops
    /// its page-cache mapping pins, and — when it was the current task —
    /// switches to the next runnable one.
    pub(crate) fn teardown_task(&mut self, idx: usize) {
        // Teardown marks the task Dead before pulling it off the run queue
        // and releases frames across span transitions; suspend the scheduler
        // invariants until the whole step completes.
        self.check_sched_enter();
        // Address-space teardown flush: the lazy kernel retires the context
        // in O(1); the eager kernel walks every VMA flushing page by page
        // (`tlbie` collateral included).
        if self.cfg.lazy_flush {
            self.flush_context(idx);
        } else {
            let ranges: Vec<(u32, u32)> = self.tasks[idx]
                .vmas
                .iter()
                .map(|v| (v.start, v.end))
                .collect();
            for (start, end) in ranges {
                self.flush_range(idx, start, end);
            }
        }
        // Unpin mapped page-cache frames so pressure can evict them again
        // (bookkeeping on structures the teardown already touched).
        let pt = self.tasks[idx].pt;
        let file_vmas: Vec<(u32, u32)> = self.tasks[idx]
            .vmas
            .iter()
            .filter(|v| matches!(v.kind, VmaKind::File { .. }))
            .map(|v| (v.start, v.end))
            .collect();
        for (start, end) in file_vmas {
            let mut ea = start;
            while ea < end {
                let walk = pt.walk(&self.phys, ppc_mmu::addr::EffectiveAddress(ea));
                if let Some(pte) = walk.pte {
                    self.file_map_unref(pte.pfn() << 12);
                }
                ea += PAGE_SIZE;
            }
        }
        let task = &mut self.tasks[idx];
        task.state = TaskState::Dead;
        let frames: Vec<_> = task.frames.drain(..).collect();
        let pgd = task.pt.pgd_pa;
        let vmas: Vec<_> = task.vmas.drain(..).collect();
        for (_, pa) in frames {
            self.release_user_frame(pa, true);
        }
        // Free second-level page-table pages.
        let mut freed = std::collections::HashSet::new();
        for vma in &vmas {
            let mut ea = vma.start;
            while ea < vma.end {
                let pgd_entry = self
                    .phys
                    .read_u32(pt.pgd_entry_pa(ppc_mmu::addr::EffectiveAddress(ea)));
                if pgd_entry & crate::linuxpt::PTE_PRESENT != 0 {
                    let page = pgd_entry & !0xfff;
                    if freed.insert(page) {
                        self.frames.free_pt_page(page);
                    }
                }
                ea = ea.saturating_add(4 << 20); // next PGD slot
                if ea == 0 {
                    break;
                }
            }
        }
        self.frames.free_pt_page(pgd);
        self.run_queue.retain(|&i| i != idx);
        if self.current == Some(idx) {
            self.current = None;
            if let Some(next) = self.pick_next() {
                self.context_switch(next);
            }
        }
        self.check_sched_exit();
    }
}
