//! Causal what-if profiling: exact virtual speedups (DESIGN.md §15).
//!
//! COZ-style causal profilers estimate "what if X were f% faster?" by
//! *slowing everything else down* around sampled occurrences of X, because
//! on real hardware you cannot un-spend cycles. This simulator can: every
//! cycle is charged explicitly at a known site under a known profiler span,
//! so a virtual speedup is just a multiplier applied at the charge point.
//! Re-running the identical deterministic workload with one subsystem's
//! charges scaled measures the *exact* end-to-end effect — including every
//! downstream scheduling, reclaim, and epoch-controller interaction — with
//! no sampling error and no perturbation of the rest of the run.
//!
//! Multipliers are integer fixed-point ratios `num/den` (floored per
//! charge, no remainder carry), keyed two ways:
//!
//! * **by subsystem** ([`crate::prof::Subsystem`]) — scales *self-time*:
//!   only charges made while that subsystem is the innermost open span;
//! * **by instrumented path** ([`CausalPath`]) — scales the *entire dynamic
//!   extent* of the path (TLB reload including nested hash-table inserts,
//!   page fault, hash-table rehash, flush, signal delivery).
//!
//! The effective scale at any instant is the product of the innermost
//! span's subsystem ratio and every active path's ratio. Only the clock is
//! scaled: cache and TLB state, counters, and every policy decision that
//! reads them evolve from the (scaled) clock exactly as a real faster
//! handler would cause — that is the "exact causal" semantics. A config of
//! all 1/1 ratios is cycle- and counter-identical to `causal = None`,
//! proven by tests and the CI causal gate.

use crate::prof::{Subsystem, NUM_SUBSYSTEMS};

/// Largest permitted ratio component. Keeping components small bounds the
/// product of one subsystem ratio and all [`NUM_PATHS`] path ratios below
/// `1000^6 = 10^18 < u64::MAX`, so the effective scale never overflows.
pub const MAX_RATIO_COMPONENT: u32 = 1000;

/// An integer fixed-point charge multiplier. `num/den` of every cycle
/// charged survives; `Ratio::ONE` leaves charges untouched and
/// `Ratio::ZERO` makes the target free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    /// Numerator (0 permitted: the target becomes free).
    pub num: u32,
    /// Denominator (never zero).
    pub den: u32,
}

impl Ratio {
    /// The identity multiplier.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };
    /// The zeroing multiplier: the target costs nothing.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };

    /// The multiplier for an `f`-percent virtual *speedup*:
    /// `(100 - f) / 100` (25% faster → 3/4 of every charge survives).
    ///
    /// # Panics
    ///
    /// Panics if `f > 100`.
    pub fn speedup_pct(f: u32) -> Ratio {
        assert!(f <= 100, "speedup percentage must be at most 100");
        if f == 0 {
            Ratio::ONE
        } else if f == 100 {
            Ratio::ZERO
        } else {
            Ratio {
                num: 100 - f,
                den: 100,
            }
        }
    }

    /// Whether this is the identity multiplier (in lowest terms or not).
    pub fn is_one(self) -> bool {
        self.num == self.den
    }

    /// Panics unless the ratio is well-formed (nonzero denominator, both
    /// components within [`MAX_RATIO_COMPONENT`]).
    pub fn validate(self) {
        assert!(self.den != 0, "causal ratio denominator must be nonzero");
        assert!(
            self.num <= MAX_RATIO_COMPONENT && self.den <= MAX_RATIO_COMPONENT,
            "causal ratio components must be at most {MAX_RATIO_COMPONENT}"
        );
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ONE
    }
}

/// Number of instrumented paths a causal multiplier can target.
pub const NUM_PATHS: usize = 5;

/// An instrumented path whose *entire dynamic extent* (nested spans
/// included) a causal multiplier can scale. Paths map onto the latency
/// paths the tail-forensics layer samples, plus the hash-table rehash the
/// mmtune controller charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CausalPath {
    /// A hardware TLB miss serviced in software: hash-table search and (on
    /// miss) Linux page-table walk, including the nested hash-table insert.
    TlbReload = 0,
    /// A page fault from entry to return, including the reload it nests in.
    PageFault = 1,
    /// An mmtune hash-table resize: reclaim, re-insert traffic, and the
    /// charged rehash cost.
    HtabRehash = 2,
    /// A TLB/hash-table flush (context switch or munmap).
    Flush = 3,
    /// Signal delivery: frame push through sigreturn.
    SignalDelivery = 4,
}

impl CausalPath {
    /// Every path, in `repr` order.
    pub const ALL: [CausalPath; NUM_PATHS] = [
        CausalPath::TlbReload,
        CausalPath::PageFault,
        CausalPath::HtabRehash,
        CausalPath::Flush,
        CausalPath::SignalDelivery,
    ];

    /// Stable lower-case name, used in artifacts and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            CausalPath::TlbReload => "tlb_reload",
            CausalPath::PageFault => "page_fault",
            CausalPath::HtabRehash => "htab_rehash",
            CausalPath::Flush => "flush",
            CausalPath::SignalDelivery => "signal_delivery",
        }
    }

    /// Parses a [`CausalPath::name`] back to the path.
    pub fn from_name(name: &str) -> Option<CausalPath> {
        CausalPath::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The path a span of subsystem `s` roots, if any: pushing a Translate
    /// span enters the TLB-reload extent, and so on. Rehash has no root
    /// subsystem — the kernel marks it explicitly around the resize action.
    pub fn of_span_root(s: Subsystem) -> Option<CausalPath> {
        match s {
            Subsystem::Translate => Some(CausalPath::TlbReload),
            Subsystem::PageFault => Some(CausalPath::PageFault),
            Subsystem::Flush => Some(CausalPath::Flush),
            Subsystem::Signal => Some(CausalPath::SignalDelivery),
            _ => None,
        }
    }
}

/// The full causal-profiling configuration: one multiplier per profiler
/// subsystem (self-time) and one per instrumented path (dynamic extent).
/// `Copy` so [`crate::KernelConfig`] stays `Copy`; the all-[`Ratio::ONE`]
/// default is cycle-identical to `causal = None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalConfig {
    /// Self-time multiplier per [`Subsystem`], indexed by `repr`.
    pub subsystem: [Ratio; NUM_SUBSYSTEMS],
    /// Extent multiplier per [`CausalPath`], indexed by `repr`.
    pub path: [Ratio; NUM_PATHS],
}

impl CausalConfig {
    /// The identity configuration: every multiplier 1/1. Installing it must
    /// be cycle- and counter-identical to `causal = None` (gated in CI).
    pub fn identity() -> Self {
        Self {
            subsystem: [Ratio::ONE; NUM_SUBSYSTEMS],
            path: [Ratio::ONE; NUM_PATHS],
        }
    }

    /// Identity except subsystem `s` scaled by `r` (builder style).
    pub fn scale_subsystem(mut self, s: Subsystem, r: Ratio) -> Self {
        self.subsystem[s as usize] = r;
        self
    }

    /// Identity except path `p` scaled by `r` (builder style).
    pub fn scale_path(mut self, p: CausalPath, r: Ratio) -> Self {
        self.path[p as usize] = r;
        self
    }

    /// Whether every multiplier is the identity.
    pub fn is_identity(&self) -> bool {
        self.subsystem.iter().all(|r| r.is_one()) && self.path.iter().all(|r| r.is_one())
    }

    /// Panics unless every ratio is well-formed (see [`Ratio::validate`]).
    pub fn validate(&self) {
        for r in self.subsystem.iter().chain(self.path.iter()) {
            r.validate();
        }
    }
}

impl Default for CausalConfig {
    fn default() -> Self {
        Self::identity()
    }
}

/// Runtime state: the kernel's own span stack (independent of the tracer,
/// which may be off) plus per-path extent depths. Recomputed into a single
/// `(num, den)` machine scale at every span transition.
#[derive(Debug, Clone)]
pub struct CausalState {
    /// The configuration being applied.
    pub cfg: CausalConfig,
    stack: Vec<Subsystem>,
    path_depth: [u32; NUM_PATHS],
}

impl CausalState {
    /// Fresh state for `cfg` (empty stack: charges attribute to
    /// [`Subsystem::User`], matching the exact profiler's convention).
    pub fn new(cfg: CausalConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            stack: Vec::with_capacity(8),
            path_depth: [0; NUM_PATHS],
        }
    }

    /// Opens a span of subsystem `s`; activates the path it roots, if any.
    pub fn push(&mut self, s: Subsystem) {
        self.stack.push(s);
        if let Some(p) = CausalPath::of_span_root(s) {
            self.path_depth[p as usize] += 1;
        }
    }

    /// Closes the innermost span.
    pub fn pop(&mut self) {
        if let Some(s) = self.stack.pop() {
            if let Some(p) = CausalPath::of_span_root(s) {
                let d = &mut self.path_depth[p as usize];
                *d = d.saturating_sub(1);
            }
        }
    }

    /// Explicitly enters/leaves a path extent that no subsystem roots
    /// (today: [`CausalPath::HtabRehash`] around the mmtune resize action).
    pub fn path_mark(&mut self, p: CausalPath, enter: bool) {
        let d = &mut self.path_depth[p as usize];
        if enter {
            *d += 1;
        } else {
            *d = d.saturating_sub(1);
        }
    }

    /// The effective machine scale right now: the innermost span's
    /// subsystem ratio (empty stack ⇒ [`Subsystem::User`]) times every
    /// active path's ratio, each path counted once regardless of nesting
    /// depth. Reduced to lowest terms so an all-identity product collapses
    /// to `(1, 1)` and the machine's fast path engages.
    pub fn scale(&self) -> (u64, u64) {
        let top = self.stack.last().copied().unwrap_or(Subsystem::User);
        let r = self.cfg.subsystem[top as usize];
        let mut num = r.num as u64;
        let mut den = r.den as u64;
        for (i, depth) in self.path_depth.iter().enumerate() {
            if *depth > 0 {
                let r = self.cfg.path[i];
                num *= r.num as u64;
                den *= r.den as u64;
            }
        }
        let g = gcd(num.max(1), den);
        (num / g, den / g)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_pct_maps_to_expected_ratios() {
        assert_eq!(Ratio::speedup_pct(0), Ratio::ONE);
        assert_eq!(Ratio::speedup_pct(25), Ratio { num: 75, den: 100 });
        assert_eq!(Ratio::speedup_pct(50), Ratio { num: 50, den: 100 });
        assert_eq!(Ratio::speedup_pct(100), Ratio::ZERO);
    }

    #[test]
    fn path_names_round_trip() {
        for p in CausalPath::ALL {
            assert_eq!(CausalPath::from_name(p.name()), Some(p));
        }
        assert_eq!(CausalPath::from_name("no_such_path"), None);
    }

    #[test]
    fn identity_config_scales_to_one() {
        let st = CausalState::new(CausalConfig::identity());
        assert_eq!(st.scale(), (1, 1));
        assert!(CausalConfig::identity().is_identity());
    }

    #[test]
    fn subsystem_ratio_applies_to_innermost_span_only() {
        let cfg = CausalConfig::identity()
            .scale_subsystem(Subsystem::Translate, Ratio { num: 1, den: 2 });
        let mut st = CausalState::new(cfg);
        // Translate ratio is a *self-time* multiplier, but pushing a
        // Translate span also enters the TlbReload path (identity here).
        st.push(Subsystem::Translate);
        assert_eq!(st.scale(), (1, 2));
        // A nested HtabInsert span masks the Translate self-time ratio.
        st.push(Subsystem::HtabInsert);
        assert_eq!(st.scale(), (1, 1));
        st.pop();
        assert_eq!(st.scale(), (1, 2));
        st.pop();
        assert_eq!(st.scale(), (1, 1));
    }

    #[test]
    fn path_ratio_covers_the_whole_extent() {
        let cfg =
            CausalConfig::identity().scale_path(CausalPath::TlbReload, Ratio { num: 1, den: 4 });
        let mut st = CausalState::new(cfg);
        st.push(Subsystem::Translate);
        assert_eq!(st.scale(), (1, 4));
        // Nested spans stay inside the extent.
        st.push(Subsystem::HtabInsert);
        assert_eq!(st.scale(), (1, 4));
        // Nested re-entry of the same path does not square the ratio.
        st.push(Subsystem::Translate);
        assert_eq!(st.scale(), (1, 4));
        st.pop();
        st.pop();
        st.pop();
        assert_eq!(st.scale(), (1, 1));
    }

    #[test]
    fn subsystem_and_path_ratios_compose_multiplicatively() {
        let cfg = CausalConfig::identity()
            .scale_path(CausalPath::PageFault, Ratio { num: 1, den: 2 })
            .scale_subsystem(Subsystem::PageFault, Ratio { num: 3, den: 4 });
        let mut st = CausalState::new(cfg);
        st.push(Subsystem::PageFault);
        assert_eq!(st.scale(), (3, 8));
    }

    #[test]
    fn zero_ratio_reduces_to_zero_over_one() {
        let cfg = CausalConfig::identity().scale_path(CausalPath::Flush, Ratio::ZERO);
        let mut st = CausalState::new(cfg);
        st.push(Subsystem::Flush);
        assert_eq!(st.scale(), (0, 1));
    }

    #[test]
    fn explicit_path_mark_drives_rehash_extent() {
        let cfg =
            CausalConfig::identity().scale_path(CausalPath::HtabRehash, Ratio { num: 1, den: 10 });
        let mut st = CausalState::new(cfg);
        st.push(Subsystem::Mmtune);
        assert_eq!(st.scale(), (1, 1));
        st.path_mark(CausalPath::HtabRehash, true);
        assert_eq!(st.scale(), (1, 10));
        st.path_mark(CausalPath::HtabRehash, false);
        assert_eq!(st.scale(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_is_rejected() {
        CausalConfig::identity()
            .scale_path(CausalPath::Flush, Ratio { num: 1, den: 0 })
            .validate();
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_component_is_rejected() {
        Ratio {
            num: 100_000,
            den: 1,
        }
        .validate();
    }
}
