//! Scoped cycle attribution — the profiler half of the observability layer.
//!
//! The paper's method (§4) is "watch the counters, find the hot spot". The
//! end-of-run aggregates say *how many* events happened; this module says
//! *where the cycles went*: every cycle the machine charges while a
//! subsystem span is open is attributed to that subsystem's self-time, so a
//! run can print "34% hash insert, 21% flush" instead of a raw event count.
//!
//! Attribution is a state machine over the cycle ledger, not a sampling
//! profiler: the kernel brackets each code path with
//! [`Profiler::enter`]/[`Profiler::exit`], and the cycles the machine clock
//! advanced since the previous transition are credited to whatever subsystem
//! was on top of the span stack at the time (or [`Subsystem::User`] when no
//! span is open). Because the profiler only ever *reads* the clock, the
//! attribution sums to the total cycles of the window exactly, and a traced
//! run is cycle-identical to an untraced one.

use ppc_machine::Cycles;

/// The ~10-way subsystem taxonomy every charged cycle is bucketed into.
///
/// The discriminants index [`Profiler`]'s bucket array; [`Subsystem::ALL`]
/// and [`Subsystem::name`] are the single source of truth for iteration and
/// rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Subsystem {
    /// TLB-miss reload machinery: hash-table search, Linux page-table walk,
    /// handler invocation.
    Translate = 0,
    /// Hash-table insertion (the PTEG probe-and-displace path).
    HtabInsert = 1,
    /// TLB / hash-table flushes, per-page and whole-context.
    Flush = 2,
    /// Real page faults: demand-zero, file-backed, and COW population.
    PageFault = 3,
    /// Reclaim machinery: idle zombie sweeps, direct reclaim, the OOM scan.
    Reclaim = 4,
    /// Scheduler body and context-switch state save/restore.
    Sched = 5,
    /// Syscall entry/dispatch/exit overhead (not the bodies, which are
    /// attributed to their own subsystems).
    Syscall = 6,
    /// Signal queueing, frame setup, delivery and sigreturn.
    Signal = 7,
    /// The idle loop itself plus idle page clearing.
    Idle = 8,
    /// Process creation and exec image setup.
    Exec = 9,
    /// The performance-monitor interrupt handler (sampling overhead — the
    /// one observability path that *does* cost cycles).
    Pmu = 10,
    /// Adaptive MMU retune work ([`crate::tune`]): BAT programming, hash
    /// table rehashes, scatter updates — the control loop's charged cost.
    Mmtune = 11,
    /// Everything else: user-mode compute, pipe/file bodies, unbracketed
    /// kernel work.
    User = 12,
}

/// Number of subsystems (size of the bucket array).
pub const NUM_SUBSYSTEMS: usize = 13;

impl Subsystem {
    /// Every subsystem, in bucket order.
    pub const ALL: [Subsystem; NUM_SUBSYSTEMS] = [
        Subsystem::Translate,
        Subsystem::HtabInsert,
        Subsystem::Flush,
        Subsystem::PageFault,
        Subsystem::Reclaim,
        Subsystem::Sched,
        Subsystem::Syscall,
        Subsystem::Signal,
        Subsystem::Idle,
        Subsystem::Exec,
        Subsystem::Pmu,
        Subsystem::Mmtune,
        Subsystem::User,
    ];

    /// Stable machine-readable name (used in metrics.json and tables).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Translate => "translate",
            Subsystem::HtabInsert => "htab_insert",
            Subsystem::Flush => "flush",
            Subsystem::PageFault => "page_fault",
            Subsystem::Reclaim => "reclaim",
            Subsystem::Sched => "sched",
            Subsystem::Syscall => "syscall",
            Subsystem::Signal => "signal",
            Subsystem::Idle => "idle",
            Subsystem::Exec => "exec",
            Subsystem::Pmu => "pmu",
            Subsystem::Mmtune => "mmtune",
            Subsystem::User => "user",
        }
    }

    /// Parses a [`Subsystem::name`] back to the subsystem.
    pub fn from_name(name: &str) -> Option<Subsystem> {
        Subsystem::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// Self-time cycle attribution over a span stack.
///
/// # Examples
///
/// ```
/// use kernel_sim::prof::{Profiler, Subsystem};
///
/// let mut p = Profiler::new(0);
/// p.enter(Subsystem::Flush, 10);   // cycles 0..10 were user time
/// p.exit(30);                      // cycles 10..30 belong to the flush
/// p.finish(35);                    // trailing 5 are user time again
/// assert_eq!(p.self_cycles(Subsystem::Flush), 20);
/// assert_eq!(p.self_cycles(Subsystem::User), 15);
/// assert_eq!(p.total(), 35);
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    buckets: [Cycles; NUM_SUBSYSTEMS],
    stack: Vec<Subsystem>,
    last: Cycles,
    start: Cycles,
}

impl Profiler {
    /// A profiler whose window starts at cycle `now`.
    pub fn new(now: Cycles) -> Self {
        Self {
            buckets: [0; NUM_SUBSYSTEMS],
            stack: Vec::with_capacity(16),
            last: now,
            start: now,
        }
    }

    /// Credits the cycles since the last transition to the current top of
    /// stack (or [`Subsystem::User`] when no span is open).
    fn attribute(&mut self, now: Cycles) {
        let cur = *self.stack.last().unwrap_or(&Subsystem::User);
        self.buckets[cur as usize] += now.saturating_sub(self.last);
        self.last = now;
    }

    /// Opens a span for `s` at cycle `now`.
    pub fn enter(&mut self, s: Subsystem, now: Cycles) {
        self.attribute(now);
        self.stack.push(s);
    }

    /// Closes the innermost span at cycle `now`.
    pub fn exit(&mut self, now: Cycles) {
        self.attribute(now);
        self.stack.pop();
    }

    /// Flushes the tail of the window up to cycle `now` (call before
    /// reading the buckets; idempotent).
    pub fn finish(&mut self, now: Cycles) {
        self.attribute(now);
    }

    /// Self-time cycles attributed to `s` so far.
    pub fn self_cycles(&self, s: Subsystem) -> Cycles {
        self.buckets[s as usize]
    }

    /// Sum of every bucket — equals the cycles elapsed in the window after
    /// [`Profiler::finish`].
    pub fn total(&self) -> Cycles {
        self.buckets.iter().sum()
    }

    /// The cycle the window started at.
    pub fn window_start(&self) -> Cycles {
        self.start
    }

    /// Current span-stack depth (0 = user time).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The current span stack, outermost first (a read-only view for
    /// observers like the tail-forensics capture).
    pub fn stack(&self) -> &[Subsystem] {
        &self.stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_sums_to_window() {
        let mut p = Profiler::new(100);
        p.enter(Subsystem::Translate, 110);
        p.enter(Subsystem::HtabInsert, 120); // nested
        p.exit(150);
        p.exit(160);
        p.finish(200);
        assert_eq!(p.self_cycles(Subsystem::User), 10 + 40);
        assert_eq!(p.self_cycles(Subsystem::Translate), 10 + 10);
        assert_eq!(p.self_cycles(Subsystem::HtabInsert), 30);
        assert_eq!(p.total(), 100);
    }

    #[test]
    fn nested_spans_credit_self_time_only() {
        let mut p = Profiler::new(0);
        p.enter(Subsystem::PageFault, 0);
        p.enter(Subsystem::Translate, 50);
        p.exit(70);
        p.exit(100);
        p.finish(100);
        assert_eq!(p.self_cycles(Subsystem::PageFault), 80);
        assert_eq!(p.self_cycles(Subsystem::Translate), 20);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut p = Profiler::new(0);
        p.enter(Subsystem::Idle, 0);
        p.exit(40);
        p.finish(60);
        p.finish(60);
        assert_eq!(p.total(), 60);
    }

    #[test]
    fn names_and_all_agree() {
        assert_eq!(Subsystem::ALL.len(), NUM_SUBSYSTEMS);
        let mut names: Vec<&str> = Subsystem::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_SUBSYSTEMS, "names must be unique");
        for (i, s) in Subsystem::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i, "ALL must be in bucket order");
        }
    }
}
