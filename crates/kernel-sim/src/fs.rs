//! Files and the page cache.

use ppc_mmu::addr::{PhysAddr, PAGE_SIZE};

use crate::errors::{KResult, KernelError};
use crate::kernel::Kernel;
use crate::layout::{pa_to_kva, KernelPath};

/// Outcome of a page-cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageCacheLookup {
    /// The page is resident in the cache at this frame.
    Present(PhysAddr),
    /// The page belongs to the file but was evicted under memory pressure;
    /// it must be refilled before use.
    Evicted,
    /// The offset lies beyond the last page of the file.
    PastEof,
}

/// A file backed by the page cache.
#[derive(Debug, Clone)]
pub struct File {
    /// Page-cache frames, one slot per file page. `None` means the page was
    /// evicted under memory pressure and refills on next use.
    pub pages: Vec<Option<PhysAddr>>,
    /// File size in bytes.
    pub size: u32,
}

impl File {
    /// Looks up the page-cache frame holding byte `offset`.
    pub fn page_at(&self, offset: u32) -> PageCacheLookup {
        match self.pages.get((offset / PAGE_SIZE) as usize) {
            Some(Some(pa)) => PageCacheLookup::Present(*pa),
            Some(None) => PageCacheLookup::Evicted,
            None => PageCacheLookup::PastEof,
        }
    }

    /// Resident page-cache frames.
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }
}

impl Kernel {
    /// Creates a fully cached file of `bytes` (rounded up to pages).
    /// Page-cache population is not charged — LmBench's reread benchmark
    /// measures the warm case. Fails with `ENOMEM` when even reclaim cannot
    /// find frames; file creation never invokes the OOM killer (the page
    /// cache is the first thing sacrificed to pressure, so it must not kill
    /// tasks to grow).
    pub fn create_file(&mut self, bytes: u32) -> KResult<usize> {
        let pages = bytes.div_ceil(PAGE_SIZE);
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            frames.push(Some(self.alloc_page_cache_frame()?));
        }
        self.files.push(File {
            pages: frames,
            size: bytes,
        });
        Ok(self.files.len() - 1)
    }

    /// A frame for the page cache: the free list first, then the pressure
    /// path short of the OOM killer.
    pub(crate) fn alloc_page_cache_frame(&mut self) -> KResult<PhysAddr> {
        loop {
            if let Some((pa, _)) = self.frames.get_free_page() {
                return Ok(pa);
            }
            if self.memory_pressure_reclaim() == 0 {
                return Err(KernelError::OutOfMemory);
            }
        }
    }

    /// Refills an evicted page-cache page (a simulated disk read: the fs
    /// path plus a fresh frame; no rotational latency is modelled).
    pub(crate) fn page_cache_fill(&mut self, file: usize, offset: u32) -> KResult<PhysAddr> {
        let insns = self.paths.file_per_page;
        self.run_kernel_path(KernelPath::File, insns);
        let pa = self.get_free_page_charged(false)?;
        self.files[file].pages[(offset / PAGE_SIZE) as usize] = Some(pa);
        Ok(pa)
    }

    /// `read(fd, buf, len)` at `offset`: page-cache lookup plus a copy to
    /// user memory for each page. Like the real syscall, reads truncate at
    /// end of file; the returned value is the byte count actually read.
    /// Evicted page-cache pages are refilled (and charged) on demand, and a
    /// fault on the user buffer propagates (it can kill the task).
    pub fn sys_read(&mut self, file: usize, offset: u32, user_ea: u32, len: u32) -> KResult<u32> {
        self.syscall_entry();
        let avail = self.files[file].size.saturating_sub(offset);
        let len = len.min(avail);
        let mut done = 0;
        while done < len {
            let off = offset + done;
            let page_off = off % PAGE_SIZE;
            let chunk = (PAGE_SIZE - page_off).min(len - done);
            // Page-cache lookup and fs bookkeeping: the inode, the
            // page-cache hash chain, and the buffer head are distinct
            // slab-resident structures.
            let insns = self.paths.file_per_page;
            self.run_kernel_path(KernelPath::File, insns);
            self.kmeta_ref(0x100 + file as u32, false);
            self.kmeta_ref(0x9000 + (file as u32) * 331 + off / PAGE_SIZE, false);
            let page = match self.files[file].page_at(off) {
                PageCacheLookup::Present(pa) => pa,
                PageCacheLookup::Evicted => self.page_cache_fill(file, off)?,
                PageCacheLookup::PastEof => unreachable!("read truncated at EOF"),
            };
            self.mem_map_ref(page, false);
            // Copy page-cache -> user buffer, one reference per line each side.
            let line = 32;
            let mut o = 0;
            while o < chunk {
                self.data_ref(pa_to_kva(page + page_off + o), false)?;
                self.data_ref(ppc_mmu::addr::EffectiveAddress(user_ea + done + o), true)?;
                // Per-word copy-loop pipeline work for the rest of the line.
                self.machine.charge(10);
                o += line;
            }
            done += chunk;
        }
        self.syscall_exit();
        Ok(len)
    }
}
