//! Files and the page cache.

use ppc_mmu::addr::{PhysAddr, PAGE_SIZE};

use crate::kernel::Kernel;
use crate::layout::{pa_to_kva, KernelPath};

/// A file whose contents are resident in the page cache.
#[derive(Debug, Clone)]
pub struct File {
    /// Page-cache frames, one per file page.
    pub pages: Vec<PhysAddr>,
    /// File size in bytes.
    pub size: u32,
}

impl File {
    /// The page-cache frame holding byte `offset`, if within the file.
    pub fn page_at(&self, offset: u32) -> Option<PhysAddr> {
        self.pages.get((offset / PAGE_SIZE) as usize).copied()
    }
}

impl Kernel {
    /// Creates a fully cached file of `bytes` (rounded up to pages).
    /// Page-cache population is not charged — LmBench's reread benchmark
    /// measures the warm case.
    pub fn create_file(&mut self, bytes: u32) -> usize {
        let pages = bytes.div_ceil(PAGE_SIZE);
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            let (pa, _) = self.frames.get_free_page().expect("out of memory for file");
            frames.push(pa);
        }
        self.files.push(File {
            pages: frames,
            size: bytes,
        });
        self.files.len() - 1
    }

    /// `read(fd, buf, len)` at `offset`: page-cache lookup plus a copy to
    /// user memory for each page.
    ///
    /// # Panics
    ///
    /// Panics if the read extends past end of file.
    pub fn sys_read(&mut self, file: usize, offset: u32, user_ea: u32, len: u32) {
        self.syscall_entry();
        let mut done = 0;
        while done < len {
            let off = offset + done;
            let page_off = off % PAGE_SIZE;
            let chunk = (PAGE_SIZE - page_off).min(len - done);
            // Page-cache lookup and fs bookkeeping: the inode, the
            // page-cache hash chain, and the buffer head are distinct
            // slab-resident structures.
            let insns = self.paths.file_per_page;
            self.run_kernel_path(KernelPath::File, insns);
            self.kmeta_ref(0x100 + file as u32, false);
            self.kmeta_ref(0x9000 + (file as u32) * 331 + off / PAGE_SIZE, false);
            let page = self.files[file].page_at(off).expect("read past EOF");
            self.mem_map_ref(page, false);
            // Copy page-cache -> user buffer, one reference per line each side.
            let line = 32;
            let mut o = 0;
            while o < chunk {
                self.data_ref(pa_to_kva(page + page_off + o), false);
                self.data_ref(ppc_mmu::addr::EffectiveAddress(user_ea + done + o), true);
                // Per-word copy-loop pipeline work for the rest of the line.
                self.machine.charge(10);
                o += line;
            }
            done += chunk;
        }
        self.syscall_exit();
    }
}
