//! The idle task — the paper's title optimization.
//!
//! When the CPU has nothing to run, the idle task (paper §7, §9):
//!
//! 1. scans a few hash-table groups and physically invalidates zombie PTEs
//!    (valid bit set, VSID retired), so the reload code finds empty slots
//!    instead of evicting live entries, and
//! 2. clears free pages so `get_free_page()` can skip the clear on the
//!    demand path — through the cache (the §9 pessimization) or with the
//!    cache inhibited (the win).

use ppc_machine::Cycles;

use crate::kernel::Kernel;
use crate::layout::KernelPath;
use crate::prof::Subsystem;
use crate::trace::TraceEvent;

/// PTEG groups scanned per idle-loop iteration.
pub const RECLAIM_GROUPS_PER_STEP: u32 = 8;

impl Kernel {
    /// Runs the idle task for (at least) `budget` cycles — called by
    /// workloads whenever the simulated system would be waiting for I/O or
    /// has an empty run queue.
    pub fn run_idle(&mut self, budget: Cycles) {
        self.t_event(|| TraceEvent::Idle { budget });
        self.t_enter(Subsystem::Idle);
        let start = self.machine.cycles;
        let end = start + budget;
        // Upper bounds on one step of each duty, so a step is only started
        // if it fits in the remaining stall (the real idle task is simply
        // preempted; the budget models the end of the I/O wait).
        const RECLAIM_STEP_BOUND: Cycles = 4_000;
        const CLEAR_STEP_BOUND: Cycles = 12_000;
        while self.machine.cycles < end {
            let before = self.machine.cycles;
            // The idle loop body itself. With the §10.1 cache lock the loop
            // runs out of locked lines and costs pure pipeline cycles.
            if self.cfg.idle_cache_lock {
                self.machine.charge(8);
            } else {
                self.run_kernel_path(KernelPath::Idle, 8);
            }
            if self.cfg.idle_reclaim {
                let remaining = end.saturating_sub(self.machine.cycles);
                if remaining > RECLAIM_STEP_BOUND {
                    self.idle_reclaim_step();
                }
            }
            if self.cfg.page_clearing.idle_clears() {
                let remaining = end.saturating_sub(self.machine.cycles);
                if remaining > CLEAR_STEP_BOUND {
                    self.idle_clear_step();
                }
            }
            // Guarantee forward progress even if every duty was a no-op.
            // This is a *wait*, not work: the stall models an I/O delay
            // whose duration the CPU cannot shorten, so it bypasses any
            // causal charge scale — virtually zeroing the idle task makes
            // its duties free (more of them fit in the same stall) without
            // making the device answer sooner, which is exactly the §9
            // "optimizing the idle task buys nothing" counterfactual
            // E-CAUSAL quantifies. (Unscaled runs never notice: the loop
            // body above always charges, so this arm is dormant.)
            if self.machine.cycles == before {
                self.machine.wait(16);
            }
        }
        self.stats.idle_cycles += self.machine.cycles - start;
        self.t_exit();
    }

    /// One reclaim step: scan [`RECLAIM_GROUPS_PER_STEP`] PTEGs, clearing
    /// the valid bit of every zombie. "All data structures used to keep
    /// track … are lock free and interrupts are left enabled" (§9) — the
    /// step is small so the idle task can be preempted between steps.
    pub fn idle_reclaim_step(&mut self) {
        // Nothing retired since the last full sweep: no zombies to find.
        if self.reclaim_scan_credit == 0 {
            return;
        }
        self.reclaim_scan_credit = self
            .reclaim_scan_credit
            .saturating_sub(RECLAIM_GROUPS_PER_STEP);
        // The scan is cache-inhibited when the idle task is locked out of
        // the cache (§10.1), else it goes through the D-cache.
        let cached = self.cfg.htab_cached && !self.cfg.idle_cache_lock;
        self.reclaim_chunk(RECLAIM_GROUPS_PER_STEP, cached);
    }

    /// Scans `groups` PTEGs from the reclaim cursor, invalidating zombies
    /// and charging the slot reads. Shared by the idle-task scan and the
    /// §7-rejected on-scarcity reclaim. Returns `(scanned, cleared)` slots.
    pub(crate) fn reclaim_chunk(&mut self, groups: u32, cached: bool) -> (u32, u32) {
        self.t_enter(Subsystem::Reclaim);
        let start_group = self.htab.reclaim_cursor();
        let vsids = &self.vsids;
        let (scanned, cleared) = self
            .htab
            .reclaim_zombies(groups, |vsid| vsids.is_live(vsid));
        self.stats.idle_groups_scanned += (scanned / 8) as u64;
        // Charge the slot reads at the addresses actually scanned, plus the
        // valid-bit writes for cleared zombies.
        let base = self.htab.slot_pa(start_group, 0);
        let mut cost: Cycles = 0;
        for i in 0..scanned {
            cost += self.machine.mem.data_read(base + i * 8, cached);
        }
        cost += cleared as Cycles * 2;
        self.machine.charge(cost);
        self.t_event(|| TraceEvent::Reclaim { scanned, cleared });
        self.t_exit();
        (scanned, cleared)
    }

    /// One page-clearing step: take a dirty free frame, clear it per policy,
    /// and (policy permitting) remember it on the pre-cleared list.
    pub fn idle_clear_step(&mut self) {
        let Some(pa) = self.frames.take_frame_for_idle_clear() else {
            return;
        };
        if self.cfg.page_clearing.through_cache() {
            // Cached stores: every line fills, dirties, and displaces a
            // line of whatever the workload had cached — §9's pessimization.
            self.machine.zero_page_stores_pa(pa);
        } else {
            self.machine.zero_page_pa(pa, false);
        }
        self.phys.zero_page(pa);
        self.stats.idle_pages_cleared += 1;
        if self.cfg.page_clearing.uses_list() {
            self.frames.deposit_precleared(pa);
        } else {
            self.frames.return_uncleared(pa);
        }
    }
}
