//! The ftrace-style event tracer: a fixed-capacity ring of cycle-stamped
//! kernel events, log2-bucket latency histograms, per-PTEG heatmaps, and a
//! Chrome `trace_event` exporter.
//!
//! Tracing is **purely observational**: no code in this module (or in the
//! instrumentation hooks that feed it) ever calls `Machine::charge` or
//! touches the cache/TLB state, so a traced run is bit-identical — same
//! cycle totals, same [`crate::stats::KernelStats`] — to an untraced one.
//! When [`crate::kconfig::KernelConfig::trace`] is off the kernel carries no
//! tracer at all and every hook is a single `Option` test.

use ppc_machine::Cycles;

use crate::prof::Profiler;
use crate::task::Pid;

/// Default ring capacity (events kept) when tracing is enabled.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One kernel event, in the taxonomy the exporters understand.
///
/// Each variant corresponds to a hot path of the simulated kernel; the
/// payload is what the paper's §4 measurement loop would want to know about
/// that event (which PTEG, how many pages, which task).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A TLB miss entered the reload machinery.
    TlbMiss {
        /// Faulting effective address.
        ea: u32,
        /// Whether the address is kernel-side (the §5.1 footprint).
        kernel: bool,
    },
    /// A PTE was inserted into the hash table.
    HtabInsert {
        /// Primary-or-secondary PTEG the entry landed in.
        pteg: u32,
        /// Whether a valid entry was displaced (collision).
        evicted: bool,
    },
    /// A per-page TLB/hash-table flush ran.
    Flush {
        /// Pages flushed (1 for the per-page primitive).
        pages: u32,
    },
    /// A whole context was retired (VSID bump or eager scan).
    ContextBump,
    /// A real page fault was serviced.
    PageFault {
        /// Faulting effective address.
        ea: u32,
    },
    /// A protection fault broke copy-on-write sharing.
    CowFault {
        /// Faulting effective address.
        ea: u32,
    },
    /// The scheduler switched address spaces.
    CtxSwitch {
        /// PID of the incoming task.
        to: Pid,
    },
    /// A signal was delivered (caught roundtrip or fatal).
    Signal {
        /// Whether delivery killed the task.
        fatal: bool,
    },
    /// A syscall entered the kernel.
    Syscall,
    /// A reclaim sweep scanned PTEGs for zombies.
    Reclaim {
        /// Slots scanned.
        scanned: u32,
        /// Zombie entries invalidated.
        cleared: u32,
    },
    /// The OOM killer reaped a task.
    OomKill {
        /// PID of the victim.
        victim: Pid,
    },
    /// The idle task ran a stall window.
    Idle {
        /// Cycle budget of the stall.
        budget: u64,
    },
    /// A performance-monitor sampling interrupt fired.
    PmuSample {
        /// Subsystem on top of the span stack when the counter went
        /// negative.
        sub: crate::prof::Subsystem,
        /// Whole sampling periods this sample stands for (>1 when the
        /// counter ran several periods past negative before the next
        /// serviceable boundary).
        weight: u32,
    },
    /// The mmtune controller applied a retune decision.
    Retune {
        /// The knob that moved.
        knob: crate::tune::TuneKnob,
        /// Knob value before (groups, scatter constant, or 0/1 for BATs).
        from: u32,
        /// Knob value after.
        to: u32,
    },
}

impl TraceEvent {
    /// Stable event name (Chrome trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TlbMiss { .. } => "tlb_miss",
            TraceEvent::HtabInsert { .. } => "htab_insert",
            TraceEvent::Flush { .. } => "flush",
            TraceEvent::ContextBump => "context_bump",
            TraceEvent::PageFault { .. } => "page_fault",
            TraceEvent::CowFault { .. } => "cow_fault",
            TraceEvent::CtxSwitch { .. } => "ctx_switch",
            TraceEvent::Signal { .. } => "signal",
            TraceEvent::Syscall => "syscall",
            TraceEvent::Reclaim { .. } => "reclaim",
            TraceEvent::OomKill { .. } => "oom_kill",
            TraceEvent::Idle { .. } => "idle",
            TraceEvent::PmuSample { .. } => "pmu_sample",
            TraceEvent::Retune { .. } => "retune",
        }
    }

    /// The event payload as a deterministic JSON object (Chrome `args`).
    pub fn args_json(&self) -> String {
        match self {
            TraceEvent::TlbMiss { ea, kernel } => {
                format!("{{\"ea\":{ea},\"kernel\":{kernel}}}")
            }
            TraceEvent::HtabInsert { pteg, evicted } => {
                format!("{{\"pteg\":{pteg},\"evicted\":{evicted}}}")
            }
            TraceEvent::Flush { pages } => format!("{{\"pages\":{pages}}}"),
            TraceEvent::ContextBump => "{}".to_string(),
            TraceEvent::PageFault { ea } | TraceEvent::CowFault { ea } => {
                format!("{{\"ea\":{ea}}}")
            }
            TraceEvent::CtxSwitch { to } => format!("{{\"to\":{to}}}"),
            TraceEvent::Signal { fatal } => format!("{{\"fatal\":{fatal}}}"),
            TraceEvent::Syscall => "{}".to_string(),
            TraceEvent::Reclaim { scanned, cleared } => {
                format!("{{\"scanned\":{scanned},\"cleared\":{cleared}}}")
            }
            TraceEvent::OomKill { victim } => format!("{{\"victim\":{victim}}}"),
            TraceEvent::Idle { budget } => format!("{{\"budget\":{budget}}}"),
            TraceEvent::PmuSample { sub, weight } => {
                format!("{{\"sub\":\"{}\",\"weight\":{weight}}}", sub.name())
            }
            TraceEvent::Retune { knob, from, to } => {
                format!("{{\"knob\":\"{}\",\"from\":{from},\"to\":{to}}}", knob.name())
            }
        }
    }
}

/// A ring record: the event plus its cycle stamp and the task it happened
/// under (0 = no current task / the kernel itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle-ledger stamp at the time of the event.
    pub cycle: Cycles,
    /// PID of the current task, or 0.
    pub pid: Pid,
    /// The event.
    pub event: TraceEvent,
}

/// Fixed-capacity ring buffer keeping the newest `capacity` records —
/// exactly ftrace's overwrite-oldest policy.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Next write position (wraps).
    head: usize,
    /// Total records ever pushed (so `dropped = pushed - len`).
    pushed: u64,
}

impl TraceRing {
    /// An empty ring keeping at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Appends a record, overwriting the oldest when full.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
        }
        self.head = (self.head + 1) % self.capacity;
        self.pushed += 1;
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.buf.len() as u64
    }

    /// Iterates records oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let split = if self.buf.len() < self.capacity {
            0
        } else {
            self.head
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

/// Number of log2 buckets: bucket `i` holds values in `[2^i, 2^(i+1))`
/// (value 0 shares bucket 0 with value 1).
pub const HIST_BUCKETS: usize = 32;

/// A log2-bucket latency histogram with percentile readout.
///
/// Percentiles are resolved to the **upper bound** of the bucket containing
/// the requested rank (`2^(i+1) - 1`), i.e. a conservative "no more than"
/// figure — the right direction to be wrong in for a latency budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (63 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0 < p <= 100`), as the upper bound of the
    /// bucket holding that rank; 0 when empty.
    pub fn percentile(&self, p: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * p as u64).div_ceil(100).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                // Upper bound of bucket i, clamped to the observed max.
                let hi = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// `(p50, p90, p99)` shorthand.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.percentile(50), self.percentile(90), self.percentile(99))
    }

    /// The raw bucket counts (bucket `i` covers `[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }
}

/// The latency paths the tracer keeps histograms for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyPath {
    /// One TLB-miss reload, entry to resolution.
    TlbReload,
    /// One page fault, entry to mapped-and-returned.
    PageFault,
    /// One signal delivery (caught roundtrip or fatal teardown).
    Signal,
}

impl LatencyPath {
    /// Every path, in export order.
    pub const ALL: [LatencyPath; 3] = [
        LatencyPath::TlbReload,
        LatencyPath::PageFault,
        LatencyPath::Signal,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LatencyPath::TlbReload => "tlb_reload",
            LatencyPath::PageFault => "page_fault",
            LatencyPath::Signal => "signal_delivery",
        }
    }
}

/// The complete tracing state a traced kernel carries: event ring, cycle
/// profiler, latency histograms and per-PTEG heat counters.
#[derive(Debug, Clone)]
pub struct Tracer {
    /// The event ring.
    pub ring: TraceRing,
    /// Subsystem cycle attribution.
    pub prof: Profiler,
    /// One histogram per [`LatencyPath`].
    lat: [Histogram; 3],
    /// Hash-table inserts per PTEG (heatmap numerator).
    pub pteg_inserts: Vec<u32>,
    /// Inserts per PTEG that displaced a valid entry (collision heat).
    pub pteg_collisions: Vec<u32>,
}

impl Tracer {
    /// A fresh tracer for a hash table of `groups` PTEGs, with the default
    /// ring capacity, starting its attribution window at cycle `now`.
    pub fn new(groups: u32, now: Cycles) -> Self {
        Self::with_capacity(groups, now, DEFAULT_RING_CAPACITY)
    }

    /// As [`Tracer::new`] with an explicit ring capacity.
    pub fn with_capacity(groups: u32, now: Cycles, capacity: usize) -> Self {
        Self {
            ring: TraceRing::new(capacity),
            prof: Profiler::new(now),
            lat: [Histogram::new(); 3],
            pteg_inserts: vec![0; groups as usize],
            pteg_collisions: vec![0; groups as usize],
        }
    }

    /// Re-sizes the PTEG heat counters (used when a test swaps in a
    /// different hash table after boot).
    pub fn resize_groups(&mut self, groups: u32) {
        self.pteg_inserts = vec![0; groups as usize];
        self.pteg_collisions = vec![0; groups as usize];
    }

    /// Records a latency sample for `path`.
    pub fn record_latency(&mut self, path: LatencyPath, cycles: Cycles) {
        let i = match path {
            LatencyPath::TlbReload => 0,
            LatencyPath::PageFault => 1,
            LatencyPath::Signal => 2,
        };
        self.lat[i].record(cycles);
    }

    /// The histogram for `path`.
    pub fn latency(&self, path: LatencyPath) -> &Histogram {
        match path {
            LatencyPath::TlbReload => &self.lat[0],
            LatencyPath::PageFault => &self.lat[1],
            LatencyPath::Signal => &self.lat[2],
        }
    }

    /// Counts a hash-table insert into `pteg` (and a collision when
    /// `evicted`).
    pub fn count_htab_insert(&mut self, pteg: u32, evicted: bool) {
        if let Some(n) = self.pteg_inserts.get_mut(pteg as usize) {
            *n += 1;
        }
        if evicted {
            if let Some(n) = self.pteg_collisions.get_mut(pteg as usize) {
                *n += 1;
            }
        }
    }

    /// Renders the ring as Chrome `trace_event` JSON (the object form, with
    /// a `traceEvents` array of instant events). Timestamps are the cycle
    /// stamps themselves — deterministic across runs — so the time axis in
    /// `chrome://tracing` / Perfetto reads in simulated cycles, not µs.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(self.ring.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"kernel-sim\"}}",
        );
        for rec in self.ring.iter() {
            out.push(',');
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{}}}",
                rec.event.name(),
                rec.cycle,
                rec.pid,
                rec.event.args_json()
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64) -> TraceRecord {
        TraceRecord {
            cycle,
            pid: 1,
            event: TraceEvent::Syscall,
        }
    }

    #[test]
    fn ring_keeps_newest_n() {
        let mut r = TraceRing::new(4);
        for c in 0..11u64 {
            r.push(rec(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_pushed(), 11);
        assert_eq!(r.dropped(), 7);
        let cycles: Vec<u64> = r.iter().map(|x| x.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9, 10], "newest 4, oldest first");
    }

    #[test]
    fn ring_partial_fill_iterates_in_order() {
        let mut r = TraceRing::new(8);
        for c in 0..3u64 {
            r.push(rec(c));
        }
        let cycles: Vec<u64> = r.iter().map(|x| x.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn histogram_percentiles_on_known_inputs() {
        // 100 samples of value 10: every percentile lands in bucket [8, 15].
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(10);
        }
        assert_eq!(h.percentile(50), 10, "clamped to the observed max");
        assert_eq!(h.percentile(99), 10);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 10);

        // 1..=1000: rank 500 is value 500, in bucket [256, 511] -> 511.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(50), 511);
        // rank 900 -> value 900, bucket [512, 1023], clamped to max 1000.
        assert_eq!(h.percentile(90), 1000);
        assert_eq!(h.percentile(99), 1000);
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_and_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.min(), 0);
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.percentile(99), 0, "single zero sample");
    }

    #[test]
    fn pteg_counters_track_inserts_and_collisions() {
        let mut t = Tracer::new(8, 0);
        t.count_htab_insert(3, false);
        t.count_htab_insert(3, true);
        t.count_htab_insert(7, true);
        assert_eq!(t.pteg_inserts[3], 2);
        assert_eq!(t.pteg_collisions[3], 1);
        assert_eq!(t.pteg_collisions[7], 1);
        assert_eq!(t.pteg_inserts.iter().sum::<u32>(), 3);
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Tracer::new(4, 0);
        t.ring.push(TraceRecord {
            cycle: 42,
            pid: 7,
            event: TraceEvent::HtabInsert {
                pteg: 3,
                evicted: true,
            },
        });
        let j = t.chrome_trace_json();
        assert!(j.starts_with("{\"displayTimeUnit\""));
        assert!(j.contains("\"traceEvents\":["));
        assert!(j.contains("\"name\":\"htab_insert\""));
        assert!(j.contains("\"ts\":42"));
        assert!(j.contains("\"pteg\":3"));
        assert!(j.ends_with("]}"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "braces balance"
        );
    }
}
