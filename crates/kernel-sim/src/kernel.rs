//! The kernel proper: state, boot, and the translate-and-access engine.

use ppc_machine::{Cycles, Machine, MachineConfig};
use ppc_mmu::addr::{EffectiveAddress, PhysAddr, VirtualAddress, PAGE_SIZE};
use ppc_mmu::bat::BatEntry;
use ppc_mmu::htab::HashTable;
use ppc_mmu::translate::{AccessType, Translation};

use crate::errors::KResult;
use crate::fs::File;
use crate::hostprof;
use crate::inject::FaultInjector;
use crate::kconfig::{HandlerStyle, KernelConfig};
use crate::layout::{
    self, is_io, is_kernel_linear, is_user, pa_to_kva, HTAB_GROUPS, HTAB_PA, IO_BYTES,
    IO_VIRT_BASE, RAM_BYTES,
};
use crate::linuxpt::LinuxPageTables;
use crate::physmem::{FrameAllocator, PhysMem};
use crate::pipe::Pipe;
use crate::pmu::PmuState;
use crate::prof::Subsystem;
use crate::stats::KernelStats;
use crate::task::{Pid, Task};
use crate::telemetry::{MmuReadings, Telemetry};
use crate::trace::{LatencyPath, TraceEvent, TraceRecord, Tracer};
use crate::tune::{Mmtune, RetuneDecision, TuneAction, TuneInputs, TuneKnob};
use crate::vsid::{is_kernel_vsid, kernel_vsid, VsidAllocator};

/// Per-path instruction counts: how long each kernel code path is.
///
/// Two presets correspond to the paper's "original" and hand-tuned kernels;
/// the comparison-OS models (Table 3) install their own, heavier values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLengths {
    /// Syscall entry + dispatch + exit.
    pub syscall: u32,
    /// Scheduler pick + context-switch body.
    pub sched: u32,
    /// Hand-written assembly TLB-reload handler body.
    pub fault_asm: u32,
    /// C reload / page-fault handler body (MMU on).
    pub fault_c: u32,
    /// One pipe read or write.
    pub pipe_op: u32,
    /// File-read path per page (page-cache lookup etc.).
    pub file_per_page: u32,
    /// mmap/munmap fixed part.
    pub mm_op: u32,
    /// mmap/munmap per-page part (PTE setup / teardown).
    pub mm_per_page: u32,
    /// Per-page TLB/hash-table flush path (the C `flush_hash_page` walk).
    pub flush_per_page: u32,
    /// Process creation (fork+exec-lite).
    pub spawn: u32,
    /// Extra kernel entries/exits per IPC operation (microkernel message
    /// hops; 0 for a monolithic kernel).
    pub ipc_hops: u32,
    /// Data copies each pipe byte suffers per side (1 = direct kernel
    /// buffer; 2 models a user-level server double copy).
    pub pipe_copies: u32,
    /// Extra path run per ring-buffer fill/drain during bulk transfers
    /// (wakeup/select bookkeeping; for the Mach systems, the per-buffer
    /// VM/IPC machinery that dominates their pipe bandwidth).
    pub pipe_chunk_insns: u32,
    /// Signal delivery path (queueing, frame setup, sigreturn).
    pub signal: u32,
}

impl PathLengths {
    /// The hand-tuned optimized kernel's path lengths.
    pub fn tuned() -> Self {
        Self {
            syscall: 180,
            sched: 550,
            fault_asm: 14,
            fault_c: 300,
            pipe_op: 1100,
            file_per_page: 800,
            mm_op: 1500,
            mm_per_page: 12,
            flush_per_page: 40,
            spawn: 2500,
            ipc_hops: 0,
            pipe_copies: 1,
            pipe_chunk_insns: 400,
            signal: 300,
        }
    }

    /// The original (pre-optimization) kernel's path lengths: generic
    /// save-everything exception code and untuned C paths.
    pub fn original() -> Self {
        Self {
            syscall: 2000,
            sched: 2500,
            fault_asm: 40,
            fault_c: 520,
            pipe_op: 2200,
            file_per_page: 1400,
            mm_op: 2500,
            mm_per_page: 30,
            flush_per_page: 150,
            spawn: 4200,
            ipc_hops: 0,
            pipe_copies: 1,
            pipe_chunk_insns: 1200,
            signal: 1100,
        }
    }

    /// Path lengths implied by a kernel configuration.
    pub fn for_config(cfg: &KernelConfig) -> Self {
        match cfg.handler {
            HandlerStyle::FastAsm => Self::tuned(),
            HandlerStyle::SlowC => Self::original(),
        }
    }
}

/// Physical address of the assembly exception stubs (the first page of
/// kernel text holds the vectors, as on real hardware).
pub const HANDLER_STUB_PA: PhysAddr = 0x3000;

/// Instructions of performance-monitor interrupt handler body: read the
/// SIAR-equivalent state, store the sample record, re-arm PMC1. Charged (on
/// top of exception entry/exit) for every delivered sampling interrupt —
/// sampling is the one observability feature that is *not* free.
pub const PM_HANDLER_INSNS: u32 = 120;

/// The simulated kernel.
///
/// Owns the machine, all physical memory, the hash table, the VSID
/// allocator, and every task. All paper experiments drive a `Kernel`.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The hardware.
    pub machine: Machine,
    /// Policy configuration.
    pub cfg: KernelConfig,
    /// Kernel path lengths (instruction counts).
    pub paths: PathLengths,
    /// Simulated RAM contents.
    pub phys: PhysMem,
    /// The frame allocator.
    pub frames: FrameAllocator,
    /// The architected hash table.
    pub htab: HashTable,
    /// VSID allocation and liveness.
    pub vsids: VsidAllocator,
    /// All tasks, indexed by slot.
    pub tasks: Vec<Task>,
    /// The currently running task (slot), if any.
    pub current: Option<usize>,
    /// Round-robin run queue of task slots.
    pub run_queue: std::collections::VecDeque<usize>,
    /// Open pipes.
    pub pipes: Vec<Pipe>,
    /// Files (with their page caches).
    pub files: Vec<File>,
    /// Kernel event counters.
    pub stats: KernelStats,
    /// The kernel's own page tables (covering the linear map when BATs are
    /// off).
    pub kernel_pt: LinuxPageTables,
    next_pid: Pid,
    /// Recursion guard for nested TLB misses taken inside a reload handler.
    in_reload: bool,
    /// PTEG groups the idle reclaim may still scan before going back to
    /// sleep: topped up to a full sweep whenever a context is retired, so
    /// the idle task does not pointlessly re-stream the hash table through
    /// the cache when no zombies can exist.
    pub(crate) reclaim_scan_credit: u32,
    /// Reference counts for frames shared copy-on-write between address
    /// spaces (absent = exclusively owned).
    pub(crate) shared_frames: crate::fixed_hash::DetHashMap<PhysAddr, u32>,
    /// Mapping counts for page-cache frames currently mapped into some
    /// address space (absent = unmapped, hence evictable under pressure).
    pub(crate) file_map_refs: crate::fixed_hash::DetHashMap<PhysAddr, u32>,
    /// The seeded fault injector, when [`KernelConfig::fault_injection`] is
    /// set.
    pub(crate) injector: Option<FaultInjector>,
    /// The event tracer + cycle profiler, when [`KernelConfig::trace`] is
    /// set. Boxed so an untraced kernel carries one pointer of overhead.
    pub tracer: Option<Box<Tracer>>,
    /// The sampling-profiler state, when [`KernelConfig::pmu`] is set
    /// (the OS half of the PMU; the counters themselves live on
    /// [`Machine::pmu`]).
    pub pmu: Option<Box<PmuState>>,
    /// The epoch telemetry sampler, when [`KernelConfig::telemetry`] is
    /// set. Observational like the tracer: polls at span transitions,
    /// reads MMU state, charges nothing.
    pub telemetry: Option<Box<Telemetry>>,
    /// The adaptive MMU tuning controller, when [`KernelConfig::mmtune`]
    /// is set. Unlike the observers above it *changes* the run: retune
    /// decisions reprogram BATs, rehash the hash table, or retune the VSID
    /// scatter constant, and every cycle of that work is charged to
    /// [`Subsystem::Mmtune`].
    pub mmtune: Option<Box<Mmtune>>,
    /// The runtime MM consistency checker, when [`KernelConfig::check`] is
    /// set: shadow translation oracle + ported SchedInv/MMInv invariants
    /// ([`crate::check`]). Observational like the tracer — charges nothing,
    /// counts nothing in [`KernelStats`] — but *panics* with a repro line on
    /// any violation.
    pub check: Option<Box<crate::check::CheckState>>,
    /// The tail-latency forensics state, when [`KernelConfig::tail`] is
    /// set: slow instrumented-path samples are captured as
    /// [`crate::tail::TailExemplar`]s with their causal context.
    /// Observational like the tracer — charges nothing, counts nothing in
    /// [`KernelStats`], never writes the trace ring.
    pub tail: Option<Box<crate::tail::TailState>>,
    /// Causal what-if profiling state, when [`KernelConfig::causal`] is
    /// set: its own span stack (the tracer may be off) plus per-path
    /// extent depths, folded into one `(num, den)` machine charge scale at
    /// every span transition. With `None` the machine scale is never
    /// touched and stays at its bit-identical 1/1 default.
    pub causal: Option<Box<crate::causal::CausalState>>,
    /// Depth of in-flight scheduler mutations (context switch / teardown):
    /// the checker suspends its SchedInv clauses while nonzero. Maintained
    /// unconditionally (integer bookkeeping, no cycles).
    pub(crate) sched_mutation_depth: u32,
    /// Deliberately skip the VSID bump in lazy context flushes — the seeded
    /// stale-TLB bug the shadow oracle exists to catch. Latched at boot from
    /// the `MMU_TRICKS_BUG_STALE_TLB` environment variable (or
    /// [`Kernel::set_buggy_skip_vsid_flush`]); never set in production
    /// configurations.
    pub(crate) buggy_skip_vsid_flush: bool,
}

impl Kernel {
    /// Boots a kernel on `machine_cfg` under policy `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`KernelConfig::validate`]).
    pub fn boot(machine_cfg: MachineConfig, cfg: KernelConfig) -> Self {
        let paths = PathLengths::for_config(&cfg);
        Self::boot_with_paths(machine_cfg, cfg, paths)
    }

    /// Boots with explicit path lengths (used by the comparison-OS models).
    pub fn boot_with_paths(
        machine_cfg: MachineConfig,
        cfg: KernelConfig,
        paths: PathLengths,
    ) -> Self {
        cfg.validate();
        let mut machine = Machine::new(machine_cfg);
        if let Some(pc) = cfg.pmu {
            let mut pmu = ppc_machine::Pmu::new(pc.mmcr0());
            if pc.sample_period > 0 {
                // Preload the sampling counter to go negative one period in.
                pmu.write_pmc(0, ppc_machine::PMC_NEGATIVE - pc.sample_period);
            }
            machine.pmu = Some(pmu);
        }
        // Kernel segment registers hold their fixed VSIDs forever.
        for sr in 12..16 {
            machine.mmu.segments.set(sr, kernel_vsid(sr));
        }
        if cfg.use_bats {
            // One BAT pair covers the whole 32 MiB linear map: kernel text,
            // data, htab and page tables all translate "for free" (§5.1).
            let bat = BatEntry::new(layout::KERNEL_VIRT_BASE, 0, RAM_BYTES, true);
            machine.mmu.bats.set_dbat(0, Some(bat));
            machine.mmu.bats.set_ibat(0, Some(bat));
        }
        if cfg.io_bat {
            // Dedicated uncached BAT for the frame-buffer aperture.
            let io = BatEntry::new(IO_VIRT_BASE, IO_VIRT_BASE, IO_BYTES, false);
            machine.mmu.bats.set_dbat(3, Some(io));
        }
        let mut frames = FrameAllocator::new();
        let kernel_pgd = frames
            .get_pt_page()
            .expect("page-table pool cannot be empty at boot");
        let mut phys = PhysMem::new();
        phys.zero_page(kernel_pgd);
        let mut kernel = Self {
            machine,
            cfg,
            paths,
            phys,
            frames,
            htab: HashTable::new(HTAB_GROUPS, HTAB_PA),
            vsids: VsidAllocator::new(cfg.vsid_policy),
            tasks: Vec::new(),
            current: None,
            run_queue: std::collections::VecDeque::new(),
            pipes: Vec::new(),
            files: Vec::new(),
            stats: KernelStats::default(),
            kernel_pt: LinuxPageTables::new(kernel_pgd),
            next_pid: 1,
            in_reload: false,
            reclaim_scan_credit: 0,
            shared_frames: Default::default(),
            file_map_refs: Default::default(),
            injector: cfg.fault_injection.map(FaultInjector::new),
            tracer: if cfg.trace {
                Some(Box::new(Tracer::with_capacity(
                    HTAB_GROUPS,
                    0,
                    cfg.trace_ring_capacity,
                )))
            } else {
                None
            },
            pmu: cfg.pmu.map(|pc| Box::new(PmuState::new(pc))),
            telemetry: cfg.telemetry.map(|tc| Box::new(Telemetry::new(tc))),
            mmtune: cfg.mmtune.map(|mc| Box::new(Mmtune::new(mc, cfg.use_bats))),
            check: cfg
                .check
                .map(|cc| Box::new(crate::check::CheckState::new(cc))),
            tail: cfg.tail.map(|tc| Box::new(crate::tail::TailState::new(tc))),
            causal: cfg
                .causal
                .map(|cc| Box::new(crate::causal::CausalState::new(cc))),
            sched_mutation_depth: 0,
            buggy_skip_vsid_flush: std::env::var_os("MMU_TRICKS_BUG_STALE_TLB").is_some(),
        };
        // With an empty span stack the causal scale is the User ratio; an
        // identity config folds to (1, 1) and never perturbs the machine.
        kernel.causal_rescale();
        kernel
    }

    /// Enables (or disables) the deliberate stale-TLB bug — the lazy
    /// context flush stops bumping VSIDs, leaving stale translations
    /// matchable. Exists so tests and the chaos gate can prove the shadow
    /// oracle catches it; the environment-variable latch
    /// (`MMU_TRICKS_BUG_STALE_TLB`) does the same for whole processes.
    pub fn set_buggy_skip_vsid_flush(&mut self, on: bool) {
        self.buggy_skip_vsid_flush = on;
    }

    /// Boots with a non-standard hash-table size (in PTEGs). The paper keeps
    /// the table fixed at 2048 groups; tests use smaller tables to reach
    /// full-table dynamics quickly.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is not a power of two.
    pub fn boot_with_htab_groups(
        machine_cfg: MachineConfig,
        cfg: KernelConfig,
        groups: u32,
    ) -> Self {
        let mut k = Self::boot(machine_cfg, cfg);
        k.htab = HashTable::new(groups, HTAB_PA);
        if let Some(t) = k.tracer.as_mut() {
            t.resize_groups(groups);
        }
        k
    }

    /// PID of the current task, or 0 when the kernel itself is running.
    pub fn current_pid(&self) -> Pid {
        self.current.map_or(0, |i| self.tasks[i].pid)
    }

    /// Records `event` in the trace ring when tracing is enabled; the
    /// closure never runs otherwise (zero-cost-when-disabled).
    #[inline]
    pub(crate) fn t_event(&mut self, event: impl FnOnce() -> TraceEvent) {
        if self.tracer.is_some() {
            let _host = hostprof::span(hostprof::HostPhase::TraceWrite);
            let rec = TraceRecord {
                cycle: self.machine.cycles,
                pid: self.current_pid(),
                event: event(),
            };
            if let Some(t) = self.tracer.as_mut() {
                t.ring.push(rec);
            }
        }
    }

    /// Opens a profiler span for `s`. Returns the entry cycle so the
    /// matching [`Kernel::t_exit_lat`] can compute a latency sample; the
    /// caller must close the span on every path out of its scope.
    ///
    /// The PMU is polled **before** the span stack changes (here and in the
    /// exit hooks): between two consecutive polls the stack is constant, so
    /// a counter found negative at a poll is attributed to the subsystem
    /// that actually ran the elapsed window — the invariant that makes
    /// sampled attribution converge to the exact profiler.
    #[inline]
    pub(crate) fn t_enter(&mut self, s: Subsystem) -> Cycles {
        self.pmu_poll();
        self.telemetry_poll();
        // Tune *before* the span opens: retune work charged here is
        // bracketed by its own [`Subsystem::Mmtune`] span and never lands
        // inside the span that is about to start.
        self.tune_poll();
        // Check last: invariants are evaluated over post-retune state.
        self.check_poll();
        let now = self.machine.cycles;
        if let Some(t) = self.tracer.as_mut() {
            t.prof.enter(s, now);
        }
        if let Some(p) = self.pmu.as_mut() {
            p.stack.push(s);
        }
        self.causal_push(s);
        now
    }

    /// Re-derives the machine charge scale from the causal span state; a
    /// no-op when causal profiling is off (the machine keeps its 1/1
    /// default and `advance` short-circuits — plain runs never pay for
    /// this feature existing).
    #[inline]
    fn causal_rescale(&mut self) {
        if let Some(c) = self.causal.as_ref() {
            let (num, den) = c.scale();
            self.machine.set_scale(num, den);
        }
    }

    /// Mirrors a span push into the causal state. Called at the same
    /// transition instants as the profiler/PMU stack pushes, so the scale
    /// in force between two transitions is exactly the innermost span's.
    #[inline]
    pub(crate) fn causal_push(&mut self, s: Subsystem) {
        if let Some(c) = self.causal.as_mut() {
            c.push(s);
            self.causal_rescale();
        }
    }

    /// Mirrors a span pop into the causal state.
    #[inline]
    pub(crate) fn causal_pop(&mut self) {
        if let Some(c) = self.causal.as_mut() {
            c.pop();
            self.causal_rescale();
        }
    }

    /// Enters (`true`) or leaves (`false`) an explicitly marked path
    /// extent — paths like the hash-table rehash that no subsystem span
    /// roots.
    #[inline]
    pub(crate) fn causal_path_mark(&mut self, p: crate::causal::CausalPath, enter: bool) {
        if let Some(c) = self.causal.as_mut() {
            c.path_mark(p, enter);
            self.causal_rescale();
        }
    }

    /// Closes the innermost profiler span.
    #[inline]
    pub(crate) fn t_exit(&mut self) {
        self.pmu_poll();
        self.telemetry_poll();
        let now = self.machine.cycles;
        if let Some(t) = self.tracer.as_mut() {
            t.prof.exit(now);
        }
        if let Some(p) = self.pmu.as_mut() {
            p.stack.pop();
        }
        self.causal_pop();
        // Tune *after* the span closes so the retune charge is attributed
        // to [`Subsystem::Mmtune`], not the subsystem that just exited.
        self.tune_poll();
        self.check_poll();
    }

    /// Closes the innermost span and records `now - t0` as a latency sample
    /// for `path`.
    #[inline]
    pub(crate) fn t_exit_lat(&mut self, t0: Cycles, path: LatencyPath) {
        self.pmu_poll();
        self.telemetry_poll();
        let now = self.machine.cycles;
        let lat = now.saturating_sub(t0);
        // Decide capture against the *pre-sample* histogram, so auto arming
        // tracks the running top bucket without the sample judging itself —
        // and read the span stack before `exit` pops the span this sample
        // belongs to. Both are host-side reads; the simulated run is
        // untouched.
        let capture = match (self.tail.as_ref(), self.tracer.as_ref()) {
            (Some(tl), Some(t)) => tl.armed(lat, t.latency(path)),
            _ => false,
        };
        let mut stack: Vec<Subsystem> = Vec::new();
        if let Some(t) = self.tracer.as_mut() {
            if capture {
                let _host = hostprof::span(hostprof::HostPhase::Telemetry);
                stack = t.prof.stack().to_vec();
            }
            t.prof.exit(now);
            t.record_latency(path, lat);
        }
        if let Some(p) = self.pmu.as_mut() {
            p.stack.pop();
        }
        self.causal_pop();
        // Instrumented-path latencies are the model's duration events: feed
        // the threshold comparator (paper: "loads lasting longer than
        // threshold"; here: reloads/faults/deliveries).
        if let Some(hw) = self.machine.pmu.as_mut() {
            hw.note_duration(lat, true);
        }
        // The controller's own PMU sees the same duration events as the
        // machine PMU — its slow-reload counter is what feeds the htab grow
        // condition.
        if let Some(m) = self.mmtune.as_mut() {
            m.pmu.note_duration(lat, true);
        }
        self.tail_poll(path, lat, now, capture, stack);
        // Tune last: the latency sample above stays clean of retune cost.
        self.tune_poll();
        self.check_poll();
    }

    /// The tail-forensics hook at an instrumented-path completion: advance
    /// the delta window on every sample, and capture an exemplar when the
    /// sample armed. Read-only on kernel, MMU and tracer state — never
    /// charges cycles, never touches [`KernelStats`], never writes the
    /// trace ring. A single `None` test when tail forensics is off.
    #[inline]
    fn tail_poll(
        &mut self,
        path: LatencyPath,
        lat: Cycles,
        now: Cycles,
        capture: bool,
        stack: Vec<Subsystem>,
    ) {
        if self.tail.is_none() {
            return;
        }
        let _host = hostprof::span(hostprof::HostPhase::Telemetry);
        let stats = self.stats;
        let htab_stats = *self.htab.stats();
        if !capture {
            if let Some(tl) = self.tail.as_mut() {
                tl.note(&stats, &htab_stats);
            }
            return;
        }
        let window_len = self.tail.as_ref().map_or(0, |tl| tl.cfg.window);
        let window: Vec<TraceRecord> = self.tracer.as_ref().map_or_else(Vec::new, |t| {
            let n = t.ring.len();
            t.ring
                .iter()
                .skip(n.saturating_sub(window_len))
                .copied()
                .collect()
        });
        let mmu = crate::tail::MmuSnapshot {
            htab_groups: u64::from(self.htab.hash().num_groups()),
            htab_valid: u64::from(self.htab.valid_entries()),
            htab_live: u64::from(self.htab.live_entries(|v| self.vsids.is_live(v))),
            htab_full_groups: u64::from(self.htab.full_groups()),
            vsid_generation: u64::from(self.vsids.generation()),
            vsid_live: self.vsids.live_count() as u64,
            dbats: self.machine.mmu.bats.dbat_in_use() as u64,
            ibats: self.machine.mmu.bats.ibat_in_use() as u64,
            retunes: self.mmtune.as_ref().map_or(0, |m| m.decisions.len()) as u64,
            free_frames: self.frames.free_frames() as u64,
        };
        let pid = self.current_pid();
        if let Some(tl) = self.tail.as_mut() {
            tl.offer(path, lat, now, pid, stack, window, mmu, &stats, &htab_stats);
        }
    }

    /// Synchronises the PMU with the machine counters and services a
    /// pending counter-negative exception. Called at every span transition
    /// (before the stack changes) — the simulator's instruction boundary.
    /// A single `None` test when the PMU is off.
    #[inline]
    pub(crate) fn pmu_poll(&mut self) {
        if self.pmu.is_none() {
            return;
        }
        // Supervisor state: inside any kernel span, or no task is current
        // (boot, idle, kernel-driven workload phases).
        let supervisor = self
            .pmu
            .as_ref()
            .is_some_and(|p| !p.stack.is_empty() || self.current.is_none());
        self.machine.pmu_sync(supervisor);
        let pending = self
            .machine
            .pmu
            .as_mut()
            .is_some_and(|hw| hw.take_interrupt());
        if pending {
            self.pmu_deliver_sample(supervisor);
        }
    }

    /// The performance-monitor exception handler: capture the sample,
    /// charge the handler cost, re-arm the sampling counter.
    fn pmu_deliver_sample(&mut self, supervisor: bool) {
        let period = self.pmu.as_ref().map_or(0, |p| p.cfg.sample_period);
        // Weight = whole periods since arming; re-arm preserving the
        // fractional overshoot so no cycles are silently dropped between
        // windows.
        let mut weight = 1;
        if let Some(hw) = self.machine.pmu.as_mut() {
            if period > 0 {
                weight = hw.periods_pending(0, period).max(1);
                let over = hw.read_pmc(0).wrapping_sub(ppc_machine::PMC_NEGATIVE);
                let resid = over % period;
                hw.write_pmc(0, ppc_machine::PMC_NEGATIVE - period + resid);
            } else {
                // Counter-negative without sampling (an event counter
                // wrapped): nothing to record periodically, just re-latch.
                return;
            }
        }
        let cycle = self.machine.cycles;
        let pid = self.current_pid();
        if let Some(p) = self.pmu.as_mut() {
            p.record(cycle, pid, supervisor, weight);
        }
        self.stats.pmu_interrupts += 1;
        let sub = self
            .pmu
            .as_ref()
            .map_or(Subsystem::User, |p| p.current_subsystem());
        self.t_event(|| TraceEvent::PmuSample {
            sub,
            weight: weight.min(u64::from(u32::MAX)) as u32,
        });
        // Charge the exception: entry, handler body, exit. Attributed to
        // the Pmu bucket directly on the profiler (not through t_enter,
        // which would re-poll and recurse).
        let now = self.machine.cycles;
        if let Some(t) = self.tracer.as_mut() {
            t.prof.enter(Subsystem::Pmu, now);
        }
        self.causal_push(Subsystem::Pmu);
        let costs = self.machine.cfg.costs;
        self.machine
            .charge(costs.exception_entry + costs.exception_exit);
        self.machine
            .exec_code_pa(HANDLER_STUB_PA + 0x200, PM_HANDLER_INSNS, true);
        let now = self.machine.cycles;
        if let Some(t) = self.tracer.as_mut() {
            t.prof.exit(now);
        }
        self.causal_pop();
        // The handler froze counting while it ran (a real PM handler sets
        // MMCR0[FC] first thing): skip its own cycles out of the next
        // counting window so sampling does not sample itself.
        let snap = self.machine.snapshot();
        if let Some(hw) = self.machine.pmu.as_mut() {
            hw.skip_to(&snap);
        }
    }

    /// Final PMU synchronisation for a measurement window (call before
    /// reading [`Kernel::pmu`] results; idempotent).
    pub fn pmu_finish(&mut self) {
        self.pmu_poll();
    }

    /// Takes an epoch telemetry sample when the ledger has crossed the next
    /// epoch boundary. Called at every span transition alongside
    /// [`Kernel::pmu_poll`]; a single `None` test when telemetry is off, and
    /// read-only on the MMU when it fires — never charges cycles, never
    /// touches cache/TLB replacement state, never writes the trace ring.
    #[inline]
    pub(crate) fn telemetry_poll(&mut self) {
        let now = self.machine.cycles;
        if !self.telemetry.as_ref().is_some_and(|t| t.due(now)) {
            return;
        }
        let _host = hostprof::span(hostprof::HostPhase::Telemetry);
        let readings = self.mmu_readings();
        let stats = self.stats;
        if let Some(t) = self.telemetry.as_mut() {
            t.record(now, readings, &stats);
        }
    }

    /// One read-only snapshot of MMU state for the telemetry sampler.
    fn mmu_readings(&self) -> MmuReadings {
        let live = |v| self.vsids.is_live(v);
        let kernel = self.machine.mmu.itlb.entries_matching(is_kernel_vsid)
            + self.machine.mmu.dtlb.entries_matching(is_kernel_vsid);
        let total = self.machine.mmu.itlb.valid_entries() + self.machine.mmu.dtlb.valid_entries();
        MmuReadings {
            htab_valid: self.htab.valid_entries(),
            htab_live: self.htab.live_entries(live),
            full_groups: self.htab.full_groups(),
            tlb_kernel: kernel,
            tlb_user: total - kernel,
        }
    }

    /// Takes a final telemetry sample covering the tail of the run — the
    /// partial epoch since the last boundary crossing (call before reading
    /// [`Kernel::telemetry`]; no-op when telemetry is off or the tail is
    /// empty).
    pub fn telemetry_finish(&mut self) {
        let now = self.machine.cycles;
        let due = self
            .telemetry
            .as_ref()
            .is_some_and(|t| t.epochs.last().map_or(now > 0, |e| e.cycle < now));
        if !due {
            return;
        }
        let _host = hostprof::span(hostprof::HostPhase::Telemetry);
        let readings = self.mmu_readings();
        let stats = self.stats;
        if let Some(t) = self.telemetry.as_mut() {
            t.record(now, readings, &stats);
        }
    }

    /// Evaluates one mmtune epoch when the ledger has crossed the next
    /// tuning boundary. Called at every span transition; a single `None`
    /// test when mmtune is off, so a disabled controller is cycle-free
    /// (and a proptest holds it to that).
    #[inline]
    pub(crate) fn tune_poll(&mut self) {
        let now = self.machine.cycles;
        if !self.mmtune.as_ref().is_some_and(|m| m.due(now)) {
            return;
        }
        self.tune_epoch(now);
    }

    /// The epoch evaluation slow path: snapshot the inputs, ask the
    /// controller, and apply (and charge) at most one knob move.
    ///
    /// # Panics
    ///
    /// In debug builds, panics with `MM invariant violated at mmtune epoch
    /// boundary` if a retune corrupted scheduler or VSID state — a
    /// simulator-internal invariant, never reachable from workload input.
    fn tune_epoch(&mut self, now: Cycles) {
        // Take the controller out while working: retune work re-enters the
        // span hooks (reclaim sweeps, charged reads), and a taken-out
        // controller makes nested epoch evaluation structurally impossible.
        let Some(mut m) = self.mmtune.take() else {
            return;
        };
        let inputs = TuneInputs {
            htab_live: self.htab.live_entries(|v| self.vsids.is_live(v)),
            htab_capacity: self.htab.capacity(),
            full_groups: self.htab.full_groups(),
            num_groups: self.htab.hash().num_groups(),
            uses_htab: self.uses_htab(),
            current_scatter: self.vsids.policy().constant(),
        };
        let snap = self.machine.snapshot();
        let stats = self.stats;
        self.stats.mmtune_epochs += 1;
        if let Some(action) = m.observe(now, &snap, &stats, inputs) {
            self.apply_retune(&mut m, action);
        }
        self.mmtune = Some(m);
        // Epoch boundaries re-verify the ported invariants *always* — even
        // with [`KernelConfig::check`] off — in debug builds (free in
        // release). A retune that corrupts scheduler or VSID state is
        // caught here by every tier-1 test run, not only under `repro
        // chaos`.
        #[cfg(debug_assertions)]
        {
            let mut generation = 0;
            if let Some(v) = self.invariant_violation(&mut generation) {
                let cfg = self.cfg.summary();
                panic!("MM invariant violated at mmtune epoch boundary: {v}\n  config: {cfg}");
            }
        }
    }

    /// Applies one retune decision, charging its cost to
    /// [`Subsystem::Mmtune`] (bracketed directly on the profiler, like the
    /// PM handler — not through [`Kernel::t_enter`], which would re-poll).
    fn apply_retune(&mut self, m: &mut Mmtune, action: TuneAction) {
        let now = self.machine.cycles;
        let epoch = now / m.cfg.epoch_cycles;
        if let Some(t) = self.tracer.as_mut() {
            t.prof.enter(Subsystem::Mmtune, now);
        }
        self.causal_push(Subsystem::Mmtune);
        let (knob, from, to) = match action {
            TuneAction::EnableBats => {
                // The §5.1 layout, exactly as boot would have programmed it.
                let bat = BatEntry::new(layout::KERNEL_VIRT_BASE, 0, RAM_BYTES, true);
                self.machine.mmu.bats.set_dbat(0, Some(bat));
                self.machine.mmu.bats.set_ibat(0, Some(bat));
                // Four upper/lower mtspr pairs across the I/D sides.
                self.machine.charge(16);
                (TuneKnob::Bat, 0, 1)
            }
            TuneAction::SetScatter { from, to } => {
                self.vsids.set_scatter_constant(to);
                self.machine.charge(4);
                (TuneKnob::Scatter, from, to)
            }
            TuneAction::ResizeHtab { from, to } => {
                // The rehash is an explicitly marked causal path: no
                // subsystem span roots it (it runs inside the Mmtune
                // span), but "what if rehashes were free?" is exactly the
                // question the grow/shrink cost-benefit analysis needs.
                self.causal_path_mark(crate::causal::CausalPath::HtabRehash, true);
                let cached = self.cfg.htab_cached;
                // Sweep zombies out first (charged like any reclaim sweep)
                // so the rehash only moves entries worth keeping.
                self.reclaim_chunk(from, cached);
                let mem = &mut self.machine.mem;
                let mut cost: Cycles = 0;
                let out = self.htab.resize_with(to, |pa| {
                    cost += mem.data_read(pa, cached);
                });
                // Store commit for every re-inserted PTE.
                cost += Cycles::from(out.moved) * 2;
                self.machine.charge(cost);
                if let Some(t) = self.tracer.as_mut() {
                    t.resize_groups(to);
                }
                // A pending idle sweep can never usefully exceed one pass
                // over the (new) table.
                self.reclaim_scan_credit = self.reclaim_scan_credit.min(to);
                self.stats.mmtune_htab_resizes += 1;
                // Chaos site: an adversarial full TLB flush chasing the
                // rehash — every resident translation must be reloadable
                // from the post-resize table.
                if self.roll_injected_rehash_flush() {
                    self.machine.mmu.flush_tlbs();
                    self.machine.charge(32);
                }
                self.causal_path_mark(crate::causal::CausalPath::HtabRehash, false);
                (TuneKnob::HtabSize, from, to)
            }
        };
        self.stats.mmtune_retunes += 1;
        // Chaos site: a forced zombie-reclaim sweep racing the retune —
        // liveness checks must agree with whatever the retune just changed.
        if self.roll_injected_retune_sweep() {
            let cached = self.cfg.htab_cached;
            self.reclaim_chunk(32, cached);
        }
        let now = self.machine.cycles;
        if let Some(t) = self.tracer.as_mut() {
            t.prof.exit(now);
        }
        self.causal_pop();
        m.log(RetuneDecision {
            cycle: now,
            epoch,
            knob,
            from,
            to,
        });
        self.t_event(|| TraceEvent::Retune { knob, from, to });
    }

    /// The currently running task.
    ///
    /// # Panics
    ///
    /// Panics if no task is current.
    pub fn cur(&self) -> &Task {
        &self.tasks[self.current.expect("no current task")]
    }

    /// Mutable access to the current task.
    ///
    /// # Panics
    ///
    /// Panics if no task is current.
    pub fn cur_mut(&mut self) -> &mut Task {
        let i = self.current.expect("no current task");
        &mut self.tasks[i]
    }

    /// Allocates the next PID.
    pub fn alloc_pid(&mut self) -> Pid {
        let p = self.next_pid;
        self.next_pid += 1;
        p
    }

    /// Translates `ea`, servicing TLB misses and page faults, and returns
    /// `(physical address, cacheable)`. This is the load/store pipeline.
    /// Fails when the fault path killed the task (SIGSEGV, SIGBUS, the OOM
    /// killer) or could not get memory.
    ///
    /// # Panics
    ///
    /// Panics if translation does not converge — a successfully serviced
    /// fault or reload must make the retry hit (simulator invariant).
    pub fn translate_ref(
        &mut self,
        ea: EffectiveAddress,
        at: AccessType,
    ) -> KResult<(PhysAddr, bool)> {
        for _ in 0..8 {
            match self.machine.mmu.translate(ea, at) {
                Translation::Bat { pa, cached } => {
                    self.check_on_bat_hit(ea, pa, cached);
                    return Ok((pa, cached));
                }
                Translation::TlbHit {
                    pa,
                    cached,
                    writable,
                } => {
                    // The hit itself is the observation the oracle audits —
                    // checked even when it is about to protection-fault.
                    self.check_on_tlb_hit(ea, at, pa, cached, writable);
                    if at == AccessType::DataWrite && !writable {
                        // Store through a read-only translation: the
                        // protection fault that drives copy-on-write.
                        self.protection_fault(ea)?;
                        continue;
                    }
                    return Ok((pa, cached));
                }
                Translation::TlbMiss { va } => {
                    if !self.tlb_reload(ea, va, at) {
                        self.page_fault(ea, at)?;
                    }
                }
            }
        }
        panic!("translation for {:#x} did not converge", ea.0)
    }

    /// Whether the fused fast path may serve memory references: enabled in
    /// the config and no checker armed (the oracle audits every BAT/TLB hit,
    /// which requires the layered path). The causal charge scale is checked
    /// *inside* the fused functions — it can flip mid-run.
    #[inline]
    fn fastpath_ok(&self) -> bool {
        self.cfg.fused && self.check.is_none()
    }

    /// One user/kernel data reference (a load or store of one word).
    pub fn data_ref(&mut self, ea: EffectiveAddress, write: bool) -> KResult<Cycles> {
        if self.fastpath_ok() {
            if let Some(c) = self.machine.fused_data_ref(ea, write) {
                return Ok(c);
            }
        }
        let at = if write {
            AccessType::DataWrite
        } else {
            AccessType::DataRead
        };
        let (pa, cached) = self.translate_ref(ea, at)?;
        // One cycle of pipeline work for the instruction itself.
        self.machine.charge(1);
        Ok(1 + if write {
            self.machine.data_write_pa(pa, cached)
        } else {
            self.machine.data_read_pa(pa, cached)
        })
    }

    /// Executes `n_insns` straight-line instructions starting at `ea`,
    /// translating page by page and fetching line by line.
    pub fn exec_code(&mut self, ea: EffectiveAddress, n_insns: u32) -> KResult<Cycles> {
        let start = self.machine.cycles;
        let mut remaining = n_insns;
        let mut addr = ea.0;
        while remaining > 0 {
            let page_end = (addr & !(PAGE_SIZE - 1)) + PAGE_SIZE;
            let insns_here = remaining.min((page_end - addr) / 4);
            let fused = self.fastpath_ok()
                && self
                    .machine
                    .fused_exec_code(EffectiveAddress(addr), insns_here)
                    .is_some();
            if !fused {
                let (pa, cached) =
                    self.translate_ref(EffectiveAddress(addr), AccessType::InsnFetch)?;
                self.machine.exec_code_pa(pa, insns_here, cached);
            }
            addr = page_end;
            remaining -= insns_here;
        }
        Ok(self.machine.cycles - start)
    }

    /// A kernel data reference through the linear map. Infallible: the
    /// linear map is definitionally valid, kernel structures are never
    /// paged, and the injector never fails kernel-side reloads into a fault.
    pub fn kdata_ref(&mut self, pa: PhysAddr, write: bool) -> Cycles {
        self.data_ref(pa_to_kva(pa), write)
            .expect("kernel linear-map access cannot fault")
    }

    /// Touches the `mem_map` entry (`struct page`) for the frame holding
    /// `pa` — every allocator and page-cache operation does this.
    pub fn mem_map_ref(&mut self, pa: PhysAddr, write: bool) -> Cycles {
        let pfn = pa >> 12;
        self.kdata_ref(
            layout::MEM_MAP_PA + pfn * layout::MEM_MAP_ENTRY_BYTES,
            write,
        )
    }

    /// Touches a kernel metadata structure (inode, buffer head, vma, pipe
    /// inode...) identified by `tag`. Metadata is spread across the kernel
    /// data region, exactly like slab-allocated structures — this spread is
    /// what gives the kernel its TLB footprint ("33% of the TLB entries
    /// under Linux/PPC were for kernel text, data and I/O pages", §5.1)
    /// when the kernel is not BAT-mapped.
    pub fn kmeta_ref(&mut self, tag: u32, write: bool) -> Cycles {
        let region_pages = layout::KERNEL_DATA_BYTES / PAGE_SIZE;
        let page = tag.wrapping_mul(2654435761) % region_pages;
        let off = (tag.wrapping_mul(40503) % (PAGE_SIZE / 64)) * 64;
        self.kdata_ref(layout::KERNEL_DATA_PA + page * PAGE_SIZE + off, write)
    }

    /// Runs a named kernel code path for `insns` instructions: I-side
    /// traffic through the kernel mapping (BATs or PTEs — this is where the
    /// kernel's TLB footprint comes from, §5.1).
    ///
    /// Real kernel code is loops and calls into helpers, not `insns * 4`
    /// bytes of straight-line text: each path executes 128-instruction
    /// chunks spread over a text span that grows with the path length
    /// (roughly one page of text per 250 instructions of path, capped at
    /// 12 pages). Long tuned paths therefore stay I-cache- and I-TLB-small
    /// while the original kernel's fat paths have the large text footprint
    /// the paper complains about ("careful design to minimize the OS caching
    /// footprint").
    pub fn run_kernel_path(&mut self, path: layout::KernelPath, insns: u32) -> Cycles {
        let span_pages = (1 + insns / 250).min(12);
        let base = path.text_ea().0;
        let mut fetched = 0;
        let mut remaining = insns;
        let mut chunk_idx = 0;
        while remaining > 0 {
            let chunk = remaining.min(128);
            let page = chunk_idx % span_pages;
            let ea = EffectiveAddress(base + page * PAGE_SIZE + (chunk_idx % 4) * 1024);
            // Three quarters of each chunk are loop iterations over lines
            // just fetched; only a quarter advances through fresh text. The
            // I-cache (not this model) decides whether the fresh lines hit.
            let fresh = (chunk / 4).max(chunk.min(16));
            fetched += self
                .exec_code(ea, fresh)
                .expect("kernel text access cannot fault");
            self.machine.charge((chunk - fresh) as Cycles);
            remaining -= chunk;
            chunk_idx += 1;
        }
        fetched
    }

    /// User data accesses: `len` bytes starting at `ea` (read or write), one
    /// reference per 32-byte line, as a user-mode copy loop would generate.
    /// An access outside the task's VMAs kills it (SIGSEGV) and fails.
    pub fn user_access(&mut self, ea: u32, len: u32, write: bool) -> KResult<Cycles> {
        let start = self.machine.cycles;
        let line = 32;
        let mut off = 0;
        while off < len {
            self.data_ref(EffectiveAddress(ea + off), write)?;
            off += line;
        }
        Ok(self.machine.cycles - start)
    }

    /// Convenience: write `len` bytes of user memory at `ea`.
    pub fn user_write(&mut self, ea: u32, len: u32) -> KResult<Cycles> {
        self.user_access(ea, len, true)
    }

    /// Convenience: read `len` bytes of user memory at `ea`.
    pub fn user_read(&mut self, ea: u32, len: u32) -> KResult<Cycles> {
        self.user_access(ea, len, false)
    }

    /// The TLB-miss reload path. Returns `false` when neither the hash table
    /// nor the Linux page tables hold a translation (a real page fault).
    fn tlb_reload(&mut self, ea: EffectiveAddress, va: VirtualAddress, at: AccessType) -> bool {
        use ppc_machine::CpuModel;
        let kernel_side = !is_user(ea);
        if kernel_side {
            self.stats.kernel_reloads += 1;
        }
        self.t_event(|| TraceEvent::TlbMiss {
            ea: ea.0,
            kernel: kernel_side,
        });
        // A nested miss while already reloading (SlowC handler touching
        // kernel text/data) takes the minimal assembly path and resolves
        // from the linear map directly. (Any open Translate span from the
        // outer reload already attributes these cycles.)
        if self.in_reload {
            assert!(kernel_side, "user access inside a reload handler");
            self.machine
                .charge(self.machine.cfg.costs.tlb_miss_invoke_return.max(32));
            return self.install_kernel_linear(ea, va, at);
        }
        let t0 = self.t_enter(Subsystem::Translate);
        self.in_reload = true;
        let ok = match self.machine.cfg.model {
            CpuModel::Ppc604 => self.reload_604(ea, va, at),
            CpuModel::Ppc603 => self.reload_603(ea, va, at),
        };
        self.in_reload = false;
        self.t_exit_lat(t0, LatencyPath::TlbReload);
        ok
    }

    /// 604: hardware hash-table walk, then (on miss) the software handler.
    fn reload_604(&mut self, ea: EffectiveAddress, va: VirtualAddress, at: AccessType) -> bool {
        let costs = self.machine.cfg.costs;
        self.machine.charge(costs.hw_walk_overhead);
        if self.htab_lookup_reload(va, at) {
            return true;
        }
        // Hash-table miss interrupt: "at least 91 more cycles to just invoke
        // the handler" (§5).
        self.machine.charge(costs.htab_miss_interrupt);
        self.run_handler_body();
        self.reload_from_linux_pt(ea, va, at, true)
    }

    /// 603: software TLB-miss handler.
    ///
    /// * [`HandlerStyle::SlowC`] is the original kernel: *every* miss turns
    ///   the MMU on, saves state and runs the C handler ("Originally, we
    ///   turned the MMU on, saved state and jumped to fault handlers written
    ///   in C", §6.1).
    /// * [`HandlerStyle::FastAsm`] resolves the common case entirely in the
    ///   hand-scheduled stub using only the four swapped registers, reaching
    ///   C only when the mapping is not where the stub can find it.
    fn reload_603(&mut self, ea: EffectiveAddress, va: VirtualAddress, at: AccessType) -> bool {
        let costs = self.machine.cfg.costs;
        // "32 cycles simply to invoke and return from the handler" (§5).
        self.machine.charge(costs.tlb_miss_invoke_return);
        // The handler stub itself (physical fetch, tiny).
        let stub = self.paths.fault_asm;
        self.machine.exec_code_pa(HANDLER_STUB_PA, stub, true);
        if self.cfg.handler == HandlerStyle::SlowC {
            // The original path pays the full save + C handler on every miss.
            self.run_handler_body();
        }
        if self.cfg.htab_on_603 {
            // Emulate the 604: search the hash table in software.
            if self.htab_lookup_reload(va, at) {
                return true;
            }
            // Emulated hash-table miss: the fast kernel only reaches C here.
            if self.cfg.handler == HandlerStyle::FastAsm {
                self.run_handler_body_fast_fallback();
            }
            self.reload_from_linux_pt(ea, va, at, true)
        } else {
            // §6.2 "Improving hash tables away": go straight to the Linux
            // PTE tree — three loads in the worst case.
            self.reload_from_linux_pt(ea, va, at, false)
        }
    }

    /// The fast kernel's C fallback when the assembly path cannot resolve a
    /// miss: shorter than the original handler (state already minimal).
    fn run_handler_body_fast_fallback(&mut self) {
        let insns = self.paths.fault_c / 2;
        self.run_kernel_path(layout::KernelPath::FaultHandler, insns);
    }

    /// Searches the hash table and reloads the TLB on a hit. Probe traffic
    /// is charged through the data cache (or uncached, per §8's experiment).
    fn htab_lookup_reload(&mut self, va: VirtualAddress, at: AccessType) -> bool {
        if self.roll_injected_tlb_fault() {
            // Injected reload fault: the entry is *lost* — physically
            // invalidated, not merely overlooked — so the Linux-PT reinstall
            // that follows cannot create a duplicate hash-table entry for
            // the same (vsid, page). (A duplicate would outlive the next
            // per-page flush, which clears only the copy it finds: exactly
            // the stale-translation hazard the shadow oracle exists to
            // catch, and how it was first caught.) No cycles are charged:
            // uninjected runs are untouched, and within injected runs the
            // fault is the adversity, not a cost model.
            self.htab.invalidate_with(va.vsid, va.page_index, |_| {});
            self.stats.htab_misses += 1;
            return false;
        }
        let cached = self.cfg.htab_cached;
        let mut probe_cycles: Cycles = 0;
        let machine = &mut self.machine;
        let out = self.htab.search_with(va.vsid, va.page_index, |pa| {
            probe_cycles += machine.mem.data_read(pa, cached);
        });
        machine.charge(probe_cycles);
        match out.pte {
            Some(pte) => {
                self.check_on_htab_hit(va, &pte);
                self.machine.mmu.reload(
                    at,
                    ppc_mmu::tlb::TlbEntry {
                        vsid: va.vsid,
                        page_index: va.page_index,
                        rpn: pte.rpn,
                        cached: !pte.cache_inhibited,
                        writable: pte.pp == 2,
                    },
                );
                self.stats.tlb_reloads += 1;
                self.stats.htab_hits += 1;
                true
            }
            None => {
                self.stats.htab_misses += 1;
                false
            }
        }
    }

    /// The C/asm handler body that runs after a hash-table miss.
    fn run_handler_body(&mut self) {
        match self.cfg.handler {
            HandlerStyle::FastAsm => {
                // Short asm path, still MMU-off; no state save beyond the
                // four swapped registers.
                self.machine
                    .exec_code_pa(HANDLER_STUB_PA + 0x100, self.paths.fault_asm, true);
            }
            HandlerStyle::SlowC => {
                // "we turned the MMU on, saved state and jumped to fault
                // handlers written in C" (§6.1).
                let stack = self.kernel_stack_pa();
                for i in 0..24 {
                    let c = self.machine.mem.data_write(stack + i * 4, true);
                    self.machine.charge(c);
                }
                let insns = self.paths.fault_c;
                self.run_kernel_path(layout::KernelPath::FaultHandler, insns);
                for i in 0..24 {
                    let c = self.machine.mem.data_read(stack + i * 4, true);
                    self.machine.charge(c);
                }
            }
        }
    }

    /// Physical address of the current kernel stack (per task).
    fn kernel_stack_pa(&self) -> PhysAddr {
        match self.current {
            Some(i) => self.tasks[i].task_struct_pa() + 0x200,
            None => layout::KERNEL_DATA_PA + 0x8_0000,
        }
    }

    /// Reloads from the Linux page tables (and optionally installs the PTE
    /// in the hash table). Returns `false` if no mapping exists.
    fn reload_from_linux_pt(
        &mut self,
        ea: EffectiveAddress,
        va: VirtualAddress,
        at: AccessType,
        insert_htab: bool,
    ) -> bool {
        if is_io(ea) {
            // I/O aperture: identity, uncached, not in the page tables.
            return self.install_translation(va, ea.0 >> 12, false, true, at, insert_htab);
        }
        let pt = if is_kernel_linear(ea) {
            self.kernel_pt
        } else {
            match self.current {
                Some(i) => self.tasks[i].pt,
                None => return false,
            }
        };
        let pt_cached = self.cfg.linux_pt_cached;
        // Load 1: current->mm->pgd (in the task struct / kernel data).
        let ts = self.kernel_stack_pa() & !0x3ff;
        let c = self.machine.mem.data_read(ts + 0x40, true);
        self.machine.charge(c);
        let walk = pt.walk(&self.phys, ea);
        // Load 2: the PGD entry.
        let c = self.machine.mem.data_read(walk.pgd_entry_pa, pt_cached);
        self.machine.charge(c);
        if let Some(pte_pa) = walk.pte_entry_pa {
            // Load 3: the PTE itself.
            let c = self.machine.mem.data_read(pte_pa, pt_cached);
            self.machine.charge(c);
        }
        match walk.pte {
            Some(pte) => self.install_translation(
                va,
                pte.pfn(),
                pte.cached(),
                pte.writable(),
                at,
                insert_htab,
            ),
            None if is_kernel_linear(ea) => {
                // The kernel linear map is definitionally valid: build the
                // missing kernel PTE on first touch (boot-time population,
                // charged once).
                self.install_kernel_linear(ea, va, at)
            }
            None => false,
        }
    }

    /// Creates the kernel linear-map PTE for `ea` and installs it.
    fn install_kernel_linear(
        &mut self,
        ea: EffectiveAddress,
        va: VirtualAddress,
        at: AccessType,
    ) -> bool {
        let pfn = layout::kva_to_pa(ea) >> 12;
        let pte = crate::linuxpt::LinuxPte::present(pfn, crate::linuxpt::PTE_RW);
        let pt = self.kernel_pt;
        let frames = &mut self.frames;
        pt.map(&mut self.phys, ea, pte, || frames.get_pt_page())
            .expect("page-table pool exhausted for kernel map");
        let insert = self.uses_htab();
        self.install_translation(va, pfn, true, true, at, insert)
    }

    /// Whether this kernel keeps PTEs in the hash table at all.
    pub fn uses_htab(&self) -> bool {
        match self.machine.cfg.model {
            ppc_machine::CpuModel::Ppc604 => true,
            ppc_machine::CpuModel::Ppc603 => self.cfg.htab_on_603,
        }
    }

    /// Installs a translation into the TLB (and the hash table when asked),
    /// charging the insert traffic and classifying any displaced entry.
    fn install_translation(
        &mut self,
        va: VirtualAddress,
        pfn: u32,
        cached: bool,
        writable: bool,
        at: AccessType,
        insert_htab: bool,
    ) -> bool {
        // Legality begins now, before the physical insert: the hash-table
        // span below ends with a span transition, and a heavy sweep landing
        // on it must already find the new entry legal.
        self.check_note_install(va, pfn, cached, writable);
        // An injected overflow behaves as if both candidate PTEGs were full:
        // the translation reaches the TLB but not the hash table, so the
        // next miss on it re-walks the Linux page tables.
        let insert_htab = if insert_htab && self.roll_injected_htab_overflow() {
            self.stats.htab_overflows += 1;
            false
        } else {
            insert_htab
        };
        if insert_htab {
            self.t_enter(Subsystem::HtabInsert);
            let hw_pte = ppc_mmu::pte::Pte {
                valid: true,
                vsid: va.vsid,
                secondary: false,
                page_index: va.page_index,
                rpn: pfn,
                referenced: true,
                changed: at == AccessType::DataWrite,
                cache_inhibited: !cached,
                pp: if writable { 2 } else { 1 },
            };
            let htab_cached = self.cfg.htab_cached;
            let mut cost: Cycles = 0;
            let machine = &mut self.machine;
            let out = self.htab.insert_with(hw_pte, |pa| {
                cost += machine.mem.data_read(pa, htab_cached);
            });
            // The final slot write.
            let (g, s) = out.location;
            let pa = self.htab.slot_pa(g, s);
            cost += self.machine.mem.data_write(pa, htab_cached);
            self.machine.charge(cost);
            if out.overflow {
                self.stats.htab_overflows += 1;
            }
            let evicted = out.displaced.is_some_and(|d| d.valid);
            self.t_event(|| TraceEvent::HtabInsert { pteg: g, evicted });
            if let Some(t) = self.tracer.as_mut() {
                t.count_htab_insert(g, evicted);
            }
            if let Some(d) = out.displaced {
                if d.valid {
                    if self.vsids.is_live(d.vsid) {
                        self.stats.evict_live += 1;
                    } else {
                        self.stats.evict_zombie += 1;
                    }
                    if self.cfg.scarcity_reclaim {
                        // The §7-rejected design: the table just proved
                        // scarce, so scan a batch for zombies *now*, on the
                        // faulting task's time.
                        let cached = self.cfg.htab_cached;
                        self.reclaim_chunk(32, cached);
                    }
                }
            }
            self.t_exit();
        }
        self.machine.mmu.reload(
            at,
            ppc_mmu::tlb::TlbEntry {
                vsid: va.vsid,
                page_index: va.page_index,
                rpn: pfn,
                cached,
                writable,
            },
        );
        self.stats.tlb_reloads += 1;
        true
    }

    /// Rolls the injector for an allocation failure; counts a hit.
    pub(crate) fn roll_injected_alloc_fail(&mut self) -> bool {
        let hit = self.injector.as_mut().is_some_and(|i| i.roll_alloc_fail());
        if hit {
            self.stats.injected_faults += 1;
        }
        hit
    }

    /// Rolls the injector for a hash-table insertion overflow; counts a hit.
    pub(crate) fn roll_injected_htab_overflow(&mut self) -> bool {
        let hit = self
            .injector
            .as_mut()
            .is_some_and(|i| i.roll_htab_overflow());
        if hit {
            self.stats.injected_faults += 1;
        }
        hit
    }

    /// Rolls the injector for a forced TLB-reload miss; counts a hit.
    pub(crate) fn roll_injected_tlb_fault(&mut self) -> bool {
        let hit = self.injector.as_mut().is_some_and(|i| i.roll_tlb_fault());
        if hit {
            self.stats.injected_faults += 1;
        }
        hit
    }

    /// Rolls the injector for a post-rehash TLB flush; counts a hit.
    pub(crate) fn roll_injected_rehash_flush(&mut self) -> bool {
        let hit = self
            .injector
            .as_mut()
            .is_some_and(|i| i.roll_rehash_flush());
        if hit {
            self.stats.injected_faults += 1;
        }
        hit
    }

    /// Rolls the injector for a post-retune reclaim sweep; counts a hit.
    pub(crate) fn roll_injected_retune_sweep(&mut self) -> bool {
        let hit = self
            .injector
            .as_mut()
            .is_some_and(|i| i.roll_retune_sweep());
        if hit {
            self.stats.injected_faults += 1;
        }
        hit
    }

    /// Rolls the injector for an early unwind-time context flush; counts a
    /// hit.
    pub(crate) fn roll_injected_unwind_flush(&mut self) -> bool {
        let hit = self
            .injector
            .as_mut()
            .is_some_and(|i| i.roll_unwind_flush());
        if hit {
            self.stats.injected_faults += 1;
        }
        hit
    }

    /// Snapshot of kernel + machine statistics for a measurement window.
    pub fn stats_snapshot(&self) -> (KernelStats, ppc_machine::MonitorSnapshot) {
        (self.stats, self.machine.snapshot())
    }

    /// Converts a cycle count to microseconds on this machine's clock.
    pub fn time_us(&self, cycles: Cycles) -> f64 {
        self.machine.time_of(cycles).as_us()
    }

    /// Number of frames currently shared copy-on-write between address
    /// spaces.
    pub fn shared_frames_len(&self) -> usize {
        self.shared_frames.len()
    }
}
