//! Kernel pipes.

use ppc_mmu::addr::{PhysAddr, PAGE_SIZE};

use crate::errors::KResult;
use crate::kernel::Kernel;
use crate::layout::{pa_to_kva, KernelPath};

/// A pipe: a one-page kernel ring buffer plus waiter bookkeeping.
#[derive(Debug, Clone)]
pub struct Pipe {
    /// Physical address of the ring-buffer page.
    pub buf_pa: PhysAddr,
    /// Ring capacity in bytes (one page, like classic Linux).
    pub capacity: u32,
    /// Read cursor.
    pub head: u32,
    /// Bytes currently buffered.
    pub len: u32,
    /// Task slot blocked reading, if any.
    pub reader_waiting: Option<usize>,
    /// Task slot blocked writing, if any.
    pub writer_waiting: Option<usize>,
    /// Total bytes ever transferred.
    pub total_bytes: u64,
}

impl Kernel {
    /// Creates a pipe, returning its id, or `ENOMEM` when no frame can be
    /// found for the ring buffer.
    pub fn pipe_create(&mut self) -> KResult<usize> {
        let pa = self.get_free_page_charged(false)?;
        self.pipes.push(Pipe {
            buf_pa: pa,
            capacity: PAGE_SIZE,
            head: 0,
            len: 0,
            reader_waiting: None,
            writer_waiting: None,
            total_bytes: 0,
        });
        Ok(self.pipes.len() - 1)
    }

    /// `write(pipe, buf, len)`: copies user bytes into the ring, blocking
    /// (switching to the reader) when full.
    ///
    /// # Panics
    ///
    /// Panics on a nonexistent pipe or on simulated deadlock.
    pub fn pipe_write(&mut self, pipe: usize, user_ea: u32, len: u32) -> KResult<()> {
        self.syscall_entry();
        let insns = self.paths.pipe_op;
        self.run_kernel_path(KernelPath::Pipe, insns);
        self.kmeta_ref(0xc000 + pipe as u32 * 13, true);
        let mut written = 0;
        while written < len {
            let (space, tail_off) = {
                let p = &self.pipes[pipe];
                (p.capacity - p.len, (p.head + p.len) % p.capacity)
            };
            if space == 0 {
                // Wake the reader and sleep until drained.
                let cur = self.current.expect("pipe write with no current task");
                if let Some(r) = self.pipes[pipe].reader_waiting.take() {
                    self.wake(r);
                }
                self.pipes[pipe].writer_waiting = Some(cur);
                self.block_current();
                continue;
            }
            let chunk = space
                .min(len - written)
                .min(self.pipes[pipe].capacity - tail_off);
            let buf_pa = self.pipes[pipe].buf_pa;
            self.copy_user_kernel(user_ea + written, buf_pa + tail_off, chunk, true)?;
            {
                let p = &mut self.pipes[pipe];
                p.len += chunk;
                p.total_bytes += chunk as u64;
            }
            written += chunk;
            if let Some(r) = self.pipes[pipe].reader_waiting.take() {
                self.wake(r);
            }
        }
        self.syscall_exit();
        Ok(())
    }

    /// `read(pipe, buf, len)`: copies bytes from the ring to user memory,
    /// blocking (switching to the writer) when empty.
    ///
    /// # Panics
    ///
    /// Panics on a nonexistent pipe or on simulated deadlock.
    pub fn pipe_read(&mut self, pipe: usize, user_ea: u32, len: u32) -> KResult<()> {
        self.syscall_entry();
        let insns = self.paths.pipe_op;
        self.run_kernel_path(KernelPath::Pipe, insns);
        self.kmeta_ref(0xc000 + pipe as u32 * 13, true);
        let mut read = 0;
        while read < len {
            let (avail, head) = {
                let p = &self.pipes[pipe];
                (p.len, p.head)
            };
            if avail == 0 {
                let cur = self.current.expect("pipe read with no current task");
                if let Some(w) = self.pipes[pipe].writer_waiting.take() {
                    self.wake(w);
                }
                self.pipes[pipe].reader_waiting = Some(cur);
                self.block_current();
                continue;
            }
            let chunk = avail.min(len - read).min(self.pipes[pipe].capacity - head);
            let buf_pa = self.pipes[pipe].buf_pa;
            self.copy_user_kernel(user_ea + read, buf_pa + head, chunk, false)?;
            {
                let p = &mut self.pipes[pipe];
                p.len -= chunk;
                p.head = (p.head + chunk) % p.capacity;
            }
            read += chunk;
            if let Some(w) = self.pipes[pipe].writer_waiting.take() {
                self.wake(w);
            }
        }
        self.syscall_exit();
        Ok(())
    }

    /// Bulk transfer: the writer's single `write(len)` against the reader's
    /// single `read(len)`, interleaved through the one-page ring exactly as
    /// the two blocking processes would execute: one syscall each, one
    /// context switch per ring fill/drain. This is `bw_pipe`'s inner loop.
    ///
    /// # Panics
    ///
    /// Panics if either PID does not exist.
    pub fn pipe_transfer(
        &mut self,
        pipe: usize,
        writer: crate::task::Pid,
        reader: crate::task::Pid,
        src_ea: u32,
        dst_ea: u32,
        len: u32,
    ) -> KResult<()> {
        let insns = self.paths.pipe_op;
        // Writer enters write().
        self.switch_to(writer);
        self.syscall_entry();
        self.run_kernel_path(KernelPath::Pipe, insns);
        let cap = self.pipes[pipe].capacity;
        let mut reader_entered = false;
        let mut moved = 0;
        while moved < len {
            let chunk = cap.min(len - moved);
            // Fill the ring.
            let buf_pa = self.pipes[pipe].buf_pa;
            self.copy_user_kernel(src_ea + moved, buf_pa, chunk, true)?;
            self.pipes[pipe].total_bytes += chunk as u64;
            // Ring full: writer sleeps, reader runs and drains.
            self.switch_to(reader);
            if !reader_entered {
                self.syscall_entry();
                self.run_kernel_path(KernelPath::Pipe, insns);
                reader_entered = true;
            }
            self.copy_user_kernel(dst_ea + moved, buf_pa, chunk, false)?;
            // Per-buffer bookkeeping (wakeups; Mach VM/IPC machinery).
            let chunk_insns = self.paths.pipe_chunk_insns;
            self.run_kernel_path(KernelPath::Pipe, chunk_insns);
            moved += chunk;
            if moved < len {
                self.switch_to(writer);
            }
        }
        // Reader returns; writer's return is charged without a re-switch.
        self.syscall_exit();
        self.syscall_exit();
        Ok(())
    }

    /// Copies between user memory and a kernel buffer, through the data
    /// cache on both sides, one reference per line. Runs `pipe_copies` times
    /// (a user-level-server OS copies twice per side).
    pub(crate) fn copy_user_kernel(
        &mut self,
        user_ea: u32,
        kernel_pa: PhysAddr,
        bytes: u32,
        to_kernel: bool,
    ) -> KResult<()> {
        let copies = self.paths.pipe_copies.max(1);
        for _ in 0..copies {
            let line = 32;
            let mut off = 0;
            while off < bytes {
                let u = ppc_mmu::addr::EffectiveAddress(user_ea + off);
                let k = pa_to_kva(kernel_pa + off);
                if to_kernel {
                    self.data_ref(u, false)?;
                    self.data_ref(k, true)?;
                } else {
                    self.data_ref(k, false)?;
                    self.data_ref(u, true)?;
                }
                // The word-copy loop: the remaining loads/stores of the
                // line hit the L1; charge their pipeline work.
                self.machine.charge(10);
                off += line;
            }
        }
        Ok(())
    }
}
