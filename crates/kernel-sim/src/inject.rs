//! Deterministic, seeded fault injection.
//!
//! Real kernels are hardened by running under adversity; the simulator
//! gains the same leverage by *injecting* the three fault families the
//! paper's mechanisms exist to absorb:
//!
//! * **allocation failures** — `get_free_page()` behaves as if the free
//!   list were empty, forcing the memory-pressure path (pre-cleared-list
//!   drain, zombie reclaim, page-cache eviction, OOM killer),
//! * **hash-table insertion overflow** — a reload skips the hash-table
//!   insert as if both PTEGs were full, so the next miss re-walks the
//!   Linux page tables (the overflow cost, §7),
//! * **TLB-reload faults** — a hash-table lookup is forced to miss,
//!   charging the full Linux page-table walk.
//!
//! Injection is a pure function of the seed and the sequence of decision
//! points, so two runs with the same seed and workload produce
//! *bit-identical* statistics — a property the test suite asserts.

/// Injection configuration: per-decision fault probabilities, expressed as
/// numerators over 2^16 (0 = never, 65535 ≈ always). Lives in
/// [`crate::KernelConfig::fault_injection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjection {
    /// RNG seed. Same seed + same workload = bit-identical stats.
    pub seed: u64,
    /// Probability (over 2^16) that an allocation must take the pressure
    /// path even though the free list has frames.
    pub alloc_fail_per_64k: u16,
    /// Probability (over 2^16) that a hash-table insert is treated as an
    /// overflow (entry goes to the TLB only).
    pub htab_overflow_per_64k: u16,
    /// Probability (over 2^16) that a hash-table lookup during TLB reload
    /// is forced to miss.
    pub tlb_fault_per_64k: u16,
}

impl FaultInjection {
    /// Mild background adversity: roughly 1 in 64 allocations, inserts and
    /// lookups fault.
    pub fn light(seed: u64) -> Self {
        Self {
            seed,
            alloc_fail_per_64k: 1024,
            htab_overflow_per_64k: 1024,
            tlb_fault_per_64k: 1024,
        }
    }

    /// Heavy adversity: roughly 1 in 8 decisions fault.
    pub fn heavy(seed: u64) -> Self {
        Self {
            seed,
            alloc_fail_per_64k: 8192,
            htab_overflow_per_64k: 8192,
            tlb_fault_per_64k: 8192,
        }
    }
}

/// The runtime injector state (xorshift64*, seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultInjection,
    state: u64,
}

impl FaultInjector {
    /// Builds the injector for a configuration.
    pub fn new(cfg: FaultInjection) -> Self {
        let mut z = cfg.seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Self {
            cfg,
            state: (z ^ (z >> 31)) | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn roll(&mut self, rate: u16) -> bool {
        // Always advance the stream so the decision *sequence* (not just the
        // outcomes) is identical across configs with different rates.
        let r = self.next_u64() & 0xffff;
        rate != 0 && r < rate as u64
    }

    /// Should this allocation be forced onto the pressure path?
    pub fn roll_alloc_fail(&mut self) -> bool {
        let rate = self.cfg.alloc_fail_per_64k;
        self.roll(rate)
    }

    /// Should this hash-table insert be treated as an overflow?
    pub fn roll_htab_overflow(&mut self) -> bool {
        let rate = self.cfg.htab_overflow_per_64k;
        self.roll(rate)
    }

    /// Should this hash-table lookup be forced to miss?
    pub fn roll_tlb_fault(&mut self) -> bool {
        let rate = self.cfg.tlb_fault_per_64k;
        self.roll(rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultInjector::new(FaultInjection::light(42));
        let mut b = FaultInjector::new(FaultInjection::light(42));
        for _ in 0..10_000 {
            assert_eq!(a.roll_alloc_fail(), b.roll_alloc_fail());
            assert_eq!(a.roll_htab_overflow(), b.roll_htab_overflow());
            assert_eq!(a.roll_tlb_fault(), b.roll_tlb_fault());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(FaultInjection::heavy(1));
        let mut b = FaultInjector::new(FaultInjection::heavy(2));
        let fa: Vec<bool> = (0..512).map(|_| a.roll_alloc_fail()).collect();
        let fb: Vec<bool> = (0..512).map(|_| b.roll_alloc_fail()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn rates_roughly_respected() {
        let mut i = FaultInjector::new(FaultInjection {
            seed: 7,
            alloc_fail_per_64k: 16384, // 1 in 4
            htab_overflow_per_64k: 0,
            tlb_fault_per_64k: 65535,
        });
        let n = 100_000;
        let hits = (0..n).filter(|_| i.roll_alloc_fail()).count();
        assert!((n / 5..n / 3).contains(&hits), "got {hits}/{n}");
        assert!(!(0..1000).any(|_| i.roll_htab_overflow()), "rate 0 never fires");
        assert!((0..1000).all(|_| i.roll_tlb_fault()), "rate 65535 ~always fires");
    }
}
