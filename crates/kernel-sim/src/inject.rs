//! Deterministic, seeded fault injection.
//!
//! Real kernels are hardened by running under adversity; the simulator
//! gains the same leverage by *injecting* the three fault families the
//! paper's mechanisms exist to absorb:
//!
//! * **allocation failures** — `get_free_page()` behaves as if the free
//!   list were empty, forcing the memory-pressure path (pre-cleared-list
//!   drain, zombie reclaim, page-cache eviction, OOM killer),
//! * **hash-table insertion overflow** — a reload skips the hash-table
//!   insert as if both PTEGs were full, so the next miss re-walks the
//!   Linux page tables (the overflow cost, §7),
//! * **TLB-reload faults** — a hash-table lookup is forced to miss,
//!   charging the full Linux page-table walk.
//!
//! Injection is a pure function of the seed and the sequence of decision
//! points, so two runs with the same seed and workload produce
//! *bit-identical* statistics — a property the test suite asserts.

/// Injection configuration: per-decision fault probabilities, expressed as
/// numerators over 2^16 (0 = never, 65535 ≈ always). Lives in
/// [`crate::KernelConfig::fault_injection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjection {
    /// RNG seed. Same seed + same workload = bit-identical stats.
    pub seed: u64,
    /// Probability (over 2^16) that an allocation must take the pressure
    /// path even though the free list has frames.
    pub alloc_fail_per_64k: u16,
    /// Probability (over 2^16) that a hash-table insert is treated as an
    /// overflow (entry goes to the TLB only).
    pub htab_overflow_per_64k: u16,
    /// Probability (over 2^16) that a hash-table lookup during TLB reload
    /// is forced to miss.
    pub tlb_fault_per_64k: u16,
    /// Probability (over 2^16) that a hash-table rehash is chased by an
    /// extra full TLB flush mid-operation (adversarial timing inside
    /// `apply_retune`'s resize).
    pub rehash_flush_per_64k: u16,
    /// Probability (over 2^16) that an mmtune retune is followed by a
    /// forced zombie-reclaim sweep (stressing retune/reclaim interleaving).
    pub retune_sweep_per_64k: u16,
    /// Probability (over 2^16) that a fatal-signal unwind flushes the dying
    /// context *early*, before teardown flushes it again (double-retire
    /// adversity).
    pub unwind_flush_per_64k: u16,
}

impl FaultInjection {
    /// Mild background adversity: roughly 1 in 64 allocations, inserts and
    /// lookups fault. The chaos-only families stay off so pre-existing
    /// baselines keep their exact decision stream.
    pub fn light(seed: u64) -> Self {
        Self {
            seed,
            alloc_fail_per_64k: 1024,
            htab_overflow_per_64k: 1024,
            tlb_fault_per_64k: 1024,
            rehash_flush_per_64k: 0,
            retune_sweep_per_64k: 0,
            unwind_flush_per_64k: 0,
        }
    }

    /// Heavy adversity: roughly 1 in 8 decisions fault (chaos-only families
    /// off, as in [`FaultInjection::light`]).
    pub fn heavy(seed: u64) -> Self {
        Self {
            seed,
            alloc_fail_per_64k: 8192,
            htab_overflow_per_64k: 8192,
            tlb_fault_per_64k: 8192,
            rehash_flush_per_64k: 0,
            retune_sweep_per_64k: 0,
            unwind_flush_per_64k: 0,
        }
    }

    /// Full-spectrum adversity for `repro chaos`: every family armed,
    /// including the mutation-site families inside rehash, retune, and
    /// fatal-signal unwind.
    pub fn chaotic(seed: u64) -> Self {
        Self {
            seed,
            alloc_fail_per_64k: 4096,
            htab_overflow_per_64k: 4096,
            tlb_fault_per_64k: 4096,
            rehash_flush_per_64k: 16384,
            retune_sweep_per_64k: 16384,
            unwind_flush_per_64k: 8192,
        }
    }
}

/// The runtime injector state (xorshift64*, seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultInjection,
    state: u64,
}

impl FaultInjector {
    /// Builds the injector for a configuration.
    pub fn new(cfg: FaultInjection) -> Self {
        let mut z = cfg.seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Self {
            cfg,
            state: (z ^ (z >> 31)) | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn roll(&mut self, rate: u16) -> bool {
        // Always advance the stream so the decision *sequence* (not just the
        // outcomes) is identical across configs with different rates.
        let r = self.next_u64() & 0xffff;
        rate != 0 && r < rate as u64
    }

    /// Should this allocation be forced onto the pressure path?
    pub fn roll_alloc_fail(&mut self) -> bool {
        let rate = self.cfg.alloc_fail_per_64k;
        self.roll(rate)
    }

    /// Should this hash-table insert be treated as an overflow?
    pub fn roll_htab_overflow(&mut self) -> bool {
        let rate = self.cfg.htab_overflow_per_64k;
        self.roll(rate)
    }

    /// Should this hash-table lookup be forced to miss?
    pub fn roll_tlb_fault(&mut self) -> bool {
        let rate = self.cfg.tlb_fault_per_64k;
        self.roll(rate)
    }

    // The chaos-only families below must NOT advance the stream when their
    // rate is zero: pre-existing baselines (light/heavy presets) never
    // rolled at these sites, and consuming randomness here would shift every
    // later decision and shatter bit-identity with recorded artifacts.

    /// Should this hash-table rehash be chased by an extra TLB flush?
    pub fn roll_rehash_flush(&mut self) -> bool {
        let rate = self.cfg.rehash_flush_per_64k;
        if rate == 0 {
            return false;
        }
        self.roll(rate)
    }

    /// Should this retune be followed by a forced reclaim sweep?
    pub fn roll_retune_sweep(&mut self) -> bool {
        let rate = self.cfg.retune_sweep_per_64k;
        if rate == 0 {
            return false;
        }
        self.roll(rate)
    }

    /// Should this fatal-signal unwind flush the dying context early?
    pub fn roll_unwind_flush(&mut self) -> bool {
        let rate = self.cfg.unwind_flush_per_64k;
        if rate == 0 {
            return false;
        }
        self.roll(rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultInjector::new(FaultInjection::light(42));
        let mut b = FaultInjector::new(FaultInjection::light(42));
        for _ in 0..10_000 {
            assert_eq!(a.roll_alloc_fail(), b.roll_alloc_fail());
            assert_eq!(a.roll_htab_overflow(), b.roll_htab_overflow());
            assert_eq!(a.roll_tlb_fault(), b.roll_tlb_fault());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(FaultInjection::heavy(1));
        let mut b = FaultInjector::new(FaultInjection::heavy(2));
        let fa: Vec<bool> = (0..512).map(|_| a.roll_alloc_fail()).collect();
        let fb: Vec<bool> = (0..512).map(|_| b.roll_alloc_fail()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn rates_roughly_respected() {
        let mut i = FaultInjector::new(FaultInjection {
            seed: 7,
            alloc_fail_per_64k: 16384, // 1 in 4
            htab_overflow_per_64k: 0,
            tlb_fault_per_64k: 65535,
            rehash_flush_per_64k: 0,
            retune_sweep_per_64k: 0,
            unwind_flush_per_64k: 0,
        });
        let n = 100_000;
        let hits = (0..n).filter(|_| i.roll_alloc_fail()).count();
        assert!((n / 5..n / 3).contains(&hits), "got {hits}/{n}");
        assert!(
            !(0..1000).any(|_| i.roll_htab_overflow()),
            "rate 0 never fires"
        );
        assert!(
            (0..1000).all(|_| i.roll_tlb_fault()),
            "rate 65535 ~always fires"
        );
    }

    #[test]
    fn chaos_families_at_zero_rate_are_stream_neutral() {
        // A light-preset injector interleaved with disarmed chaos rolls must
        // produce the same decision stream as one that never rolls them —
        // otherwise adding the new sites would shift old baselines.
        let mut a = FaultInjector::new(FaultInjection::light(42));
        let mut b = FaultInjector::new(FaultInjection::light(42));
        for _ in 0..10_000 {
            assert!(!a.roll_rehash_flush());
            assert!(!a.roll_retune_sweep());
            assert!(!a.roll_unwind_flush());
            assert_eq!(a.roll_alloc_fail(), b.roll_alloc_fail());
            assert_eq!(a.roll_tlb_fault(), b.roll_tlb_fault());
        }
    }

    #[test]
    fn chaotic_preset_arms_every_family() {
        let mut i = FaultInjector::new(FaultInjection::chaotic(3));
        let n = 10_000;
        assert!((0..n).filter(|_| i.roll_rehash_flush()).count() > 0);
        assert!((0..n).filter(|_| i.roll_retune_sweep()).count() > 0);
        assert!((0..n).filter(|_| i.roll_unwind_flush()).count() > 0);
    }
}
