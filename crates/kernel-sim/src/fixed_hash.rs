//! Deterministic hashing for simulator-state collections.
//!
//! `std`'s `HashMap` draws a fresh random seed per map instance. Lookup
//! results are unaffected, but *allocation behavior* is not: once a map has
//! seen removals, the decision between rehashing in place and growing to a
//! fresh table depends on where the seed scattered the surviving entries.
//! The host profiler ([`crate::hostprof`]) counts every allocation, and the
//! hostbench artifact gates on those counts being byte-identical across
//! processes — so every sim-state map that sees removals uses this
//! fixed-seed FNV-1a hasher instead. Same semantics, reproducible host
//! profile.
//!
//! Simulated behavior never depends on map iteration order (the
//! cross-process determinism of every committed artifact already proves
//! that under per-process random order), so pinning the order is safe.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FNV-1a. Not DoS-resistant — these maps are keyed by simulator
/// state, never by external input.
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The fixed-seed hasher factory.
pub type DetBuildHasher = BuildHasherDefault<FnvHasher>;

/// `HashMap` with process-independent hashing (construct with `default()`).
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, DetBuildHasher>;

/// `HashSet` with process-independent hashing (construct with `default()`).
pub type DetHashSet<T> = std::collections::HashSet<T, DetBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference FNV-1a 64 digests ("" and "a") from the FNV spec.
        let mut h = FnvHasher::default();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = FnvHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn det_map_accepts_inserts_and_removals() {
        let mut m: DetHashMap<u32, u32> = DetHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        for i in (0..100).step_by(2) {
            m.remove(&i);
        }
        assert_eq!(m.len(), 50);
        assert_eq!(m.get(&3), Some(&6));
    }
}
