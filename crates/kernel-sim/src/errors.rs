//! In-model kernel faults.
//!
//! The paper's kernel survives conditions this simulation used to
//! host-panic on: a bad user access delivers SIGSEGV, memory pressure runs
//! reclaim and (at the limit) the OOM killer, and hash-table overflow
//! evicts rather than aborts. [`KernelError`] is the in-model fault channel:
//! every path a user-shaped workload can drive returns
//! [`KResult`], and an `Err` means *the simulated kernel handled a fault*
//! (and charged its real costs), not that the simulator broke.
//!
//! Host panics remain only for genuine simulator invariant violations
//! (overlapping VMA insertion by a harness, translation non-convergence,
//! boot-time pool exhaustion) — see the "Fault model" section of DESIGN.md
//! and `tools/panic_audit.sh`.

/// The fatal signals the simulated kernel delivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Access outside every VMA, or a true write-protection violation.
    Segv,
    /// Access through a file mapping past end of file.
    Bus,
    /// The OOM killer's uncatchable kill.
    Kill,
}

impl std::fmt::Display for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Signal::Segv => "SIGSEGV",
            Signal::Bus => "SIGBUS",
            Signal::Kill => "SIGKILL",
        })
    }
}

/// An in-model kernel fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// The current task received a fatal signal and was torn down. The
    /// kernel has already charged delivery costs, freed the task's memory,
    /// and switched to the next runnable task (if any). Callers driving the
    /// dead task must stop issuing work on its behalf.
    Fatal {
        /// Which signal was delivered.
        signal: Signal,
        /// The faulting effective address (0 when not address-driven).
        ea: u32,
    },
    /// `ENOMEM`: the operation could not get memory even after reclaim. The
    /// calling task is still alive; the syscall failed cleanly.
    OutOfMemory,
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Fatal { signal, ea } => {
                write!(f, "task killed by {signal} at ea {ea:#x}")
            }
            KernelError::OutOfMemory => f.write_str("out of memory (ENOMEM)"),
        }
    }
}

impl std::error::Error for KernelError {}

impl KernelError {
    /// Whether this error killed the current task.
    pub fn is_fatal(&self) -> bool {
        matches!(self, KernelError::Fatal { .. })
    }
}

/// Result of every fallible kernel path.
pub type KResult<T> = Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_signals() {
        let e = KernelError::Fatal {
            signal: Signal::Segv,
            ea: 0x1234,
        };
        assert!(e.to_string().contains("SIGSEGV"));
        assert!(e.to_string().contains("0x1234"));
        assert!(e.is_fatal());
        assert!(!KernelError::OutOfMemory.is_fatal());
        assert_eq!(Signal::Bus.to_string(), "SIGBUS");
        assert_eq!(Signal::Kill.to_string(), "SIGKILL");
    }
}
