//! PMU-guided adaptive MMU tuning (`mmtune`) — the §7 "looks inefficient"
//! observation closed into a control loop.
//!
//! The paper left the BAT layout, the hash-table size, and the VSID scatter
//! constant statically chosen and measured them with the 604's performance
//! monitor by hand. This module puts the monitor in the loop: an epoch
//! controller on the same span-transition boundary the telemetry sampler
//! uses ([`crate::telemetry`]) reads PMU event deltas — BAT hits vs TLB
//! misses ([`PmcEvent::BatHitBoth`] / [`PmcEvent::TlbMissBoth`]) and
//! threshold-exceeded slow reloads ([`PmcEvent::ThresholdExceeded`]) — plus
//! the PTEG collision pressure the heatmap renders (full groups, live
//! occupancy, overflow counts read straight from the kernel's structures, so
//! decisions never depend on whether tracing is enabled), and online adjusts
//! three knobs:
//!
//! * **BAT coverage** — program the §5.1 kernel BAT pair when the PMU sees
//!   kernel-side reload traffic with zero BAT hits;
//! * **hash-table size** — grow or shrink (with a full rehash whose memory
//!   traffic is charged honestly, like every other kernel path) when
//!   collision pressure or cache-footprint waste crosses a bound;
//! * **VSID scatter constant** — retune toward the §5.2 constant when
//!   overflow pressure shows the current spread is hot-spotting.
//!
//! # Hysteresis: why the controller cannot oscillate
//!
//! Every knob moves through a **one-way door**, at most one knob moves per
//! epoch, and every move starts a cooldown of [`MmtuneConfig::cooldown_epochs`]
//! epochs:
//!
//! * BAT coverage only ever turns *on* (off→on once);
//! * the scatter constant retunes *at most once* per run;
//! * the hash table may shrink repeatedly and grow repeatedly, but never
//!   shrinks again after its first grow — the shrink phase is over the
//!   moment collision pressure pushes back.
//!
//! The total number of retune decisions in any run is therefore bounded by
//! `2 + 2·log2(max_groups / min_groups)` regardless of workload length, and
//! a shrink→grow→shrink cycle is structurally impossible. The *cost* bound
//! that follows (each decision charges a bounded rehash or a few register
//! writes) is what the E-TUNE gate's "never loses by more than the
//! hysteresis bound" clause pins.
//!
//! When [`crate::kconfig::KernelConfig::mmtune`] is `None` the kernel
//! carries no controller and the poll is a single branch — mmtune-off runs
//! are cycle-identical to pre-mmtune kernels, and a proptest asserts it.

use ppc_machine::pmu::{Mmcr0, PmcEvent, Pmu};
use ppc_machine::{Cycles, MonitorSnapshot};

use crate::stats::KernelStats;

/// Default tuning epoch width in cycles (matches the telemetry default).
pub const DEFAULT_EPOCH_CYCLES: u64 = 65_536;

/// Controller configuration. All thresholds are integers (ppm where a
/// ratio is meant) so decisions — and therefore whole runs — stay exactly
/// deterministic and artifact-diffable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmtuneConfig {
    /// Epoch width in cycles; the controller evaluates once per crossed
    /// boundary, at the first span transition past it.
    pub epoch_cycles: u64,
    /// Smallest hash table the shrink knob may reach, in PTEGs.
    pub min_groups: u32,
    /// Largest hash table the grow knob may reach, in PTEGs. Must not
    /// exceed the layout reservation ([`crate::layout::HTAB_GROUPS`]).
    pub max_groups: u32,
    /// Shrink the table when *live* occupancy (live entries / capacity,
    /// ppm) falls below this — the probe working set is wasting cache.
    pub shrink_live_ppm: u32,
    /// Grow the table when the full-group fraction (full PTEGs / PTEGs,
    /// ppm) exceeds this — inserts are displacing live entries.
    pub grow_full_ppm: u32,
    /// Minimum TLB-miss deltas per epoch (PMC1, [`PmcEvent::TlbMissBoth`])
    /// before any htab move: a quiet MMU is not worth retuning.
    pub min_tlb_misses: u64,
    /// Enable the kernel BAT pair when an epoch sees at least this many
    /// kernel-side reloads while [`PmcEvent::BatHitBoth`] reads zero.
    pub bat_reload_threshold: u64,
    /// The scatter constant the one-shot scatter retune moves to (the
    /// paper's §5.2 tuned value).
    pub scatter_target: u32,
    /// Epochs every retune decision freezes the controller for.
    pub cooldown_epochs: u32,
    /// MMCR0 threshold (cycles) for the slow-reload counter (PMC2,
    /// [`PmcEvent::ThresholdExceeded`]): instrumented paths longer than
    /// this count as slow.
    pub slow_reload_cycles: u32,
}

impl Default for MmtuneConfig {
    fn default() -> Self {
        Self {
            epoch_cycles: DEFAULT_EPOCH_CYCLES,
            min_groups: 256,
            max_groups: crate::layout::HTAB_GROUPS,
            shrink_live_ppm: 120_000,
            grow_full_ppm: 40_000,
            min_tlb_misses: 32,
            bat_reload_threshold: 16,
            scatter_target: 897,
            cooldown_epochs: 2,
            slow_reload_cycles: 120,
        }
    }
}

impl MmtuneConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero epoch, a non-power-of-two or inverted group range,
    /// a group range exceeding the layout reservation, or a zero scatter
    /// target.
    pub fn validate(&self) {
        assert!(self.epoch_cycles > 0, "mmtune epoch width must be positive");
        assert!(
            self.min_groups.is_power_of_two() && self.max_groups.is_power_of_two(),
            "mmtune group bounds must be powers of two"
        );
        assert!(
            self.min_groups <= self.max_groups,
            "mmtune min_groups must not exceed max_groups"
        );
        assert!(
            self.max_groups <= crate::layout::HTAB_GROUPS,
            "mmtune max_groups exceeds the hash-table reservation \
             (growth past it would overlap the page-table pool)"
        );
        assert!(self.scatter_target > 0, "scatter target must be nonzero");
    }
}

/// Which knob a retune decision moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneKnob {
    /// The §5.1 kernel BAT pair was programmed.
    Bat,
    /// The hash table was rehashed to a new group count.
    HtabSize,
    /// The VSID scatter constant was retuned.
    Scatter,
}

impl TuneKnob {
    /// Stable machine-readable name (trace args, tune artifacts).
    pub fn name(self) -> &'static str {
        match self {
            TuneKnob::Bat => "bat",
            TuneKnob::HtabSize => "htab_size",
            TuneKnob::Scatter => "scatter",
        }
    }
}

/// One applied retune, as logged for traces, artifacts, and the
/// determinism proptest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetuneDecision {
    /// Cycle the decision was applied at.
    pub cycle: Cycles,
    /// Tuning epoch index (`cycle / epoch_cycles`).
    pub epoch: u64,
    /// The knob that moved.
    pub knob: TuneKnob,
    /// Value before (group count, scatter constant, or 0/1 for BATs).
    pub from: u32,
    /// Value after.
    pub to: u32,
}

/// A pending knob move the controller asks the kernel to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneAction {
    /// Program the kernel BAT pair (§5.1 layout).
    EnableBats,
    /// Retune the VSID scatter constant.
    SetScatter {
        /// Constant before.
        from: u32,
        /// Constant after.
        to: u32,
    },
    /// Rehash the hash table to a new group count.
    ResizeHtab {
        /// Groups before.
        from: u32,
        /// Groups after.
        to: u32,
    },
}

/// The epoch readings the kernel hands the controller (everything that
/// needs borrows of kernel structures, read before the controller mutates
/// anything — same split as [`crate::telemetry::MmuReadings`]).
#[derive(Debug, Clone, Copy)]
pub struct TuneInputs {
    /// Valid hash-table entries whose VSID is still live.
    pub htab_live: u32,
    /// Total PTE capacity of the table.
    pub htab_capacity: u32,
    /// Completely full PTEGs (the heatmap's saturated rows).
    pub full_groups: u32,
    /// Current group count.
    pub num_groups: u32,
    /// Whether this kernel keeps PTEs in the hash table at all
    /// ([`crate::kernel::Kernel::uses_htab`]).
    pub uses_htab: bool,
    /// The scatter constant currently in force.
    pub current_scatter: u32,
}

/// The controller state an mmtune-enabled kernel carries.
#[derive(Debug, Clone)]
pub struct Mmtune {
    /// Configuration.
    pub cfg: MmtuneConfig,
    /// The controller's own counting PMU: PMC1 counts
    /// [`PmcEvent::TlbMissBoth`], PMC2 counts
    /// [`PmcEvent::ThresholdExceeded`] over
    /// [`MmtuneConfig::slow_reload_cycles`]. Synced once per epoch; fed
    /// duration events from the same `t_exit_lat` hook as the machine PMU.
    pub pmu: Pmu,
    /// Every applied retune, oldest first.
    pub decisions: Vec<RetuneDecision>,
    /// Next cycle boundary that triggers an evaluation.
    next_boundary: Cycles,
    /// Machine counters at the previous evaluation (for BAT-hit deltas).
    last_snap: MonitorSnapshot,
    /// Kernel counters at the previous evaluation (for reload deltas).
    last_stats: KernelStats,
    /// One-way door: the BAT knob has fired (or BATs were on at boot).
    bats_on: bool,
    /// One-way door: the scatter knob has fired.
    scatter_done: bool,
    /// One-way door: the htab knob has grown — no more shrinks.
    grew: bool,
    /// Epochs left before the next decision may fire.
    cooldown: u32,
}

impl Mmtune {
    /// A fresh controller. `bats_on` is the boot-time BAT state (under the
    /// optimized §5.1 config the BAT knob starts satisfied and idles).
    pub fn new(cfg: MmtuneConfig, bats_on: bool) -> Self {
        cfg.validate();
        Self {
            cfg,
            pmu: Pmu::new(Mmcr0 {
                freeze: false,
                freeze_supervisor: false,
                freeze_problem: false,
                enint: false,
                threshold: cfg.slow_reload_cycles,
                pmc1: PmcEvent::TlbMissBoth,
                pmc2: PmcEvent::ThresholdExceeded,
            }),
            decisions: Vec::new(),
            next_boundary: cfg.epoch_cycles,
            last_snap: MonitorSnapshot::default(),
            last_stats: KernelStats::default(),
            bats_on,
            scatter_done: false,
            grew: false,
            cooldown: 0,
        }
    }

    /// Whether the ledger at `now` has crossed the next epoch boundary.
    #[inline]
    pub fn due(&self, now: Cycles) -> bool {
        now >= self.next_boundary
    }

    /// Evaluates one tuning epoch: syncs the controller PMU, reads the
    /// event deltas, and returns at most one knob move. Pure bookkeeping —
    /// the kernel applies (and charges) the returned action.
    pub fn observe(
        &mut self,
        now: Cycles,
        snap: &MonitorSnapshot,
        stats: &KernelStats,
        inp: TuneInputs,
    ) -> Option<TuneAction> {
        let epoch = now / self.cfg.epoch_cycles;
        self.next_boundary = (epoch + 1) * self.cfg.epoch_cycles;
        // PMU window: TLB misses and slow reloads since the last epoch.
        self.pmu.sync(snap, true);
        let tlb_misses = u64::from(self.pmu.read_pmc(0));
        let slow_reloads = u64::from(self.pmu.read_pmc(1));
        self.pmu.reset_counters();
        // BAT hits via the event select applied to the same window — the
        // counter a third PMC would hold if the 604 had one.
        let window = snap.delta(&self.last_snap);
        self.last_snap = *snap;
        let bat_hits = PmcEvent::BatHitBoth.count_in(&window);
        let d = stats.diff(&self.last_stats);
        self.last_stats = *stats;
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        // Knob 1 — BAT coverage (one-way: off→on). The §5.1 observation as
        // a rule: kernel-side reload traffic with zero BAT hits means the
        // kernel's footprint is churning the TLB for translations BATs
        // would serve for free.
        if !self.bats_on && bat_hits == 0 && d.kernel_reloads >= self.cfg.bat_reload_threshold {
            self.bats_on = true;
            self.cooldown = self.cfg.cooldown_epochs;
            return Some(TuneAction::EnableBats);
        }
        // Knob 2 — scatter constant (at most once). Overflow pressure with
        // an untuned constant means the hash is hot-spotting (§5.2).
        if inp.uses_htab
            && !self.scatter_done
            && inp.current_scatter != self.cfg.scatter_target
            && d.htab_overflows > 0
        {
            self.scatter_done = true;
            self.cooldown = self.cfg.cooldown_epochs;
            return Some(TuneAction::SetScatter {
                from: inp.current_scatter,
                to: self.cfg.scatter_target,
            });
        }
        // Knob 3 — hash-table size (shrink phase, then grow phase).
        if inp.uses_htab && tlb_misses >= self.cfg.min_tlb_misses {
            let live_ppm = u64::from(inp.htab_live) * 1_000_000 / u64::from(inp.htab_capacity);
            let full_ppm = u64::from(inp.full_groups) * 1_000_000 / u64::from(inp.num_groups);
            // Grow when full groups (or slow reloads — overflowing probe
            // chains are exactly what the threshold counter sees) say the
            // table is displacing live entries.
            if inp.num_groups < self.cfg.max_groups
                && (full_ppm > u64::from(self.cfg.grow_full_ppm) && slow_reloads > 0)
            {
                self.grew = true;
                self.cooldown = self.cfg.cooldown_epochs;
                return Some(TuneAction::ResizeHtab {
                    from: inp.num_groups,
                    to: inp.num_groups * 2,
                });
            }
            // Shrink while the live working set rattles around a table
            // whose probe footprint is polluting the data cache (§8) —
            // but never after a grow (the one-way door).
            if !self.grew
                && inp.num_groups > self.cfg.min_groups
                && live_ppm < u64::from(self.cfg.shrink_live_ppm)
            {
                self.cooldown = self.cfg.cooldown_epochs;
                return Some(TuneAction::ResizeHtab {
                    from: inp.num_groups,
                    to: inp.num_groups / 2,
                });
            }
        }
        None
    }

    /// Logs an applied decision (the kernel calls this after charging it).
    pub fn log(&mut self, d: RetuneDecision) {
        self.decisions.push(d);
    }

    /// The final knob values as `(knob, value)` pairs for artifacts: the
    /// last decision per knob, if any moved.
    pub fn final_values(&self) -> Vec<(TuneKnob, u32)> {
        let mut out = Vec::new();
        for knob in [TuneKnob::Bat, TuneKnob::HtabSize, TuneKnob::Scatter] {
            if let Some(d) = self.decisions.iter().rev().find(|d| d.knob == knob) {
                out.push((knob, d.to));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(live: u32, capacity: u32, full: u32, groups: u32) -> TuneInputs {
        TuneInputs {
            htab_live: live,
            htab_capacity: capacity,
            full_groups: full,
            num_groups: groups,
            uses_htab: true,
            current_scatter: 897,
        }
    }

    fn snap(cycles: u64, dtlb_misses: u64) -> MonitorSnapshot {
        let mut s = MonitorSnapshot {
            cycles,
            ..MonitorSnapshot::default()
        };
        s.dtlb.misses = dtlb_misses;
        s
    }

    #[test]
    fn default_config_validates() {
        MmtuneConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "reservation")]
    fn group_bound_cannot_exceed_layout() {
        MmtuneConfig {
            max_groups: crate::layout::HTAB_GROUPS * 2,
            ..MmtuneConfig::default()
        }
        .validate();
    }

    #[test]
    fn shrink_fires_on_low_live_occupancy_then_cools_down() {
        let cfg = MmtuneConfig {
            cooldown_epochs: 1,
            ..MmtuneConfig::default()
        };
        let mut m = Mmtune::new(cfg, true);
        assert!(m.due(cfg.epoch_cycles));
        // Plenty of misses, table nearly empty: shrink.
        let a = m.observe(
            cfg.epoch_cycles,
            &snap(cfg.epoch_cycles, 100),
            &KernelStats::default(),
            inputs(100, 2048 * 8, 0, 2048),
        );
        assert_eq!(
            a,
            Some(TuneAction::ResizeHtab {
                from: 2048,
                to: 1024
            })
        );
        // Cooldown epoch: same conditions, no decision.
        let a = m.observe(
            cfg.epoch_cycles * 2,
            &snap(cfg.epoch_cycles * 2, 200),
            &KernelStats::default(),
            inputs(100, 1024 * 8, 0, 1024),
        );
        assert_eq!(a, None);
        // Cooldown over: shrinks again, still monotone.
        let a = m.observe(
            cfg.epoch_cycles * 3,
            &snap(cfg.epoch_cycles * 3, 300),
            &KernelStats::default(),
            inputs(100, 1024 * 8, 0, 1024),
        );
        assert_eq!(
            a,
            Some(TuneAction::ResizeHtab {
                from: 1024,
                to: 512
            })
        );
    }

    #[test]
    fn grow_closes_the_shrink_door() {
        let cfg = MmtuneConfig {
            cooldown_epochs: 0,
            ..MmtuneConfig::default()
        };
        let mut m = Mmtune::new(cfg, true);
        // Full-group pressure with slow reloads: grow. (The duration
        // counter needs a >threshold event fed first.)
        m.pmu.note_duration(u64::from(cfg.slow_reload_cycles) + 1, true);
        let a = m.observe(
            cfg.epoch_cycles,
            &snap(cfg.epoch_cycles, 100),
            &KernelStats::default(),
            inputs(4000, 512 * 8, 100, 512),
        );
        assert_eq!(
            a,
            Some(TuneAction::ResizeHtab {
                from: 512,
                to: 1024
            })
        );
        // Now a shrink-favourable epoch: the door is shut, no oscillation.
        let a = m.observe(
            cfg.epoch_cycles * 2,
            &snap(cfg.epoch_cycles * 2, 200),
            &KernelStats::default(),
            inputs(10, 1024 * 8, 0, 1024),
        );
        assert_eq!(a, None, "shrink after grow must be impossible");
    }

    #[test]
    fn bat_knob_fires_once_on_kernel_reloads_without_bat_hits() {
        let cfg = MmtuneConfig {
            cooldown_epochs: 0,
            ..MmtuneConfig::default()
        };
        let mut m = Mmtune::new(cfg, false);
        let stats = KernelStats {
            kernel_reloads: 50,
            ..Default::default()
        };
        let a = m.observe(
            cfg.epoch_cycles,
            &snap(cfg.epoch_cycles, 10),
            &stats,
            inputs(100, 2048 * 8, 0, 2048),
        );
        assert_eq!(a, Some(TuneAction::EnableBats));
        // Never again, even under identical pressure.
        let stats = KernelStats {
            kernel_reloads: 100,
            ..Default::default()
        };
        let a = m.observe(
            cfg.epoch_cycles * 2,
            &snap(cfg.epoch_cycles * 2, 20),
            &stats,
            inputs(100, 2048 * 8, 0, 2048),
        );
        assert_ne!(a, Some(TuneAction::EnableBats));
    }

    #[test]
    fn bat_knob_idles_when_bats_already_hit() {
        let cfg = MmtuneConfig::default();
        let mut m = Mmtune::new(cfg, true);
        let stats = KernelStats {
            kernel_reloads: 500,
            ..Default::default()
        };
        let a = m.observe(
            cfg.epoch_cycles,
            &snap(cfg.epoch_cycles, 0),
            &stats,
            inputs(5000, 2048 * 8, 0, 2048),
        );
        assert_eq!(a, None);
    }

    #[test]
    fn scatter_retunes_once_on_overflow_pressure() {
        let cfg = MmtuneConfig {
            cooldown_epochs: 0,
            ..MmtuneConfig::default()
        };
        let mut m = Mmtune::new(cfg, true);
        let mut inp = inputs(3000, 2048 * 8, 0, 2048);
        inp.current_scatter = 16;
        let stats = KernelStats {
            htab_overflows: 5,
            ..Default::default()
        };
        let a = m.observe(cfg.epoch_cycles, &snap(cfg.epoch_cycles, 0), &stats, inp);
        assert_eq!(a, Some(TuneAction::SetScatter { from: 16, to: 897 }));
        // One-way: further overflows never retune again.
        let stats = KernelStats {
            htab_overflows: 50,
            ..Default::default()
        };
        let a = m.observe(
            cfg.epoch_cycles * 2,
            &snap(cfg.epoch_cycles * 2, 0),
            &stats,
            inp,
        );
        assert_eq!(a, None);
    }

    #[test]
    fn quiet_epochs_never_resize() {
        let cfg = MmtuneConfig::default();
        let mut m = Mmtune::new(cfg, true);
        // Almost no TLB misses: even an empty table is left alone.
        let a = m.observe(
            cfg.epoch_cycles,
            &snap(cfg.epoch_cycles, 1),
            &KernelStats::default(),
            inputs(0, 2048 * 8, 0, 2048),
        );
        assert_eq!(a, None);
    }

    #[test]
    fn decision_count_is_structurally_bounded() {
        // Hammer the controller with maximally retune-favourable epochs and
        // count decisions: the one-way doors must bound them.
        let cfg = MmtuneConfig {
            cooldown_epochs: 0,
            min_groups: 256,
            max_groups: 2048,
            ..MmtuneConfig::default()
        };
        let mut m = Mmtune::new(cfg, false);
        let mut groups = 2048u32;
        let mut decisions = 0;
        for e in 1..1000u64 {
            m.pmu.note_duration(u64::from(cfg.slow_reload_cycles) + 1, true);
            let stats = KernelStats {
                kernel_reloads: e * 100,
                htab_overflows: e,
                ..Default::default()
            };
            // Alternate shrink-favourable and grow-favourable pressure.
            let inp = if e % 2 == 0 {
                inputs(10, groups * 8, 0, groups)
            } else {
                inputs(groups * 8, groups * 8, groups, groups)
            };
            let mut inp = inp;
            inp.current_scatter = 16;
            if let Some(a) = m.observe(e * cfg.epoch_cycles, &snap(e * cfg.epoch_cycles, e * 100), &stats, inp)
            {
                decisions += 1;
                if let TuneAction::ResizeHtab { to, .. } = a {
                    groups = to;
                }
            }
        }
        let bound = 2 + 2 * (cfg.max_groups / cfg.min_groups).ilog2();
        assert!(
            decisions <= bound,
            "decisions {decisions} exceed the structural bound {bound}"
        );
    }

    #[test]
    fn final_values_reports_last_move_per_knob() {
        let cfg = MmtuneConfig::default();
        let mut m = Mmtune::new(cfg, false);
        m.log(RetuneDecision {
            cycle: 1,
            epoch: 0,
            knob: TuneKnob::HtabSize,
            from: 2048,
            to: 1024,
        });
        m.log(RetuneDecision {
            cycle: 2,
            epoch: 1,
            knob: TuneKnob::HtabSize,
            from: 1024,
            to: 512,
        });
        m.log(RetuneDecision {
            cycle: 3,
            epoch: 2,
            knob: TuneKnob::Bat,
            from: 0,
            to: 1,
        });
        let f = m.final_values();
        assert_eq!(
            f,
            vec![(TuneKnob::Bat, 1), (TuneKnob::HtabSize, 512)]
        );
    }
}
