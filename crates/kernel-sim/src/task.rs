//! Tasks (processes) and their address spaces.

use ppc_mmu::addr::{EffectiveAddress, PhysAddr, Vsid, PAGE_SIZE};

use crate::layout::{KERNEL_DATA_PA, USER_SEGMENTS};
use crate::linuxpt::LinuxPageTables;

/// A process identifier.
pub type Pid = u32;

/// Scheduler state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Eligible to run.
    Runnable,
    /// Waiting (on a pipe, or I/O).
    Blocked,
    /// Exited; slot reusable.
    Dead,
}

/// The kind of memory a VMA maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmaKind {
    /// Anonymous, demand-zero memory.
    Anon,
    /// A file mapping (pages come from the page cache).
    File {
        /// Index of the backing file in the kernel's file table.
        file: usize,
        /// Byte offset of the mapping within the file.
        offset: u32,
    },
}

/// A virtual memory area: one contiguous mapping in a task's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First effective address (page-aligned).
    pub start: u32,
    /// One past the last byte (page-aligned).
    pub end: u32,
    /// What backs the mapping.
    pub kind: VmaKind,
}

impl Vma {
    /// Whether the VMA covers `ea`.
    pub fn contains(&self, ea: EffectiveAddress) -> bool {
        (self.start..self.end).contains(&ea.0)
    }

    /// Number of pages spanned.
    pub fn pages(&self) -> u32 {
        (self.end - self.start) / PAGE_SIZE
    }
}

/// One simulated process.
#[derive(Debug, Clone)]
pub struct Task {
    /// Process id.
    pub pid: Pid,
    /// Scheduler state.
    pub state: TaskState,
    /// The VSIDs for the twelve user segments (reloaded into the segment
    /// registers on context switch; replaced wholesale by a lazy flush).
    pub vsids: [Vsid; USER_SEGMENTS],
    /// The task's page tables.
    pub pt: LinuxPageTables,
    /// The task's memory areas.
    pub vmas: Vec<Vma>,
    /// Frames owned by this task (to free on exit): `(ea, pa)` pairs.
    pub frames: Vec<(u32, PhysAddr)>,
    /// Accumulated user-mode cycles (for reporting).
    pub user_cycles: u64,
}

impl Task {
    /// Creates a fresh task.
    pub fn new(pid: Pid, vsids: [Vsid; USER_SEGMENTS], pt: LinuxPageTables) -> Self {
        Self {
            pid,
            state: TaskState::Runnable,
            vsids,
            pt,
            vmas: Vec::new(),
            frames: Vec::new(),
            user_cycles: 0,
        }
    }

    /// Whether the task has not been torn down.
    pub fn is_alive(&self) -> bool {
        self.state != TaskState::Dead
    }

    /// Physical address of this task's task-struct in kernel data (for
    /// context-switch memory traffic).
    pub fn task_struct_pa(&self) -> PhysAddr {
        KERNEL_DATA_PA + (self.pid % 512) * 0x400
    }

    /// Finds the VMA covering `ea`.
    pub fn find_vma(&self, ea: EffectiveAddress) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(ea))
    }

    /// Inserts a VMA, keeping the list sorted by start address.
    ///
    /// # Panics
    ///
    /// Panics if the new VMA overlaps an existing one.
    pub fn insert_vma(&mut self, vma: Vma) {
        assert!(
            !self
                .vmas
                .iter()
                .any(|v| vma.start < v.end && v.start < vma.end),
            "overlapping VMA [{:#x},{:#x})",
            vma.start,
            vma.end
        );
        let pos = self.vmas.partition_point(|v| v.start < vma.start);
        self.vmas.insert(pos, vma);
    }

    /// Removes VMAs fully inside `[start, end)`, returning them.
    pub fn remove_vmas_in(&mut self, start: u32, end: u32) -> Vec<Vma> {
        let (inside, outside): (Vec<Vma>, Vec<Vma>) = self
            .vmas
            .drain(..)
            .partition(|v| v.start >= start && v.end <= end);
        self.vmas = outside;
        inside
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new(
            1,
            [Vsid::new(0); USER_SEGMENTS],
            LinuxPageTables::new(0x22_0000),
        )
    }

    #[test]
    fn vma_contains_and_pages() {
        let v = Vma {
            start: 0x1000,
            end: 0x4000,
            kind: VmaKind::Anon,
        };
        assert!(v.contains(EffectiveAddress(0x1000)));
        assert!(v.contains(EffectiveAddress(0x3fff)));
        assert!(!v.contains(EffectiveAddress(0x4000)));
        assert_eq!(v.pages(), 3);
    }

    #[test]
    fn insert_keeps_sorted_and_find_works() {
        let mut t = task();
        t.insert_vma(Vma {
            start: 0x8000,
            end: 0x9000,
            kind: VmaKind::Anon,
        });
        t.insert_vma(Vma {
            start: 0x1000,
            end: 0x2000,
            kind: VmaKind::Anon,
        });
        t.insert_vma(Vma {
            start: 0x4000,
            end: 0x6000,
            kind: VmaKind::Anon,
        });
        let starts: Vec<u32> = t.vmas.iter().map(|v| v.start).collect();
        assert_eq!(starts, vec![0x1000, 0x4000, 0x8000]);
        assert_eq!(t.find_vma(EffectiveAddress(0x5000)).unwrap().start, 0x4000);
        assert!(t.find_vma(EffectiveAddress(0x3000)).is_none());
    }

    #[test]
    #[should_panic(expected = "overlapping VMA")]
    fn overlap_rejected() {
        let mut t = task();
        t.insert_vma(Vma {
            start: 0x1000,
            end: 0x3000,
            kind: VmaKind::Anon,
        });
        t.insert_vma(Vma {
            start: 0x2000,
            end: 0x4000,
            kind: VmaKind::Anon,
        });
    }

    #[test]
    fn remove_vmas_in_range() {
        let mut t = task();
        t.insert_vma(Vma {
            start: 0x1000,
            end: 0x2000,
            kind: VmaKind::Anon,
        });
        t.insert_vma(Vma {
            start: 0x4000,
            end: 0x6000,
            kind: VmaKind::Anon,
        });
        t.insert_vma(Vma {
            start: 0x8000,
            end: 0x9000,
            kind: VmaKind::Anon,
        });
        let removed = t.remove_vmas_in(0x3000, 0x7000);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].start, 0x4000);
        assert_eq!(t.vmas.len(), 2);
    }

    #[test]
    fn task_struct_addresses_differ_per_pid() {
        let a = Task::new(1, [Vsid::new(0); USER_SEGMENTS], LinuxPageTables::new(0));
        let b = Task::new(2, [Vsid::new(0); USER_SEGMENTS], LinuxPageTables::new(0));
        assert_ne!(a.task_struct_pa(), b.task_struct_pa());
    }
}
