//! Direct unit tests for the kernel subsystems (scheduler, syscalls, pipes,
//! files, idle duties, flush policies).

use ppc_machine::MachineConfig;
use ppc_mmu::addr::{EffectiveAddress, PAGE_SIZE};

use crate::kconfig::{KernelConfig, PageClearing};
use crate::kernel::Kernel;
use crate::sched::USER_BASE;
use crate::task::TaskState;

fn kernel() -> Kernel {
    Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized())
}

fn kernel_with_proc(ws: u32) -> Kernel {
    let mut k = kernel();
    let pid = k.spawn_process(ws).unwrap();
    k.switch_to(pid);
    k
}

// --- scheduler ---

#[test]
fn yield_rotates_round_robin() {
    let mut k = kernel();
    let a = k.spawn_process(4).unwrap();
    let b = k.spawn_process(4).unwrap();
    let c = k.spawn_process(4).unwrap();
    k.switch_to(a);
    // a yielded: b runs, then c, then a again.
    k.yield_next();
    assert_eq!(k.cur().pid, b);
    k.yield_next();
    assert_eq!(k.cur().pid, c);
    k.yield_next();
    assert_eq!(k.cur().pid, a);
}

#[test]
fn block_and_wake_cycle() {
    let mut k = kernel();
    let a = k.spawn_process(4).unwrap();
    let b = k.spawn_process(4).unwrap();
    k.switch_to(a);
    let a_idx = k.task_idx(a).unwrap();
    k.block_current();
    assert_eq!(k.cur().pid, b);
    assert_eq!(k.tasks[a_idx].state, TaskState::Blocked);
    k.wake(a_idx);
    assert_eq!(k.tasks[a_idx].state, TaskState::Runnable);
    k.yield_next();
    assert_eq!(k.cur().pid, a);
}

#[test]
fn switch_to_self_is_free() {
    let mut k = kernel_with_proc(4);
    let pid = k.cur().pid;
    let switches = k.stats.ctx_switches;
    let cycles = k.machine.cycles;
    k.switch_to(pid);
    assert_eq!(k.stats.ctx_switches, switches);
    assert_eq!(k.machine.cycles, cycles);
}

#[test]
fn exit_returns_page_table_pages() {
    let mut k = kernel();
    // Exhaust-and-recycle: many process generations must not run the
    // page-table pool dry.
    for _ in 0..120 {
        let pid = k.spawn_process(8).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 8).unwrap();
        k.exit_current();
    }
    assert_eq!(k.stats.processes_spawned, 120);
}

#[test]
fn dead_tasks_are_not_scheduled() {
    let mut k = kernel();
    let a = k.spawn_process(4).unwrap();
    let b = k.spawn_process(4).unwrap();
    k.switch_to(a);
    k.exit_current();
    assert_eq!(
        k.cur().pid,
        b,
        "exit falls through to the next runnable task"
    );
    assert!(k.task_idx(a).is_none(), "dead pid no longer resolvable");
}

// --- syscalls ---

#[test]
fn null_syscall_counts_and_charges() {
    let mut k = kernel_with_proc(4);
    let c0 = k.machine.cycles;
    k.sys_null();
    assert_eq!(k.stats.syscalls, 1);
    assert!(k.machine.cycles > c0);
}

#[test]
fn mmap_places_nonoverlapping_regions() {
    let mut k = kernel_with_proc(4);
    let a = k.sys_mmap(None, 16 * PAGE_SIZE);
    let b = k.sys_mmap(None, 16 * PAGE_SIZE);
    assert!(b >= a + 16 * PAGE_SIZE, "regions must not overlap");
    // Both are usable.
    k.data_ref(EffectiveAddress(a), true).unwrap();
    k.data_ref(EffectiveAddress(b + 15 * PAGE_SIZE), true).unwrap();
}

#[test]
fn munmap_frees_anonymous_frames() {
    let mut k = kernel_with_proc(4);
    let free0 = k.frames.free_frames();
    let a = k.sys_mmap(None, 32 * PAGE_SIZE);
    k.prefault(a, 32).unwrap();
    assert!(k.frames.free_frames() <= free0 - 32);
    k.sys_munmap(a, 32 * PAGE_SIZE);
    assert!(
        k.frames.free_frames() >= free0 - 2,
        "anonymous frames must be returned on munmap"
    );
}

#[test]
#[should_panic(expected = "page-aligned")]
fn mmap_rejects_unaligned_length() {
    let mut k = kernel_with_proc(4);
    k.sys_mmap(None, 100);
}

// --- pipes ---

#[test]
fn pipe_preserves_byte_accounting_through_wraparound() {
    let mut k = kernel_with_proc(8);
    k.prefault(USER_BASE, 8).unwrap();
    let p = k.pipe_create().unwrap();
    // Transfers that wrap the ring several times.
    for len in [100u32, 4096, 5000, 1, 8000] {
        k.pipe_write(p, USER_BASE, len.min(PAGE_SIZE)).unwrap();
        k.pipe_read(p, USER_BASE, len.min(PAGE_SIZE)).unwrap();
        assert_eq!(k.pipes[p].len, 0, "ring drained after symmetric read");
    }
}

#[test]
fn pipe_transfer_moves_everything() {
    let mut k = kernel();
    let w = k.spawn_process(32).unwrap();
    let r = k.spawn_process(32).unwrap();
    for &pid in &[w, r] {
        k.switch_to(pid);
        k.prefault(USER_BASE, 16).unwrap();
    }
    let p = k.pipe_create().unwrap();
    k.pipe_transfer(p, w, r, USER_BASE, USER_BASE, 64 * 1024).unwrap();
    assert_eq!(k.pipes[p].total_bytes, 64 * 1024);
    assert!(k.stats.ctx_switches > 16, "one switch per ring fill/drain");
}

#[test]
fn microkernel_double_copy_costs_more() {
    let mut paths = crate::kernel::PathLengths::tuned();
    let run = |paths: crate::kernel::PathLengths| {
        let mut k = Kernel::boot_with_paths(
            MachineConfig::ppc604_185(),
            KernelConfig::optimized(),
            paths,
        );
        let pid = k.spawn_process(8).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 4).unwrap();
        let p = k.pipe_create().unwrap();
        let c0 = k.machine.cycles;
        k.pipe_write(p, USER_BASE, PAGE_SIZE).unwrap();
        k.machine.cycles - c0
    };
    let single = run(paths);
    paths.pipe_copies = 2;
    let double = run(paths);
    assert!(
        double > single,
        "double copy ({double}) must cost more ({single})"
    );
}

// --- files ---

#[test]
fn file_pages_are_stable_across_reads() {
    let mut k = kernel_with_proc(32);
    k.prefault(USER_BASE, 16).unwrap();
    let f = k.create_file(128 * 1024).unwrap();
    let pages: Vec<_> = k.files[f].pages.clone();
    k.sys_read(f, 0, USER_BASE, 64 * 1024).unwrap();
    k.sys_read(f, 64 * 1024, USER_BASE, 64 * 1024).unwrap();
    assert_eq!(
        k.files[f].pages, pages,
        "page cache must not churn on reads"
    );
}

#[test]
fn file_mmap_shares_page_cache_frames() {
    let mut k = kernel_with_proc(8);
    let f = k.create_file(16 * PAGE_SIZE).unwrap();
    let addr = k.sys_mmap(Some(f), 16 * PAGE_SIZE);
    k.prefault(addr, 16).unwrap();
    // No anonymous frames were consumed for the file pages.
    let (pa, _) = k
        .translate_ref(
            EffectiveAddress(addr),
            ppc_mmu::translate::AccessType::DataRead,
        )
        .unwrap();
    assert_eq!(
        pa & !0xfff,
        k.files[f].pages[0].expect("resident cache page"),
        "mapping points at the cache page"
    );
}

#[test]
fn file_read_truncates_at_eof() {
    let mut k = kernel_with_proc(8);
    k.prefault(USER_BASE, 4).unwrap();
    let f = k.create_file(PAGE_SIZE).unwrap();
    let n = k.sys_read(f, 0, USER_BASE, 3 * PAGE_SIZE).unwrap();
    assert_eq!(n, PAGE_SIZE, "read() returns the bytes before EOF");
}

#[test]
fn file_mapping_past_eof_delivers_sigbus() {
    use crate::errors::{KernelError, Signal};
    let mut k = kernel_with_proc(8);
    let f = k.create_file(PAGE_SIZE).unwrap();
    let addr = k.sys_mmap(Some(f), 4 * PAGE_SIZE);
    k.user_read(addr, PAGE_SIZE).unwrap(); // in-bounds page is fine
    let err = k.user_read(addr + PAGE_SIZE, 4).unwrap_err();
    assert_eq!(
        err,
        KernelError::Fatal {
            signal: Signal::Bus,
            ea: addr + PAGE_SIZE
        }
    );
    assert_eq!(k.stats.sigbus, 1);
    assert!(k.current.is_none(), "the faulting task died");
}

// --- idle duties ---

#[test]
fn idle_consumes_at_least_the_budget() {
    let mut k = kernel_with_proc(4);
    let c0 = k.machine.cycles;
    k.run_idle(50_000);
    let spent = k.machine.cycles - c0;
    assert!(spent >= 50_000);
    assert!(spent < 70_000, "bounded overshoot (got {spent})");
    assert_eq!(k.stats.idle_cycles, spent);
}

#[test]
fn idle_clearing_stops_when_nothing_to_clear() {
    let kcfg = KernelConfig {
        page_clearing: PageClearing::IdleUncached,
        ..KernelConfig::optimized()
    };
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), kcfg);
    let pid = k.spawn_process(4).unwrap();
    k.switch_to(pid);
    // Clear the entire free pool.
    while k.frames.free_frames() > k.frames.precleared_frames() {
        k.run_idle(200_000);
    }
    let cleared = k.stats.idle_pages_cleared;
    k.run_idle(100_000);
    assert_eq!(
        k.stats.idle_pages_cleared, cleared,
        "no frames left to clear"
    );
}

#[test]
fn reclaim_scan_sleeps_without_retirements() {
    let mut k = kernel_with_proc(16);
    k.prefault(USER_BASE, 16).unwrap();
    k.run_idle(200_000);
    let scanned0 = k.stats.idle_groups_scanned;
    assert_eq!(scanned0, 0, "no context retired yet: nothing to scan");
    // Retire a context; the scan gets exactly one sweep of credit.
    let addr = k.sys_mmap(None, 64 * PAGE_SIZE);
    k.sys_munmap(addr, 64 * PAGE_SIZE);
    k.run_idle(8_000_000);
    let scanned1 = k.stats.idle_groups_scanned;
    assert!(scanned1 > 0);
    assert!(scanned1 <= crate::layout::HTAB_GROUPS as u64 + 8);
    k.run_idle(2_000_000);
    assert_eq!(k.stats.idle_groups_scanned, scanned1, "credit exhausted");
}

// --- flush policies ---

#[test]
fn flush_context_eager_scans_whole_table() {
    let kcfg = KernelConfig::unoptimized();
    let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
    let pid = k.spawn_process(16).unwrap();
    k.switch_to(pid);
    k.prefault(USER_BASE, 16).unwrap();
    assert!(k.htab.valid_entries() >= 16);
    let idx = k.task_idx(pid).unwrap();
    k.flush_context(idx);
    assert_eq!(
        k.htab
            .live_entries(|v| k.vsids.is_live(v) && !crate::vsid::is_kernel_vsid(v)),
        0,
        "eager context flush physically invalidates the task's entries"
    );
    assert_eq!(
        k.machine.mmu.tlb_valid_entries(),
        0,
        "eager flush empties the TLBs"
    );
}

#[test]
fn lazy_context_flush_leaves_zombies_resident() {
    let mut k = kernel_with_proc(16);
    k.prefault(USER_BASE, 16).unwrap();
    let valid_before = k.htab.valid_entries();
    let idx = k.current.unwrap();
    k.flush_context(idx);
    assert_eq!(
        k.htab.valid_entries(),
        valid_before,
        "lazy flush touches nothing"
    );
    assert!(k.htab.live_entries(|v| k.vsids.is_live(v)) < valid_before);
}

#[test]
fn user_vsid_matches_segment_registers() {
    let k = kernel_with_proc(4);
    let idx = k.current.unwrap();
    for sr in 0..12 {
        let ea = EffectiveAddress((sr as u32) << 28);
        assert_eq!(k.user_vsid(idx, ea), k.machine.mmu.segments.get(sr));
    }
}
