//! VSID allocation and liveness tracking.

use ppc_mmu::addr::Vsid;

use crate::fixed_hash::DetHashSet;

use crate::kconfig::VsidPolicy;
use crate::layout::USER_SEGMENTS;

/// Base of the reserved kernel VSID range: kernel segments 0xC–0xF get
/// `KERNEL_VSID_BASE + sr`. "We reserved segments for the dynamically mapped
/// parts of the kernel … and put a fixed VSID in these segments" (paper §7).
pub const KERNEL_VSID_BASE: u32 = 0x00ff_f000;

/// Returns the fixed VSID for kernel segment register `sr` (12–15).
///
/// # Panics
///
/// Panics if `sr` is not a kernel segment.
pub fn kernel_vsid(sr: usize) -> Vsid {
    assert!((12..16).contains(&sr), "kernel segments are 0xC-0xF");
    Vsid::new(KERNEL_VSID_BASE + sr as u32)
}

/// Whether a VSID belongs to the kernel's reserved range.
pub fn is_kernel_vsid(v: Vsid) -> bool {
    v.raw() >= KERNEL_VSID_BASE
}

/// Statistics for the VSID allocator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VsidStats {
    /// Contexts allocated.
    pub contexts_allocated: u64,
    /// Contexts retired (their VSIDs became zombies).
    pub contexts_retired: u64,
}

/// Allocates per-address-space VSIDs and tracks which are live.
///
/// Liveness is the information the hardware does not have: a hash-table or
/// TLB entry under a retired VSID is a *zombie* — still marked valid, never
/// matchable. The idle-task reclaim (paper §7) queries [`VsidAllocator::is_live`]
/// to physically invalidate zombies.
#[derive(Debug, Clone)]
pub struct VsidAllocator {
    policy: VsidPolicy,
    next_ctx: u32,
    live: DetHashSet<u32>,
    /// Statistics.
    pub stats: VsidStats,
}

impl VsidAllocator {
    /// Creates an allocator under `policy`.
    pub fn new(policy: VsidPolicy) -> Self {
        Self {
            policy,
            next_ctx: 1,
            live: DetHashSet::default(),
            stats: VsidStats::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> VsidPolicy {
        self.policy
    }

    /// Allocates the VSIDs for a (new or re-keyed) address space.
    ///
    /// * Under [`VsidPolicy::PidScatter`], the VSIDs are a pure function of
    ///   the PID — reallocating for the same PID returns the same VSIDs.
    /// * Under [`VsidPolicy::ContextCounter`], every call takes a fresh
    ///   context number, so reallocation implicitly retires nothing but
    ///   never reuses old VSIDs (the lazy-flush invariant).
    pub fn alloc_context(&mut self, pid: u32) -> [Vsid; USER_SEGMENTS] {
        self.stats.contexts_allocated += 1;
        let constant = self.policy.constant();
        let base = match self.policy {
            VsidPolicy::PidScatter { .. } => pid.wrapping_mul(constant),
            VsidPolicy::ContextCounter { .. } => {
                let c = self.next_ctx;
                self.next_ctx += 1;
                c.wrapping_mul(constant)
            }
        };
        let mut vsids = [Vsid::new(0); USER_SEGMENTS];
        for (sr, slot) in vsids.iter_mut().enumerate() {
            // Keep user VSIDs out of the reserved kernel range.
            let raw = (base.wrapping_add(sr as u32)) & Vsid::MASK;
            let raw = if raw >= KERNEL_VSID_BASE {
                raw - KERNEL_VSID_BASE
            } else {
                raw
            };
            *slot = Vsid::new(raw);
            self.live.insert(raw);
        }
        vsids
    }

    /// Retunes the scatter constant in place, keeping the policy kind.
    ///
    /// Only *future* contexts are affected: under [`VsidPolicy::ContextCounter`]
    /// the context number never resets, so VSIDs handed out before the retune
    /// stay unique and simply age out as zombies — the lazy-flush invariant
    /// survives a mid-run retune. (Under [`VsidPolicy::PidScatter`] the
    /// pid→VSID function changes, so a re-keyed PID gets new VSIDs; the old
    /// ones are retired by the caller like any context switch.)
    ///
    /// # Panics
    ///
    /// Panics if `constant` is zero (every context would share VSIDs).
    pub fn set_scatter_constant(&mut self, constant: u32) {
        assert!(constant != 0, "scatter constant must be nonzero");
        match &mut self.policy {
            VsidPolicy::PidScatter { constant: c } | VsidPolicy::ContextCounter { constant: c } => {
                *c = constant
            }
        }
    }

    /// Retires a context's VSIDs: they become zombies.
    pub fn retire(&mut self, vsids: &[Vsid; USER_SEGMENTS]) {
        self.stats.contexts_retired += 1;
        for v in vsids {
            self.live.remove(&v.raw());
        }
    }

    /// Whether `v` can still match a live address space (kernel VSIDs are
    /// always live).
    pub fn is_live(&self, v: Vsid) -> bool {
        is_kernel_vsid(v) || self.live.contains(&v.raw())
    }

    /// Number of live user VSIDs.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The next context number the allocator will hand out. Strictly
    /// monotonic under [`VsidPolicy::ContextCounter`] — never reset, never
    /// reused — which is the lazy-flush invariant the runtime checker
    /// re-verifies at every span transition.
    pub fn generation(&self) -> u32 {
        self.next_ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_vsids_are_fixed_and_live() {
        let a = VsidAllocator::new(VsidPolicy::ContextCounter { constant: 897 });
        for sr in 12..16 {
            let v = kernel_vsid(sr);
            assert!(is_kernel_vsid(v));
            assert!(a.is_live(v));
        }
    }

    #[test]
    #[should_panic(expected = "kernel segments")]
    fn kernel_vsid_rejects_user_segment() {
        kernel_vsid(3);
    }

    #[test]
    fn pid_scatter_is_deterministic() {
        let mut a = VsidAllocator::new(VsidPolicy::PidScatter { constant: 897 });
        let x = a.alloc_context(7);
        let y = a.alloc_context(7);
        assert_eq!(x, y);
        let z = a.alloc_context(8);
        assert_ne!(x, z);
    }

    #[test]
    fn context_counter_never_reuses() {
        let mut a = VsidAllocator::new(VsidPolicy::ContextCounter { constant: 897 });
        let x = a.alloc_context(7);
        let y = a.alloc_context(7);
        assert_ne!(x, y, "same PID gets fresh VSIDs after a context bump");
    }

    #[test]
    fn retire_makes_zombies() {
        let mut a = VsidAllocator::new(VsidPolicy::ContextCounter { constant: 897 });
        let v = a.alloc_context(1);
        assert!(a.is_live(v[0]));
        a.retire(&v);
        assert!(!a.is_live(v[0]));
        assert_eq!(a.stats.contexts_retired, 1);
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn segments_within_context_are_distinct() {
        let mut a = VsidAllocator::new(VsidPolicy::ContextCounter { constant: 897 });
        let v = a.alloc_context(1);
        let set: std::collections::HashSet<_> = v.iter().map(|x| x.raw()).collect();
        assert_eq!(set.len(), USER_SEGMENTS);
    }

    #[test]
    fn scatter_retune_affects_future_contexts_only() {
        let mut a = VsidAllocator::new(VsidPolicy::ContextCounter { constant: 16 });
        let before = a.alloc_context(1);
        a.set_scatter_constant(897);
        assert_eq!(a.policy().constant(), 897);
        // Old VSIDs stay live until retired; new contexts use the new spread.
        assert!(a.is_live(before[0]));
        let after = a.alloc_context(2);
        assert_ne!(before, after);
        // Context counter did not reset: VSIDs remain unique.
        assert_eq!(a.live_count(), 2 * USER_SEGMENTS);
    }

    #[test]
    #[should_panic(expected = "scatter constant")]
    fn scatter_retune_rejects_zero() {
        let mut a = VsidAllocator::new(VsidPolicy::ContextCounter { constant: 897 });
        a.set_scatter_constant(0);
    }

    #[test]
    fn user_vsids_avoid_kernel_range() {
        let mut a = VsidAllocator::new(VsidPolicy::ContextCounter {
            constant: 0xff_ffff,
        });
        for pid in 0..64 {
            for v in a.alloc_context(pid) {
                assert!(
                    !is_kernel_vsid(v),
                    "user vsid {:#x} in kernel range",
                    v.raw()
                );
            }
        }
    }
}
