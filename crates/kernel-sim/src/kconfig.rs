//! Kernel configuration: every optimization in the paper as a toggle.

use ppc_machine::pmu::{Mmcr0, PmcEvent};

/// How the kernel programs the 604 performance-monitor unit
/// ([`ppc_machine::pmu`]) at boot.
///
/// Two shapes matter:
/// * **counting** — select an event per PMC and read the totals at the end
///   of the window (the paper's §4 methodology);
/// * **sampling** — PMC1 counts cycles preloaded to go negative every
///   `sample_period` cycles, and the performance-monitor interrupt captures
///   task/privilege/span, which is what `repro perf record` builds on.
///
/// Like all PMU work, this is observational *except* for the sampling
/// interrupts themselves, whose handler cost is charged to the run — a
/// sampled kernel is measurably (and deliberately) slower than an
/// unsampled one, and E-PMU quantifies by how much.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmuConfig {
    /// Cycles between sampling interrupts; 0 disables sampling (PMC1 then
    /// counts `pmc1` like a plain event counter).
    pub sample_period: u32,
    /// PMC1 event select when not sampling (sampling forces cycles).
    pub pmc1: PmcEvent,
    /// PMC2 event select (free for any event even while sampling).
    pub pmc2: PmcEvent,
    /// MMCR0[FCS]: don't count in supervisor state.
    pub freeze_supervisor: bool,
    /// MMCR0[FCP]: don't count in problem (user) state.
    pub freeze_problem: bool,
    /// MMCR0[THRESHOLD] for [`PmcEvent::ThresholdExceeded`], in cycles.
    pub threshold: u32,
}

impl PmuConfig {
    /// Cycle sampling every `period` cycles (PMC2 left free).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn sampling(period: u32) -> Self {
        assert!(period > 0, "sample period must be positive");
        Self {
            sample_period: period,
            pmc1: PmcEvent::Cycles,
            pmc2: PmcEvent::None,
            freeze_supervisor: false,
            freeze_problem: false,
            threshold: 0,
        }
    }

    /// Plain event counting, no interrupts.
    pub fn counting(pmc1: PmcEvent, pmc2: PmcEvent) -> Self {
        Self {
            sample_period: 0,
            pmc1,
            pmc2,
            freeze_supervisor: false,
            freeze_problem: false,
            threshold: 0,
        }
    }

    /// The MMCR0 image this configuration programs at boot.
    pub fn mmcr0(&self) -> Mmcr0 {
        let sampling = self.sample_period > 0;
        Mmcr0 {
            freeze: false,
            freeze_supervisor: self.freeze_supervisor,
            freeze_problem: self.freeze_problem,
            enint: sampling,
            threshold: self.threshold,
            pmc1: if sampling {
                PmcEvent::Cycles
            } else {
                self.pmc1
            },
            pmc2: self.pmc2,
        }
    }
}

/// How VSIDs are assigned to address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VsidPolicy {
    /// Derive VSIDs from the process identifier: `vsid = pid * constant + sr`
    /// (paper §5.2). The scatter `constant` is the tuning knob — a small
    /// non-power-of-two spreads PTEs across the hash table; a power of two
    /// creates hot-spots.
    PidScatter {
        /// The multiplier applied to the PID.
        constant: u32,
    },
    /// A monotonically increasing memory-management context counter
    /// (paper §7): each (re)assignment takes fresh VSIDs, which is what makes
    /// lazy flushing possible — old VSIDs become zombies instead of being
    /// searched out of the hash table.
    ContextCounter {
        /// The scatter multiplier applied to the context number.
        constant: u32,
    },
}

impl VsidPolicy {
    /// The scatter constant in use.
    pub fn constant(self) -> u32 {
        match self {
            VsidPolicy::PidScatter { constant } | VsidPolicy::ContextCounter { constant } => {
                constant
            }
        }
    }
}

/// The TLB-miss / hash-table-miss handler implementation (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerStyle {
    /// The original approach: "we turned the MMU on, saved state and jumped
    /// to fault handlers written in C".
    SlowC,
    /// The rewritten handlers: hand-scheduled assembly using only the four
    /// swapped registers, MMU off, shortest possible path.
    FastAsm,
}

/// Page-clearing policy (paper §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageClearing {
    /// No idle clearing: `get_free_page()` clears on demand (baseline).
    OnDemand,
    /// Idle task clears pages *through the cache* and lists them — the §9
    /// "optimization" that made the kernel compile nearly twice as slow.
    IdleCached,
    /// Idle task clears pages with the cache inhibited but does **not** put
    /// them on the pre-cleared list (§9's control experiment: no gain, no
    /// loss).
    IdleUncachedNoList,
    /// Idle task clears pages cache-inhibited and lists them for
    /// `get_free_page()` — the configuration that "became much faster".
    IdleUncached,
}

impl PageClearing {
    /// Whether the idle task clears pages at all under this policy.
    pub fn idle_clears(self) -> bool {
        !matches!(self, PageClearing::OnDemand)
    }

    /// Whether cleared pages are remembered on the pre-cleared list.
    pub fn uses_list(self) -> bool {
        matches!(self, PageClearing::IdleCached | PageClearing::IdleUncached)
    }

    /// Whether clearing goes through the data cache.
    pub fn through_cache(self) -> bool {
        matches!(self, PageClearing::IdleCached)
    }
}

/// The complete kernel policy configuration.
///
/// [`KernelConfig::unoptimized`] is the paper's baseline kernel;
/// [`KernelConfig::optimized`] is the end state with every published
/// optimization enabled. Individual experiments flip one field at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Map kernel text/data (and the linear map, covering htab and page
    /// tables) with BAT registers instead of PTEs (paper §5.1).
    pub use_bats: bool,
    /// Dedicate a data BAT to the I/O / frame-buffer aperture (§5.1 — the
    /// paper found this did not help much).
    pub io_bat: bool,
    /// VSID allocation policy.
    pub vsid_policy: VsidPolicy,
    /// TLB-miss handler implementation (§6.1).
    pub handler: HandlerStyle,
    /// On the 603, keep emulating the 604's hash-table search in the
    /// software TLB-miss handler (`true`) or reload straight from the Linux
    /// page tables, "improving hash tables away" (`false`, §6.2). Ignored on
    /// the 604, whose hardware forces the hash table.
    pub htab_on_603: bool,
    /// Lazy TLB flushes: retire the whole context by bumping VSIDs instead
    /// of searching the hash table (§7). Requires
    /// [`VsidPolicy::ContextCounter`].
    pub lazy_flush: bool,
    /// Range-flush cutoff in pages (§7): ranges larger than this flush the
    /// whole context (when lazy flushing is on) instead of per-page
    /// searches. `None` means always flush per page. The paper settled on
    /// 20 pages.
    pub flush_cutoff_pages: Option<u32>,
    /// Idle-task zombie-PTE reclaim (§7).
    pub idle_reclaim: bool,
    /// The design §7 describes and rejects: reclaim zombies *synchronously*
    /// when an insert finds the table scarce ("clear them when hash table
    /// space became scarce") — the cost lands on whoever faulted, making
    /// "performance ... inconsistent". Implemented for the ablation that
    /// quantifies that inconsistency.
    pub scarcity_reclaim: bool,
    /// Page-clearing policy (§9).
    pub page_clearing: PageClearing,
    /// Whether hash-table accesses go through the data cache (§8 analyses
    /// the pollution this causes; `false` models the proposed uncached page
    /// tables).
    pub htab_cached: bool,
    /// Whether Linux page-table walks go through the data cache (§8).
    pub linux_pt_cached: bool,
    /// Lock the idle task's cache lines / run the idle loop effectively
    /// uncached (§10.1 future work).
    pub idle_cache_lock: bool,
    /// Software cache preloads in context-switch and interrupt entry code
    /// (§10.2 future work).
    pub cache_preloads: bool,
    /// Seeded fault injection (allocation failures, hash-table overflow,
    /// forced TLB-reload misses). `None` disables injection entirely.
    pub fault_injection: Option<crate::inject::FaultInjection>,
    /// Event tracing and cycle-attribution profiling ([`crate::trace`],
    /// [`crate::prof`]). Purely observational: a traced run charges exactly
    /// the same cycles as an untraced one; disabled, the kernel carries no
    /// tracer and every hook is a single branch.
    pub trace: bool,
    /// Trace-ring capacity (newest-N events kept) when `trace` is on.
    pub trace_ring_capacity: usize,
    /// Performance-monitor unit programming. `None` boots the machine with
    /// no PMU at all — such runs are cycle-identical to pre-PMU kernels.
    pub pmu: Option<PmuConfig>,
    /// Time-series MMU telemetry ([`crate::telemetry`]): a periodic epoch
    /// sampler at span transitions. Purely observational like the tracer —
    /// a sampled run is cycle-identical to an unsampled one; `None` carries
    /// no sampler and the hook is a single branch.
    pub telemetry: Option<crate::telemetry::TelemetryConfig>,
    /// PMU-guided adaptive MMU tuning ([`crate::tune`]): an epoch controller
    /// that retunes BAT coverage, hash-table size, and the VSID scatter
    /// constant online from PMU event deltas and PTEG collision pressure.
    /// Unlike the observability features above this one *changes* the run —
    /// retune work is charged honestly — but `None` carries no controller
    /// and the hook is a single branch, cycle-identical to pre-mmtune
    /// kernels. Deliberately excluded from [`KernelConfig::summary`]: a
    /// tuned run and its static baseline measure the same workload axes.
    pub mmtune: Option<crate::tune::MmtuneConfig>,
    /// Runtime MM consistency checking ([`crate::check`]): the shadow
    /// translation oracle plus ported SchedInv/MMInv invariants, evaluated
    /// at span transitions. Purely observational and host-side: a checked
    /// run charges exactly the same cycles and counts exactly the same
    /// [`crate::KernelStats`] as an unchecked one; `None` carries no checker
    /// and the hook is a single branch. Excluded from
    /// [`KernelConfig::summary`] for the same reason as `mmtune`: artifacts
    /// produced under checking carry their own `check` header instead, and
    /// the differ refuses to compare across it.
    pub check: Option<crate::check::CheckConfig>,
    /// Tail-latency forensics ([`crate::tail`]): capture slow
    /// instrumented-path samples as exemplars with causal context. Purely
    /// observational like the tracer and checker — a tail-armed traced run
    /// charges exactly the same cycles and counts exactly the same
    /// [`crate::KernelStats`] as a plain traced one. Requires `trace` (the
    /// capture reads the histograms, span stack and trace ring). Excluded
    /// from [`KernelConfig::summary`]; the `mmu-tricks-tail-v1` artifact
    /// carries its own `tail` header instead.
    pub tail: Option<crate::tail::TailConfig>,

    /// Causal what-if profiling (DESIGN.md §15): integer fixed-point
    /// multipliers applied to cycle charges by profiler subsystem and by
    /// instrumented path, so a run can measure the *exact* end-to-end
    /// effect of a hypothetical speedup. `None` and an all-1/1 config are
    /// cycle- and counter-identical to a plain run (gated in CI). Excluded
    /// from [`KernelConfig::summary`]; the `mmu-tricks-causal-v1` artifact
    /// carries its own `causal` header instead.
    pub causal: Option<crate::causal::CausalConfig>,

    /// Use the fused common-case fast path (DESIGN.md §16): TLB/BAT hit +
    /// L1 hit + charge scale 1/1 memory references run through one flat
    /// function instead of the layered translate → charge → cache chain.
    /// Purely a *host-side encoding choice*: a fused run is simulated-cycle-
    /// and counter-identical to a layered one (the grid identity test and
    /// the differential proptest pin this), so it is excluded from
    /// [`KernelConfig::summary`]. `false` exists for differential testing,
    /// not as a feature knob.
    pub fused: bool,
}

impl KernelConfig {
    /// The paper's baseline: the original Linux/PPC kernel before the
    /// optimization campaign.
    pub fn unoptimized() -> Self {
        Self {
            use_bats: false,
            io_bat: false,
            // The original strategy was already PID-derived with a scatter
            // multiplier (§5.2 "The obvious strategy"), just untuned.
            vsid_policy: VsidPolicy::PidScatter { constant: 16 },
            handler: HandlerStyle::SlowC,
            htab_on_603: true,
            lazy_flush: false,
            flush_cutoff_pages: None,
            idle_reclaim: false,
            scarcity_reclaim: false,
            page_clearing: PageClearing::OnDemand,
            htab_cached: true,
            linux_pt_cached: true,
            idle_cache_lock: false,
            cache_preloads: false,
            fault_injection: None,
            trace: false,
            trace_ring_capacity: crate::trace::DEFAULT_RING_CAPACITY,
            pmu: None,
            telemetry: None,
            mmtune: None,
            check: None,
            tail: None,
            causal: None,
            fused: true,
        }
    }

    /// Every published optimization enabled (the kernel of Tables 1–3's
    /// "Linux/PPC" rows).
    pub fn optimized() -> Self {
        Self {
            use_bats: true,
            io_bat: false,
            vsid_policy: VsidPolicy::ContextCounter { constant: 897 },
            handler: HandlerStyle::FastAsm,
            htab_on_603: false,
            lazy_flush: true,
            flush_cutoff_pages: Some(20),
            idle_reclaim: true,
            scarcity_reclaim: false,
            page_clearing: PageClearing::IdleUncached,
            htab_cached: true,
            linux_pt_cached: true,
            idle_cache_lock: false,
            cache_preloads: false,
            fault_injection: None,
            trace: false,
            trace_ring_capacity: crate::trace::DEFAULT_RING_CAPACITY,
            pmu: None,
            telemetry: None,
            mmtune: None,
            check: None,
            tail: None,
            causal: None,
            fused: true,
        }
    }

    /// The optimized kernel plus the paper's §10 future-work extensions
    /// (uncached page tables, idle cache locking, cache preloads).
    pub fn extended() -> Self {
        Self {
            htab_cached: false,
            linux_pt_cached: false,
            idle_cache_lock: true,
            cache_preloads: true,
            ..Self::optimized()
        }
    }

    /// A deterministic one-line summary of every paper-relevant toggle, for
    /// artifact headers (`repro bench --json`, `perf.data`, the matrix).
    /// Two runs are comparable cell-for-cell only when their summaries'
    /// *shapes* match; the differ uses this string to refuse cross-machine
    /// or cross-schema comparisons with a clear error instead of emitting
    /// nonsense deltas.
    pub fn summary(&self) -> String {
        let vsid = match self.vsid_policy {
            VsidPolicy::PidScatter { constant } => format!("pid*{constant}"),
            VsidPolicy::ContextCounter { constant } => format!("ctx*{constant}"),
        };
        let handler = match self.handler {
            HandlerStyle::SlowC => "slow_c",
            HandlerStyle::FastAsm => "fast_asm",
        };
        let clearing = match self.page_clearing {
            PageClearing::OnDemand => "on_demand",
            PageClearing::IdleCached => "idle_cached",
            PageClearing::IdleUncachedNoList => "idle_uncached_nolist",
            PageClearing::IdleUncached => "idle_uncached",
        };
        let cutoff = match self.flush_cutoff_pages {
            Some(c) => c.to_string(),
            None => "none".to_string(),
        };
        format!(
            "bats={} io_bat={} vsid={} handler={} htab_on_603={} lazy_flush={} \
             cutoff={} idle_reclaim={} scarcity_reclaim={} clearing={} \
             htab_cached={} pt_cached={} idle_cache_lock={} cache_preloads={}",
            u8::from(self.use_bats),
            u8::from(self.io_bat),
            vsid,
            handler,
            u8::from(self.htab_on_603),
            u8::from(self.lazy_flush),
            cutoff,
            u8::from(self.idle_reclaim),
            u8::from(self.scarcity_reclaim),
            clearing,
            u8::from(self.htab_cached),
            u8::from(self.linux_pt_cached),
            u8::from(self.idle_cache_lock),
            u8::from(self.cache_preloads),
        )
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if lazy flushing is requested without the context-counter VSID
    /// policy (the mechanism it depends on), or if a zero scatter constant
    /// is configured.
    pub fn validate(&self) {
        if self.lazy_flush {
            assert!(
                matches!(self.vsid_policy, VsidPolicy::ContextCounter { .. }),
                "lazy flushes require the context-counter VSID policy"
            );
        }
        assert!(
            self.vsid_policy.constant() > 0,
            "scatter constant must be nonzero"
        );
        if let Some(c) = self.flush_cutoff_pages {
            assert!(c > 0, "flush cutoff must be positive");
        }
        assert!(
            self.trace_ring_capacity > 0,
            "trace ring capacity must be positive"
        );
        if let Some(tc) = self.tail {
            assert!(
                self.trace,
                "tail forensics requires tracing (it reads the histograms, \
                 span stack and trace ring)"
            );
            tc.validate();
        }
        if let Some(cc) = self.causal {
            cc.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        KernelConfig::unoptimized().validate();
        KernelConfig::optimized().validate();
        KernelConfig::extended().validate();
    }

    #[test]
    fn optimized_uses_paper_settings() {
        let c = KernelConfig::optimized();
        assert!(c.use_bats && c.lazy_flush && c.idle_reclaim);
        assert_eq!(c.flush_cutoff_pages, Some(20), "paper §7: 20-page cutoff");
        assert_eq!(c.handler, HandlerStyle::FastAsm);
        assert!(!c.htab_on_603, "§6.2: hash table improved away on the 603");
        assert_eq!(c.page_clearing, PageClearing::IdleUncached);
    }

    #[test]
    fn summary_is_deterministic_and_distinguishes_presets() {
        let u = KernelConfig::unoptimized().summary();
        let o = KernelConfig::optimized().summary();
        assert_eq!(u, KernelConfig::unoptimized().summary());
        assert_ne!(u, o);
        assert!(
            u.contains("handler=slow_c") && u.contains("vsid=pid*16"),
            "{u}"
        );
        assert!(o.contains("cutoff=20") && o.contains("vsid=ctx*897"), "{o}");
        // Every toggle appears exactly once, space-separated key=value.
        for part in o.split(' ') {
            assert_eq!(part.matches('=').count(), 1, "{part}");
        }
    }

    #[test]
    #[should_panic(expected = "tail forensics requires tracing")]
    fn tail_requires_trace() {
        let mut c = KernelConfig::optimized();
        c.tail = Some(crate::tail::TailConfig::auto());
        c.validate();
    }

    #[test]
    fn tail_with_trace_validates() {
        let mut c = KernelConfig::optimized();
        c.trace = true;
        c.tail = Some(crate::tail::TailConfig::auto());
        c.validate();
    }

    #[test]
    fn presets_leave_causal_off_and_identity_validates() {
        assert!(KernelConfig::unoptimized().causal.is_none());
        assert!(KernelConfig::optimized().causal.is_none());
        assert!(KernelConfig::extended().causal.is_none());
        let mut c = KernelConfig::optimized();
        c.causal = Some(crate::causal::CausalConfig::identity());
        c.validate();
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn causal_zero_denominator_is_rejected() {
        let mut c = KernelConfig::optimized();
        let bad = crate::causal::Ratio { num: 1, den: 0 };
        c.causal = Some(
            crate::causal::CausalConfig::identity()
                .scale_path(crate::causal::CausalPath::Flush, bad),
        );
        c.validate();
    }

    #[test]
    fn summary_excludes_causal() {
        let mut c = KernelConfig::optimized();
        let plain = c.summary();
        c.causal = Some(crate::causal::CausalConfig::identity());
        assert_eq!(c.summary(), plain, "causal is observational scaffolding");
    }

    #[test]
    #[should_panic(expected = "lazy flushes require")]
    fn lazy_flush_requires_context_counter() {
        let mut c = KernelConfig::optimized();
        c.vsid_policy = VsidPolicy::PidScatter { constant: 897 };
        c.validate();
    }

    #[test]
    fn page_clearing_predicates() {
        assert!(!PageClearing::OnDemand.idle_clears());
        assert!(PageClearing::IdleCached.through_cache());
        assert!(!PageClearing::IdleUncached.through_cache());
        assert!(PageClearing::IdleUncached.uses_list());
        assert!(!PageClearing::IdleUncachedNoList.uses_list());
    }

    #[test]
    fn scatter_constant_accessor() {
        assert_eq!(VsidPolicy::PidScatter { constant: 7 }.constant(), 7);
        assert_eq!(VsidPolicy::ContextCounter { constant: 897 }.constant(), 897);
    }
}
