//! The page-fault path: demand-zero and file-backed population.

use ppc_machine::Cycles;
use ppc_mmu::addr::{EffectiveAddress, PhysAddr, PAGE_SIZE};
use ppc_mmu::translate::AccessType;

use crate::kernel::Kernel;
use crate::layout::KernelPath;
use crate::linuxpt::{LinuxPte, PTE_RW};
use crate::task::VmaKind;

impl Kernel {
    /// Services a real page fault at `ea` (no translation anywhere).
    ///
    /// # Panics
    ///
    /// Panics on an access outside every VMA (a simulated segfault — the
    /// workloads in this repository are well-formed, so this is a bug trap)
    /// or on out-of-memory.
    pub(crate) fn page_fault(&mut self, ea: EffectiveAddress, _at: AccessType) {
        self.stats.page_faults += 1;
        let costs = self.machine.cfg.costs;
        self.machine.charge(costs.exception_entry);
        // Page faults always run the C handler.
        let insns = self.paths.fault_c;
        self.run_kernel_path(KernelPath::FaultHandler, insns);
        // VMA lookup in the task struct.
        let cur = self.current.expect("page fault with no current task");
        let ts = self.tasks[cur].task_struct_pa();
        for i in 0..4 {
            self.kdata_ref(ts + 0x80 + i * 4, false);
        }
        // The VMA structure itself is slab-resident.
        let pid = self.tasks[cur].pid;
        self.kmeta_ref(0x4000 + pid * 17 + (ea.0 >> 24), false);
        let vma = match self.tasks[cur].find_vma(ea) {
            Some(v) => *v,
            None => {
                self.stats.segfaults += 1;
                panic!("segfault at {:#x} (pid {})", ea.0, self.tasks[cur].pid);
            }
        };
        let page_ea = ea.page_base();
        let (pa, writable) = match vma.kind {
            VmaKind::Anon => {
                let pa = self.get_free_page_charged(true);
                self.tasks[cur].frames.push((page_ea.0, pa));
                (pa, true)
            }
            VmaKind::File { file, offset } => {
                // Page-cache pages are mapped read-only (text and shared
                // mappings); a store through one is a protection violation.
                let file_off = offset + (page_ea.0 - vma.start);
                let pa = self.files[file]
                    .page_at(file_off)
                    .expect("file mapping past EOF");
                self.mem_map_ref(pa, false);
                (pa, false)
            }
        };
        self.map_user_page_prot(cur, page_ea, pa, writable);
        self.machine.charge(costs.exception_exit);
    }

    /// Installs `pa` writable at `page_ea` in task `idx`'s page tables.
    pub(crate) fn map_user_page(&mut self, idx: usize, page_ea: EffectiveAddress, pa: PhysAddr) {
        self.map_user_page_prot(idx, page_ea, pa, true);
    }

    /// Installs `pa` at `page_ea` in task `idx`'s page tables, charging the
    /// page-table writes.
    pub(crate) fn map_user_page_prot(
        &mut self,
        idx: usize,
        page_ea: EffectiveAddress,
        pa: PhysAddr,
        writable: bool,
    ) {
        let pte = LinuxPte::present(pa >> 12, if writable { PTE_RW } else { 0 });
        let pt = self.tasks[idx].pt;
        let frames = &mut self.frames;
        let walk = pt
            .map(&mut self.phys, page_ea, pte, || frames.get_pt_page())
            .expect("page-table pool exhausted");
        let cached = self.cfg.linux_pt_cached;
        let c1 = self.machine.mem.data_write(walk.pgd_entry_pa, cached);
        let c2 = self.machine.mem.data_write(
            walk.pte_entry_pa.expect("map always has a PTE slot"),
            cached,
        );
        self.machine.charge(c1 + c2);
    }

    /// `get_free_page()`: takes a frame, consulting the pre-cleared list
    /// first (paper §9); clears on demand when needed. Charges all costs.
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted.
    pub fn get_free_page_charged(&mut self, need_zero: bool) -> PhysAddr {
        // "the only overhead is a check to see if there are any pre-cleared
        // pages available" (§9).
        self.machine.charge(4);
        let (pa, precleared) = self.frames.get_free_page().expect("out of physical memory");
        self.mem_map_ref(pa, true);
        if need_zero && !precleared {
            // Demand clear with ordinary cached stores — the paper's kernel
            // avoided `dcbz` (§9), so every line pays a write-allocate fill
            // on the demand path. This is exactly the time the pre-cleared
            // list saves.
            self.machine.zero_page_stores_pa(pa);
            self.phys.zero_page(pa);
        }
        pa
    }

    /// Frees one page frame back to the allocator (a few cycles of list
    /// manipulation).
    pub fn free_page_charged(&mut self, pa: PhysAddr) -> Cycles {
        self.machine.charge(6);
        self.mem_map_ref(pa, true);
        self.frames.free_page(pa);
        6
    }

    /// Pre-faults every page of `[start, start + pages*4K)` in the current
    /// task by reading one word per page (workload setup helper; reads so
    /// that read-only file mappings can be pre-faulted too).
    pub fn prefault(&mut self, start: u32, pages: u32) {
        for i in 0..pages {
            self.data_ref(EffectiveAddress(start + i * PAGE_SIZE), false);
        }
    }
}
