//! The page-fault path: demand-zero and file-backed population, plus the
//! memory-pressure path (page-cache eviction, zombie reclaim, OOM killer).

use ppc_machine::Cycles;
use ppc_mmu::addr::{EffectiveAddress, PhysAddr, PAGE_SIZE};
use ppc_mmu::translate::AccessType;

use crate::errors::{KResult, KernelError, Signal};
use crate::fs::PageCacheLookup;
use crate::kernel::Kernel;
use crate::layout::KernelPath;
use crate::linuxpt::{LinuxPte, PTE_RW};
use crate::prof::Subsystem;
use crate::task::VmaKind;
use crate::trace::{LatencyPath, TraceEvent};

/// PTEG groups swept per direct-reclaim round (four idle steps' worth —
/// direct reclaim is in a hurry).
const PRESSURE_RECLAIM_GROUPS: u32 = 32;

/// Clean page-cache pages evicted per direct-reclaim round.
const PRESSURE_EVICT_BATCH: usize = 8;

/// Modelled instruction counts for the reclaim machinery itself (LRU-list
/// walks and bookkeeping; the memory traffic is charged separately).
const RECLAIM_PASS_INSNS: u32 = 120;
const EVICT_PER_PAGE_INSNS: u32 = 40;

impl Kernel {
    /// Services a real page fault at `ea` (no translation anywhere).
    ///
    /// An access outside every VMA delivers SIGSEGV to the current task and
    /// an access through a file mapping past end of file delivers SIGBUS;
    /// both kill the task (see [`Kernel::deliver_fatal_signal`]) and return
    /// the corresponding [`KernelError::Fatal`]. Out of memory after
    /// reclaim either OOM-kills a victim or fails the fault.
    pub(crate) fn page_fault(&mut self, ea: EffectiveAddress, at: AccessType) -> KResult<()> {
        // Span bracket around the fallible body so the profiler stack stays
        // balanced on the fatal-signal early returns.
        self.t_event(|| TraceEvent::PageFault { ea: ea.0 });
        let t0 = self.t_enter(Subsystem::PageFault);
        let r = self.page_fault_inner(ea, at);
        self.t_exit_lat(t0, LatencyPath::PageFault);
        r
    }

    fn page_fault_inner(&mut self, ea: EffectiveAddress, _at: AccessType) -> KResult<()> {
        self.stats.page_faults += 1;
        let costs = self.machine.cfg.costs;
        self.machine.charge(costs.exception_entry);
        // Page faults always run the C handler.
        let insns = self.paths.fault_c;
        self.run_kernel_path(KernelPath::FaultHandler, insns);
        // VMA lookup in the task struct.
        let cur = self.current.expect("page fault with no current task");
        let ts = self.tasks[cur].task_struct_pa();
        for i in 0..4 {
            self.kdata_ref(ts + 0x80 + i * 4, false);
        }
        // The VMA structure itself is slab-resident.
        let pid = self.tasks[cur].pid;
        self.kmeta_ref(0x4000 + pid * 17 + (ea.0 >> 24), false);
        let vma = match self.tasks[cur].find_vma(ea) {
            Some(v) => *v,
            None => {
                self.stats.segfaults += 1;
                return Err(self.deliver_fatal_signal(Signal::Segv, ea.0));
            }
        };
        let page_ea = ea.page_base();
        let (pa, writable) = match vma.kind {
            VmaKind::Anon => {
                let pa = self.get_free_page_charged(true)?;
                self.tasks[cur].frames.push((page_ea.0, pa));
                (pa, true)
            }
            VmaKind::File { file, offset } => {
                // Page-cache pages are mapped read-only (text and shared
                // mappings); a store through one is a protection violation.
                let file_off = offset + (page_ea.0 - vma.start);
                let pa = match self.files[file].page_at(file_off) {
                    PageCacheLookup::Present(pa) => pa,
                    PageCacheLookup::Evicted => self.page_cache_fill(file, file_off)?,
                    PageCacheLookup::PastEof => {
                        return Err(self.deliver_fatal_signal(Signal::Bus, ea.0));
                    }
                };
                self.mem_map_ref(pa, false);
                // Pin the frame: a mapped page-cache page is not evictable.
                *self.file_map_refs.entry(pa).or_insert(0) += 1;
                (pa, false)
            }
        };
        self.map_user_page_prot(cur, page_ea, pa, writable)?;
        self.machine.charge(costs.exception_exit);
        Ok(())
    }

    /// Installs `pa` writable at `page_ea` in task `idx`'s page tables.
    pub(crate) fn map_user_page(
        &mut self,
        idx: usize,
        page_ea: EffectiveAddress,
        pa: PhysAddr,
    ) -> KResult<()> {
        self.map_user_page_prot(idx, page_ea, pa, true)
    }

    /// Installs `pa` at `page_ea` in task `idx`'s page tables, charging the
    /// page-table writes. Fails with `ENOMEM` when the page-table pool is
    /// exhausted and reclaim cannot refill it.
    pub(crate) fn map_user_page_prot(
        &mut self,
        idx: usize,
        page_ea: EffectiveAddress,
        pa: PhysAddr,
        writable: bool,
    ) -> KResult<()> {
        let pte = LinuxPte::present(pa >> 12, if writable { PTE_RW } else { 0 });
        let pt = self.tasks[idx].pt;
        let frames = &mut self.frames;
        let walk = pt
            .map(&mut self.phys, page_ea, pte, || frames.get_pt_page())
            .ok_or(KernelError::OutOfMemory)?;
        let cached = self.cfg.linux_pt_cached;
        let c1 = self.machine.mem.data_write(walk.pgd_entry_pa, cached);
        let c2 = self.machine.mem.data_write(
            walk.pte_entry_pa.expect("map always has a PTE slot"),
            cached,
        );
        self.machine.charge(c1 + c2);
        Ok(())
    }

    /// `get_free_page()`: takes a frame, consulting the pre-cleared list
    /// first (paper §9); clears on demand when needed. Charges all costs.
    ///
    /// When the free list is empty (or an injected allocation failure
    /// pretends it is), the memory-pressure path runs: sweep zombie PTEs,
    /// evict clean unmapped page-cache pages, and — when reclaim frees
    /// nothing — OOM-kill the task holding the most frames. Fails with
    /// [`KernelError::Fatal`] (SIGKILL) if the victim is the current task,
    /// or [`KernelError::OutOfMemory`] when there is nothing left to kill.
    pub fn get_free_page_charged(&mut self, need_zero: bool) -> KResult<PhysAddr> {
        // "the only overhead is a check to see if there are any pre-cleared
        // pages available" (§9).
        self.machine.charge(4);
        let mut forced_fail = self.roll_injected_alloc_fail();
        let (pa, precleared) = loop {
            if !forced_fail {
                if let Some(got) = self.frames.get_free_page() {
                    break got;
                }
            }
            forced_fail = false;
            if self.memory_pressure_reclaim() > 0 {
                continue;
            }
            match self.oom_kill()? {
                true => continue,
                false => return Err(KernelError::OutOfMemory),
            }
        };
        self.mem_map_ref(pa, true);
        if need_zero && !precleared {
            // Demand clear with ordinary cached stores — the paper's kernel
            // avoided `dcbz` (§9), so every line pays a write-allocate fill
            // on the demand path. This is exactly the time the pre-cleared
            // list saves.
            self.machine.zero_page_stores_pa(pa);
            self.phys.zero_page(pa);
        }
        Ok(pa)
    }

    /// One round of direct reclaim, cheapest first: a zombie-PTE sweep of
    /// the hash table (frees translation slots, like the idle task's §7
    /// reclaim but synchronous), then eviction of clean, unmapped
    /// page-cache pages. Returns the number of page frames freed.
    pub(crate) fn memory_pressure_reclaim(&mut self) -> usize {
        self.t_enter(Subsystem::Reclaim);
        let evicted = self.memory_pressure_reclaim_inner();
        self.t_exit();
        evicted
    }

    fn memory_pressure_reclaim_inner(&mut self) -> usize {
        self.run_kernel_path(KernelPath::Mm, RECLAIM_PASS_INSNS);
        let cached = self.cfg.htab_cached;
        self.reclaim_chunk(PRESSURE_RECLAIM_GROUPS, cached);
        // Evict clean page-cache pages that no task has mapped. Everything
        // in the cache is clean (the simulation never dirties file pages),
        // so eviction is just unhooking the frame.
        let mut evicted = 0;
        'files: for fi in 0..self.files.len() {
            for pi in 0..self.files[fi].pages.len() {
                let Some(pa) = self.files[fi].pages[pi] else {
                    continue;
                };
                if self.file_map_refs.contains_key(&pa) {
                    continue;
                }
                self.run_kernel_path(KernelPath::Mm, EVICT_PER_PAGE_INSNS);
                self.mem_map_ref(pa, true);
                self.files[fi].pages[pi] = None;
                self.frames.free_page(pa);
                self.stats.reclaimed_pages += 1;
                evicted += 1;
                if evicted >= PRESSURE_EVICT_BATCH {
                    break 'files;
                }
            }
        }
        evicted
    }

    /// The OOM killer: picks the *alive, non-current* task holding the most
    /// frames and reaps it, returning `Ok(true)`. When the current task is
    /// the only candidate, it is killed with SIGKILL (`Err(Fatal)`); when no
    /// task holds frames at all, returns `Ok(false)` — genuinely out of
    /// memory.
    pub(crate) fn oom_kill(&mut self) -> KResult<bool> {
        self.t_enter(Subsystem::Reclaim);
        let r = self.oom_kill_inner();
        self.t_exit();
        r
    }

    fn oom_kill_inner(&mut self) -> KResult<bool> {
        self.run_kernel_path(KernelPath::Mm, RECLAIM_PASS_INSNS);
        // Badness scan: one task-struct read per task considered.
        let mut victim: Option<(usize, usize)> = None;
        for idx in 0..self.tasks.len() {
            if !self.tasks[idx].is_alive() {
                continue;
            }
            let ts = self.tasks[idx].task_struct_pa();
            self.kdata_ref(ts + 0x40, false);
            let frames = self.tasks[idx].frames.len();
            if frames == 0 || Some(idx) == self.current {
                continue;
            }
            if victim.is_none_or(|(_, best)| frames > best) {
                victim = Some((idx, frames));
            }
        }
        match victim {
            Some((idx, _)) => {
                self.stats.oom_kills += 1;
                let victim_pid = self.tasks[idx].pid;
                self.t_event(|| TraceEvent::OomKill { victim: victim_pid });
                self.teardown_task(idx);
                Ok(true)
            }
            None => {
                let cur = self.current;
                match cur {
                    Some(idx) if !self.tasks[idx].frames.is_empty() => {
                        self.stats.oom_kills += 1;
                        let victim_pid = self.tasks[idx].pid;
                        self.t_event(|| TraceEvent::OomKill { victim: victim_pid });
                        Err(self.deliver_fatal_signal(Signal::Kill, 0))
                    }
                    _ => Ok(false),
                }
            }
        }
    }

    /// Frees one page frame back to the allocator (a few cycles of list
    /// manipulation).
    pub fn free_page_charged(&mut self, pa: PhysAddr) -> Cycles {
        self.machine.charge(6);
        self.mem_map_ref(pa, true);
        self.frames.free_page(pa);
        6
    }

    /// Pre-faults every page of `[start, start + pages*4K)` in the current
    /// task by reading one word per page (workload setup helper; reads so
    /// that read-only file mappings can be pre-faulted too).
    pub fn prefault(&mut self, start: u32, pages: u32) -> KResult<()> {
        for i in 0..pages {
            self.data_ref(EffectiveAddress(start + i * PAGE_SIZE), false)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kconfig::KernelConfig;
    use crate::sched::USER_BASE;
    use crate::task::Pid;
    use ppc_machine::MachineConfig;

    /// Spawns a process with `pages` faulted-in anonymous pages.
    fn hog(k: &mut Kernel, pages: u32) -> Pid {
        let pid = k.spawn_process(pages).unwrap();
        k.switch_to(pid);
        for i in 0..pages {
            k.user_write(USER_BASE + i * PAGE_SIZE, 4).unwrap();
        }
        pid
    }

    #[test]
    fn oom_killer_reaps_the_task_holding_the_most_frames() {
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
        let small = hog(&mut k, 4);
        let big = hog(&mut k, 64);
        let mid = hog(&mut k, 16);
        k.switch_to(small);
        let free0 = k.frames.free_frames();
        let big_frames = k.tasks[k.task_idx(big).unwrap()].frames.len();

        assert!(k.oom_kill().unwrap());

        assert_eq!(k.stats.oom_kills, 1);
        assert!(k.task_idx(big).is_none(), "the biggest hog must die");
        assert!(k.task_idx(small).is_some());
        assert!(k.task_idx(mid).is_some());
        // Every frame the victim held (plus its page-table pages) comes back.
        assert!(
            k.frames.free_frames() >= free0 + big_frames,
            "freed {} of at least {big_frames}",
            k.frames.free_frames() - free0
        );
    }

    #[test]
    fn oom_survivors_keep_running_after_the_kill() {
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
        let survivor = hog(&mut k, 8);
        let victim = hog(&mut k, 32);
        k.switch_to(survivor);
        assert!(k.oom_kill().unwrap());
        assert!(k.task_idx(victim).is_none());
        // The survivor's working set is intact and re-faultable.
        k.user_read(USER_BASE, 8 * PAGE_SIZE).unwrap();
        assert_eq!(k.stats.segfaults, 0);
        // And it can still grow: the victim's frames are allocatable.
        let grown = k.sys_mmap(None, 16 * PAGE_SIZE);
        k.prefault(grown, 16).unwrap();
    }

    #[test]
    fn oom_kills_the_current_task_when_it_is_the_only_candidate() {
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
        let only = hog(&mut k, 8);
        k.switch_to(only);
        let err = k.oom_kill().unwrap_err();
        assert_eq!(
            err,
            KernelError::Fatal {
                signal: Signal::Kill,
                ea: 0
            }
        );
        assert_eq!(k.stats.oom_kills, 1);
        assert!(k.current.is_none());
    }

    #[test]
    fn oom_with_no_frames_held_anywhere_is_a_real_oom() {
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
        assert!(!k.oom_kill().unwrap());
        assert_eq!(k.stats.oom_kills, 0);
    }
}
