//! Tests for the adversarial checking subsystem: the shadow-MM oracle,
//! runtime invariants, and the zero-cost-when-off obligation.

use ppc_machine::MachineConfig;

use crate::check::CheckConfig;
use crate::inject::FaultInjection;
use crate::kconfig::KernelConfig;
use crate::kernel::Kernel;
use crate::sched::USER_BASE;

/// A small but MM-diverse workload: faults, COW forks, exec unmaps, brks,
/// munmaps, pipes, signals, and enough context switches to cross epoch
/// boundaries.
fn drive(k: &mut Kernel) {
    let bin = k.create_file(4 * 4096).unwrap();
    let a = k.spawn_process(16).unwrap();
    let b = k.spawn_process(16).unwrap();
    k.switch_to(a);
    k.user_write(USER_BASE, 16 * 4096).unwrap();
    let child = k.sys_fork().unwrap();
    // COW break in the parent.
    k.user_write(USER_BASE, 8 * 4096).unwrap();
    k.switch_to(child);
    k.user_read(USER_BASE, 4 * 4096).unwrap();
    k.sys_exec(bin, 4, 8).unwrap();
    // Text is read-only after exec; the heap starts above it.
    k.user_read(USER_BASE, 4 * 4096).unwrap();
    k.user_write(USER_BASE + 4 * 4096, 4 * 4096).unwrap();
    k.sys_brk(24).unwrap();
    k.user_write(USER_BASE + 16 * 4096, 8 * 4096).unwrap();
    let m = k.sys_mmap(None, 8 * 4096);
    k.user_write(m, 8 * 4096).unwrap();
    k.sys_munmap(m, 8 * 4096);
    k.switch_to(b);
    k.user_write(USER_BASE, 16 * 4096).unwrap();
    k.signal_roundtrip(USER_BASE).unwrap();
    for _ in 0..64 {
        k.yield_next();
        k.sys_null();
        k.user_read(USER_BASE, 4096).unwrap();
    }
    k.switch_to(child);
    k.exit_current();
    k.check_finish();
}

fn cfg_with(check: Option<CheckConfig>, inject: Option<FaultInjection>) -> KernelConfig {
    KernelConfig {
        check,
        fault_injection: inject,
        ..KernelConfig::extended()
    }
}

#[test]
fn check_mode_is_cycle_and_counter_identical_when_off() {
    let mut off = Kernel::boot(MachineConfig::ppc604_185(), cfg_with(None, None));
    let mut on = Kernel::boot(
        MachineConfig::ppc604_185(),
        cfg_with(Some(CheckConfig::full()), None),
    );
    drive(&mut off);
    drive(&mut on);
    assert_eq!(
        off.machine.cycles, on.machine.cycles,
        "check mode must charge zero cycles"
    );
    assert_eq!(off.stats, on.stats, "check mode must not perturb counters");
    assert_eq!(
        off.machine.snapshot(),
        on.machine.snapshot(),
        "check mode must not touch hardware monitor state"
    );
    let c = on.check.as_ref().unwrap();
    assert!(c.checked_observations > 0, "oracle saw no observations");
    assert!(c.invariant_passes > 0, "invariants never evaluated");
    assert!(c.heavy_sweeps > 0, "no heavy sweep ran");
}

#[test]
fn check_survives_chaotic_injection() {
    let mut k = Kernel::boot(
        MachineConfig::ppc604_185(),
        cfg_with(
            Some(CheckConfig::full()),
            Some(FaultInjection::chaotic(0xC0FFEE)),
        ),
    );
    drive(&mut k);
    let c = k.check.as_ref().unwrap();
    assert!(c.checked_observations > 0);
}

#[test]
fn oracle_catches_deliberate_stale_vsid_bug() {
    let result = std::panic::catch_unwind(|| {
        let mut k = Kernel::boot(
            MachineConfig::ppc604_185(),
            cfg_with(Some(CheckConfig::full()), None),
        );
        let a = k.spawn_process(8).unwrap();
        k.switch_to(a);
        k.user_write(USER_BASE, 8 * 4096).unwrap();
        // Arm the planted bug: flush_context retires legality in the oracle
        // but skips the VSID bump, leaving stale SRs and TLB entries live.
        k.set_buggy_skip_vsid_flush(true);
        let idx = k.task_idx(a).unwrap();
        k.flush_context(idx);
        // The very next access through a previously-translated page must
        // trip the oracle (stale TLB or hash-table hit).
        for _ in 0..8 {
            k.user_read(USER_BASE, 8 * 4096).unwrap();
        }
        k.check_finish();
    });
    let err = result.expect_err("stale-TLB bug escaped the oracle");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
    assert!(msg.contains("MM check violation"), "wrong panic: {msg}");
    assert!(
        msg.contains("stale"),
        "violation is not a staleness report: {msg}"
    );
}

#[test]
fn bug_without_checker_goes_unnoticed() {
    // The same planted bug with check mode off runs to completion — which
    // is exactly why the oracle has to exist.
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), cfg_with(None, None));
    let a = k.spawn_process(8).unwrap();
    k.switch_to(a);
    k.user_write(USER_BASE, 8 * 4096).unwrap();
    k.set_buggy_skip_vsid_flush(true);
    let idx = k.task_idx(a).unwrap();
    k.flush_context(idx);
    k.user_read(USER_BASE, 8 * 4096).unwrap();
}

#[test]
fn unoptimized_kernel_is_oracle_clean() {
    // Eager flushes, no BATs, slow handlers: the other end of the config
    // space must satisfy the same oracle.
    let cfg = KernelConfig {
        check: Some(CheckConfig::full()),
        ..KernelConfig::unoptimized()
    };
    let mut k = Kernel::boot(MachineConfig::ppc603_133(), cfg);
    drive(&mut k);
    let c = k.check.as_ref().unwrap();
    assert!(c.checked_observations > 0);
    assert!(c.heavy_sweeps > 0);
}
