//! Simulated physical memory and the page-frame allocator.

use ppc_mmu::addr::{PhysAddr, PAGE_SIZE};

use crate::layout::{pfn, pfn_to_pa, FRAME_POOL_PA, PT_POOL_PA, RAM_BYTES, TOTAL_FRAMES};

/// Word-addressable simulated RAM.
///
/// Page tables and other kernel structures genuinely live here, so the
/// simulator's page-table walks read the same words the fault handlers
/// wrote — semantics, not just costs.
#[derive(Clone)]
pub struct PhysMem {
    words: Vec<u32>,
}

impl std::fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysMem")
            .field("bytes", &(self.words.len() * 4))
            .finish()
    }
}

impl PhysMem {
    /// Allocates zeroed RAM.
    pub fn new() -> Self {
        Self {
            words: vec![0; (RAM_BYTES / 4) as usize],
        }
    }

    /// Reads the aligned word containing `pa`.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is outside RAM.
    pub fn read_u32(&self, pa: PhysAddr) -> u32 {
        self.words[(pa / 4) as usize]
    }

    /// Writes the aligned word containing `pa`.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is outside RAM.
    pub fn write_u32(&mut self, pa: PhysAddr, value: u32) {
        self.words[(pa / 4) as usize] = value;
    }

    /// Copies one page's contents (the semantic side of a COW break).
    pub fn copy_page(&mut self, src_pa: PhysAddr, dst_pa: PhysAddr) {
        debug_assert_eq!(src_pa % PAGE_SIZE, 0);
        debug_assert_eq!(dst_pa % PAGE_SIZE, 0);
        let words = (PAGE_SIZE / 4) as usize;
        let src = (src_pa / 4) as usize;
        let dst = (dst_pa / 4) as usize;
        self.words.copy_within(src..src + words, dst);
    }

    /// Zero-fills one page.
    pub fn zero_page(&mut self, page_pa: PhysAddr) {
        debug_assert_eq!(page_pa % PAGE_SIZE, 0);
        let start = (page_pa / 4) as usize;
        self.words[start..start + (PAGE_SIZE / 4) as usize].fill(0);
    }
}

impl Default for PhysMem {
    fn default() -> Self {
        Self::new()
    }
}

/// Why a frame is being requested (for accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameUse {
    /// A user page (anonymous memory, stack, text).
    User,
    /// A page-table page.
    PageTable,
    /// Kernel dynamic memory (pipe buffers, page cache).
    Kernel,
}

/// Allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// `get_free_page()` calls.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Allocations satisfied from the pre-cleared list (paper §9), skipping
    /// the clear entirely.
    pub precleared_hits: u64,
    /// Allocations that had to clear the page on demand.
    pub demand_clears: u64,
    /// Pages cleared by the idle task.
    pub idle_clears: u64,
}

/// The physical page-frame allocator: a free list plus the paper's §9
/// pre-cleared page list.
///
/// The allocator hands out *frames*; clearing costs are charged by the
/// caller (the kernel), because whether and how a page is cleared is exactly
/// the policy §9 varies.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    free: Vec<u32>,
    precleared: Vec<u32>,
    pt_free: Vec<u32>,
    /// Statistics.
    pub stats: FrameStats,
}

impl FrameAllocator {
    /// Builds the allocator over the general and page-table pools.
    pub fn new() -> Self {
        let first_frame = pfn(FRAME_POOL_PA);
        // LIFO order: low frames allocated first.
        let free: Vec<u32> = (first_frame..TOTAL_FRAMES).rev().collect();
        let pt_first = pfn(PT_POOL_PA);
        let pt_free: Vec<u32> = (pt_first..pfn(crate::layout::FRAME_POOL_PA).min(pt_first + 224))
            .rev()
            .collect();
        Self {
            free,
            precleared: Vec::new(),
            pt_free,
            stats: FrameStats::default(),
        }
    }

    /// Takes a frame. Returns `(pa, was_precleared)`; the caller must clear
    /// the page (and charge for it) when `was_precleared` is false and it
    /// needs a zeroed page. Returns `None` when out of memory.
    pub fn get_free_page(&mut self) -> Option<(PhysAddr, bool)> {
        self.stats.allocs += 1;
        if let Some(f) = self.precleared.pop() {
            self.stats.precleared_hits += 1;
            return Some((pfn_to_pa(f), true));
        }
        self.stats.demand_clears += 1;
        self.free.pop().map(|f| (pfn_to_pa(f), false))
    }

    /// Takes a page-table page (from the BAT-covered low pool, so that page
    /// tables are "mapped for free" when BATs are on — paper §5.1).
    pub fn get_pt_page(&mut self) -> Option<PhysAddr> {
        self.pt_free.pop().map(pfn_to_pa)
    }

    /// Returns a frame to the free list.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the frame is below the pool base — freeing
    /// kernel image or htab frames is a bug.
    pub fn free_page(&mut self, pa: PhysAddr) {
        debug_assert!(pa >= FRAME_POOL_PA, "freeing a reserved frame: {pa:#x}");
        debug_assert_eq!(pa % PAGE_SIZE, 0);
        self.stats.frees += 1;
        self.free.push(pfn(pa));
    }

    /// Returns a page-table page to its pool.
    pub fn free_pt_page(&mut self, pa: PhysAddr) {
        self.pt_free.push(pfn(pa));
    }

    /// Pops a dirty frame for the idle task to clear, if any are waiting.
    pub fn take_frame_for_idle_clear(&mut self) -> Option<PhysAddr> {
        self.free.pop().map(pfn_to_pa)
    }

    /// Deposits an idle-cleared frame on the pre-cleared list.
    pub fn deposit_precleared(&mut self, pa: PhysAddr) {
        self.stats.idle_clears += 1;
        self.precleared.push(pfn(pa));
    }

    /// Returns an idle-cleared frame to the ordinary free list (the §9
    /// variant that clears but does *not* remember — used to isolate the
    /// cost of clearing from the benefit of the list).
    pub fn return_uncleared(&mut self, pa: PhysAddr) {
        self.free.push(pfn(pa));
    }

    /// Frames currently free (ordinary + pre-cleared).
    pub fn free_frames(&self) -> usize {
        self.free.len() + self.precleared.len()
    }

    /// Frames on the pre-cleared list.
    pub fn precleared_frames(&self) -> usize {
        self.precleared.len()
    }

    /// Page-table pages currently free (the chaos driver's leak gate checks
    /// this returns to its boot value once every task is torn down).
    pub fn pt_free_pages(&self) -> usize {
        self.pt_free.len()
    }
}

impl Default for FrameAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = PhysMem::new();
        m.write_u32(0x1234, 0xdead_beef);
        assert_eq!(m.read_u32(0x1234), 0xdead_beef);
        assert_eq!(m.read_u32(0x1236), 0xdead_beef, "word-aligned access");
        assert_eq!(m.read_u32(0x1238), 0);
    }

    #[test]
    fn zero_page_clears_exactly_one_page() {
        let mut m = PhysMem::new();
        m.write_u32(0x3ffc, 7);
        m.write_u32(0x4000, 8);
        m.write_u32(0x4ffc, 9);
        m.write_u32(0x5000, 10);
        m.zero_page(0x4000);
        assert_eq!(m.read_u32(0x3ffc), 7);
        assert_eq!(m.read_u32(0x4000), 0);
        assert_eq!(m.read_u32(0x4ffc), 0);
        assert_eq!(m.read_u32(0x5000), 10);
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut a = FrameAllocator::new();
        let n = a.free_frames();
        let (pa, pre) = a.get_free_page().unwrap();
        assert!(!pre, "nothing pre-cleared initially");
        assert!(pa >= FRAME_POOL_PA);
        assert_eq!(a.free_frames(), n - 1);
        a.free_page(pa);
        assert_eq!(a.free_frames(), n);
    }

    #[test]
    fn precleared_list_is_preferred() {
        let mut a = FrameAllocator::new();
        let f = a.take_frame_for_idle_clear().unwrap();
        a.deposit_precleared(f);
        assert_eq!(a.precleared_frames(), 1);
        let (pa, pre) = a.get_free_page().unwrap();
        assert!(pre);
        assert_eq!(pa, f);
        assert_eq!(a.stats.precleared_hits, 1);
        assert_eq!(a.stats.idle_clears, 1);
    }

    #[test]
    fn pt_pool_is_separate_and_low() {
        let mut a = FrameAllocator::new();
        let pt = a.get_pt_page().unwrap();
        assert!((PT_POOL_PA..FRAME_POOL_PA).contains(&pt));
        let (user, _) = a.get_free_page().unwrap();
        assert!(user >= FRAME_POOL_PA);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = FrameAllocator::new();
        while a.get_free_page().is_some() {}
        assert!(a.get_free_page().is_none());
        assert_eq!(a.free_frames(), 0);
    }

    #[test]
    fn frames_are_unique_until_freed() {
        let mut a = FrameAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let (pa, _) = a.get_free_page().unwrap();
            assert!(seen.insert(pa), "duplicate frame {pa:#x}");
        }
    }
}
