//! Signal delivery — `lat_sig`'s substrate.
//!
//! The LmBench suite the paper ran includes `lat_sig` (signal install and
//! catch latency). Delivery is a miniature context switch: the kernel builds
//! a signal frame on the user stack, redirects control to the handler, and
//! the handler returns through a `sigreturn` syscall that restores the
//! interrupted state — all of it through the same exception-entry and
//! memory-system machinery the rest of the kernel uses.

use ppc_mmu::addr::EffectiveAddress;

use crate::errors::{KResult, KernelError, Signal};
use crate::kernel::Kernel;
use crate::layout::KernelPath;
use crate::prof::Subsystem;
use crate::sched::STACK_BASE;
use crate::trace::{LatencyPath, TraceEvent};

/// Words in a signal frame (saved context + siginfo).
const SIGFRAME_WORDS: u32 = 40;

impl Kernel {
    /// `signal()` / `sigaction()`: installs a handler (bookkeeping only).
    pub fn sys_signal_install(&mut self) {
        self.syscall_entry();
        let ts = self.cur().task_struct_pa();
        self.kdata_ref(ts + 0x100, true);
        self.syscall_exit();
    }

    /// One `kill(getpid(), SIG)` + catch + `sigreturn` round trip — the
    /// operation `lat_sig catch` times.
    ///
    /// # Panics
    ///
    /// Panics if no task is current.
    pub fn signal_roundtrip(&mut self, handler_ea: u32) -> KResult<()> {
        // Span bracket around the fallible body so the profiler stack stays
        // balanced when delivery dies on a fatal signal mid-frame.
        self.t_event(|| TraceEvent::Signal { fatal: false });
        let t0 = self.t_enter(Subsystem::Signal);
        let r = self.signal_roundtrip_inner(handler_ea);
        self.t_exit_lat(t0, LatencyPath::Signal);
        r
    }

    fn signal_roundtrip_inner(&mut self, handler_ea: u32) -> KResult<()> {
        // kill(): queue the signal against the task.
        self.syscall_entry();
        let insns = self.paths.signal / 2;
        self.run_kernel_path(KernelPath::SyscallEntry, insns);
        let ts = self.cur().task_struct_pa();
        self.kdata_ref(ts + 0x104, true);
        self.syscall_exit();
        // Delivery on the return to user space: build the signal frame on
        // the user stack...
        let insns = self.paths.signal / 2;
        self.run_kernel_path(KernelPath::SyscallEntry, insns);
        let frame_base = STACK_BASE + 8 * 4096 - SIGFRAME_WORDS * 4;
        for w in 0..SIGFRAME_WORDS {
            self.data_ref(EffectiveAddress(frame_base + w * 4), true)?;
        }
        // ...run the user handler...
        self.exec_code(EffectiveAddress(handler_ea), 24)?;
        self.data_ref(EffectiveAddress(frame_base), false)?;
        // ...and sigreturn restores the interrupted context.
        self.syscall_entry();
        for w in 0..SIGFRAME_WORDS {
            self.data_ref(EffectiveAddress(frame_base + w * 4), false)?;
        }
        self.syscall_exit();
        Ok(())
    }

    /// Delivers an *uncaught* fatal signal to the current task: the same
    /// queue + frame machinery as [`Kernel::signal_roundtrip`]'s delivery
    /// half, except the frame is built on the **kernel** stack (the user
    /// stack cannot be trusted mid-fault — it may itself be the faulting
    /// address), and instead of running a handler the kernel tears the task
    /// down and schedules the next runnable one. Returns the
    /// [`KernelError::Fatal`] the interrupted operation propagates.
    pub(crate) fn deliver_fatal_signal(&mut self, signal: Signal, ea: u32) -> KernelError {
        self.t_event(|| TraceEvent::Signal { fatal: true });
        let t0 = self.t_enter(Subsystem::Signal);
        let err = self.deliver_fatal_signal_inner(signal, ea);
        self.t_exit_lat(t0, LatencyPath::Signal);
        err
    }

    fn deliver_fatal_signal_inner(&mut self, signal: Signal, ea: u32) -> KernelError {
        let cur = self.current.expect("fatal signal with no current task");
        match signal {
            Signal::Segv => self.stats.sigsegvs += 1,
            Signal::Bus => self.stats.sigbus += 1,
            Signal::Kill => {} // counted by the OOM killer
        }
        let insns = self.paths.signal;
        self.run_kernel_path(KernelPath::SyscallEntry, insns);
        let stack = self.tasks[cur].task_struct_pa() + 0x200;
        for w in 0..SIGFRAME_WORDS {
            self.kdata_ref(stack + w * 4, true);
        }
        // Chaos site: an injected early context flush during the unwind,
        // before teardown re-flushes. Double-retiring a context must be
        // safe — the oracle and invariants verify it actually is.
        if self.roll_injected_unwind_flush() {
            self.flush_context(cur);
        }
        self.teardown_task(cur);
        self.machine.charge(self.machine.cfg.costs.exception_exit);
        KernelError::Fatal { signal, ea }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kconfig::KernelConfig;
    use crate::sched::USER_BASE;
    use ppc_machine::MachineConfig;

    fn kernel_with_proc() -> Kernel {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let pid = k.spawn_process(8).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 4).unwrap();
        k
    }

    #[test]
    fn roundtrip_costs_three_kernel_crossings() {
        let mut k = kernel_with_proc();
        k.sys_signal_install();
        let syscalls = k.stats.syscalls;
        k.signal_roundtrip(USER_BASE).unwrap();
        // kill + sigreturn are syscalls; delivery itself is a kernel exit.
        assert_eq!(k.stats.syscalls, syscalls + 2);
    }

    #[test]
    fn roundtrip_is_dearer_than_null_syscall() {
        let mut k = kernel_with_proc();
        k.sys_signal_install();
        k.signal_roundtrip(USER_BASE).unwrap(); // warm
        let c0 = k.machine.cycles;
        k.signal_roundtrip(USER_BASE).unwrap();
        let sig = k.machine.cycles - c0;
        let c0 = k.machine.cycles;
        k.sys_null();
        let null = k.machine.cycles - c0;
        assert!(
            sig > 2 * null,
            "signal ({sig}) must cost several syscalls ({null})"
        );
    }

    #[test]
    fn fatal_delivery_charges_like_a_real_signal() {
        let mut k = kernel_with_proc();
        k.sys_signal_install();
        k.signal_roundtrip(USER_BASE).unwrap(); // warm
        let c0 = k.machine.cycles;
        k.signal_roundtrip(USER_BASE).unwrap();
        let roundtrip = k.machine.cycles - c0;
        let c0 = k.machine.cycles;
        let err = k.user_write(0x5000_0000, 4).unwrap_err();
        let fatal = k.machine.cycles - c0;
        assert_eq!(
            err,
            KernelError::Fatal {
                signal: Signal::Segv,
                ea: 0x5000_0000
            }
        );
        assert!(k.current.is_none(), "the faulting task must be gone");
        // Delivery runs the full signal path, builds the frame, and tears
        // the task down — it cannot be cheaper than the delivery half of a
        // caught-signal round trip (which also runs a handler + sigreturn).
        assert!(
            fatal > roundtrip / 2,
            "fatal delivery ({fatal}) vs caught roundtrip ({roundtrip})"
        );
    }

    #[test]
    fn slow_kernel_signals_are_slower() {
        let run = |kcfg: KernelConfig| {
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
            let pid = k.spawn_process(8).unwrap();
            k.switch_to(pid);
            k.prefault(USER_BASE, 4).unwrap();
            k.signal_roundtrip(USER_BASE).unwrap();
            let c0 = k.machine.cycles;
            for _ in 0..10 {
                k.signal_roundtrip(USER_BASE).unwrap();
            }
            k.machine.cycles - c0
        };
        assert!(run(KernelConfig::unoptimized()) > 2 * run(KernelConfig::optimized()));
    }
}
