//! Comparison operating-system models for Table 3.
//!
//! The paper benchmarks Linux/PPC against the unoptimized Linux/PPC, Apple's
//! Mach-based Rhapsody and MkLinux, and IBM's AIX — all on a 133 MHz 604
//! PowerMac (AIX on a 133 MHz 604 43P). We cannot run those kernels, so we
//! model each as the same simulated substrate with that system's *structural*
//! overheads (substitution documented in DESIGN.md):
//!
//! * **Unoptimized Linux/PPC** — our kernel with every paper optimization
//!   switched off. Fully structural, no tuning.
//! * **MkLinux / Rhapsody** — the Linux personality runs as a Mach server:
//!   every syscall is a Mach IPC round trip (extra kernel crossings), pipe
//!   data is copied through the server (double copies), and context switches
//!   traverse the Mach scheduler + port machinery (longer path).
//! * **AIX** — a monolithic kernel without the Linux/PPC MMU tricks and with
//!   heavier, more general code paths.
//!
//! The path lengths below were chosen once, from the description above and
//! the relative magnitudes in Table 3; experiments never retune them.

use ppc_machine::MachineConfig;

use crate::kconfig::{HandlerStyle, KernelConfig, PageClearing, VsidPolicy};
use crate::kernel::{Kernel, PathLengths};

/// A named comparison OS: a kernel policy plus path lengths.
#[derive(Debug, Clone, Copy)]
pub struct OsModel {
    /// Display name (Table 3 column).
    pub name: &'static str,
    /// Kernel policy.
    pub kcfg: KernelConfig,
    /// Path lengths.
    pub paths: PathLengths,
}

impl OsModel {
    /// The optimized Linux/PPC of the paper.
    pub fn linux_ppc() -> Self {
        Self {
            name: "Linux/PPC",
            kcfg: KernelConfig::optimized(),
            paths: PathLengths::tuned(),
        }
    }

    /// The same kernel before the optimization campaign.
    pub fn linux_ppc_unoptimized() -> Self {
        Self {
            name: "Unoptimized Linux/PPC",
            kcfg: KernelConfig::unoptimized(),
            paths: PathLengths::original(),
        }
    }

    /// Apple Rhapsody 5.0 (Mach-based).
    pub fn rhapsody() -> Self {
        Self {
            name: "Rhapsody 5.0",
            kcfg: Self::mach_kcfg(),
            paths: PathLengths {
                syscall: 800,
                sched: 7000,
                fault_asm: 40,
                fault_c: 900,
                pipe_op: 5000,
                file_per_page: 1800,
                mm_op: 1500,
                mm_per_page: 60,
                flush_per_page: 180,
                spawn: 12000,
                ipc_hops: 2,
                pipe_copies: 3,
                pipe_chunk_insns: 30_000,
                signal: 2500,
            },
        }
    }

    /// Apple MkLinux (Linux server on Mach).
    pub fn mklinux() -> Self {
        Self {
            name: "MkLinux",
            kcfg: Self::mach_kcfg(),
            paths: PathLengths {
                syscall: 1000,
                sched: 7000,
                fault_asm: 40,
                fault_c: 900,
                pipe_op: 9000,
                file_per_page: 1600,
                mm_op: 1500,
                mm_per_page: 60,
                flush_per_page: 180,
                spawn: 12000,
                ipc_hops: 3,
                pipe_copies: 2,
                pipe_chunk_insns: 4000,
                signal: 3000,
            },
        }
    }

    /// IBM AIX (monolithic, untuned MMU management).
    pub fn aix() -> Self {
        Self {
            name: "AIX",
            kcfg: KernelConfig {
                use_bats: true,
                handler: HandlerStyle::SlowC,
                lazy_flush: false,
                vsid_policy: VsidPolicy::PidScatter { constant: 897 },
                flush_cutoff_pages: None,
                idle_reclaim: false,
                page_clearing: PageClearing::OnDemand,
                ..KernelConfig::unoptimized()
            },
            paths: PathLengths {
                syscall: 1400,
                sched: 2800,
                fault_asm: 40,
                fault_c: 650,
                pipe_op: 3200,
                file_per_page: 1200,
                mm_op: 800,
                mm_per_page: 40,
                flush_per_page: 120,
                spawn: 8000,
                ipc_hops: 0,
                pipe_copies: 2,
                pipe_chunk_insns: 6000,
                signal: 1600,
            },
        }
    }

    /// Shared policy for the Mach-based systems: none of the paper's tricks.
    fn mach_kcfg() -> KernelConfig {
        KernelConfig {
            // Mach did map the kernel with BATs.
            use_bats: true,
            ..KernelConfig::unoptimized()
        }
    }

    /// All five Table 3 systems, in the table's column order.
    pub fn table3() -> Vec<OsModel> {
        vec![
            Self::linux_ppc(),
            Self::linux_ppc_unoptimized(),
            Self::rhapsody(),
            Self::mklinux(),
            Self::aix(),
        ]
    }

    /// Boots this OS on `machine`.
    pub fn boot(&self, machine: MachineConfig) -> Kernel {
        Kernel::boot_with_paths(machine, self.kcfg, self.paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_five_systems() {
        let models = OsModel::table3();
        assert_eq!(models.len(), 5);
        assert_eq!(models[0].name, "Linux/PPC");
    }

    #[test]
    fn microkernels_pay_ipc_hops_and_double_copies() {
        assert!(OsModel::mklinux().paths.ipc_hops >= 2);
        assert_eq!(OsModel::mklinux().paths.pipe_copies, 2);
        assert_eq!(OsModel::linux_ppc().paths.ipc_hops, 0);
    }

    #[test]
    fn models_boot() {
        for m in OsModel::table3() {
            let k = m.boot(MachineConfig::ppc604_133());
            assert_eq!(k.machine.cfg.clock_mhz, 133);
        }
    }
}
