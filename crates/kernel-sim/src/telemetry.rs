//! Time-series MMU telemetry: fixed-width epoch buckets sampled at span
//! transitions.
//!
//! The tracer (PR 2) and the PMU (PR 3) answer "where did the cycles go"
//! for a whole run; this module answers "how did the MMU state *evolve*"
//! over that run: hash-table occupancy and zombie build-up, TLB residency
//! split kernel-vs-user, hit rates and collision pressure — each as one
//! value per fixed-width cycle epoch, the shape a dashboard (or an ASCII
//! sparkline) wants.
//!
//! Sampling piggybacks on the existing span-transition hook
//! (`Kernel::t_enter`/`t_exit`): whenever the cycle ledger crosses an epoch
//! boundary, the sampler reads the kernel's own structures — the hash
//! table, the TLBs, the VSID liveness set, the counter deltas since the
//! previous sample — and appends one [`EpochSample`]. Like the tracer, it
//! is **purely observational**: it never charges cycles, never touches
//! cache or TLB state, and never writes into the trace ring (so it cannot
//! evict trace events). A telemetry-on run is cycle-identical to a
//! telemetry-off run, and `tools/trace_gate.sh` pins that.

use ppc_machine::Cycles;

use crate::stats::KernelStats;

/// Default epoch width in cycles.
pub const DEFAULT_EPOCH_CYCLES: u64 = 65_536;

/// Epoch-sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Fixed epoch width in cycles; every sample is stamped with
    /// `cycle / epoch_cycles`.
    pub epoch_cycles: u64,
}

impl TelemetryConfig {
    /// The default epoch width ([`DEFAULT_EPOCH_CYCLES`]).
    pub fn default_epochs() -> Self {
        Self {
            epoch_cycles: DEFAULT_EPOCH_CYCLES,
        }
    }

    /// An explicit epoch width.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_cycles` is zero.
    pub fn with_epoch(epoch_cycles: u64) -> Self {
        assert!(epoch_cycles > 0, "epoch width must be positive");
        Self { epoch_cycles }
    }
}

/// One sampled epoch: MMU state at the first span transition past the
/// epoch boundary, plus counter deltas accumulated since the previous
/// sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSample {
    /// Epoch index (`cycle / epoch_cycles`).
    pub epoch: u64,
    /// Cycle the sample was actually taken at (the first span transition
    /// at or past the boundary).
    pub cycle: Cycles,
    /// Valid hash-table entries (occupancy numerator).
    pub htab_valid: u32,
    /// Valid entries whose VSID is still live.
    pub htab_live: u32,
    /// Zombie PTEs: valid entries whose context has been retired
    /// (`htab_valid - htab_live`).
    pub zombie_ptes: u32,
    /// PTEGs with all eight slots valid (collision pressure).
    pub full_groups: u32,
    /// TLB entries (both sides) holding kernel translations.
    pub tlb_kernel: u32,
    /// TLB entries (both sides) holding user translations.
    pub tlb_user: u32,
    /// Hash-table hits since the previous sample.
    pub htab_hits: u64,
    /// Hash-table misses since the previous sample.
    pub htab_misses: u64,
    /// Hash-table hit rate over the window, in ppm (1_000_000 when the
    /// window had no lookups).
    pub htab_hit_ppm: u64,
    /// TLB reloads since the previous sample.
    pub tlb_reloads: u64,
    /// Live-entry evictions since the previous sample.
    pub evict_live: u64,
    /// Zombie-entry evictions since the previous sample.
    pub evict_zombie: u64,
}

/// The names of the per-epoch series, in export order — the single source
/// of truth for the JSON exporter and the sparkline renderer.
pub const SERIES_NAMES: &[&str] = &[
    "htab_valid",
    "htab_live",
    "zombie_ptes",
    "full_groups",
    "tlb_kernel",
    "tlb_user",
    "htab_hit_ppm",
    "tlb_reloads",
    "evict_live",
    "evict_zombie",
];

impl EpochSample {
    /// The sample's value for a [`SERIES_NAMES`] entry.
    ///
    /// # Panics
    ///
    /// Panics on an unknown series name.
    pub fn series(&self, name: &str) -> u64 {
        match name {
            "htab_valid" => u64::from(self.htab_valid),
            "htab_live" => u64::from(self.htab_live),
            "zombie_ptes" => u64::from(self.zombie_ptes),
            "full_groups" => u64::from(self.full_groups),
            "tlb_kernel" => u64::from(self.tlb_kernel),
            "tlb_user" => u64::from(self.tlb_user),
            "htab_hit_ppm" => self.htab_hit_ppm,
            "tlb_reloads" => self.tlb_reloads,
            "evict_live" => self.evict_live,
            "evict_zombie" => self.evict_zombie,
            other => panic!("unknown telemetry series {other:?}"),
        }
    }
}

/// The readings the kernel gathers for one sample (everything that needs
/// borrows of kernel structures, separated so the hook can read first and
/// record second).
#[derive(Debug, Clone, Copy)]
pub struct MmuReadings {
    /// Valid hash-table entries.
    pub htab_valid: u32,
    /// Valid entries with a live VSID.
    pub htab_live: u32,
    /// Completely full PTEGs.
    pub full_groups: u32,
    /// Kernel-side TLB entries (both sides).
    pub tlb_kernel: u32,
    /// User-side TLB entries (both sides).
    pub tlb_user: u32,
}

/// The epoch sampler state a telemetry-enabled kernel carries.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Configuration.
    pub cfg: TelemetryConfig,
    /// Samples, oldest first, one per crossed epoch boundary.
    pub epochs: Vec<EpochSample>,
    /// Next cycle boundary that triggers a sample.
    next_boundary: Cycles,
    /// Counter snapshot at the previous sample (for window deltas).
    last_stats: KernelStats,
}

impl Telemetry {
    /// A fresh sampler; the first sample fires at the first span
    /// transition past `epoch_cycles`.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Self {
            cfg,
            epochs: Vec::new(),
            next_boundary: cfg.epoch_cycles,
            last_stats: KernelStats::default(),
        }
    }

    /// Whether the ledger at `now` has crossed the next epoch boundary.
    #[inline]
    pub fn due(&self, now: Cycles) -> bool {
        now >= self.next_boundary
    }

    /// Records one sample from `readings` and the counter deltas since the
    /// previous sample, then advances the boundary past `now`.
    pub fn record(&mut self, now: Cycles, readings: MmuReadings, stats: &KernelStats) {
        let d = stats.diff(&self.last_stats);
        self.last_stats = *stats;
        let lookups = d.htab_hits + d.htab_misses;
        let epoch = now / self.cfg.epoch_cycles;
        self.epochs.push(EpochSample {
            epoch,
            cycle: now,
            htab_valid: readings.htab_valid,
            htab_live: readings.htab_live,
            zombie_ptes: readings.htab_valid.saturating_sub(readings.htab_live),
            full_groups: readings.full_groups,
            tlb_kernel: readings.tlb_kernel,
            tlb_user: readings.tlb_user,
            htab_hits: d.htab_hits,
            htab_misses: d.htab_misses,
            htab_hit_ppm: (d.htab_hits * 1_000_000)
                .checked_div(lookups)
                .unwrap_or(1_000_000),
            tlb_reloads: d.tlb_reloads,
            evict_live: d.evict_live,
            evict_zombie: d.evict_zombie,
        });
        self.next_boundary = (epoch + 1) * self.cfg.epoch_cycles;
    }

    /// One series as a value-per-sample vector (for sparklines/plots).
    pub fn series(&self, name: &str) -> Vec<u64> {
        self.epochs.iter().map(|e| e.series(name)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn readings(valid: u32, live: u32) -> MmuReadings {
        MmuReadings {
            htab_valid: valid,
            htab_live: live,
            full_groups: 1,
            tlb_kernel: 10,
            tlb_user: 20,
        }
    }

    #[test]
    fn samples_fire_at_boundaries_and_bucket_deltas() {
        let mut t = Telemetry::new(TelemetryConfig::with_epoch(1000));
        assert!(!t.due(999));
        assert!(t.due(1000));
        let mut s = KernelStats {
            htab_hits: 9,
            htab_misses: 1,
            tlb_reloads: 10,
            ..Default::default()
        };
        t.record(1100, readings(50, 30), &s);
        assert_eq!(t.epochs.len(), 1);
        let e = &t.epochs[0];
        assert_eq!(e.epoch, 1);
        assert_eq!(e.zombie_ptes, 20);
        assert_eq!(e.htab_hit_ppm, 900_000);
        assert_eq!(e.tlb_reloads, 10);
        // Boundary advanced past the sample cycle.
        assert!(!t.due(1999));
        assert!(t.due(2000));

        // Second window: only the delta since the first sample counts.
        s.htab_hits += 1;
        s.htab_misses += 3;
        t.record(2048, readings(60, 60), &s);
        let e = &t.epochs[1];
        assert_eq!(e.epoch, 2);
        assert_eq!(e.htab_hits, 1);
        assert_eq!(e.htab_misses, 3);
        assert_eq!(e.htab_hit_ppm, 250_000);
        assert_eq!(e.zombie_ptes, 0);
    }

    #[test]
    fn skipped_epochs_jump_the_boundary() {
        let mut t = Telemetry::new(TelemetryConfig::with_epoch(100));
        let s = KernelStats::default();
        // The ledger leapt 10 epochs between transitions: one sample,
        // stamped with the epoch it landed in, and the boundary follows it.
        t.record(1050, readings(0, 0), &s);
        assert_eq!(t.epochs[0].epoch, 10);
        assert!(!t.due(1099));
        assert!(t.due(1100));
        // An empty window reads as a perfect hit rate, not a 0/0 panic.
        assert_eq!(t.epochs[0].htab_hit_ppm, 1_000_000);
    }

    #[test]
    fn series_names_cover_every_exported_series() {
        let mut t = Telemetry::new(TelemetryConfig::default_epochs());
        t.record(DEFAULT_EPOCH_CYCLES, readings(8, 6), &KernelStats::default());
        for name in SERIES_NAMES {
            let v = t.series(name);
            assert_eq!(v.len(), 1, "{name}");
        }
        assert_eq!(t.series("zombie_ptes")[0], 2);
        assert_eq!(t.series("tlb_user")[0], 20);
    }

    #[test]
    #[should_panic(expected = "epoch width")]
    fn zero_epoch_width_rejected() {
        TelemetryConfig::with_epoch(0);
    }
}
