//! Cross-module behaviour tests: each asserts a *direction* the paper
//! reports, on the real kernel engine.

use ppc_machine::MachineConfig;
use ppc_mmu::addr::{EffectiveAddress, PAGE_SIZE};

use crate::kconfig::{KernelConfig, PageClearing, VsidPolicy};
use crate::kernel::Kernel;
use crate::sched::USER_BASE;

fn boot(mcfg: MachineConfig, kcfg: KernelConfig) -> Kernel {
    let mut k = Kernel::boot(mcfg, kcfg);
    let pid = k.spawn_process(64).unwrap();
    k.switch_to(pid);
    k
}

#[test]
fn touching_memory_faults_then_hits() {
    let mut k = boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    k.user_write(USER_BASE, PAGE_SIZE).unwrap();
    assert_eq!(k.stats.page_faults, 1);
    let faults = k.stats.page_faults;
    let reloads = k.stats.tlb_reloads;
    // Re-touching the same page is TLB-hot: no new faults or reloads.
    k.user_write(USER_BASE, PAGE_SIZE).unwrap();
    assert_eq!(k.stats.page_faults, faults);
    assert_eq!(k.stats.tlb_reloads, reloads);
}

#[test]
fn bats_eliminate_kernel_reloads() {
    let run = |use_bats: bool| {
        let kcfg = KernelConfig {
            use_bats,
            ..KernelConfig::optimized()
        };
        let mut k = boot(MachineConfig::ppc604_185(), kcfg);
        for _ in 0..50 {
            k.sys_null();
        }
        k.stats.kernel_reloads
    };
    assert_eq!(run(true), 0, "BAT-mapped kernel takes no TLB reloads");
    assert!(
        run(false) > 0,
        "PTE-mapped kernel must reload kernel translations"
    );
}

#[test]
fn kernel_footprint_occupies_tlb_without_bats() {
    let kcfg = KernelConfig {
        use_bats: false,
        ..KernelConfig::optimized()
    };
    let mut k = boot(MachineConfig::ppc604_185(), kcfg);
    for _ in 0..50 {
        k.sys_null();
    }
    let kernel_entries = k
        .machine
        .mmu
        .tlb_entries_matching(crate::vsid::is_kernel_vsid);
    assert!(kernel_entries > 0, "kernel PTEs should sit in the TLB");
}

#[test]
fn bats_keep_kernel_out_of_tlb() {
    let mut k = boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    for _ in 0..50 {
        k.sys_null();
    }
    assert_eq!(
        k.machine
            .mmu
            .tlb_entries_matching(crate::vsid::is_kernel_vsid),
        0
    );
    assert!(k.machine.mmu.bats.dbat_hits > 0);
}

#[test]
fn hardware_604_uses_htab_on_reload() {
    let mut k = boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    k.prefault(USER_BASE, 8).unwrap();
    // Blow the TLB, keep the htab: reloads must be htab hits.
    k.machine.mmu.flush_tlbs();
    let before = k.stats.htab_hits;
    k.user_read(USER_BASE, 8 * PAGE_SIZE).unwrap();
    assert!(
        k.stats.htab_hits > before,
        "604 reloads from the hash table"
    );
}

#[test]
fn no_htab_603_reloads_from_linux_pt() {
    let kcfg = KernelConfig {
        htab_on_603: false,
        ..KernelConfig::optimized()
    };
    let mut k = boot(MachineConfig::ppc603_180(), kcfg);
    k.prefault(USER_BASE, 8).unwrap();
    assert_eq!(
        k.htab.valid_entries(),
        0,
        "§6.2: no user PTEs in the hash table"
    );
    k.machine.mmu.flush_tlbs();
    let (h0, m0) = (k.stats.htab_hits, k.stats.htab_misses);
    k.user_read(USER_BASE, 8 * PAGE_SIZE).unwrap();
    assert_eq!(k.stats.htab_hits, h0);
    assert_eq!(
        k.stats.htab_misses, m0,
        "direct path never consults the htab"
    );
}

#[test]
fn lazy_flush_bumps_context_instead_of_searching() {
    let mut k = boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let addr = k.sys_mmap(None, 64 * PAGE_SIZE);
    k.prefault(addr, 64).unwrap();
    let old_vsids = k.cur().vsids;
    let bumps = k.stats.context_bumps;
    let flushed = k.stats.flushed_pages;
    k.sys_munmap(addr, 64 * PAGE_SIZE);
    assert_eq!(
        k.stats.context_bumps,
        bumps + 1,
        "64 pages > 20-page cutoff"
    );
    assert_eq!(k.stats.flushed_pages, flushed, "no per-page searches");
    assert_ne!(k.cur().vsids, old_vsids);
    assert!(!k.vsids.is_live(old_vsids[0]), "old VSIDs are zombies now");
}

#[test]
fn small_ranges_flush_per_page_even_when_lazy() {
    let mut k = boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let addr = k.sys_mmap(None, 8 * PAGE_SIZE);
    k.prefault(addr, 8).unwrap();
    let bumps = k.stats.context_bumps;
    k.sys_munmap(addr, 8 * PAGE_SIZE);
    assert_eq!(
        k.stats.context_bumps, bumps,
        "8 pages < cutoff: per-page path"
    );
    assert_eq!(k.stats.flushed_pages, 8);
}

#[test]
fn lazy_munmap_is_much_cheaper_for_large_ranges() {
    let run = |kcfg: KernelConfig| {
        let mut k = boot(MachineConfig::ppc604_133(), kcfg);
        let addr = k.sys_mmap(None, 256 * PAGE_SIZE);
        k.prefault(addr, 256).unwrap();
        let start = k.machine.cycles;
        k.sys_munmap(addr, 256 * PAGE_SIZE);
        k.machine.cycles - start
    };
    let eager = run(KernelConfig::unoptimized());
    let lazy = run(KernelConfig::optimized());
    // Both kernels pay the per-page PTE teardown and frame frees for a
    // fully-populated region; the eager one additionally searches the hash
    // table and `tlbie`s per page. (The paper's 80x is for large *sparse*
    // mappings — lat_mmap — covered by the Table 2 test.)
    assert!(
        eager > 3 * lazy,
        "256-page munmap: eager {eager} cycles should dwarf lazy {lazy}"
    );
}

#[test]
fn zombies_accumulate_without_reclaim_and_vanish_with_it() {
    let kcfg = KernelConfig {
        idle_reclaim: false,
        ..KernelConfig::optimized()
    };
    let mut k = boot(MachineConfig::ppc604_185(), kcfg);
    // Create zombies: map, touch, munmap (context bump) repeatedly.
    for _ in 0..4 {
        let addr = k.sys_mmap(None, 64 * PAGE_SIZE);
        k.prefault(addr, 64).unwrap();
        k.sys_munmap(addr, 64 * PAGE_SIZE);
    }
    let valid = k.htab.valid_entries();
    let live = k.htab.live_entries(|v| k.vsids.is_live(v));
    assert!(valid > live, "zombies linger: {valid} valid vs {live} live");
    // Now run the idle task with reclaim enabled.
    k.cfg.idle_reclaim = true;
    k.run_idle(3_000_000);
    let valid_after = k.htab.valid_entries();
    let live_after = k.htab.live_entries(|v| k.vsids.is_live(v));
    assert_eq!(valid_after, live_after, "reclaim clears every zombie");
    assert!(k.htab.stats().zombies_reclaimed > 0);
}

#[test]
fn idle_reclaim_reduces_evictions() {
    // §7: without reclaim, zombies fill the table and "the ratio of hash
    // table reloads to evicts was normally greater than 90%"; with the idle
    // reclaim it fell to ~30%. Use a small table to reach saturation fast.
    let run = |idle_reclaim: bool| {
        let kcfg = KernelConfig {
            idle_reclaim,
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot_with_htab_groups(MachineConfig::ppc604_133(), kcfg, 64);
        let pids: Vec<_> = (0..4).map(|_| k.spawn_process(64).unwrap()).collect();
        for _ in 0..8 {
            for &pid in &pids {
                k.switch_to(pid);
                let addr = k.sys_mmap(None, 64 * PAGE_SIZE);
                k.prefault(addr, 64).unwrap();
                k.sys_munmap(addr, 64 * PAGE_SIZE); // context bump -> zombies
                k.user_read(USER_BASE, 64 * PAGE_SIZE).unwrap();
                k.run_idle(150_000);
            }
        }
        k.htab.stats().evict_ratio()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with < without,
        "evict ratio should drop with idle reclaim: {with:.2} vs {without:.2}"
    );
    assert!(
        without > 0.3,
        "saturated table must evict often (got {without:.2})"
    );
}

#[test]
fn precleared_pages_accelerate_demand_faults() {
    // Fault in pages touching one word each (the common case: a process
    // rarely writes every byte of a fresh page immediately). The demand
    // clear pays a full-page store loop per fault; the pre-cleared path
    // pays only the list check.
    let fault_cost = |clearing: PageClearing| {
        let kcfg = KernelConfig {
            page_clearing: clearing,
            ..KernelConfig::optimized()
        };
        let mut k = boot(MachineConfig::ppc604_133(), kcfg);
        k.run_idle(2_000_000);
        let start = k.machine.cycles;
        k.prefault(USER_BASE, 32).unwrap();
        k.machine.cycles - start
    };
    let demand = fault_cost(PageClearing::OnDemand);
    let prec = fault_cost(PageClearing::IdleUncached);
    assert!(
        prec < demand,
        "pre-cleared faulting ({prec}) must beat demand clearing ({demand})"
    );
    assert!(demand > 0 && prec > 0);
}

#[test]
fn cached_idle_clearing_pollutes_the_cache() {
    // Build a warm working set, run the idle task, then measure re-touch
    // cost. Cached clearing wipes the D-cache; uncached does not (§9).
    let retouch = |clearing: PageClearing| {
        let kcfg = KernelConfig {
            page_clearing: clearing,
            ..KernelConfig::optimized()
        };
        let mut k = boot(MachineConfig::ppc604_133(), kcfg);
        k.prefault(USER_BASE, 4).unwrap();
        k.user_read(USER_BASE, 4 * PAGE_SIZE).unwrap(); // warm 16 KiB = whole D-cache
        k.run_idle(500_000);
        let start = k.machine.cycles;
        k.user_read(USER_BASE, 4 * PAGE_SIZE).unwrap();
        k.machine.cycles - start
    };
    let cached = retouch(PageClearing::IdleCached);
    let uncached = retouch(PageClearing::IdleUncached);
    assert!(
        cached > uncached,
        "re-touch after cached idle clearing ({cached}) must exceed uncached ({uncached})"
    );
}

#[test]
fn pipes_transfer_and_block() {
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let a = k.spawn_process(4).unwrap();
    let b = k.spawn_process(4).unwrap();
    let p = k.pipe_create().unwrap();
    // Writer fills beyond capacity; must block and hand off to the reader.
    k.switch_to(a);
    k.prefault(USER_BASE, 4).unwrap();
    // Reader side will run when writer blocks; it needs its pages too, but
    // demand faulting inside the pipe path is fine.
    let _ = b;
    // Simple same-task round trip first.
    k.pipe_write(p, USER_BASE, 1024).unwrap();
    k.pipe_read(p, USER_BASE + 8192, 1024).unwrap();
    assert_eq!(k.pipes[p].len, 0);
    assert_eq!(k.pipes[p].total_bytes, 1024);
}

#[test]
fn file_read_copies_through_page_cache() {
    let mut k = boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let f = k.create_file(64 * 1024).unwrap();
    k.prefault(USER_BASE, 16).unwrap();
    let start = k.machine.cycles;
    k.sys_read(f, 0, USER_BASE, 64 * 1024).unwrap();
    assert!(k.machine.cycles > start);
    assert_eq!(k.stats.syscalls, 1);
}

#[test]
fn context_switch_reloads_segments() {
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let a = k.spawn_process(4).unwrap();
    let b = k.spawn_process(4).unwrap();
    k.switch_to(a);
    let va = k.machine.mmu.segments.get(0);
    k.switch_to(b);
    let vb = k.machine.mmu.segments.get(0);
    assert_ne!(va, vb, "different tasks use different VSIDs");
    assert_eq!(k.stats.ctx_switches, 2);
}

#[test]
fn exec_exit_cycle_reuses_resources() {
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let free0 = k.frames.free_frames();
    for _ in 0..10 {
        let pid = k.spawn_process(16).unwrap();
        k.switch_to(pid);
        k.user_write(USER_BASE, 16 * PAGE_SIZE).unwrap();
        k.exit_current();
    }
    // All user frames returned (pre-cleared pages may hold some).
    assert!(
        k.frames.free_frames() >= free0 - 1,
        "frames must be recycled"
    );
    assert_eq!(k.stats.processes_spawned, 10);
}

#[test]
fn vsid_scatter_constant_controls_htab_clustering() {
    // §5.2: similar address spaces with poorly scattered VSIDs pile into the
    // same PTEGs. Compare the worst-group occupancy under a power-of-two
    // constant vs the tuned non-power-of-two constant.
    let worst_group = |constant: u32| {
        let kcfg = KernelConfig {
            vsid_policy: VsidPolicy::ContextCounter { constant },
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
        for _ in 0..16 {
            let pid = k.spawn_process(64).unwrap();
            k.switch_to(pid);
            k.prefault(USER_BASE, 64).unwrap();
        }
        *k.htab.group_histogram().iter().max().unwrap()
    };
    let pow2 = worst_group(16);
    let tuned = worst_group(897);
    assert!(
        pow2 >= tuned,
        "power-of-two scatter (max {pow2}/PTEG) should clump at least as much as tuned (max {tuned}/PTEG)"
    );
}

#[test]
fn accesses_to_io_space_are_uncached() {
    let mut k = boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let inhibited_before = k.machine.mem.dcache.stats().inhibited;
    k.data_ref(EffectiveAddress(crate::layout::IO_VIRT_BASE + 0x100), true).unwrap();
    assert!(k.machine.mem.dcache.stats().inhibited > inhibited_before);
}

#[test]
fn wild_access_segfaults() {
    use crate::errors::{KernelError, Signal};
    let mut k = boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let err = k.data_ref(EffectiveAddress(0x6666_0000), false).unwrap_err();
    assert_eq!(
        err,
        KernelError::Fatal {
            signal: Signal::Segv,
            ea: 0x6666_0000
        }
    );
    assert_eq!(k.stats.segfaults, 1);
    assert_eq!(k.stats.sigsegvs, 1);
    assert!(k.current.is_none(), "the faulting task died");
}
