//! A simulated Linux/PPC kernel — the artifact of "Optimizing the Idle Task
//! and Other MMU Tricks" (OSDI 1999).
//!
//! This crate reimplements, as a discrete-cost simulation, the memory
//! management of the Linux PowerPC port that the paper optimizes:
//!
//! * the Linux two-level page tables as the master source of translations
//!   ([`linuxpt`]),
//! * the architected hash table as a second-level TLB cache (`ppc-mmu`'s
//!   [`ppc_mmu::HashTable`], owned by the kernel),
//! * VSID allocation policies (§5.2, §7) in [`vsid`],
//! * the TLB-miss / hash-table-miss / page-fault handler paths (§5, §6),
//! * TLB and hash-table flush strategies, including lazy VSID flushes and
//!   the tunable range-flush cutoff (§7),
//! * the idle task with zombie-PTE reclaim and page pre-clearing (§7, §9),
//! * `get_free_page()` with a pre-cleared page list (§9),
//! * copy-on-write `fork()`, `exec()` and `brk()` over real protection
//!   faults ([`process`]), and signal delivery ([`signal`]),
//! * a round-robin scheduler, syscalls, pipes and a page-cache file layer —
//!   enough kernel to run LmBench-shaped workloads.
//!
//! Every optimization is a [`KernelConfig`] toggle, so experiments can run
//! the *same* workload on the unoptimized and optimized kernels and diff the
//! hardware counters, exactly as the paper does.
//!
//! The kernel also survives faults the way a real kernel does: accesses
//! outside every VMA deliver SIGSEGV through the signal machinery and kill
//! the task ([`errors`]), memory pressure runs page-cache eviction, zombie
//! reclaim and finally a simulated OOM killer, and a seeded
//! [`FaultInjector`] can drive all of those paths deterministically.
//!
//! # Examples
//!
//! ```
//! use kernel_sim::{Kernel, KernelConfig};
//! use ppc_machine::MachineConfig;
//!
//! let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
//! let pid = k.spawn_process(8).unwrap();
//! k.switch_to(pid);
//! // Touch some user memory: faults, reloads and cache traffic all happen.
//! k.user_write(0x1000_0000, 4096).unwrap();
//! assert!(k.machine.cycles > 0);
//! ```

pub mod causal;
pub mod check;
pub mod errors;
pub mod fault;
pub mod fixed_hash;
pub mod flush;
pub mod fs;
pub mod hostprof;
pub mod idle;
pub mod inject;
pub mod kconfig;
pub mod kernel;
pub mod layout;
pub mod linuxpt;
pub mod oracle;
pub mod os_model;
pub mod physmem;
pub mod pipe;
pub mod pmu;
pub mod process;
pub mod prof;
pub mod sched;
pub mod signal;
pub mod stats;
pub mod syscall;
pub mod tail;
pub mod task;
pub mod telemetry;
#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_causal;
#[cfg(test)]
mod tests_check;
#[cfg(test)]
mod tests_edge;
#[cfg(test)]
mod tests_pmu;
#[cfg(test)]
mod tests_subsystems;
#[cfg(test)]
mod tests_tail;
#[cfg(test)]
mod tests_trace;
pub mod trace;
pub mod tune;
pub mod vsid;

pub use causal::{CausalConfig, CausalPath, CausalState, Ratio};
pub use check::{CheckConfig, CheckState};
pub use errors::{KResult, KernelError, Signal};
pub use hostprof::{HostPhase, HostSnapshot, PhaseCounters};
pub use inject::{FaultInjection, FaultInjector};
pub use kconfig::{HandlerStyle, KernelConfig, PageClearing, PmuConfig, VsidPolicy};
pub use kernel::Kernel;
pub use oracle::{ShadowEntry, ShadowMm};
pub use os_model::OsModel;
pub use pmu::{PmuSample, PmuState};
pub use prof::{Profiler, Subsystem};
pub use stats::KernelStats;
pub use tail::{MmuSnapshot, TailCause, TailConfig, TailExemplar, TailState};
pub use task::{Pid, Task};
pub use telemetry::{EpochSample, MmuReadings, Telemetry, TelemetryConfig};
pub use trace::{Histogram, LatencyPath, TraceEvent, TraceRecord, TraceRing, Tracer};
pub use tune::{Mmtune, MmtuneConfig, RetuneDecision, TuneAction, TuneKnob};
