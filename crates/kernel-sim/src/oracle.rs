//! The shadow MM oracle: a flat model of every currently-legal translation.
//!
//! The real MM state is spread across four structures that cache each other
//! (Linux page tables → hash table → TLBs, with BATs overriding all three),
//! and the paper's optimizations — lazy VSID flushes, zombie reclaim,
//! mid-run rehashes — are exactly the code that lets those layers disagree
//! *safely*. The oracle is the dead-simple referee: a `HashMap` from
//! `(vsid, page_index)` to `(rpn, prot)`, updated at the two places legality
//! actually changes (translation install and flush), against which every
//! positive observation the hardware makes (a TLB hit, a hash-table hit, a
//! BAT match) is cross-checked.
//!
//! Semantics: the oracle models **legal** translations, not **resident**
//! ones. Structures below it are caches — a hash-table displacement, a
//! rehash drop, a `tlbie` that kills innocent bystanders, or an eager TLB
//! flush all remove *residency* without touching *legality*, and the oracle
//! deliberately ignores them. What it refuses to tolerate is the converse: a
//! translation the hardware still acts on after the kernel retired it. That
//! is precisely the stale-translation bug class lazy flushing risks, and it
//! is caught at the exact access that observes the stale entry.

use ppc_mmu::addr::Vsid;

use crate::fixed_hash::DetHashMap;

/// What the oracle remembers about one legal translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowEntry {
    /// Real page number the virtual page maps to.
    pub rpn: u32,
    /// Whether stores are legal (copy-on-write pages are read-only).
    pub writable: bool,
    /// Whether accesses are cacheable.
    pub cached: bool,
}

/// The flat shadow model. One entry per legal `(vsid, virtual page)`.
#[derive(Debug, Clone, Default)]
pub struct ShadowMm {
    map: DetHashMap<(u32, u32), ShadowEntry>,
}

impl ShadowMm {
    /// Creates an empty shadow model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of legal translations currently modelled.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no translations are modelled.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Records a translation install (mirror of the kernel's
    /// `install_translation`). Overwrites any previous entry for the page —
    /// a reinstall after a protection upgrade is a legality change, not a
    /// conflict.
    pub fn install(&mut self, vsid: Vsid, page_index: u32, entry: ShadowEntry) {
        self.map.insert((vsid.raw(), page_index), entry);
    }

    /// Records a single-page flush (mirror of `flush_one_page`). Removing a
    /// translation that was never installed is fine: flushes are issued for
    /// ranges that may never have faulted in.
    pub fn flush_page(&mut self, vsid: Vsid, page_index: u32) {
        self.map.remove(&(vsid.raw(), page_index));
    }

    /// Records a whole-context retirement (mirror of `flush_context`): every
    /// translation under any of `vsids` stops being legal, whether the
    /// kernel flushed it eagerly or merely bumped the VSIDs and left zombies
    /// behind.
    pub fn retire_vsids(&mut self, vsids: &[Vsid]) {
        // 16 VSIDs at most (one address space): a linear scan beats
        // allocating a scratch Vec on this per-context-switch path.
        self.map
            .retain(|(v, _), _| !vsids.iter().any(|x| x.raw() == *v));
    }

    /// The modelled translation for `(vsid, page_index)`, if legal.
    pub fn lookup(&self, vsid: Vsid, page_index: u32) -> Option<ShadowEntry> {
        self.map.get(&(vsid.raw(), page_index)).copied()
    }

    /// Cross-checks one positive observation `(rpn, writable, cached)` the
    /// hardware made for `(vsid, page_index)` against the model. Returns a
    /// human-readable violation description, or `None` when consistent.
    ///
    /// `what` is any `Display` — callers on hot sweep paths pass a
    /// `format_args!(..)` so the description is only materialized into a
    /// `String` on an actual violation (checker sweeps run millions of
    /// consistent checks per run; violations are terminal).
    pub fn check_observation(
        &self,
        what: impl std::fmt::Display,
        vsid: Vsid,
        page_index: u32,
        rpn: u32,
        writable: bool,
        cached: bool,
    ) -> Option<String> {
        match self.lookup(vsid, page_index) {
            None => Some(format!(
                "{what} observed a translation the oracle holds illegal \
                 (stale entry): vsid={:#x} page={:#x} -> rpn={:#x} \
                 writable={writable} cached={cached}",
                vsid.raw(),
                page_index,
                rpn,
            )),
            Some(e) if e.rpn != rpn || e.writable != writable || e.cached != cached => {
                Some(format!(
                    "{what} observed vsid={:#x} page={:#x} -> rpn={:#x} \
                     writable={writable} cached={cached}, but the oracle says \
                     rpn={:#x} writable={} cached={}",
                    vsid.raw(),
                    page_index,
                    rpn,
                    e.rpn,
                    e.writable,
                    e.cached,
                ))
            }
            Some(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(rpn: u32) -> ShadowEntry {
        ShadowEntry {
            rpn,
            writable: true,
            cached: true,
        }
    }

    #[test]
    fn install_lookup_flush_round_trip() {
        let mut s = ShadowMm::new();
        s.install(Vsid::new(7), 3, e(0x42));
        assert_eq!(s.lookup(Vsid::new(7), 3), Some(e(0x42)));
        assert_eq!(s.len(), 1);
        s.flush_page(Vsid::new(7), 3);
        assert!(s.is_empty());
        // Flushing a never-installed page is a no-op, not an error.
        s.flush_page(Vsid::new(7), 3);
    }

    #[test]
    fn retire_removes_every_page_of_the_context() {
        let mut s = ShadowMm::new();
        s.install(Vsid::new(7), 1, e(1));
        s.install(Vsid::new(7), 2, e(2));
        s.install(Vsid::new(8), 1, e(3));
        s.retire_vsids(&[Vsid::new(7)]);
        assert!(s.lookup(Vsid::new(7), 1).is_none());
        assert!(s.lookup(Vsid::new(7), 2).is_none());
        assert_eq!(s.lookup(Vsid::new(8), 1), Some(e(3)));
    }

    #[test]
    fn observation_checks() {
        let mut s = ShadowMm::new();
        s.install(Vsid::new(7), 3, e(0x42));
        assert!(s
            .check_observation("tlb hit", Vsid::new(7), 3, 0x42, true, true)
            .is_none());
        // Wrong frame.
        let v = s
            .check_observation("tlb hit", Vsid::new(7), 3, 0x43, true, true)
            .unwrap();
        assert!(v.contains("oracle says"), "{v}");
        // Stale: never installed / already retired.
        let v = s
            .check_observation("htab hit", Vsid::new(9), 3, 0x42, true, true)
            .unwrap();
        assert!(v.contains("stale"), "{v}");
    }
}
