//! Integration tests for the PMU sampling layer: counting agrees with the
//! hardware monitor, sampling charges its cost, sampled attribution tracks
//! the exact profiler, and the configurable trace ring keeps newest-N.

use ppc_machine::pmu::PmcEvent;
use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

use crate::kconfig::{KernelConfig, PmuConfig};
use crate::kernel::Kernel;
use crate::prof::Subsystem;
use crate::sched::USER_BASE;
use crate::trace::TraceEvent;

/// A workload exercising faults, reloads, signals, fork/COW, mmap and idle.
fn workload(k: &mut Kernel) {
    let a = k.spawn_process(16).unwrap();
    let b = k.spawn_process(8).unwrap();
    k.switch_to(a);
    k.user_write(USER_BASE, 8 * PAGE_SIZE).unwrap();
    k.sys_signal_install();
    k.signal_roundtrip(USER_BASE).unwrap();
    let child = k.sys_fork().unwrap();
    k.switch_to(child);
    k.user_write(USER_BASE, 2 * PAGE_SIZE).unwrap();
    k.exit_current();
    k.switch_to(b);
    k.user_read(USER_BASE, 4 * PAGE_SIZE).unwrap();
    let m = k.sys_mmap(None, 32 * PAGE_SIZE);
    k.prefault(m, 32).unwrap();
    k.sys_munmap(m, 32 * PAGE_SIZE);
    k.run_idle(40_000);
    k.sys_null();
}

fn run(cfg: KernelConfig) -> Kernel {
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), cfg);
    workload(&mut k);
    k.pmu_finish();
    k
}

#[test]
fn no_pmu_and_counting_pmu_are_cycle_identical() {
    let off = run(KernelConfig::optimized());
    let mut cfg = KernelConfig::optimized();
    cfg.pmu = Some(PmuConfig::counting(
        PmcEvent::TlbMissBoth,
        PmcEvent::CacheMissBoth,
    ));
    let on = run(cfg);
    assert_eq!(
        on.machine.cycles, off.machine.cycles,
        "counting never perturbs the run"
    );
    let mut stats_off = off.stats;
    let mut stats_on = on.stats;
    stats_off.pmu_interrupts = 0;
    stats_on.pmu_interrupts = 0;
    assert_eq!(stats_on, stats_off);
    assert_eq!(on.stats.pmu_interrupts, 0, "no interrupts without sampling");
}

#[test]
fn counting_pmcs_agree_with_the_hardware_monitor() {
    let mut cfg = KernelConfig::optimized();
    cfg.pmu = Some(PmuConfig::counting(
        PmcEvent::TlbMissBoth,
        PmcEvent::DcacheMiss,
    ));
    let k = run(cfg);
    let snap = k.machine.snapshot();
    let hw = k.machine.pmu.as_ref().unwrap();
    assert_eq!(u64::from(hw.read_pmc(0)), snap.tlb_misses());
    assert_eq!(u64::from(hw.read_pmc(1)), snap.dcache.misses);
    assert!(snap.tlb_misses() > 0, "workload must miss the TLB");
}

#[test]
fn sampling_charges_interrupt_cost_and_collects_samples() {
    let base = run(KernelConfig::optimized());
    let mut cfg = KernelConfig::optimized();
    cfg.pmu = Some(PmuConfig::sampling(4096));
    let sampled = run(cfg);
    assert!(
        sampled.machine.cycles > base.machine.cycles,
        "sampling interrupts must cost cycles"
    );
    assert!(sampled.stats.pmu_interrupts > 0);
    let st = sampled.pmu.as_ref().unwrap();
    assert_eq!(st.interrupts, sampled.stats.pmu_interrupts);
    assert!(!st.samples.is_empty());
    assert!(st.total_weight() >= st.interrupts, "weights are >= 1 each");
    // The weighted sample total approximates elapsed cycles / period.
    let approx_cycles = st.total_weight() * 4096;
    assert!(
        approx_cycles <= sampled.machine.cycles,
        "cannot observe more periods than elapsed"
    );
    assert!(
        approx_cycles * 2 > sampled.machine.cycles,
        "should observe at least half the elapsed periods"
    );
    // Folded stacks and per-pid views carry the same weight total.
    assert_eq!(st.folded.values().sum::<u64>(), st.total_weight());
    assert_eq!(st.by_pid.values().sum::<u64>(), st.total_weight());
    assert_eq!(st.supervisor_weight + st.user_weight, st.total_weight());
}

#[test]
fn sampled_attribution_tracks_the_exact_profiler() {
    let mut cfg = KernelConfig::optimized();
    cfg.trace = true;
    cfg.pmu = Some(PmuConfig::sampling(512));
    let mut k = run(cfg);
    let now = k.machine.cycles;
    let t = k.tracer.as_mut().unwrap();
    t.prof.finish(now);
    // Exact shares excluding the Pmu bucket (the sampler never samples its
    // own frozen handler windows).
    let exact_total: u64 = Subsystem::ALL
        .iter()
        .filter(|s| **s != Subsystem::Pmu)
        .map(|s| t.prof.self_cycles(*s))
        .sum();
    let st = k.pmu.as_ref().unwrap();
    let sampled_total = st.total_weight();
    assert!(sampled_total > 0 && exact_total > 0);
    for s in Subsystem::ALL {
        if s == Subsystem::Pmu {
            assert_eq!(st.by_subsystem[s as usize], 0, "handler never sampled");
            continue;
        }
        let exact_ppm = t.prof.self_cycles(s) * 1_000_000 / exact_total;
        let sampled_ppm = st.by_subsystem[s as usize] * 1_000_000 / sampled_total;
        let err = exact_ppm.abs_diff(sampled_ppm);
        // 5% absolute-share tolerance at a 512-cycle period (E-PMU tightens
        // this into a convergence curve).
        assert!(
            err < 50_000,
            "{}: exact {exact_ppm} ppm vs sampled {sampled_ppm} ppm",
            s.name()
        );
    }
}

#[test]
fn sampling_emits_ring_events_when_traced() {
    let mut cfg = KernelConfig::optimized();
    cfg.trace = true;
    cfg.pmu = Some(PmuConfig::sampling(8192));
    let k = run(cfg);
    let t = k.tracer.as_ref().unwrap();
    assert!(t
        .ring
        .iter()
        .any(|r| matches!(r.event, TraceEvent::PmuSample { .. })));
    // The Pmu bucket carries exactly the handler cost of each interrupt.
    assert!(t.prof.self_cycles(Subsystem::Pmu) > 0);
}

#[test]
fn tiny_ring_keeps_correct_newest_n() {
    let mut cfg = KernelConfig::optimized();
    cfg.trace = true;
    cfg.trace_ring_capacity = 4;
    let k = run(cfg);
    let t = k.tracer.as_ref().unwrap();
    assert_eq!(t.ring.len(), 4, "ring clamps to the configured capacity");
    assert!(t.ring.dropped() > 0, "this workload overflows 4 slots");
    assert_eq!(
        t.ring.total_pushed(),
        t.ring.dropped() + 4,
        "push/drop accounting balances"
    );
    let stamps: Vec<u64> = t.ring.iter().map(|r| r.cycle).collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "oldest -> newest");
    // Newest-N: everything kept postdates (or ties) everything dropped, so
    // the oldest kept record must stamp no earlier than the same workload's
    // 5th-from-last event in a big ring.
    let mut big = KernelConfig::optimized();
    big.trace = true;
    let kb = run(big);
    let all: Vec<u64> = kb
        .tracer
        .as_ref()
        .unwrap()
        .ring
        .iter()
        .map(|r| r.cycle)
        .collect();
    assert_eq!(&all[all.len() - 4..], &stamps[..], "exactly the newest 4");
}

#[test]
fn threshold_counter_sees_slow_paths_only() {
    let mut cfg = KernelConfig::optimized();
    let mut pc = PmuConfig::counting(PmcEvent::ThresholdExceeded, PmcEvent::None);
    pc.threshold = 200;
    cfg.pmu = Some(pc);
    let k = run(cfg);
    let over_200 = u64::from(k.machine.pmu.as_ref().unwrap().read_pmc(0));

    let mut pc_hi = PmuConfig::counting(PmcEvent::ThresholdExceeded, PmcEvent::None);
    pc_hi.threshold = 100_000;
    let mut cfg_hi = KernelConfig::optimized();
    cfg_hi.pmu = Some(pc_hi);
    let k_hi = run(cfg_hi);
    let over_100k = u64::from(k_hi.machine.pmu.as_ref().unwrap().read_pmc(0));

    assert!(over_200 > 0, "some instrumented paths exceed 200 cycles");
    assert!(
        over_100k < over_200,
        "raising the threshold must filter events ({over_100k} !< {over_200})"
    );
}
