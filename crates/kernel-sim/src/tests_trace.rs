//! Integration tests for the observability layer: zero-overhead guarantee,
//! attribution accounting, and event capture on a real workload.

use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

use crate::kconfig::KernelConfig;
use crate::kernel::Kernel;
use crate::prof::Subsystem;
use crate::sched::USER_BASE;
use crate::trace::{LatencyPath, TraceEvent};

/// A workload that exercises every instrumented path: faults, reloads,
/// flushes, signals, context switches, fork/COW, reclaim and idle.
fn workload(k: &mut Kernel) {
    let a = k.spawn_process(16).unwrap();
    let b = k.spawn_process(8).unwrap();
    k.switch_to(a);
    k.user_write(USER_BASE, 8 * PAGE_SIZE).unwrap();
    k.sys_signal_install();
    k.signal_roundtrip(USER_BASE).unwrap();
    let child = k.sys_fork().unwrap();
    k.switch_to(child);
    k.user_write(USER_BASE, 2 * PAGE_SIZE).unwrap();
    k.exit_current();
    k.switch_to(b);
    k.user_read(USER_BASE, 4 * PAGE_SIZE).unwrap();
    let m = k.sys_mmap(None, 32 * PAGE_SIZE);
    k.prefault(m, 32).unwrap();
    k.sys_munmap(m, 32 * PAGE_SIZE);
    k.run_idle(40_000);
    k.sys_null();
}

fn run(trace: bool) -> Kernel {
    let mut cfg = KernelConfig::optimized();
    cfg.trace = trace;
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), cfg);
    workload(&mut k);
    k
}

#[test]
fn tracing_is_cycle_identical_to_disabled() {
    let off = run(false);
    let on = run(true);
    assert_eq!(
        on.machine.cycles, off.machine.cycles,
        "a traced run must charge exactly the same cycles"
    );
    assert_eq!(on.stats, off.stats, "and count exactly the same events");
    let (_, snap_on) = on.stats_snapshot();
    let (_, snap_off) = off.stats_snapshot();
    assert_eq!(snap_on, snap_off, "down to the cache/TLB monitors");
    assert!(off.tracer.is_none());
    assert!(on.tracer.is_some());
}

#[test]
fn attribution_sums_to_total_cycles() {
    let mut k = run(true);
    let now = k.machine.cycles;
    let t = k.tracer.as_mut().unwrap();
    t.prof.finish(now);
    assert_eq!(t.prof.depth(), 0, "all spans must be balanced at rest");
    assert_eq!(
        t.prof.total(),
        now - t.prof.window_start(),
        "every charged cycle lands in exactly one bucket"
    );
    // The workload ran real kernel work in the major subsystems.
    for s in [
        Subsystem::Translate,
        Subsystem::HtabInsert,
        Subsystem::PageFault,
        Subsystem::Flush,
        Subsystem::Sched,
        Subsystem::Syscall,
        Subsystem::Signal,
        Subsystem::Idle,
        Subsystem::Exec,
    ] {
        assert!(t.prof.self_cycles(s) > 0, "no cycles attributed to {s:?}");
    }
}

#[test]
fn ring_captures_the_workloads_events() {
    let k = run(true);
    let t = k.tracer.as_ref().unwrap();
    assert!(!t.ring.is_empty());
    let has = |pred: &dyn Fn(&TraceEvent) -> bool| t.ring.iter().any(|r| pred(&r.event));
    assert!(has(&|e| matches!(e, TraceEvent::TlbMiss { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::HtabInsert { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::PageFault { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::CowFault { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::CtxSwitch { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Signal { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Syscall)));
    assert!(has(&|e| matches!(e, TraceEvent::Idle { .. })));
    // Cycle stamps are monotone oldest -> newest.
    let stamps: Vec<u64> = t.ring.iter().map(|r| r.cycle).collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn latency_histograms_cover_all_three_paths() {
    let k = run(true);
    let t = k.tracer.as_ref().unwrap();
    for path in LatencyPath::ALL {
        let h = t.latency(path);
        assert!(h.count() > 0, "no samples for {path:?}");
        let (p50, p90, p99) = h.percentiles();
        assert!(p50 > 0 && p50 <= p90 && p90 <= p99, "{path:?}: {p50}/{p90}/{p99}");
        assert!(p99 <= h.max());
    }
}

#[test]
fn pteg_heatmap_matches_ring_inserts() {
    let k = run(true);
    let t = k.tracer.as_ref().unwrap();
    let total: u32 = t.pteg_inserts.iter().sum();
    let collisions: u32 = t.pteg_collisions.iter().sum();
    assert!(total > 0, "workload must insert PTEs");
    assert!(collisions <= total);
    // The heatmap counts every insert, including those whose ring records
    // were overwritten.
    let ring_inserts = t
        .ring
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::HtabInsert { .. }))
        .count() as u64;
    assert!(u64::from(total) >= ring_inserts);
    assert_eq!(t.pteg_inserts.len(), crate::layout::HTAB_GROUPS as usize);
}

#[test]
fn chrome_export_of_a_real_run_is_balanced() {
    let k = run(true);
    let j = k.tracer.as_ref().unwrap().chrome_trace_json();
    assert!(j.contains("\"traceEvents\":["));
    assert!(j.contains("\"name\":\"tlb_miss\""));
    assert_eq!(j.matches('{').count(), j.matches('}').count());
    assert_eq!(j.matches('[').count(), j.matches(']').count());
}

#[test]
fn fatal_signal_paths_keep_the_span_stack_balanced() {
    let mut cfg = KernelConfig::optimized();
    cfg.trace = true;
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), cfg);
    let pid = k.spawn_process(4).unwrap();
    k.switch_to(pid);
    k.user_write(USER_BASE, PAGE_SIZE).unwrap();
    // SIGSEGV: the page-fault span unwinds through the error return.
    k.user_write(0x6000_0000, 4).unwrap_err();
    assert_eq!(k.stats.sigsegvs, 1);
    let now = k.machine.cycles;
    let t = k.tracer.as_mut().unwrap();
    t.prof.finish(now);
    assert_eq!(t.prof.depth(), 0, "spans must unwind on fatal signals");
    assert_eq!(t.prof.total(), now - t.prof.window_start());
    assert!(t
        .ring
        .iter()
        .any(|r| matches!(r.event, TraceEvent::Signal { fatal: true })));
}

/// A run with optional tracing and optional epoch telemetry (tight epochs so
/// the quick workload crosses many boundaries).
fn run_obs(trace: bool, telemetry: bool) -> Kernel {
    let mut cfg = KernelConfig::optimized();
    cfg.trace = trace;
    if telemetry {
        cfg.telemetry = Some(crate::telemetry::TelemetryConfig::with_epoch(10_000));
    }
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), cfg);
    workload(&mut k);
    k.telemetry_finish();
    k
}

#[test]
fn telemetry_is_cycle_identical_to_disabled() {
    let off = run_obs(false, false);
    let on = run_obs(false, true);
    assert_eq!(
        on.machine.cycles, off.machine.cycles,
        "the epoch sampler must never charge cycles"
    );
    assert_eq!(on.stats, off.stats);
    let (_, snap_on) = on.stats_snapshot();
    let (_, snap_off) = off.stats_snapshot();
    assert_eq!(snap_on, snap_off, "down to the cache/TLB monitors");
    let t = on.telemetry.as_ref().unwrap();
    assert!(t.epochs.len() >= 4, "tight epochs must yield a real series");
}

#[test]
fn telemetry_never_evicts_trace_events() {
    // Trace ring and epoch sampler on together: the sampler stores samples
    // in its own buffer, so the ring must see the exact same event stream —
    // same pushes, same drops, same retained records — and the run must stay
    // cycle-identical.
    let bare = run_obs(true, false);
    let both = run_obs(true, true);
    assert_eq!(both.machine.cycles, bare.machine.cycles);
    let rb = &bare.tracer.as_ref().unwrap().ring;
    let rt = &both.tracer.as_ref().unwrap().ring;
    assert_eq!(rt.total_pushed(), rb.total_pushed(), "event streams diverge");
    assert_eq!(rt.dropped(), rb.dropped(), "sampling evicted trace events");
    assert!(rt.iter().zip(rb.iter()).all(|(a, b)| a == b));
    assert!(!both.telemetry.as_ref().unwrap().epochs.is_empty());
}

#[test]
fn telemetry_series_track_mmu_state() {
    let k = run_obs(false, true);
    let t = k.telemetry.as_ref().unwrap();
    // Sample cycles strictly increase; epoch indices never go backwards
    // (the final tail sample may share the last boundary's epoch).
    for w in t.epochs.windows(2) {
        assert!(w[1].epoch >= w[0].epoch);
        assert!(w[1].cycle > w[0].cycle);
    }
    for e in &t.epochs {
        assert_eq!(e.zombie_ptes, e.htab_valid - e.htab_live);
        assert!(e.htab_hit_ppm <= 1_000_000);
    }
    // The workload faults real pages: occupancy and reloads must show up.
    assert!(t.epochs.iter().any(|e| e.htab_valid > 0));
    assert!(t.epochs.iter().any(|e| e.tlb_reloads > 0));
    // The kernel runs with BATs on: kernel text never competes for TLB
    // entries, so kernel-side residency stays at zero while user pages fill.
    assert!(t.epochs.iter().any(|e| e.tlb_user > 0));
    // Window deltas must sum to the run totals (the final sample closes the
    // tail of the series).
    let reloads: u64 = t.epochs.iter().map(|e| e.tlb_reloads).sum();
    assert_eq!(reloads, k.stats.tlb_reloads);
    let hits: u64 = t.epochs.iter().map(|e| e.htab_hits).sum();
    assert_eq!(hits, k.stats.htab_hits);
}
