//! Runtime MM consistency checking: the shadow oracle plus ported
//! invariants, evaluated at span transitions.
//!
//! Three cooperating layers (DESIGN.md §12):
//!
//! * the **shadow MM oracle** ([`crate::oracle::ShadowMm`]) — updated at
//!   every translation install and flush, consulted at every positive
//!   hardware observation (TLB hit, hash-table hit, BAT match);
//! * **runtime invariants** ported from the kernel-tla `ctxsw` module —
//!   SchedInv (no run-queue task is running, queued tasks are runnable and
//!   distinct), the MMInv analogue (the active address space is the current
//!   task's: segment registers match its VSIDs; dead tasks hold no frames),
//!   VSID liveness and generation monotonicity, and hash-table placement /
//!   occupancy self-consistency — cheap ones at every span transition,
//!   heavy sweeps at the checker's own epoch boundaries;
//! * violation reporting that panics with the exact [`KernelConfig`]
//!   summary and injector seed, so the adversarial driver (`repro chaos`)
//!   can turn any red run into a one-command repro.
//!
//! Like the tracer, PMU sampler and telemetry, the checker is an observer
//! behind `Option<Box<_>>`: disabled, the kernel carries one pointer and
//! every hook is a single branch, and a checked run charges **exactly** the
//! same cycles as an unchecked one (the checker never calls
//! `Machine::charge`, never touches TLB/cache replacement state, and reads
//! MMU structures only through the read-only sweep accessors).

use ppc_machine::Cycles;
use ppc_mmu::addr::{EffectiveAddress, PhysAddr, VirtualAddress};
use ppc_mmu::pte::Pte;
use ppc_mmu::translate::AccessType;

use crate::hostprof;
use crate::kernel::Kernel;
use crate::layout::{is_io, is_kernel_linear, kva_to_pa};
use crate::oracle::{ShadowEntry, ShadowMm};
use crate::task::TaskState;

/// Default cycles between heavy consistency sweeps (the same epoch grain as
/// telemetry and mmtune).
pub const DEFAULT_CHECK_EPOCH_CYCLES: Cycles = 65_536;

/// Checker configuration. Lives in [`crate::KernelConfig::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Maintain the shadow oracle and cross-check every TLB hit, hash-table
    /// hit and BAT match against it.
    pub oracle: bool,
    /// Evaluate the ported SchedInv/MMInv invariants at every span
    /// transition and run the heavy structural sweeps at epoch boundaries.
    pub invariants: bool,
    /// Cycles between heavy sweeps (TLB/htab containment, placement,
    /// occupancy cross-checks).
    pub epoch_cycles: Cycles,
}

impl CheckConfig {
    /// Everything on, at the default epoch grain.
    pub fn full() -> Self {
        Self {
            oracle: true,
            invariants: true,
            epoch_cycles: DEFAULT_CHECK_EPOCH_CYCLES,
        }
    }
}

/// The runtime checker state.
#[derive(Debug, Clone)]
pub struct CheckState {
    /// Configuration.
    pub cfg: CheckConfig,
    /// The shadow model of every currently-legal translation.
    pub oracle: ShadowMm,
    /// Positive hardware observations cross-checked against the oracle.
    pub checked_observations: u64,
    /// Cheap invariant evaluations performed (one per span transition).
    pub invariant_passes: u64,
    /// Heavy epoch sweeps performed.
    pub heavy_sweeps: u64,
    /// Next heavy-sweep boundary.
    next_boundary: Cycles,
    /// Highest VSID-allocator generation seen (must never decrease).
    last_generation: u32,
    /// Scratch for the heavy sweep's occupancy histogram, reused across
    /// epochs so the sweep only allocates when the hash table grows.
    hist_scratch: Vec<u8>,
}

impl CheckState {
    /// Fresh state for `cfg`.
    pub fn new(cfg: CheckConfig) -> Self {
        Self {
            cfg,
            oracle: ShadowMm::new(),
            checked_observations: 0,
            invariant_passes: 0,
            heavy_sweeps: 0,
            next_boundary: cfg.epoch_cycles.max(1),
            last_generation: 0,
            hist_scratch: Vec::new(),
        }
    }
}

impl Kernel {
    /// One-line context for violation messages: the exact config summary and
    /// injector seed, so any panic is a one-command repro
    /// (`repro chaos --seed N`).
    fn check_context(&self) -> String {
        let seed = match self.cfg.fault_injection {
            Some(fi) => fi.seed.to_string(),
            None => "none".to_string(),
        };
        format!(
            "seed={seed} cycle={} config: {}",
            self.machine.cycles,
            self.cfg.summary()
        )
    }

    /// Reports a checker violation.
    ///
    /// # Panics
    ///
    /// Always — panicking is the reporting mechanism. A violation means the
    /// simulated MM state diverged from the oracle, so no `KResult` can be
    /// trusted past this point; the adversarial driver catches the unwind
    /// and prints the minimized repro.
    fn check_fail(&self, msg: &str) -> ! {
        panic!("MM check violation: {msg}\n  [{}]", self.check_context());
    }

    /// The span-transition hook: a single branch when checking is off.
    /// Cheap invariants every call; the heavy sweep when the epoch boundary
    /// has been crossed.
    #[inline]
    pub(crate) fn check_poll(&mut self) {
        if self.check.is_none() {
            return;
        }
        self.check_transition();
    }

    /// The cold half of [`Kernel::check_poll`]. Takes the checker out while
    /// working (same discipline as `tune_epoch`): the checks only read
    /// kernel state, and a taken-out checker makes re-entry impossible.
    fn check_transition(&mut self) {
        let Some(mut c) = self.check.take() else {
            return;
        };
        let _host = hostprof::span(hostprof::HostPhase::Checker);
        if c.cfg.invariants {
            if let Some(v) = self.invariant_violation(&mut c.last_generation) {
                self.check = Some(c);
                self.check_fail(&v);
            }
            c.invariant_passes += 1;
        }
        let now = self.machine.cycles;
        if now >= c.next_boundary {
            while c.next_boundary <= now {
                c.next_boundary += c.cfg.epoch_cycles.max(1);
            }
            c.heavy_sweeps += 1;
            if let Some(v) = self.heavy_sweep_violation(&mut c) {
                self.check = Some(c);
                self.check_fail(&v);
            }
        }
        self.check = Some(c);
    }

    /// Runs the heavy structural sweep once over the final state (call at
    /// the end of a checked run; no-op when checking is off).
    pub fn check_finish(&mut self) {
        let Some(mut c) = self.check.take() else {
            return;
        };
        let _host = hostprof::span(hostprof::HostPhase::Checker);
        c.heavy_sweeps += 1;
        if let Some(v) = self.heavy_sweep_violation(&mut c) {
            self.check = Some(c);
            self.check_fail(&v);
        }
        if c.cfg.invariants {
            if let Some(v) = self.invariant_violation(&mut c.last_generation) {
                self.check = Some(c);
                self.check_fail(&v);
            }
            c.invariant_passes += 1;
        }
        self.check = Some(c);
    }

    /// The cheap invariant set, evaluated at every span transition.
    ///
    /// Scheduler-state clauses are skipped while a scheduler mutation
    /// (context switch, task teardown) is in flight: those functions are the
    /// atomic "steps" of the ported TLA model, and the invariants are
    /// guaranteed only at step boundaries.
    pub(crate) fn invariant_violation(&self, last_generation: &mut u32) -> Option<String> {
        // Run-queue entries are distinct — holds even mid-mutation.
        let q = &self.run_queue;
        for (i, &a) in q.iter().enumerate() {
            if q.iter().skip(i + 1).any(|&b| b == a) {
                return Some(format!("SchedInv: task {a} queued twice"));
            }
        }
        if self.sched_mutation_depth == 0 {
            // SchedInv: no run-queue task is running, and every queued task
            // is runnable.
            if let Some(cur) = self.current {
                if q.contains(&cur) {
                    return Some(format!("SchedInv: running task {cur} is on the run queue"));
                }
            }
            for &i in q {
                if self.tasks[i].state != TaskState::Runnable {
                    return Some(format!(
                        "SchedInv: queued task {i} is {:?}, not Runnable",
                        self.tasks[i].state
                    ));
                }
            }
            // MMInv analogue: the active address space is the current
            // task's — user segment registers hold exactly its VSIDs.
            if let Some(cur) = self.current {
                for (sr, v) in self.tasks[cur].vsids.iter().enumerate() {
                    let hw = self
                        .machine
                        .mmu
                        .segments
                        .translate(EffectiveAddress((sr as u32) << 28));
                    if hw.vsid != *v {
                        return Some(format!(
                            "MMInv: segment register {sr} holds vsid {:#x} but \
                             current task {cur} owns {:#x}",
                            hw.vsid.raw(),
                            v.raw()
                        ));
                    }
                }
            }
            // MMInv analogue: a dead task's address space is gone — it
            // holds no frames and is never current; live tasks translate
            // only under live VSIDs. Teardown transiently violates all
            // three (Dead is set before the frames drain and before the
            // final reschedule), so this block sits inside the step gate.
            for (i, t) in self.tasks.iter().enumerate() {
                match t.state {
                    TaskState::Dead => {
                        if !t.frames.is_empty() {
                            return Some(format!("MMInv: dead task {i} still holds frames"));
                        }
                        if self.current == Some(i) {
                            return Some(format!("MMInv: dead task {i} is current"));
                        }
                    }
                    _ => {
                        for v in &t.vsids {
                            if !self.vsids.is_live(*v) {
                                return Some(format!(
                                    "MMInv: live task {i} owns retired vsid {:#x}",
                                    v.raw()
                                ));
                            }
                        }
                    }
                }
            }
        }
        // Lazy-flush invariant: the context generation never moves backward
        // (VSIDs are never reused).
        let generation = self.vsids.generation();
        if generation < *last_generation {
            return Some(format!(
                "VSID generation moved backward: {} -> {generation}",
                *last_generation
            ));
        }
        *last_generation = generation;
        None
    }

    /// The heavy epoch sweep: containment of resident translations in the
    /// oracle, and hash-table structural self-consistency.
    fn heavy_sweep_violation(&self, c: &mut CheckState) -> Option<String> {
        if c.cfg.oracle {
            // Every resident TLB entry under a live VSID must still be
            // legal. (Zombie entries — retired VSIDs — are exactly what
            // lazy flushing leaves behind; they can never match and are
            // exempt.)
            let live = |v| self.vsids.is_live(v);
            let tlbs = [
                ("itlb", &self.machine.mmu.itlb),
                ("dtlb", &self.machine.mmu.dtlb),
            ];
            for (name, tlb) in tlbs {
                for e in tlb.entries().filter(|e| live(e.vsid)) {
                    if let Some(v) = c.oracle.check_observation(
                        format_args!("{name} residency sweep"),
                        e.vsid,
                        e.page_index,
                        e.rpn,
                        e.writable,
                        e.cached,
                    ) {
                        return Some(v);
                    }
                }
            }
            // Same containment for live hash-table entries.
            for (_, _, pte) in self.htab.entries().filter(|(_, _, p)| live(p.vsid)) {
                if let Some(v) = c.oracle.check_observation(
                    "htab residency sweep",
                    pte.vsid,
                    pte.page_index,
                    pte.rpn,
                    pte.pp == 2,
                    !pte.cache_inhibited,
                ) {
                    return Some(v);
                }
            }
        }
        if c.cfg.invariants {
            // PTEG placement: every valid entry sits in the group its hash
            // (primary or secondary, per its H bit) selects — the invariant
            // a botched mid-run rehash would break.
            let hash = self.htab.hash();
            for (g, s, pte) in self.htab.entries() {
                let expect = hash.pteg_index(pte.vsid, pte.page_index, pte.secondary);
                if expect != g {
                    return Some(format!(
                        "htab placement: vsid={:#x} page={:#x} (secondary={}) \
                         found in group {g} slot {s}, hash says group {expect}",
                        pte.vsid.raw(),
                        pte.page_index,
                        pte.secondary
                    ));
                }
            }
            // Occupancy summaries agree with the group contents.
            self.htab.group_histogram_into(&mut c.hist_scratch);
            let hist = &c.hist_scratch;
            if hist.len() != self.htab.hash().num_groups() as usize {
                return Some(format!(
                    "htab occupancy: histogram covers {} groups, hash says {}",
                    hist.len(),
                    self.htab.hash().num_groups()
                ));
            }
            let sum: u32 = hist.iter().map(|&c| u32::from(c)).sum();
            if sum != self.htab.valid_entries() {
                return Some(format!(
                    "htab occupancy: histogram sums to {sum}, valid_entries says {}",
                    self.htab.valid_entries()
                ));
            }
            let full = hist.iter().filter(|&&c| c as usize == 8).count() as u32;
            if full != self.htab.full_groups() {
                return Some(format!(
                    "htab occupancy: histogram counts {full} full groups, \
                     full_groups says {}",
                    self.htab.full_groups()
                ));
            }
        }
        None
    }

    // ---- oracle mutation mirrors (called at the kernel's mutation sites) --

    /// Mirrors a translation install into the oracle.
    #[inline]
    pub(crate) fn check_note_install(
        &mut self,
        va: VirtualAddress,
        pfn: u32,
        cached: bool,
        writable: bool,
    ) {
        if let Some(c) = self.check.as_mut() {
            if c.cfg.oracle {
                c.oracle.install(
                    va.vsid,
                    va.page_index,
                    ShadowEntry {
                        rpn: pfn,
                        writable,
                        cached,
                    },
                );
            }
        }
    }

    /// Mirrors a single-page flush into the oracle.
    #[inline]
    pub(crate) fn check_note_flush_page(&mut self, vsid: ppc_mmu::addr::Vsid, page_index: u32) {
        if let Some(c) = self.check.as_mut() {
            if c.cfg.oracle {
                c.oracle.flush_page(vsid, page_index);
            }
        }
    }

    /// Mirrors a whole-context retirement into the oracle. Called *before*
    /// the kernel bumps the VSIDs, so a kernel that forgets the bump (the
    /// deliberate `MMU_TRICKS_BUG_STALE_TLB` bug) leaves resident
    /// translations the oracle now holds illegal — caught at the next hit.
    #[inline]
    pub(crate) fn check_note_retire(&mut self, vsids: &[ppc_mmu::addr::Vsid]) {
        if let Some(c) = self.check.as_mut() {
            if c.cfg.oracle {
                c.oracle.retire_vsids(vsids);
            }
        }
    }

    // ---- positive-observation cross-checks --------------------------------

    /// Cross-checks a TLB hit for `ea` against the oracle.
    #[inline]
    pub(crate) fn check_on_tlb_hit(
        &mut self,
        ea: EffectiveAddress,
        at: AccessType,
        pa: PhysAddr,
        cached: bool,
        writable: bool,
    ) {
        if self.check.is_none() {
            return;
        }
        let _host = hostprof::span(hostprof::HostPhase::Checker);
        let Some(c) = self.check.take() else { return };
        if c.cfg.oracle {
            let va = self.machine.mmu.segments.translate(ea);
            let side = if at.is_data() { "dtlb" } else { "itlb" };
            if let Some(v) = c.oracle.check_observation(
                format_args!("{side} hit for ea={:#x}", ea.0),
                va.vsid,
                va.page_index,
                pa >> 12,
                writable,
                cached,
            ) {
                self.check = Some(c);
                self.check_fail(&v);
            }
        }
        self.check = Some(c);
        if let Some(c) = self.check.as_mut() {
            c.checked_observations += 1;
        }
    }

    /// Cross-checks a hash-table hit against the oracle.
    #[inline]
    pub(crate) fn check_on_htab_hit(&mut self, va: VirtualAddress, pte: &Pte) {
        if self.check.is_none() {
            return;
        }
        let _host = hostprof::span(hostprof::HostPhase::Checker);
        let Some(c) = self.check.take() else { return };
        if c.cfg.oracle {
            if let Some(v) = c.oracle.check_observation(
                "htab hit",
                va.vsid,
                va.page_index,
                pte.rpn,
                pte.pp == 2,
                !pte.cache_inhibited,
            ) {
                self.check = Some(c);
                self.check_fail(&v);
            }
        }
        self.check = Some(c);
        if let Some(c) = self.check.as_mut() {
            c.checked_observations += 1;
        }
    }

    /// Cross-checks a BAT match: BATs cover exactly the kernel linear map
    /// (identity minus the virtual base, cacheable) and the I/O aperture
    /// (identity, cache-inhibited).
    #[inline]
    pub(crate) fn check_on_bat_hit(&mut self, ea: EffectiveAddress, pa: PhysAddr, cached: bool) {
        if self.check.is_none() {
            return;
        }
        let ok = if is_kernel_linear(ea) {
            pa == kva_to_pa(ea) && cached
        } else if is_io(ea) {
            pa == ea.0 && !cached
        } else {
            false
        };
        if !ok {
            self.check_fail(&format!(
                "BAT match for ea={:#x} -> pa={pa:#x} cached={cached} is outside \
                 the linear-map and I/O apertures (or mistranslated)",
                ea.0
            ));
        }
        if let Some(c) = self.check.as_mut() {
            c.checked_observations += 1;
        }
    }

    // ---- scheduler-mutation bracketing ------------------------------------

    /// Marks entry into a scheduler mutation (context switch / teardown):
    /// SchedInv clauses are suspended until the matching exit.
    #[inline]
    pub(crate) fn check_sched_enter(&mut self) {
        self.sched_mutation_depth += 1;
    }

    /// Marks exit from a scheduler mutation.
    #[inline]
    pub(crate) fn check_sched_exit(&mut self) {
        debug_assert!(self.sched_mutation_depth > 0);
        self.sched_mutation_depth -= 1;
    }
}
