//! Tail-latency forensics: p99 exemplar capture and causal attribution.
//!
//! The latency histograms ([`crate::trace::Histogram`]) can say *that* a
//! reload or fault was slow, never *why*: log2 buckets keep counts, not
//! context. This module is the attribution layer. When an instrumented-path
//! latency sample lands at or above an armed threshold, the kernel captures
//! a [`TailExemplar`] — the exact latency, the live profiler span stack, the
//! last-K trace-ring events as a causal window, a read-only MMU-context
//! snapshot, and the [`crate::KernelStats`] / [`ppc_mmu::HtabStats`] deltas
//! since the previous instrumented-path completion — and files it in a
//! deterministic top-N reservoir per [`LatencyPath`].
//!
//! A closed cause taxonomy ([`TailCause`]) classifies each exemplar from its
//! span stack and stats deltas, and cycles-above-median are attributed per
//! cause, so `repro tail` can print "the p99 is secondary-hash probing"
//! instead of a bucket bound.
//!
//! Like the tracer, telemetry sampler and checker before it, capture is
//! **purely observational**: a tail-armed traced run charges exactly the
//! same cycles and counts exactly the same [`crate::KernelStats`] as a plain
//! traced run (`tests_tail` proves it over a matrix sample). The state
//! ([`TailState`]) hangs off the kernel as `Option<Box<_>>`, so a kernel
//! without tail forensics carries one pointer and a single `None` branch.

use crate::prof::Subsystem;
use crate::stats::KernelStats;
use crate::task::Pid;
use crate::trace::{Histogram, LatencyPath, TraceRecord, HIST_BUCKETS};
use ppc_machine::Cycles;
use ppc_mmu::HtabStats;

/// Default reservoir depth (exemplars retained per latency path).
pub const DEFAULT_TOP_N: usize = 8;
/// Default causal-window length (trailing trace-ring events captured).
pub const DEFAULT_WINDOW: usize = 16;

/// Tail-forensics configuration ([`crate::KernelConfig::tail`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailConfig {
    /// Fixed arming threshold in cycles: capture every sample with
    /// `latency >= threshold`. `None` auto-tracks the running top bucket —
    /// a sample arms capture when it lands in (or above) the highest
    /// occupied histogram bucket seen so far on its path.
    pub threshold: Option<u64>,
    /// Exemplars retained per latency path (a deterministic top-N
    /// reservoir: slowest first, earliest capture wins ties).
    pub top_n: usize,
    /// Trailing trace-ring events captured per exemplar as the causal
    /// window.
    pub window: usize,
}

impl TailConfig {
    /// Auto-armed capture: track the running top bucket per path.
    pub fn auto() -> Self {
        Self {
            threshold: None,
            top_n: DEFAULT_TOP_N,
            window: DEFAULT_WINDOW,
        }
    }

    /// Fixed-threshold capture: every sample at or above `threshold` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero (every sample would qualify; use
    /// [`TailConfig::auto`] to mean "the slow ones").
    pub fn fixed(threshold: u64) -> Self {
        assert!(threshold > 0, "tail threshold must be positive");
        Self {
            threshold: Some(threshold),
            ..Self::auto()
        }
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the reservoir depth or causal window is zero.
    pub fn validate(&self) {
        assert!(self.top_n > 0, "tail reservoir depth must be positive");
        assert!(self.window > 0, "tail causal window must be positive");
        if let Some(t) = self.threshold {
            assert!(t > 0, "tail threshold must be positive");
        }
    }
}

/// The log2 bucket a latency value lands in — the same mapping
/// [`Histogram`] uses, duplicated here because the histogram's buckets are
/// (deliberately) private.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// A read-only MMU-context snapshot taken at capture time.
///
/// Everything here is a plain read of existing state — no cache or TLB
/// replacement state is touched, no cycles are charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MmuSnapshot {
    /// Hash-table size in PTEGs.
    pub htab_groups: u64,
    /// Valid PTEs in the hash table (live + zombie).
    pub htab_valid: u64,
    /// Valid PTEs whose VSID is still live (the rest are zombies).
    pub htab_live: u64,
    /// PTEGs with all eight slots valid — the displacement pressure gauge.
    pub htab_full_groups: u64,
    /// VSID generation counter (bumps on lazy context flushes).
    pub vsid_generation: u64,
    /// Live VSIDs.
    pub vsid_live: u64,
    /// Data BATs in use.
    pub dbats: u64,
    /// Instruction BATs in use.
    pub ibats: u64,
    /// Retune decisions the mmtune controller has applied so far (a change
    /// between exemplars means a retune landed in between).
    pub retunes: u64,
    /// Free page frames (the memory-pressure gauge).
    pub free_frames: u64,
}

impl MmuSnapshot {
    /// Zombie PTEs in the hash table (valid but dead-VSID).
    pub fn zombies(&self) -> u64 {
        self.htab_valid.saturating_sub(self.htab_live)
    }
}

/// Field-by-field saturating difference of two [`HtabStats`] readings.
///
/// Saturating, not panicking: an mmtune hash-table resize swaps in a fresh
/// table whose counters restart from zero, so a later reading can be
/// smaller than an earlier one.
fn htab_delta(now: &HtabStats, then: &HtabStats) -> HtabStats {
    HtabStats {
        searches: now.searches.saturating_sub(then.searches),
        found_primary: now.found_primary.saturating_sub(then.found_primary),
        found_secondary: now.found_secondary.saturating_sub(then.found_secondary),
        misses: now.misses.saturating_sub(then.misses),
        probes: now.probes.saturating_sub(then.probes),
        inserts: now.inserts.saturating_sub(then.inserts),
        inserts_into_empty: now.inserts_into_empty.saturating_sub(then.inserts_into_empty),
        evictions: now.evictions.saturating_sub(then.evictions),
        overflows: now.overflows.saturating_sub(then.overflows),
        invalidates: now.invalidates.saturating_sub(then.invalidates),
        zombies_reclaimed: now.zombies_reclaimed.saturating_sub(then.zombies_reclaimed),
    }
}

/// The closed cause taxonomy a [`TailExemplar`] is classified into.
///
/// Classification is first-match-wins down [`TailCause::ALL`]'s order: the
/// rarer, more structural causes (a rehash in flight, a retune collision)
/// outrank the everyday ones (a Linux-PT walk), so an exemplar that shows
/// both is attributed to the one that made *this* sample an outlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailCause {
    /// An mmtune hash-table resize/rehash landed inside the window: the
    /// sample paid for rehash traffic.
    HtabRehash,
    /// Some other mmtune retune (BAT reprogram, scatter change) landed
    /// inside the window.
    RetuneCollision,
    /// The memory-pressure path ran: page-cache eviction or the OOM killer.
    PressurePath,
    /// Zombie PTEs were displaced or reclaimed — the lazy-flush debt being
    /// paid off inside the sample.
    ZombieSweep,
    /// Secondary-hash probing: a search hit (or exhausted) the secondary
    /// PTEG, the §5.2 probe-storm signature of a saturated primary group.
    SecondaryProbeStorm,
    /// A hash-table insert displaced a *live* entry (working set exceeds
    /// PTEG capacity).
    PtegDisplacement,
    /// The hash table missed and the translation was reinstalled from the
    /// Linux page tables (the §6.2 slow path).
    LinuxPtReinstall,
    /// Signal machinery was on the span stack: frame setup/unwind cost.
    SignalUnwind,
    /// None of the signatures matched.
    Unattributed,
}

/// Number of causes in the taxonomy.
pub const NUM_CAUSES: usize = 9;

impl TailCause {
    /// Every cause, in classification-priority (and ranking tie-break)
    /// order.
    pub const ALL: [TailCause; NUM_CAUSES] = [
        TailCause::HtabRehash,
        TailCause::RetuneCollision,
        TailCause::PressurePath,
        TailCause::ZombieSweep,
        TailCause::SecondaryProbeStorm,
        TailCause::PtegDisplacement,
        TailCause::LinuxPtReinstall,
        TailCause::SignalUnwind,
        TailCause::Unattributed,
    ];

    /// Stable machine-readable name (used in the `mmu-tricks-tail-v1`
    /// artifact and tables).
    pub fn name(self) -> &'static str {
        match self {
            TailCause::HtabRehash => "htab_rehash",
            TailCause::RetuneCollision => "retune_collision",
            TailCause::PressurePath => "pressure_oom",
            TailCause::ZombieSweep => "zombie_sweep",
            TailCause::SecondaryProbeStorm => "secondary_probe_storm",
            TailCause::PtegDisplacement => "pteg_displacement",
            TailCause::LinuxPtReinstall => "linux_pt_reinstall",
            TailCause::SignalUnwind => "signal_unwind",
            TailCause::Unattributed => "unattributed",
        }
    }

    /// Position in [`TailCause::ALL`] (classification priority).
    fn rank(self) -> usize {
        TailCause::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every cause is in ALL")
    }

    /// Classifies one exemplar from its span stack and the stats deltas
    /// since the previous instrumented-path completion. First match wins.
    ///
    /// The secondary-hash rule needs care: a hash-table *search* probes all
    /// sixteen slots of both PTEGs on any miss — even in an empty table —
    /// so raw probe counts cannot distinguish a storm from a cold miss.
    /// What can: `found_secondary` only counts hits in the secondary PTEG
    /// (primary group saturated by displacement), and a miss whose *insert*
    /// then overflowed both groups is the same saturation seen from the
    /// other side.
    pub fn classify(stack: &[Subsystem], d_stats: &KernelStats, d_htab: &HtabStats) -> TailCause {
        if d_stats.mmtune_htab_resizes > 0 {
            TailCause::HtabRehash
        } else if d_stats.mmtune_retunes > 0 {
            TailCause::RetuneCollision
        } else if d_stats.oom_kills > 0 || d_stats.reclaimed_pages > 0 {
            TailCause::PressurePath
        } else if d_stats.evict_zombie > 0 || d_htab.zombies_reclaimed > 0 {
            TailCause::ZombieSweep
        } else if d_htab.found_secondary > 0 || (d_htab.misses > 0 && d_htab.overflows > 0) {
            TailCause::SecondaryProbeStorm
        } else if d_stats.evict_live > 0 {
            TailCause::PtegDisplacement
        } else if d_htab.misses > 0 {
            TailCause::LinuxPtReinstall
        } else if stack.contains(&Subsystem::Signal) {
            TailCause::SignalUnwind
        } else {
            TailCause::Unattributed
        }
    }
}

/// One captured slow sample: everything needed to say *why* it was slow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailExemplar {
    /// Capture sequence number (global across paths; the deterministic
    /// tie-break of last resort).
    pub seq: u64,
    /// Cycle the sample completed at.
    pub cycle: Cycles,
    /// Task that was current (0 = the kernel itself).
    pub pid: Pid,
    /// The instrumented path the sample belongs to.
    pub path: LatencyPath,
    /// Exact latency in cycles.
    pub latency: u64,
    /// The live profiler span stack at completion, outermost first — still
    /// including the exiting span itself.
    pub stack: Vec<Subsystem>,
    /// The last-K trace-ring events before completion (causal window),
    /// oldest first.
    pub window: Vec<TraceRecord>,
    /// Read-only MMU-context snapshot at capture time.
    pub mmu: MmuSnapshot,
    /// Kernel-counter delta since the previous instrumented-path
    /// completion.
    pub d_stats: KernelStats,
    /// Hash-table-counter delta since the previous instrumented-path
    /// completion.
    pub d_htab: HtabStats,
    /// Classified cause.
    pub cause: TailCause,
}

/// The tail-forensics state a tail-armed kernel carries
/// ([`crate::Kernel::tail`]).
#[derive(Debug, Clone)]
pub struct TailState {
    /// The configuration the state was armed with.
    pub cfg: TailConfig,
    /// One reservoir per [`LatencyPath`], sorted slowest-first.
    reservoirs: [Vec<TailExemplar>; 3],
    /// Kernel counters at the previous instrumented-path completion.
    last_stats: KernelStats,
    /// Hash-table counters at the previous instrumented-path completion.
    last_htab: HtabStats,
    /// Captures so far (also the next exemplar's sequence number).
    captured: u64,
}

fn path_index(path: LatencyPath) -> usize {
    match path {
        LatencyPath::TlbReload => 0,
        LatencyPath::PageFault => 1,
        LatencyPath::Signal => 2,
    }
}

impl TailState {
    /// Fresh state for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`TailConfig::validate`]).
    pub fn new(cfg: TailConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            reservoirs: [Vec::new(), Vec::new(), Vec::new()],
            last_stats: KernelStats::default(),
            last_htab: HtabStats::default(),
            captured: 0,
        }
    }

    /// Whether a sample of `lat` cycles arms capture, judged against the
    /// *pre-sample* histogram of its path. Fixed mode compares against the
    /// configured threshold; auto mode captures any sample landing in (or
    /// above) the running top bucket — including the very first sample,
    /// which *defines* the top bucket.
    pub fn armed(&self, lat: u64, hist: &Histogram) -> bool {
        match self.cfg.threshold {
            Some(t) => lat >= t,
            None => hist.count() == 0 || bucket_of(lat) >= bucket_of(hist.max()),
        }
    }

    /// Advances the delta window without capturing: every
    /// instrumented-path completion calls either this or
    /// [`TailState::offer`], so each exemplar's deltas span exactly the
    /// interval since the previous completion.
    pub fn note(&mut self, stats: &KernelStats, htab: &HtabStats) {
        self.last_stats = *stats;
        self.last_htab = *htab;
    }

    /// Captures one exemplar and files it in its path's reservoir.
    ///
    /// The reservoir keeps the top-N by latency, deterministically: sorted
    /// by latency descending, then completion cycle ascending, then capture
    /// sequence ascending — so under tied latencies the *earliest* captures
    /// survive, regardless of arrival interleaving.
    #[allow(clippy::too_many_arguments)]
    pub fn offer(
        &mut self,
        path: LatencyPath,
        lat: u64,
        cycle: Cycles,
        pid: Pid,
        stack: Vec<Subsystem>,
        window: Vec<TraceRecord>,
        mmu: MmuSnapshot,
        stats: &KernelStats,
        htab: &HtabStats,
    ) {
        let d_stats = stats.diff(&self.last_stats);
        let d_htab = htab_delta(htab, &self.last_htab);
        self.note(stats, htab);
        let seq = self.captured;
        self.captured += 1;
        let cause = TailCause::classify(&stack, &d_stats, &d_htab);
        let ex = TailExemplar {
            seq,
            cycle,
            pid,
            path,
            latency: lat,
            stack,
            window,
            mmu,
            d_stats,
            d_htab,
            cause,
        };
        let res = &mut self.reservoirs[path_index(path)];
        let pos = res.partition_point(|e| {
            e.latency > ex.latency
                || (e.latency == ex.latency
                    && (e.cycle < ex.cycle || (e.cycle == ex.cycle && e.seq < ex.seq)))
        });
        res.insert(pos, ex);
        res.truncate(self.cfg.top_n);
    }

    /// The retained exemplars for `path`, slowest first.
    pub fn exemplars(&self, path: LatencyPath) -> &[TailExemplar] {
        &self.reservoirs[path_index(path)]
    }

    /// Drains the reservoirs and the capture counter, keeping the arming
    /// configuration and the delta window. A forensics harness calls this
    /// after a warmup phase so the retained tail describes steady state
    /// instead of compulsory cold misses (E-TAIL does exactly that).
    /// Host-side only: resetting never charges cycles or touches counters.
    pub fn reset(&mut self) {
        self.reservoirs = [Vec::new(), Vec::new(), Vec::new()];
        self.captured = 0;
    }

    /// Total captures offered so far (not all were retained).
    pub fn captured(&self) -> u64 {
        self.captured
    }

    /// Cycles-above-median attribution: for every retained exemplar, the
    /// cycles its latency exceeds its path's median (`p50`, indexed like
    /// [`LatencyPath::ALL`]) are charged to its cause. Returns
    /// `(cause, cycles_above_median, exemplars)` ranked by cycles
    /// descending, taxonomy order breaking ties; causes with no exemplars
    /// are omitted.
    pub fn attribution(&self, p50: [u64; 3]) -> Vec<(TailCause, u64, u64)> {
        let mut cycles = [0u64; NUM_CAUSES];
        let mut counts = [0u64; NUM_CAUSES];
        for path in LatencyPath::ALL {
            let i = path_index(path);
            for e in self.exemplars(path) {
                let r = e.cause.rank();
                cycles[r] += e.latency.saturating_sub(p50[i]);
                counts[r] += 1;
            }
        }
        let mut out: Vec<(TailCause, u64, u64)> = TailCause::ALL
            .iter()
            .map(|c| (*c, cycles[c.rank()], counts[c.rank()]))
            .filter(|(_, _, n)| *n > 0)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.rank().cmp(&b.0.rank())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer_simple(tl: &mut TailState, path: LatencyPath, lat: u64, cycle: Cycles) {
        let stats = tl.last_stats;
        let htab = tl.last_htab;
        tl.offer(
            path,
            lat,
            cycle,
            1,
            vec![Subsystem::Translate],
            Vec::new(),
            MmuSnapshot::default(),
            &stats,
            &htab,
        );
    }

    #[test]
    fn cause_names_and_all_agree() {
        assert_eq!(TailCause::ALL.len(), NUM_CAUSES);
        let mut names: Vec<&str> = TailCause::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_CAUSES, "names must be unique");
        for (i, c) in TailCause::ALL.iter().enumerate() {
            assert_eq!(c.rank(), i);
        }
    }

    #[test]
    fn classifier_priority_order() {
        let none = KernelStats::default();
        let h0 = HtabStats::default();
        // Rehash outranks everything.
        let mut s = none;
        s.mmtune_htab_resizes = 1;
        s.mmtune_retunes = 1;
        s.oom_kills = 1;
        assert_eq!(TailCause::classify(&[], &s, &h0), TailCause::HtabRehash);
        // Retune outranks pressure.
        let mut s = none;
        s.mmtune_retunes = 1;
        s.reclaimed_pages = 3;
        assert_eq!(TailCause::classify(&[], &s, &h0), TailCause::RetuneCollision);
        // Pressure outranks zombies.
        let mut s = none;
        s.reclaimed_pages = 1;
        s.evict_zombie = 1;
        assert_eq!(TailCause::classify(&[], &s, &h0), TailCause::PressurePath);
        // Zombie displacement.
        let mut s = none;
        s.evict_zombie = 1;
        assert_eq!(TailCause::classify(&[], &s, &h0), TailCause::ZombieSweep);
        // Secondary-hash storm: a secondary hit...
        let mut h = h0;
        h.found_secondary = 1;
        assert_eq!(
            TailCause::classify(&[], &none, &h),
            TailCause::SecondaryProbeStorm
        );
        // ...or a miss whose insert overflowed both PTEGs.
        let mut h = h0;
        h.misses = 1;
        h.overflows = 1;
        assert_eq!(
            TailCause::classify(&[], &none, &h),
            TailCause::SecondaryProbeStorm
        );
        // A storm outranks live displacement.
        let mut s = none;
        s.evict_live = 2;
        assert_eq!(
            TailCause::classify(&[], &s, &h),
            TailCause::SecondaryProbeStorm
        );
        // Live displacement without the storm signature.
        assert_eq!(TailCause::classify(&[], &s, &h0), TailCause::PtegDisplacement);
        // A plain miss is a Linux-PT reinstall.
        let mut h = h0;
        h.misses = 2;
        assert_eq!(
            TailCause::classify(&[], &none, &h),
            TailCause::LinuxPtReinstall
        );
        // Signal machinery on the stack, nothing else.
        assert_eq!(
            TailCause::classify(&[Subsystem::Signal], &none, &h0),
            TailCause::SignalUnwind
        );
        assert_eq!(TailCause::classify(&[], &none, &h0), TailCause::Unattributed);
    }

    #[test]
    fn auto_arming_tracks_the_top_bucket() {
        let tl = TailState::new(TailConfig::auto());
        let mut h = Histogram::default();
        assert!(tl.armed(5, &h), "first sample defines the top bucket");
        h.record(100); // bucket 6
        assert!(tl.armed(100, &h), "same bucket still arms");
        assert!(tl.armed(4000, &h), "higher bucket arms");
        assert!(!tl.armed(63, &h), "lower bucket stays dormant");
    }

    #[test]
    fn fixed_arming_compares_the_threshold() {
        let tl = TailState::new(TailConfig::fixed(500));
        let h = Histogram::default();
        assert!(tl.armed(500, &h));
        assert!(tl.armed(501, &h));
        assert!(!tl.armed(499, &h));
    }

    #[test]
    fn reservoir_keeps_top_n_slowest_first() {
        let mut tl = TailState::new(TailConfig {
            top_n: 3,
            ..TailConfig::fixed(1)
        });
        for (lat, cyc) in [(10, 100), (50, 200), (20, 300), (40, 400), (60, 500)] {
            offer_simple(&mut tl, LatencyPath::TlbReload, lat, cyc);
        }
        let lats: Vec<u64> = tl
            .exemplars(LatencyPath::TlbReload)
            .iter()
            .map(|e| e.latency)
            .collect();
        assert_eq!(lats, vec![60, 50, 40]);
        assert!(tl.exemplars(LatencyPath::PageFault).is_empty());
        assert_eq!(tl.captured(), 5);
    }

    #[test]
    fn tied_latencies_keep_the_earliest_captures() {
        let mut tl = TailState::new(TailConfig {
            top_n: 2,
            ..TailConfig::fixed(1)
        });
        for cyc in [100, 200, 300, 400] {
            offer_simple(&mut tl, LatencyPath::PageFault, 7, cyc);
        }
        let cycles: Vec<Cycles> = tl
            .exemplars(LatencyPath::PageFault)
            .iter()
            .map(|e| e.cycle)
            .collect();
        assert_eq!(cycles, vec![100, 200], "earliest ties survive");
    }

    #[test]
    fn deltas_span_since_the_previous_completion() {
        let mut tl = TailState::new(TailConfig::fixed(1));
        let mut stats = KernelStats {
            evict_live: 4,
            ..Default::default()
        };
        let htab = HtabStats::default();
        tl.note(&stats, &htab);
        stats.evict_live = 9;
        tl.offer(
            LatencyPath::TlbReload,
            10,
            1000,
            1,
            vec![Subsystem::Translate],
            Vec::new(),
            MmuSnapshot::default(),
            &stats,
            &htab,
        );
        let e = &tl.exemplars(LatencyPath::TlbReload)[0];
        assert_eq!(e.d_stats.evict_live, 5, "delta, not the running total");
        assert_eq!(e.cause, TailCause::PtegDisplacement);
    }

    #[test]
    fn attribution_ranks_by_cycles_above_median() {
        let mut tl = TailState::new(TailConfig::fixed(1));
        // Two displacement exemplars and one unattributed one.
        let mut stats = KernelStats {
            evict_live: 1,
            ..Default::default()
        };
        let htab = HtabStats::default();
        tl.offer(
            LatencyPath::TlbReload,
            100,
            10,
            1,
            Vec::new(),
            Vec::new(),
            MmuSnapshot::default(),
            &stats,
            &htab,
        );
        stats.evict_live = 2;
        tl.offer(
            LatencyPath::TlbReload,
            80,
            20,
            1,
            Vec::new(),
            Vec::new(),
            MmuSnapshot::default(),
            &stats,
            &htab,
        );
        tl.offer(
            LatencyPath::TlbReload,
            90,
            30,
            1,
            Vec::new(),
            Vec::new(),
            MmuSnapshot::default(),
            &stats,
            &htab,
        );
        let ranked = tl.attribution([50, 0, 0]);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].0, TailCause::PtegDisplacement);
        assert_eq!(ranked[0].1, (100 - 50) + (80 - 50));
        assert_eq!(ranked[0].2, 2);
        assert_eq!(ranked[1].0, TailCause::Unattributed);
        assert_eq!(ranked[1].1, 90 - 50);
    }

    #[test]
    fn reset_drains_reservoirs_but_keeps_the_delta_window() {
        let mut tl = TailState::new(TailConfig::fixed(1));
        let stats = KernelStats {
            evict_live: 7,
            ..Default::default()
        };
        let htab = HtabStats::default();
        offer_simple(&mut tl, LatencyPath::TlbReload, 10, 100);
        tl.note(&stats, &htab);
        tl.reset();
        assert!(tl.exemplars(LatencyPath::TlbReload).is_empty());
        assert_eq!(tl.captured(), 0);
        // The delta window survives: the next offer diffs against the
        // last noted counters, not against zero.
        let mut later = stats;
        later.evict_live = 9;
        tl.offer(
            LatencyPath::TlbReload,
            20,
            200,
            1,
            Vec::new(),
            Vec::new(),
            MmuSnapshot::default(),
            &later,
            &htab,
        );
        assert_eq!(tl.exemplars(LatencyPath::TlbReload)[0].d_stats.evict_live, 2);
    }

    #[test]
    fn htab_delta_saturates_across_resizes() {
        let then = HtabStats {
            searches: 100,
            ..Default::default()
        };
        let now = HtabStats {
            searches: 3, // fresh table after a rehash
            probes: 48,
            ..Default::default()
        };
        let d = htab_delta(&now, &then);
        assert_eq!(d.searches, 0, "resets clamp to zero, never panic");
        assert_eq!(d.probes, 48);
    }

    #[test]
    fn snapshot_zombies() {
        let m = MmuSnapshot {
            htab_valid: 10,
            htab_live: 7,
            ..Default::default()
        };
        assert_eq!(m.zombies(), 3);
    }

    #[test]
    #[should_panic(expected = "reservoir depth")]
    fn zero_top_n_is_rejected() {
        TailState::new(TailConfig {
            top_n: 0,
            ..TailConfig::auto()
        });
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_is_rejected() {
        TailConfig::fixed(0);
    }
}
