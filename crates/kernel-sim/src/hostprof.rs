//! Host-side profiler: where does the *simulator's* time and memory go?
//!
//! PRs 2–4 made the simulated kernel observable; this module points the same
//! discipline at the simulator itself, one level down. It answers two
//! questions the ROADMAP's "raw simulator speed: 10×" item needs answered
//! before anyone optimizes anything:
//!
//! 1. **Where does host time go?** Coarse RAII spans classify execution into
//!    eight [`HostPhase`]s (translate, cache, charge, trace-write, telemetry,
//!    checker, workload-driver, other). Span *counts* are exact (tallied in
//!    plain thread-local cells, flushed to the global counters at every
//!    [`snapshot`]/[`disarm`] and on thread exit); span *timestamps* are
//!    stride-sampled (every [`SAMPLE_STRIDE`]th entry per thread takes an
//!    `Instant` pair) so the measurement does not dominate the hot paths
//!    it measures. Sampled durations are inclusive of nested spans.
//!
//! 2. **Where do host allocations go?** A counting [`GlobalAlloc`]
//!    ([`CountingAlloc`], installed as the `#[global_allocator]` for every
//!    binary linking this crate) attributes every allocation and free to the
//!    current thread's phase, plus a live-bytes ledger whose high-water mark
//!    is a peak-RSS proxy. Counts are exact and — because the simulator is
//!    deterministic — reproducible, which is what lets `tools/host_gate.sh`
//!    gate *hard* on allocations per 1k simulated cycles while only
//!    soft-warning on wall-clock throughput.
//!
//! # Dormant by construction
//!
//! Everything is compiled in always but does nothing until [`arm`] is
//! called: dormant cost is one relaxed atomic load per hook (and per
//! allocation). The profiler never reads or writes simulator state, so armed
//! runs are *simulated-cycle- and counter-identical* to dormant ones — a
//! test in `crates/core/tests/hostprof.rs` pins that identity across a
//! matrix sample, the same way the tracer/PMU/telemetry/checker observers
//! prove theirs.
//!
//! # Layering
//!
//! `ppc-mmu` and `ppc-cache` sit below this crate, so they cannot call it.
//! Each exposes a `host` module with a registerable enter/exit
//! function-pointer pair; [`arm`] installs [`hook_enter`]/[`hook_exit`]
//! there. `ppc-machine` reports its charge phase through `ppc_mmu::host`.
//! Phase ids are plain `u8`s shared by convention; the tests below pin every
//! leaf-crate constant to the [`HostPhase`] discriminants.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Instant;

/// The host-phase taxonomy. Mirrors the sim-side [`Subsystem`] buckets but
/// coarser: these are *host-cost* centers, not kernel subsystems.
///
/// [`Subsystem`]: crate::prof::Subsystem
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum HostPhase {
    /// Hardware translation: BAT/TLB lookup, htab probe/insert/rehash
    /// (`ppc_mmu`).
    Translate = 0,
    /// Cache and memory-hierarchy accesses (`ppc_cache`).
    Cache = 1,
    /// Cycle charging on the machine ledger (`ppc_machine::Machine::charge`).
    Charge = 2,
    /// Trace-ring writes and latency recording (`kernel_sim::trace`).
    TraceWrite = 3,
    /// Epoch telemetry sampling (`kernel_sim::telemetry`).
    Telemetry = 4,
    /// Shadow-MM oracle and invariant checking (`kernel_sim::check`).
    Checker = 5,
    /// The workload driver: boot, syscall issue, harness bookkeeping
    /// (`repro hostbench` wraps each basket item in this).
    Driver = 6,
    /// Everything else, including all threads that never open a span.
    Other = 7,
}

/// Number of phases (array dimension for counters and snapshots).
pub const NUM_PHASES: usize = 8;

/// Every phase, in id order.
pub const ALL_PHASES: [HostPhase; NUM_PHASES] = [
    HostPhase::Translate,
    HostPhase::Cache,
    HostPhase::Charge,
    HostPhase::TraceWrite,
    HostPhase::Telemetry,
    HostPhase::Checker,
    HostPhase::Driver,
    HostPhase::Other,
];

impl HostPhase {
    /// Stable lowercase name (artifact keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            HostPhase::Translate => "translate",
            HostPhase::Cache => "cache",
            HostPhase::Charge => "charge",
            HostPhase::TraceWrite => "trace_write",
            HostPhase::Telemetry => "telemetry",
            HostPhase::Checker => "checker",
            HostPhase::Driver => "driver",
            HostPhase::Other => "other",
        }
    }

    /// Phase for a raw id; out-of-range ids clamp to [`HostPhase::Other`].
    pub fn from_id(id: u8) -> HostPhase {
        *ALL_PHASES.get(id as usize).unwrap_or(&HostPhase::Other)
    }
}

/// Every `SAMPLE_STRIDE`th span entry per thread takes an `Instant` pair.
/// 64 keeps timing overhead ~2% of span overhead while still collecting
/// thousands of samples per hostbench pass.
pub const SAMPLE_STRIDE: u64 = 64;

/// Sentinel `start_ns` meaning "this span is not timed".
const UNTIMED: u64 = u64::MAX;

static ARMED: AtomicBool = AtomicBool::new(false);

// Per-phase counters. `const` item so the array initializer is allowed.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);
static SPANS: [AtomicU64; NUM_PHASES] = [ZERO_U64; NUM_PHASES];
static ALLOCS: [AtomicU64; NUM_PHASES] = [ZERO_U64; NUM_PHASES];
static ALLOC_BYTES: [AtomicU64; NUM_PHASES] = [ZERO_U64; NUM_PHASES];
static FREES: [AtomicU64; NUM_PHASES] = [ZERO_U64; NUM_PHASES];
static FREE_BYTES: [AtomicU64; NUM_PHASES] = [ZERO_U64; NUM_PHASES];
static SAMPLED_NS: [AtomicU64; NUM_PHASES] = [ZERO_U64; NUM_PHASES];
static SAMPLES: [AtomicU64; NUM_PHASES] = [ZERO_U64; NUM_PHASES];

// Live-bytes ledger. Signed: frees of memory allocated before arming (or on
// other threads before their first span) legitimately drive it negative
// relative to the arm point.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    // Current phase of this thread. `const` init: accessing it never
    // allocates, which matters because the allocator hook reads it.
    static CUR_PHASE: Cell<u8> = const { Cell::new(HostPhase::Other as u8) };

    // Per-thread span tallies, flushed into the global [`SPANS`] atomics by
    // [`flush_tls_spans`] (every [`snapshot`]/[`disarm`] on this thread) and
    // by the drop guard when the thread exits. Hot spans pay two plain
    // cell bumps instead of a `lock xadd` on a shared cache line; counts
    // stay exact at every snapshot a thread takes of its own work, and
    // worker threads joined before a snapshot flush on exit, so their
    // counts are visible too (join is a happens-before edge).
    static TLS_SPANS: TlsSpans = const {
        TlsSpans {
            counts: [const { Cell::new(0) }; NUM_PHASES],
            entries: Cell::new(0),
        }
    };
}

/// Per-thread span state (see [`TLS_SPANS`]).
struct TlsSpans {
    /// Unflushed span entries per phase.
    counts: [Cell<u64>; NUM_PHASES],
    /// Monotone entry counter driving the per-thread sampling stride.
    entries: Cell<u64>,
}

impl Drop for TlsSpans {
    fn drop(&mut self) {
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.replace(0);
            if n > 0 {
                SPANS[i].fetch_add(n, Relaxed);
            }
        }
    }
}

/// Flushes the calling thread's span tallies into the global counters.
fn flush_tls_spans() {
    let _ = TLS_SPANS.try_with(|t| {
        for (i, c) in t.counts.iter().enumerate() {
            let n = c.replace(0);
            if n > 0 {
                SPANS[i].fetch_add(n, Relaxed);
            }
        }
    });
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Arms the profiler: installs the leaf-crate hooks (first call only) and
/// enables every guard and the allocation accounting.
pub fn arm() {
    // The EPOCH must exist before any hook can race to time a span.
    let _ = EPOCH.get_or_init(Instant::now);
    ppc_mmu::host::install(hook_enter, hook_exit);
    ppc_mmu::host::install_bulk(hook_bulk);
    ppc_cache::host::install(hook_enter, hook_exit);
    ppc_cache::host::install_bulk(hook_bulk_cache);
    ARMED.store(true, Relaxed);
}

/// Disarms the profiler. Counters keep their values until [`reset`].
pub fn disarm() {
    ARMED.store(false, Relaxed);
    ppc_mmu::host::disable();
    ppc_cache::host::disable();
    flush_tls_spans();
}

/// True while armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Relaxed)
}

/// Zeroes every counter and re-bases the live/peak ledger.
pub fn reset() {
    flush_tls_spans();
    for i in 0..NUM_PHASES {
        SPANS[i].store(0, Relaxed);
        ALLOCS[i].store(0, Relaxed);
        ALLOC_BYTES[i].store(0, Relaxed);
        FREES[i].store(0, Relaxed);
        FREE_BYTES[i].store(0, Relaxed);
        SAMPLED_NS[i].store(0, Relaxed);
        SAMPLES[i].store(0, Relaxed);
    }
    LIVE_BYTES.store(0, Relaxed);
    PEAK_LIVE_BYTES.store(0, Relaxed);
}

/// Re-bases the peak-live mark to the current live level, so the next
/// snapshot's peak measures the high-water mark *of the window*.
pub fn reset_peak() {
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Relaxed), Relaxed);
}

/// Span entry hook (also installed into the leaf crates). Returns
/// `(previous_phase, start_ns)`; `start_ns == u64::MAX` means untimed.
pub fn hook_enter(phase: u8) -> (u8, u64) {
    let idx = (phase as usize).min(NUM_PHASES - 1);
    let prev = CUR_PHASE.with(|c| c.replace(idx as u8));
    let n = TLS_SPANS.with(|t| {
        t.counts[idx].set(t.counts[idx].get() + 1);
        let n = t.entries.get();
        t.entries.set(n + 1);
        n
    });
    let start_ns = if n.is_multiple_of(SAMPLE_STRIDE) {
        now_ns()
    } else {
        UNTIMED
    };
    (prev, start_ns)
}

/// Span exit hook: restores the thread's phase, credits the sampled
/// duration (inclusive of nested spans) if this entry was timed.
pub fn hook_exit(prev: u8, phase: u8, start_ns: u64) {
    let idx = (phase as usize).min(NUM_PHASES - 1);
    if start_ns != UNTIMED {
        SAMPLED_NS[idx].fetch_add(now_ns().saturating_sub(start_ns), Relaxed);
        SAMPLES[idx].fetch_add(1, Relaxed);
    }
    CUR_PHASE.with(|c| c.set(prev));
}

/// Bulk span-count hook, installed into `ppc_mmu::host` for the fused fast
/// path: adds batched `(translate, cache, charge)` span counts in one call
/// each. Span counts are order-independent sums, so this is *exact* — the
/// fused path reports the same per-phase span totals the layered RAII guards
/// would have. Only the stride-sampled timing estimate (already masked out
/// of the deterministic artifact section) loses candidate sample points, and
/// the thread's current phase is left untouched: the fused path allocates
/// nothing, so there is nothing to attribute.
pub fn hook_bulk(translate: u64, cache: u64, charge: u64) {
    TLS_SPANS.with(|t| {
        let tr = &t.counts[HostPhase::Translate as usize];
        tr.set(tr.get() + translate);
        let ca = &t.counts[HostPhase::Cache as usize];
        ca.set(ca.get() + cache);
        let ch = &t.counts[HostPhase::Charge as usize];
        ch.set(ch.get() + charge);
    });
}

/// The cache-crate bulk hook (`ppc_cache::host::BulkFn`): span counts from
/// the fused page-zero and region-copy loops, batched but exact.
pub fn hook_bulk_cache(spans: u64) {
    TLS_SPANS.with(|t| {
        let ca = &t.counts[HostPhase::Cache as usize];
        ca.set(ca.get() + spans);
    });
}

/// RAII phase guard for code inside this crate (and above it). Identical
/// mechanics to the leaf-crate guards; one relaxed load when dormant.
pub struct HostSpan {
    prev: u8,
    phase: u8,
    start_ns: u64,
    active: bool,
}

/// Opens a span for `phase` if armed.
#[inline]
pub fn span(phase: HostPhase) -> HostSpan {
    if !ARMED.load(Relaxed) {
        return HostSpan {
            prev: 0,
            phase: 0,
            start_ns: 0,
            active: false,
        };
    }
    let (prev, start_ns) = hook_enter(phase as u8);
    HostSpan {
        prev,
        phase: phase as u8,
        start_ns,
        active: true,
    }
}

impl Drop for HostSpan {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            hook_exit(self.prev, self.phase, self.start_ns);
        }
    }
}

/// The counting global allocator: delegates to [`System`], attributing
/// every allocation/free to the calling thread's current phase while armed.
pub struct CountingAlloc;

fn note_alloc(size: usize) {
    let idx = CUR_PHASE
        .try_with(|c| c.get() as usize)
        .unwrap_or(HostPhase::Other as usize)
        .min(NUM_PHASES - 1);
    ALLOCS[idx].fetch_add(1, Relaxed);
    ALLOC_BYTES[idx].fetch_add(size as u64, Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Relaxed) + size as i64;
    PEAK_LIVE_BYTES.fetch_max(live, Relaxed);
}

fn note_free(size: usize) {
    let idx = CUR_PHASE
        .try_with(|c| c.get() as usize)
        .unwrap_or(HostPhase::Other as usize)
        .min(NUM_PHASES - 1);
    FREES[idx].fetch_add(1, Relaxed);
    FREE_BYTES[idx].fetch_add(size as u64, Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Relaxed);
}

// SAFETY: pure delegation to `System`; the accounting only touches atomics
// and a const-initialized (never-allocating) thread-local, so it cannot
// recurse into the allocator or observe torn state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && ARMED.load(Relaxed) {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if ARMED.load(Relaxed) {
            note_free(layout.size());
        }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && ARMED.load(Relaxed) {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && ARMED.load(Relaxed) {
            // Accounted as a free of the old block plus an allocation of the
            // new one, whatever the system allocator did underneath.
            note_free(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Exact per-phase counters (a snapshot row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseCounters {
    /// Span entries (exact).
    pub spans: u64,
    /// Allocations attributed to the phase (exact).
    pub allocs: u64,
    /// Bytes allocated (exact).
    pub alloc_bytes: u64,
    /// Frees attributed to the phase (exact).
    pub frees: u64,
    /// Bytes freed (exact).
    pub free_bytes: u64,
    /// Sum of sampled span durations, ns (timing — not deterministic).
    pub sampled_ns: u64,
    /// Number of timed spans behind `sampled_ns`.
    pub samples: u64,
}

impl PhaseCounters {
    fn delta(&self, base: &PhaseCounters) -> PhaseCounters {
        PhaseCounters {
            spans: self.spans - base.spans,
            allocs: self.allocs - base.allocs,
            alloc_bytes: self.alloc_bytes - base.alloc_bytes,
            frees: self.frees - base.frees,
            free_bytes: self.free_bytes - base.free_bytes,
            sampled_ns: self.sampled_ns - base.sampled_ns,
            samples: self.samples - base.samples,
        }
    }

    /// Estimated total ns in the phase: mean sampled duration × span count.
    /// Zero when nothing was sampled.
    pub fn est_total_ns(&self) -> u64 {
        self.sampled_ns
            .checked_div(self.samples)
            .map_or(0, |mean| mean.saturating_mul(self.spans))
    }
}

/// A full profiler snapshot. Subtract two with [`HostSnapshot::delta`] to
/// scope a measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSnapshot {
    /// Per-phase counters, indexed by phase id.
    pub phases: [PhaseCounters; NUM_PHASES],
    /// Net live bytes relative to the last [`reset`] (signed: see ledger
    /// comment).
    pub live_bytes: i64,
    /// High-water live-bytes mark since the last [`reset`]/[`reset_peak`].
    pub peak_live_bytes: i64,
}

/// Reads every counter (relaxed; exact when no other thread is mid-span).
/// Flushes the calling thread's span tallies first, so a thread snapshotting
/// around its own work always sees exact span counts; worker threads flush
/// on exit, so joined threads' counts are visible too.
pub fn snapshot() -> HostSnapshot {
    flush_tls_spans();
    let mut phases = [PhaseCounters::default(); NUM_PHASES];
    for (i, p) in phases.iter_mut().enumerate() {
        *p = PhaseCounters {
            spans: SPANS[i].load(Relaxed),
            allocs: ALLOCS[i].load(Relaxed),
            alloc_bytes: ALLOC_BYTES[i].load(Relaxed),
            frees: FREES[i].load(Relaxed),
            free_bytes: FREE_BYTES[i].load(Relaxed),
            sampled_ns: SAMPLED_NS[i].load(Relaxed),
            samples: SAMPLES[i].load(Relaxed),
        };
    }
    HostSnapshot {
        phases,
        live_bytes: LIVE_BYTES.load(Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Relaxed),
    }
}

impl HostSnapshot {
    /// Window between `base` (earlier) and `self` (later). Counters
    /// subtract; `live_bytes` becomes the window's net growth and
    /// `peak_live_bytes` the window's high-water mark above the base live
    /// level (call [`reset_peak`] at the window start for that to be tight).
    pub fn delta(&self, base: &HostSnapshot) -> HostSnapshot {
        let mut phases = [PhaseCounters::default(); NUM_PHASES];
        for (slot, (now, then)) in phases.iter_mut().zip(self.phases.iter().zip(&base.phases)) {
            *slot = now.delta(then);
        }
        HostSnapshot {
            phases,
            live_bytes: self.live_bytes - base.live_bytes,
            peak_live_bytes: self.peak_live_bytes - base.live_bytes,
        }
    }

    /// Total allocations across phases.
    pub fn total_allocs(&self) -> u64 {
        self.phases.iter().map(|p| p.allocs).sum()
    }

    /// Total bytes allocated across phases.
    pub fn total_alloc_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.alloc_bytes).sum()
    }

    /// Total span entries across phases.
    pub fn total_spans(&self) -> u64 {
        self.phases.iter().map(|p| p.spans).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Tests that arm the global profiler must not interleave.
    static ARM_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn phase_ids_agree_across_the_stack() {
        // The leaf crates re-declare their phase ids (they cannot see this
        // crate); this is the one place all the namespaces meet.
        assert_eq!(ppc_mmu::host::PHASE_TRANSLATE, HostPhase::Translate as u8);
        assert_eq!(ppc_mmu::host::PHASE_CHARGE, HostPhase::Charge as u8);
        assert_eq!(ppc_cache::host::PHASE_CACHE, HostPhase::Cache as u8);
        for (i, p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(*p as usize, i);
            assert_eq!(HostPhase::from_id(*p as u8), *p);
        }
        assert_eq!(HostPhase::from_id(200), HostPhase::Other);
    }

    #[test]
    fn phase_names_unique() {
        let mut names: Vec<&str> = ALL_PHASES.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_PHASES);
    }

    #[test]
    fn dormant_spans_and_allocs_count_nothing() {
        let _g = ARM_LOCK.lock().unwrap();
        disarm();
        reset();
        let before = snapshot();
        {
            let _s = span(HostPhase::Translate);
            let v: Vec<u64> = (0..100).collect();
            assert_eq!(v.len(), 100);
        }
        let after = snapshot();
        assert_eq!(before, after, "dormant profiler must observe nothing");
    }

    #[test]
    fn armed_spans_attribute_allocations_to_the_phase() {
        let _g = ARM_LOCK.lock().unwrap();
        arm();
        reset();
        let before = snapshot();
        {
            let _s = span(HostPhase::Driver);
            let v: Vec<u64> = Vec::with_capacity(1000);
            std::hint::black_box(&v);
        }
        let after = snapshot();
        disarm();
        let d = after.delta(&before);
        let drv = d.phases[HostPhase::Driver as usize];
        assert_eq!(drv.spans, 1);
        assert!(drv.allocs >= 1, "the Vec allocation lands in Driver");
        assert!(drv.alloc_bytes >= 8000);
    }

    #[test]
    fn spans_nest_and_restore_the_previous_phase() {
        let _g = ARM_LOCK.lock().unwrap();
        arm();
        reset();
        let before = snapshot();
        {
            let _outer = span(HostPhase::Driver);
            {
                let _inner = span(HostPhase::Translate);
                let v = vec![0u8; 64];
                std::hint::black_box(&v);
            }
            let v = vec![0u8; 64];
            std::hint::black_box(&v);
        }
        let after = snapshot();
        disarm();
        let d = after.delta(&before);
        // Driver counts are exact: only these tests (serialized by the arm
        // lock) ever open Driver spans in this process. Translate counts are
        // `>=`: while armed, a concurrently running simulation test in this
        // binary legitimately reports its own translate spans/allocs.
        assert_eq!(d.phases[HostPhase::Driver as usize].spans, 1);
        assert!(d.phases[HostPhase::Translate as usize].spans >= 1);
        assert!(d.phases[HostPhase::Translate as usize].allocs >= 1);
        assert!(
            d.phases[HostPhase::Driver as usize].allocs >= 1,
            "after the inner span drops, allocations credit Driver again"
        );
    }

    #[test]
    fn leaf_crate_hooks_report_here_when_armed() {
        let _g = ARM_LOCK.lock().unwrap();
        arm();
        reset();
        let before = snapshot();
        {
            let _s = ppc_mmu::host::span(ppc_mmu::host::PHASE_TRANSLATE);
        }
        {
            let _s = ppc_cache::host::span(ppc_cache::host::PHASE_CACHE);
        }
        let after = snapshot();
        disarm();
        let d = after.delta(&before);
        // `>=`, not `==`: while armed, concurrently running simulation tests
        // in this binary also report into these phases. What this test pins
        // is the wiring — each leaf-crate guard reached this module at all.
        assert!(d.phases[HostPhase::Translate as usize].spans >= 1);
        assert!(d.phases[HostPhase::Cache as usize].spans >= 1);
    }

    #[test]
    fn bulk_hook_adds_exact_span_counts() {
        let _g = ARM_LOCK.lock().unwrap();
        disarm();
        reset();
        // Dormant, the leaf-crate entry point is a no-op...
        let before = snapshot();
        ppc_mmu::host::bulk(3, 2, 1);
        assert_eq!(snapshot(), before);
        // ...and the installed hook adds exact counts. Tested disarmed (and
        // under the arm lock) so no concurrent test's simulation can move
        // these counters mid-assertion.
        hook_bulk(3, 2, 1);
        let d = snapshot().delta(&before);
        assert_eq!(d.phases[HostPhase::Translate as usize].spans, 3);
        assert_eq!(d.phases[HostPhase::Cache as usize].spans, 2);
        assert_eq!(d.phases[HostPhase::Charge as usize].spans, 1);
    }

    #[test]
    fn peak_live_tracks_a_big_transient() {
        let _g = ARM_LOCK.lock().unwrap();
        arm();
        reset();
        reset_peak();
        let before = snapshot();
        {
            let v = vec![0u8; 1 << 20];
            std::hint::black_box(&v);
        }
        let after = snapshot();
        disarm();
        let d = after.delta(&before);
        assert!(
            d.peak_live_bytes >= (1 << 20),
            "peak {} must cover the 1 MiB transient",
            d.peak_live_bytes
        );
        assert!(d.live_bytes < (1 << 20), "the transient was freed");
    }

    #[test]
    fn est_total_ns_scales_mean_by_span_count() {
        let c = PhaseCounters {
            spans: 100,
            sampled_ns: 5_000,
            samples: 10,
            ..Default::default()
        };
        assert_eq!(c.est_total_ns(), 50_000);
        assert_eq!(PhaseCounters::default().est_total_ns(), 0);
    }
}
