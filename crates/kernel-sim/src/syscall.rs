//! Syscall entry/exit and the memory-management syscalls.

use ppc_mmu::addr::{EffectiveAddress, PAGE_SIZE};

use crate::kernel::Kernel;
use crate::layout::KernelPath;
use crate::prof::Subsystem;
use crate::task::{Vma, VmaKind};
use crate::trace::TraceEvent;

impl Kernel {
    /// Syscall entry: exception entry, state save (style-dependent), and the
    /// dispatch half of the syscall path. Microkernel models add IPC hops.
    pub fn syscall_entry(&mut self) {
        self.stats.syscalls += 1;
        // The span covers only the entry half (and `syscall_exit` the exit
        // half), not the syscall body — bodies are attributed to their own
        // subsystems, and a body that dies on a fatal signal never reaches
        // `syscall_exit`, so a body-wide span could never be balanced.
        self.t_event(|| TraceEvent::Syscall);
        self.t_enter(Subsystem::Syscall);
        let costs = self.machine.cfg.costs;
        self.machine.charge(costs.exception_entry);
        let insns = self.paths.syscall / 2;
        self.run_kernel_path(KernelPath::SyscallEntry, insns);
        // File-descriptor table / credentials live in slab memory.
        if let Some(cur) = self.current {
            let pid = self.tasks[cur].pid;
            self.kmeta_ref(0x8000 + pid * 7, false);
        }
        // Each IPC hop is another kernel crossing: entry + exit + a short
        // message-dispatch path (the Mach syscall-emulation round trip).
        for _ in 0..self.paths.ipc_hops {
            self.machine
                .charge(costs.exception_entry + costs.exception_exit);
            let insns = self.paths.syscall / 2;
            self.run_kernel_path(KernelPath::SyscallEntry, insns);
        }
        self.t_exit();
    }

    /// Syscall exit: the return half of the path plus exception exit.
    pub fn syscall_exit(&mut self) {
        self.t_enter(Subsystem::Syscall);
        let insns = self.paths.syscall / 2;
        self.run_kernel_path(KernelPath::SyscallEntry, insns);
        self.machine.charge(self.machine.cfg.costs.exception_exit);
        self.t_exit();
    }

    /// The null syscall (`getpid()`), LmBench's "Null syscall" row.
    pub fn sys_null(&mut self) {
        self.syscall_entry();
        // Read current->pid.
        let ts = self.cur().task_struct_pa();
        self.kdata_ref(ts, false);
        self.syscall_exit();
    }

    /// `mmap()`: maps `len` bytes (anonymous if `file` is `None`) into the
    /// current task at a fresh address. Returns the chosen address.
    pub fn sys_mmap(&mut self, file: Option<usize>, len: u32) -> u32 {
        assert!(
            len.is_multiple_of(PAGE_SIZE),
            "mmap length must be page-aligned"
        );
        self.syscall_entry();
        let insns = self.paths.mm_op;
        self.run_kernel_path(KernelPath::Mm, insns);
        let cur = self.current.expect("mmap with no current task");
        // Pick the address after the highest existing VMA below the stack.
        let addr = self.tasks[cur]
            .vmas
            .iter()
            .map(|v| v.end)
            .filter(|&e| e < crate::sched::STACK_BASE)
            .max()
            .unwrap_or(0x2000_0000)
            .max(0x2000_0000);
        let kind = match file {
            Some(f) => VmaKind::File { file: f, offset: 0 },
            None => VmaKind::Anon,
        };
        self.tasks[cur].insert_vma(Vma {
            start: addr,
            end: addr + len,
            kind,
        });
        // mmap itself is O(1) in pages: it only creates the VMA. Pages are
        // populated lazily by faults.
        self.syscall_exit();
        addr
    }

    /// `munmap()`: removes the mapping, tears down PTEs, and flushes the
    /// range — the operation whose latency the paper's §7 drives from
    /// 3240 µs down to 41 µs.
    pub fn sys_munmap(&mut self, start: u32, len: u32) {
        assert!(len.is_multiple_of(PAGE_SIZE) && start.is_multiple_of(PAGE_SIZE));
        self.syscall_entry();
        let insns = self.paths.mm_op;
        self.run_kernel_path(KernelPath::Mm, insns);
        let cur = self.current.expect("munmap with no current task");
        self.tasks[cur].remove_vmas_in(start, start + len);
        self.unmap_range(cur, start, start + len);
        // The TLB/hash-table flush — the §7 battleground.
        self.flush_range(cur, start, start + len);
        self.syscall_exit();
    }

    /// Tears down the populated PTEs of `[start, end)` in task `idx`,
    /// releasing anonymous frames (copy-on-write aware). Like Linux's
    /// `zap_page_range`, the walk skips a whole second-level table with a
    /// single PGD-entry read when nothing was ever mapped there.
    pub(crate) fn unmap_range(&mut self, idx: usize, start: u32, end: u32) {
        let pt = self.tasks[idx].pt;
        let cached = self.cfg.linux_pt_cached;
        let mut freed = Vec::new();
        let mut ea = start;
        while ea < end {
            let chunk_end = ((ea | 0x3f_ffff) + 1).min(end); // next 4 MiB boundary
            let pgd_entry_pa = pt.pgd_entry_pa(EffectiveAddress(ea));
            let c = self.machine.mem.data_read(pgd_entry_pa, cached);
            self.machine.charge(c + 2);
            let pgd_entry = self.phys.read_u32(pgd_entry_pa);
            if pgd_entry & crate::linuxpt::PTE_PRESENT == 0 {
                ea = chunk_end;
                continue;
            }
            while ea < chunk_end {
                let (walk, old) = pt.unmap(&mut self.phys, EffectiveAddress(ea));
                if let Some(pte_pa) = walk.pte_entry_pa {
                    let c = self.machine.mem.data_write(pte_pa, cached);
                    self.machine.charge(c);
                }
                if let Some(old_pte) = old {
                    // Anonymous frames (owned, listed in task.frames) go
                    // back to the allocator; page-cache frames stay in the
                    // cache but lose their mapping pin.
                    let task = &mut self.tasks[idx];
                    if let Some(pos) = task.frames.iter().position(|&(a, _)| a == ea) {
                        let (_, pa) = task.frames.swap_remove(pos);
                        freed.push(pa);
                    } else {
                        self.file_map_unref(old_pte.pfn() << 12);
                    }
                    self.machine.charge(self.paths.mm_per_page as u64);
                }
                ea += PAGE_SIZE;
            }
        }
        for pa in freed {
            self.release_user_frame(pa, true);
        }
    }

    /// Drops one mapping pin on a page-cache frame; when the count reaches
    /// zero the frame becomes evictable under memory pressure again.
    pub(crate) fn file_map_unref(&mut self, pa: u32) {
        if let Some(count) = self.file_map_refs.get_mut(&pa) {
            *count -= 1;
            if *count == 0 {
                self.file_map_refs.remove(&pa);
            }
        }
    }
}
