//! Integration tests for tail-latency forensics: the zero-overhead
//! guarantee (tail-armed vs. plain traced runs), capture contents, and the
//! exact-p99 relationship to the bucket bound.

use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

use crate::kconfig::KernelConfig;
use crate::kernel::Kernel;
use crate::sched::USER_BASE;
use crate::tail::TailConfig;
use crate::trace::LatencyPath;

/// The same every-path workload the trace tests use: faults, reloads,
/// flushes, signals, context switches, fork/COW, reclaim and idle.
fn workload(k: &mut Kernel) {
    let a = k.spawn_process(16).unwrap();
    let b = k.spawn_process(8).unwrap();
    k.switch_to(a);
    k.user_write(USER_BASE, 8 * PAGE_SIZE).unwrap();
    k.sys_signal_install();
    k.signal_roundtrip(USER_BASE).unwrap();
    let child = k.sys_fork().unwrap();
    k.switch_to(child);
    k.user_write(USER_BASE, 2 * PAGE_SIZE).unwrap();
    k.exit_current();
    k.switch_to(b);
    k.user_read(USER_BASE, 4 * PAGE_SIZE).unwrap();
    let m = k.sys_mmap(None, 32 * PAGE_SIZE);
    k.prefault(m, 32).unwrap();
    k.sys_munmap(m, 32 * PAGE_SIZE);
    k.run_idle(40_000);
    k.sys_null();
}

/// A traced run with tail forensics optionally armed.
fn run_traced(machine: MachineConfig, mut cfg: KernelConfig, tail: Option<TailConfig>) -> Kernel {
    cfg.trace = true;
    cfg.tail = tail;
    let mut k = Kernel::boot(machine, cfg);
    workload(&mut k);
    k
}

#[test]
fn tail_armed_run_is_cycle_identical_to_plain_traced() {
    let plain = run_traced(MachineConfig::ppc604_185(), KernelConfig::optimized(), None);
    let armed = run_traced(
        MachineConfig::ppc604_185(),
        KernelConfig::optimized(),
        Some(TailConfig::auto()),
    );
    assert_eq!(
        armed.machine.cycles, plain.machine.cycles,
        "tail capture must never charge cycles"
    );
    assert_eq!(armed.stats, plain.stats, "and never touch a counter");
    let (_, snap_armed) = armed.stats_snapshot();
    let (_, snap_plain) = plain.stats_snapshot();
    assert_eq!(snap_armed, snap_plain, "down to the cache/TLB monitors");
    // Capture also never perturbs the trace stream itself.
    let ra = &armed.tracer.as_ref().unwrap().ring;
    let rp = &plain.tracer.as_ref().unwrap().ring;
    assert_eq!(ra.total_pushed(), rp.total_pushed());
    assert_eq!(ra.dropped(), rp.dropped());
    assert!(ra.iter().zip(rp.iter()).all(|(a, b)| a == b));
    // And it did actually capture something.
    assert!(armed.tail.as_ref().unwrap().captured() > 0);
}

#[test]
fn tail_identity_holds_over_a_matrix_sample() {
    // A sample of the benchmark matrix's axes: two machines (one 603, one
    // 604) under the unoptimized and optimized kernels.
    let machines = [MachineConfig::ppc603_133(), MachineConfig::ppc604_185()];
    let configs = [KernelConfig::unoptimized(), KernelConfig::optimized()];
    for machine in machines {
        for cfg in configs {
            let plain = run_traced(machine, cfg, None);
            let armed = run_traced(machine, cfg, Some(TailConfig::auto()));
            assert_eq!(
                armed.machine.cycles,
                plain.machine.cycles,
                "cycle identity broken for {}",
                cfg.summary()
            );
            assert_eq!(armed.stats, plain.stats, "counters for {}", cfg.summary());
            let (_, sa) = armed.stats_snapshot();
            let (_, sp) = plain.stats_snapshot();
            assert_eq!(sa, sp, "monitor snapshot for {}", cfg.summary());
        }
    }
}

#[test]
fn same_seed_runs_capture_identical_exemplars() {
    let a = run_traced(
        MachineConfig::ppc604_185(),
        KernelConfig::optimized(),
        Some(TailConfig::auto()),
    );
    let b = run_traced(
        MachineConfig::ppc604_185(),
        KernelConfig::optimized(),
        Some(TailConfig::auto()),
    );
    let (ta, tb) = (a.tail.as_ref().unwrap(), b.tail.as_ref().unwrap());
    assert_eq!(ta.captured(), tb.captured());
    for path in LatencyPath::ALL {
        assert_eq!(ta.exemplars(path), tb.exemplars(path), "{path:?}");
    }
}

#[test]
fn exemplars_carry_their_causal_context() {
    let k = run_traced(
        MachineConfig::ppc604_185(),
        KernelConfig::optimized(),
        Some(TailConfig::auto()),
    );
    let tl = k.tail.as_ref().unwrap();
    let t = k.tracer.as_ref().unwrap();
    let mut total = 0;
    for path in LatencyPath::ALL {
        let ex = tl.exemplars(path);
        total += ex.len();
        // Slowest first; the overall maximum always arms in auto mode, so
        // the top exemplar is the histogram's exact max.
        if let Some(top) = ex.first() {
            assert_eq!(top.latency, t.latency(path).max(), "{path:?}");
        }
        for e in ex {
            assert_eq!(e.path, path);
            assert!(e.latency > 0);
            assert!(!e.stack.is_empty(), "stack still holds the exiting span");
            assert!(!e.window.is_empty(), "causal window must not be empty");
            assert!(e.window.len() <= tl.cfg.window);
            assert!(e.window.windows(2).all(|w| w[0].cycle <= w[1].cycle));
            assert!(e.cycle >= e.latency, "completion cycle bounds the latency");
            assert!(e.mmu.htab_groups > 0);
        }
        let lats: Vec<u64> = ex.iter().map(|e| e.latency).collect();
        let mut sorted = lats.clone();
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(lats, sorted, "{path:?}: reservoir must be slowest-first");
    }
    assert!(total > 0, "the workload must produce tail exemplars");
}

#[test]
fn fixed_threshold_captures_only_at_or_above() {
    let k = run_traced(
        MachineConfig::ppc604_185(),
        KernelConfig::optimized(),
        Some(TailConfig::fixed(200)),
    );
    let tl = k.tail.as_ref().unwrap();
    for path in LatencyPath::ALL {
        for e in tl.exemplars(path) {
            assert!(e.latency >= 200, "{path:?} captured {} < threshold", e.latency);
        }
    }
}

#[test]
fn exact_p99_is_bounded_by_the_bucket_p99() {
    // The histogram's p99 is a bucket upper bound; the exemplar reservoir
    // holds the exact slowest samples. With auto arming, every sample in
    // the top bucket is captured, so whenever the 1% tail fits in the
    // reservoir the exact p99 is among the exemplars — and it can never
    // exceed the bucket bound.
    let k = run_traced(
        MachineConfig::ppc604_185(),
        KernelConfig::optimized(),
        Some(TailConfig::auto()),
    );
    let tl = k.tail.as_ref().unwrap();
    let t = k.tracer.as_ref().unwrap();
    for path in LatencyPath::ALL {
        let h = t.latency(path);
        let bound = h.percentile(99);
        for e in tl.exemplars(path) {
            assert!(e.latency <= h.max());
        }
        if let Some(top) = tl.exemplars(path).first() {
            assert!(top.latency <= bound.max(h.max()), "{path:?}");
        }
    }
}
