//! TLB and hash-table flush strategies (paper §7).

use ppc_machine::Cycles;
use ppc_mmu::addr::{EffectiveAddress, Vsid, PAGE_SIZE};

use crate::kernel::Kernel;
use crate::layout::is_user;
use crate::prof::Subsystem;
use crate::trace::TraceEvent;

impl Kernel {
    /// The VSID a user effective address translates under for task `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `ea` is not a user address.
    pub fn user_vsid(&self, idx: usize, ea: EffectiveAddress) -> Vsid {
        assert!(is_user(ea), "user_vsid on kernel address {:#x}", ea.0);
        self.tasks[idx].vsids[ea.sr_index()]
    }

    /// Flushes the translations for `[start, end)` of task `idx`.
    ///
    /// Policy (paper §7):
    /// * lazy flushing on and the range exceeds the cutoff → retire the
    ///   whole context ("a simple resetting of the VSIDs will do");
    /// * otherwise → per-page hash-table search-and-invalidate (up to 16
    ///   memory references each) plus a `tlbie`.
    pub fn flush_range(&mut self, idx: usize, start: u32, end: u32) {
        let pages = (end - start) / PAGE_SIZE;
        let over_cutoff = match self.cfg.flush_cutoff_pages {
            Some(c) => pages > c,
            None => false,
        };
        if self.cfg.lazy_flush && over_cutoff {
            self.flush_context(idx);
            return;
        }
        let mut ea = start;
        while ea < end {
            self.flush_one_page(idx, EffectiveAddress(ea));
            ea += PAGE_SIZE;
        }
    }

    /// Flushes a single page's translation: hash-table search-and-invalidate
    /// plus `tlbie`. This is the expensive primitive the lazy scheme avoids.
    pub fn flush_one_page(&mut self, idx: usize, ea: EffectiveAddress) {
        self.stats.flushed_pages += 1;
        self.t_event(|| TraceEvent::Flush { pages: 1 });
        self.t_enter(Subsystem::Flush);
        // The per-page flush C path (`flush_hash_page` and friends).
        let insns = self.paths.flush_per_page;
        self.run_kernel_path(crate::layout::KernelPath::Mm, insns);
        let page_index = ea.page_index();
        // Legality ends here, whether or not a hash table is in use.
        if self.check.is_some() {
            let vsid = self.user_vsid(idx, ea);
            self.check_note_flush_page(vsid, page_index);
        }
        if self.uses_htab() {
            let vsid = self.user_vsid(idx, ea);
            let cached = self.cfg.htab_cached;
            let mut cost: Cycles = 0;
            let machine = &mut self.machine;
            let (_, cleared) = self.htab.invalidate_with(vsid, page_index, |pa| {
                cost += machine.mem.data_read(pa, cached);
            });
            if cleared {
                // Write the cleared valid bit back.
                cost += 2;
            }
            self.machine.charge(cost);
        }
        // tlbie + sync.
        self.machine.mmu.tlbie(page_index);
        self.machine.charge(4);
        self.t_exit();
    }

    /// Retires task `idx`'s whole translation context.
    ///
    /// * Lazy (optimized): bump to fresh VSIDs; the old entries become
    ///   zombies for the idle task to reclaim. O(1).
    /// * Eager (original): scan the entire hash table invalidating the
    ///   task's entries and flush both TLBs. O(size of hash table).
    pub fn flush_context(&mut self, idx: usize) {
        self.stats.context_bumps += 1;
        self.t_event(|| TraceEvent::ContextBump);
        self.t_enter(Subsystem::Flush);
        // The oracle retires the context's legality up front, covering both
        // branches — and, crucially, *before* the deliberate-bug guard below:
        // when the bug is armed the kernel skips the VSID bump but the oracle
        // still retires, so the very next access through a stale entry trips
        // the checker.
        {
            let old = self.tasks[idx].vsids;
            self.check_note_retire(&old);
        }
        if self.cfg.lazy_flush {
            // Fresh zombies exist: allow the idle reclaim one full sweep.
            self.reclaim_scan_credit = self.htab.hash().num_groups();
            if !self.buggy_skip_vsid_flush {
                let old = self.tasks[idx].vsids;
                self.vsids.retire(&old);
                let pid = self.tasks[idx].pid;
                self.tasks[idx].vsids = self.vsids.alloc_context(pid);
                // Reload the segment registers if this is the running task.
                if self.current == Some(idx) {
                    let vsids = self.tasks[idx].vsids;
                    for (sr, v) in vsids.iter().enumerate() {
                        self.machine.mmu.segments.set(sr, *v);
                    }
                    self.machine.charge(16 + 3);
                }
            }
            // The increment of the context counter itself.
            self.machine.charge(8);
        } else {
            let old = self.tasks[idx].vsids;
            let old_set: std::collections::HashSet<u32> = old.iter().map(|v| v.raw()).collect();
            // Under PID-derived VSIDs, "retiring" leaves liveness unchanged
            // (the same VSIDs come right back); the cost is the scan.
            self.vsids.retire(&old);
            let pid = self.tasks[idx].pid;
            self.tasks[idx].vsids = self.vsids.alloc_context(pid);
            if self.uses_htab() {
                let (scanned, _cleared) = self
                    .htab
                    .invalidate_matching(|v| old_set.contains(&v.raw()));
                // The scan reads every slot; charge it as a sequential sweep
                // through the data cache.
                let cached = self.cfg.htab_cached;
                let mut cost: Cycles = 0;
                for g in 0..scanned / 8 {
                    // One read per PTE; slots share cache lines (4 per line).
                    for s in 0..8 {
                        cost += self
                            .machine
                            .mem
                            .data_read(self.htab.slot_pa(g, s as usize), cached);
                    }
                }
                self.machine.charge(cost);
            }
            self.machine.mmu.flush_tlbs();
            self.machine.charge(32);
        }
        self.t_exit();
    }
}
