//! Kernel-level event counters.

/// Counters the kernel maintains about its own MMU activity (the software
/// side of the paper's §4 measurement infrastructure).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// TLB reloads performed (software handler or hardware walk completion).
    pub tlb_reloads: u64,
    /// Reloads satisfied by the hash table.
    pub htab_hits: u64,
    /// Reloads that missed the hash table and walked the Linux page tables.
    pub htab_misses: u64,
    /// Reloads of kernel-space translations (the OS TLB footprint, §5.1).
    pub kernel_reloads: u64,
    /// Real page faults (demand-zero or file-backed population).
    pub page_faults: u64,
    /// Protection faults that broke copy-on-write sharing.
    pub cow_faults: u64,
    /// Hash-table inserts that displaced a *live* entry (a real eviction).
    pub evict_live: u64,
    /// Hash-table inserts that displaced a *zombie* entry.
    pub evict_zombie: u64,
    /// Context switches.
    pub ctx_switches: u64,
    /// Syscalls serviced.
    pub syscalls: u64,
    /// Pages flushed one at a time (hash-table search + `tlbie` each).
    pub flushed_pages: u64,
    /// Whole-context (VSID-bump) lazy flushes.
    pub context_bumps: u64,
    /// Cycles donated to the idle task.
    pub idle_cycles: u64,
    /// Pages cleared by the idle task.
    pub idle_pages_cleared: u64,
    /// PTEG groups scanned by the idle reclaim.
    pub idle_groups_scanned: u64,
    /// Processes created.
    pub processes_spawned: u64,
    /// Segfaults (accesses outside any VMA).
    pub segfaults: u64,
    /// Fatal SIGSEGVs delivered (task killed).
    pub sigsegvs: u64,
    /// Fatal SIGBUSes delivered (file mapping past EOF).
    pub sigbus: u64,
    /// Tasks reaped by the OOM killer.
    pub oom_kills: u64,
    /// Page-cache pages evicted by the memory-pressure path.
    pub reclaimed_pages: u64,
    /// Faults injected by the seeded [`crate::inject::FaultInjector`].
    pub injected_faults: u64,
    /// Hash-table inserts that found both candidate PTEGs full (includes
    /// injected overflows).
    pub htab_overflows: u64,
}

impl KernelStats {
    /// Hash-table hit rate on TLB misses that consulted it, in `[0, 1]`.
    pub fn htab_hit_rate(&self) -> f64 {
        let total = self.htab_hits + self.htab_misses;
        if total == 0 {
            1.0
        } else {
            self.htab_hits as f64 / total as f64
        }
    }

    /// Fraction of hash-table inserts that displaced a live entry — the
    /// paper's §7 evict ratio (">90%" before idle reclaim, "30%" after).
    pub fn evict_ratio(&self, total_inserts: u64) -> f64 {
        if total_inserts == 0 {
            0.0
        } else {
            self.evict_live as f64 / total_inserts as f64
        }
    }

    /// Difference `self - earlier` for a measurement window.
    pub fn delta(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            tlb_reloads: self.tlb_reloads - earlier.tlb_reloads,
            htab_hits: self.htab_hits - earlier.htab_hits,
            htab_misses: self.htab_misses - earlier.htab_misses,
            kernel_reloads: self.kernel_reloads - earlier.kernel_reloads,
            page_faults: self.page_faults - earlier.page_faults,
            cow_faults: self.cow_faults - earlier.cow_faults,
            evict_live: self.evict_live - earlier.evict_live,
            evict_zombie: self.evict_zombie - earlier.evict_zombie,
            ctx_switches: self.ctx_switches - earlier.ctx_switches,
            syscalls: self.syscalls - earlier.syscalls,
            flushed_pages: self.flushed_pages - earlier.flushed_pages,
            context_bumps: self.context_bumps - earlier.context_bumps,
            idle_cycles: self.idle_cycles - earlier.idle_cycles,
            idle_pages_cleared: self.idle_pages_cleared - earlier.idle_pages_cleared,
            idle_groups_scanned: self.idle_groups_scanned - earlier.idle_groups_scanned,
            processes_spawned: self.processes_spawned - earlier.processes_spawned,
            segfaults: self.segfaults - earlier.segfaults,
            sigsegvs: self.sigsegvs - earlier.sigsegvs,
            sigbus: self.sigbus - earlier.sigbus,
            oom_kills: self.oom_kills - earlier.oom_kills,
            reclaimed_pages: self.reclaimed_pages - earlier.reclaimed_pages,
            injected_faults: self.injected_faults - earlier.injected_faults,
            htab_overflows: self.htab_overflows - earlier.htab_overflows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate() {
        let s = KernelStats {
            htab_hits: 9,
            htab_misses: 1,
            ..Default::default()
        };
        assert!((s.htab_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(KernelStats::default().htab_hit_rate(), 1.0);
    }

    #[test]
    fn evict_ratio() {
        let s = KernelStats {
            evict_live: 3,
            ..Default::default()
        };
        assert!((s.evict_ratio(10) - 0.3).abs() < 1e-12);
        assert_eq!(s.evict_ratio(0), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let a = KernelStats {
            syscalls: 5,
            tlb_reloads: 7,
            ..Default::default()
        };
        let b = KernelStats {
            syscalls: 9,
            tlb_reloads: 20,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.syscalls, 4);
        assert_eq!(d.tlb_reloads, 13);
    }
}
