//! Kernel-level event counters.
//!
//! The counter fields are declared once, in [`kernel_stats!`], which
//! generates the struct, the window-difference [`KernelStats::diff`], and the
//! name/value iterator [`KernelStats::as_named_pairs`] — so a counter added
//! to the struct automatically appears in every diff, table, and
//! machine-readable artifact, and none of them can drift out of sync.

/// Declares the [`KernelStats`] counters exactly once and derives everything
/// that must enumerate them.
macro_rules! kernel_stats {
    ($($(#[$doc:meta])* $name:ident,)+) => {
        /// Counters the kernel maintains about its own MMU activity (the
        /// software side of the paper's §4 measurement infrastructure).
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct KernelStats {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl KernelStats {
            /// Every counter name, in declaration order — the single source
            /// of truth for exporters and tables.
            pub const NAMES: &'static [&'static str] = &[$(stringify!($name),)+];

            /// Difference `self - earlier` for a measurement window.
            ///
            /// # Panics
            ///
            /// Panics (in debug builds) if any counter of `earlier` exceeds
            /// `self` — windows must be taken from the same monotonically
            /// counting kernel.
            pub fn diff(&self, earlier: &KernelStats) -> KernelStats {
                KernelStats {
                    $($name: self.$name - earlier.$name,)+
                }
            }

            /// Iterates `(name, value)` over every counter, in declaration
            /// order.
            pub fn as_named_pairs(&self) -> impl Iterator<Item = (&'static str, u64)> {
                [$((stringify!($name), self.$name),)+].into_iter()
            }
        }
    };
}

kernel_stats! {
    /// TLB reloads performed (software handler or hardware walk completion).
    tlb_reloads,
    /// Reloads satisfied by the hash table.
    htab_hits,
    /// Reloads that missed the hash table and walked the Linux page tables.
    htab_misses,
    /// Reloads of kernel-space translations (the OS TLB footprint, §5.1).
    kernel_reloads,
    /// Real page faults (demand-zero or file-backed population).
    page_faults,
    /// Protection faults that broke copy-on-write sharing.
    cow_faults,
    /// Hash-table inserts that displaced a *live* entry (a real eviction).
    evict_live,
    /// Hash-table inserts that displaced a *zombie* entry.
    evict_zombie,
    /// Context switches.
    ctx_switches,
    /// Syscalls serviced.
    syscalls,
    /// Pages flushed one at a time (hash-table search + `tlbie` each).
    flushed_pages,
    /// Whole-context (VSID-bump) lazy flushes.
    context_bumps,
    /// Cycles donated to the idle task.
    idle_cycles,
    /// Pages cleared by the idle task.
    idle_pages_cleared,
    /// PTEG groups scanned by the idle reclaim.
    idle_groups_scanned,
    /// Processes created.
    processes_spawned,
    /// Segfaults (accesses outside any VMA).
    segfaults,
    /// Fatal SIGSEGVs delivered (task killed).
    sigsegvs,
    /// Fatal SIGBUSes delivered (file mapping past EOF).
    sigbus,
    /// Tasks reaped by the OOM killer.
    oom_kills,
    /// Page-cache pages evicted by the memory-pressure path.
    reclaimed_pages,
    /// Faults injected by the seeded [`crate::inject::FaultInjector`].
    injected_faults,
    /// Hash-table inserts that found both candidate PTEGs full (includes
    /// injected overflows).
    htab_overflows,
    /// Performance-monitor (sampling) interrupts delivered.
    pmu_interrupts,
    /// Tuning epochs the mmtune controller evaluated.
    mmtune_epochs,
    /// Retune decisions applied (any knob).
    mmtune_retunes,
    /// Hash-table resize/rehash retunes (a subset of `mmtune_retunes`).
    mmtune_htab_resizes,
}

impl KernelStats {
    /// Hash-table hit rate on TLB misses that consulted it, in `[0, 1]`.
    pub fn htab_hit_rate(&self) -> f64 {
        let total = self.htab_hits + self.htab_misses;
        if total == 0 {
            1.0
        } else {
            self.htab_hits as f64 / total as f64
        }
    }

    /// Fraction of hash-table inserts that displaced a live entry — the
    /// paper's §7 evict ratio (">90%" before idle reclaim, "30%" after).
    pub fn evict_ratio(&self, total_inserts: u64) -> f64 {
        if total_inserts == 0 {
            0.0
        } else {
            self.evict_live as f64 / total_inserts as f64
        }
    }

    /// Difference `self - earlier` for a measurement window (alias of
    /// [`KernelStats::diff`], kept for existing call sites).
    pub fn delta(&self, earlier: &KernelStats) -> KernelStats {
        self.diff(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate() {
        let s = KernelStats {
            htab_hits: 9,
            htab_misses: 1,
            ..Default::default()
        };
        assert!((s.htab_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(KernelStats::default().htab_hit_rate(), 1.0);
    }

    #[test]
    fn evict_ratio() {
        let s = KernelStats {
            evict_live: 3,
            ..Default::default()
        };
        assert!((s.evict_ratio(10) - 0.3).abs() < 1e-12);
        assert_eq!(s.evict_ratio(0), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let a = KernelStats {
            syscalls: 5,
            tlb_reloads: 7,
            ..Default::default()
        };
        let b = KernelStats {
            syscalls: 9,
            tlb_reloads: 20,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.syscalls, 4);
        assert_eq!(d.tlb_reloads, 13);
    }

    #[test]
    fn named_pairs_cover_every_field_exactly_once() {
        let s = KernelStats {
            tlb_reloads: 1,
            mmtune_htab_resizes: 99,
            ..Default::default()
        };
        let pairs: Vec<(&str, u64)> = s.as_named_pairs().collect();
        assert_eq!(pairs.len(), KernelStats::NAMES.len());
        assert_eq!(pairs[0], ("tlb_reloads", 1));
        assert_eq!(*pairs.last().unwrap(), ("mmtune_htab_resizes", 99));
        let mut names: Vec<&str> = pairs.iter().map(|p| p.0).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), pairs.len(), "names must be unique");
    }

    #[test]
    fn diff_matches_named_pairs() {
        let a = KernelStats {
            page_faults: 3,
            ..Default::default()
        };
        let b = KernelStats {
            page_faults: 10,
            syscalls: 7,
            ..Default::default()
        };
        let d = b.diff(&a);
        for ((name, dv), ((_, bv), (_, av))) in d
            .as_named_pairs()
            .zip(b.as_named_pairs().zip(a.as_named_pairs()))
        {
            assert_eq!(dv, bv - av, "{name}");
        }
    }
}
