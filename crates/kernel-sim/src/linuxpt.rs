//! The Linux two-level page tables.
//!
//! "The core of Linux memory management is based on the x86 two-level page
//! tables … we were committed to using these page tables as the initial
//! source of PTEs" (paper §5.2). The tables live in simulated physical
//! memory: a one-page PGD of 1024 word entries, each pointing to a one-page
//! PTE table of 1024 word entries. Walks return the physical addresses they
//! read so the caller can charge cache traffic — the worst-case software
//! reload is the paper's "three loads" (task → PGD entry → PTE).

use ppc_mmu::addr::{EffectiveAddress, PhysAddr, PAGE_SHIFT};

use crate::physmem::PhysMem;

/// Software PTE flag: mapping present.
pub const PTE_PRESENT: u32 = 1 << 0;
/// Software PTE flag: writable.
pub const PTE_RW: u32 = 1 << 1;
/// Software PTE flag: dirty.
pub const PTE_DIRTY: u32 = 1 << 2;
/// Software PTE flag: accessed.
pub const PTE_ACCESSED: u32 = 1 << 3;
/// Software PTE flag: cache-inhibited.
pub const PTE_NOCACHE: u32 = 1 << 4;
/// Software PTE flag: resident in the hash table (Linux/PPC's `_PAGE_HASHPTE`).
pub const PTE_HASHPTE: u32 = 1 << 5;
/// Software PTE flag: copy-on-write — the frame is shared and a store must
/// take a protection fault and copy it first.
pub const PTE_COW: u32 = 1 << 6;

/// A decoded Linux software PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinuxPte(pub u32);

impl LinuxPte {
    /// Builds a present PTE for `pfn` with `flags`.
    pub fn present(pfn: u32, flags: u32) -> Self {
        LinuxPte((pfn << PAGE_SHIFT) | flags | PTE_PRESENT)
    }

    /// Whether the mapping is present.
    pub fn is_present(self) -> bool {
        self.0 & PTE_PRESENT != 0
    }

    /// The mapped page frame number.
    pub fn pfn(self) -> u32 {
        self.0 >> PAGE_SHIFT
    }

    /// Whether the mapping is cacheable.
    pub fn cached(self) -> bool {
        self.0 & PTE_NOCACHE == 0
    }

    /// Whether the PTE has been loaded into the hash table.
    pub fn in_htab(self) -> bool {
        self.0 & PTE_HASHPTE != 0
    }

    /// Whether stores are permitted (read-write and not copy-on-write).
    pub fn writable(self) -> bool {
        self.0 & PTE_RW != 0 && self.0 & PTE_COW == 0
    }

    /// Whether the mapping is copy-on-write.
    pub fn is_cow(self) -> bool {
        self.0 & PTE_COW != 0
    }
}

/// Result of a page-table walk, with the addresses read along the way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Walk {
    /// Physical address of the PGD entry that was read.
    pub pgd_entry_pa: PhysAddr,
    /// Physical address of the PTE that was read (absent if the PGD entry
    /// was empty).
    pub pte_entry_pa: Option<PhysAddr>,
    /// The PTE found, if present.
    pub pte: Option<LinuxPte>,
}

/// One address space's two-level page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinuxPageTables {
    /// Physical address of the PGD page.
    pub pgd_pa: PhysAddr,
}

fn pgd_index(ea: EffectiveAddress) -> u32 {
    ea.0 >> 22
}

fn pte_index(ea: EffectiveAddress) -> u32 {
    (ea.0 >> PAGE_SHIFT) & 0x3ff
}

impl LinuxPageTables {
    /// Wraps an already-allocated, zeroed PGD page.
    pub fn new(pgd_pa: PhysAddr) -> Self {
        Self { pgd_pa }
    }

    /// Physical address of the PGD entry covering `ea`.
    pub fn pgd_entry_pa(&self, ea: EffectiveAddress) -> PhysAddr {
        self.pgd_pa + pgd_index(ea) * 4
    }

    /// Walks the tables for `ea` without modifying them.
    pub fn walk(&self, mem: &PhysMem, ea: EffectiveAddress) -> Walk {
        let pgd_entry_pa = self.pgd_entry_pa(ea);
        let pgd_entry = mem.read_u32(pgd_entry_pa);
        if pgd_entry & PTE_PRESENT == 0 {
            return Walk {
                pgd_entry_pa,
                pte_entry_pa: None,
                pte: None,
            };
        }
        let pte_page = pgd_entry & !0xfff;
        let pte_entry_pa = pte_page + pte_index(ea) * 4;
        let raw = mem.read_u32(pte_entry_pa);
        let pte = LinuxPte(raw);
        Walk {
            pgd_entry_pa,
            pte_entry_pa: Some(pte_entry_pa),
            pte: pte.is_present().then_some(pte),
        }
    }

    /// Installs a mapping. `alloc_pt_page` supplies a zeroed page when a new
    /// PTE table is needed. Returns the walk it performed (for cost
    /// charging) or `None` if a PTE page was needed but the allocator was
    /// exhausted.
    pub fn map(
        &self,
        mem: &mut PhysMem,
        ea: EffectiveAddress,
        pte: LinuxPte,
        mut alloc_pt_page: impl FnMut() -> Option<PhysAddr>,
    ) -> Option<Walk> {
        let pgd_entry_pa = self.pgd_entry_pa(ea);
        let mut pgd_entry = mem.read_u32(pgd_entry_pa);
        if pgd_entry & PTE_PRESENT == 0 {
            let page = alloc_pt_page()?;
            mem.zero_page(page);
            pgd_entry = page | PTE_PRESENT;
            mem.write_u32(pgd_entry_pa, pgd_entry);
        }
        let pte_page = pgd_entry & !0xfff;
        let pte_entry_pa = pte_page + pte_index(ea) * 4;
        mem.write_u32(pte_entry_pa, pte.0);
        Some(Walk {
            pgd_entry_pa,
            pte_entry_pa: Some(pte_entry_pa),
            pte: Some(pte),
        })
    }

    /// Removes the mapping for `ea`, returning the old PTE if one was
    /// present, along with the walk.
    pub fn unmap(&self, mem: &mut PhysMem, ea: EffectiveAddress) -> (Walk, Option<LinuxPte>) {
        let walk = self.walk(mem, ea);
        if let (Some(pte_pa), Some(pte)) = (walk.pte_entry_pa, walk.pte) {
            mem.write_u32(pte_pa, 0);
            (walk, Some(pte))
        } else {
            (walk, None)
        }
    }

    /// Sets or clears flag bits on an existing PTE (e.g. `PTE_HASHPTE`).
    /// Returns `false` if no mapping exists.
    pub fn update_flags(
        &self,
        mem: &mut PhysMem,
        ea: EffectiveAddress,
        set: u32,
        clear: u32,
    ) -> bool {
        let walk = self.walk(mem, ea);
        match (walk.pte_entry_pa, walk.pte) {
            (Some(pa), Some(pte)) => {
                mem.write_u32(pa, (pte.0 | set) & !clear);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PGD: PhysAddr = 0x22_0000;
    const PT1: PhysAddr = 0x22_1000;
    const PT2: PhysAddr = 0x22_2000;

    fn setup() -> (PhysMem, LinuxPageTables) {
        let mem = PhysMem::new();
        (mem, LinuxPageTables::new(PGD))
    }

    #[test]
    fn map_then_walk_round_trip() {
        let (mut mem, pt) = setup();
        let ea = EffectiveAddress(0x1234_5000);
        let mut pool = vec![PT1];
        let pte = LinuxPte::present(0x777, PTE_RW);
        pt.map(&mut mem, ea, pte, || pool.pop()).unwrap();
        let w = pt.walk(&mem, ea);
        assert_eq!(w.pte, Some(pte));
        assert_eq!(w.pte.unwrap().pfn(), 0x777);
        assert!(w.pte.unwrap().cached());
    }

    #[test]
    fn walk_empty_pgd_reads_one_word() {
        let (mem, pt) = setup();
        let w = pt.walk(&mem, EffectiveAddress(0x4000_0000));
        assert!(w.pte.is_none());
        assert!(
            w.pte_entry_pa.is_none(),
            "no second-level read when PGD empty"
        );
    }

    #[test]
    fn adjacent_pages_share_a_pte_table() {
        let (mut mem, pt) = setup();
        let mut pool = vec![PT2, PT1];
        pt.map(
            &mut mem,
            EffectiveAddress(0x1000),
            LinuxPte::present(1, 0),
            || pool.pop(),
        )
        .unwrap();
        pt.map(
            &mut mem,
            EffectiveAddress(0x2000),
            LinuxPte::present(2, 0),
            || pool.pop(),
        )
        .unwrap();
        assert_eq!(pool.len(), 1, "second map reuses the PTE table");
        // A distant address needs a new table.
        pt.map(
            &mut mem,
            EffectiveAddress(0x4000_0000),
            LinuxPte::present(3, 0),
            || pool.pop(),
        )
        .unwrap();
        assert!(pool.is_empty());
    }

    #[test]
    fn unmap_clears_and_returns_old() {
        let (mut mem, pt) = setup();
        let ea = EffectiveAddress(0x9000);
        let mut pool = vec![PT1];
        pt.map(&mut mem, ea, LinuxPte::present(9, PTE_DIRTY), || pool.pop())
            .unwrap();
        let (_, old) = pt.unmap(&mut mem, ea);
        assert_eq!(old.unwrap().pfn(), 9);
        assert!(pt.walk(&mem, ea).pte.is_none());
        let (_, none) = pt.unmap(&mut mem, ea);
        assert!(none.is_none());
    }

    #[test]
    fn update_flags_sets_hashpte() {
        let (mut mem, pt) = setup();
        let ea = EffectiveAddress(0x9000);
        let mut pool = vec![PT1];
        pt.map(&mut mem, ea, LinuxPte::present(9, 0), || pool.pop())
            .unwrap();
        assert!(!pt.walk(&mem, ea).pte.unwrap().in_htab());
        assert!(pt.update_flags(&mut mem, ea, PTE_HASHPTE, 0));
        assert!(pt.walk(&mem, ea).pte.unwrap().in_htab());
        assert!(pt.update_flags(&mut mem, ea, 0, PTE_HASHPTE));
        assert!(!pt.walk(&mem, ea).pte.unwrap().in_htab());
        assert!(!pt.update_flags(&mut mem, EffectiveAddress(0x5000_0000), PTE_HASHPTE, 0));
    }

    #[test]
    fn map_fails_when_pool_exhausted() {
        let (mut mem, pt) = setup();
        let r = pt.map(
            &mut mem,
            EffectiveAddress(0x1000),
            LinuxPte::present(1, 0),
            || None,
        );
        assert!(r.is_none());
    }

    #[test]
    fn nocache_flag_round_trips() {
        let pte = LinuxPte::present(5, PTE_NOCACHE);
        assert!(!pte.cached());
        assert!(pte.is_present());
    }
}
