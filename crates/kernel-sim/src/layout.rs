//! Physical and virtual memory layout of the simulated machine.
//!
//! ```text
//! physical                          virtual (kernel view)
//! 0x0000_0000 ─ kernel text         0xC000_0000 ─ linear map of all RAM
//! 0x0014_0000 ─ kernel data                        (kernel EA = PA + 0xC000_0000)
//! 0x0020_0000 ─ hash table (128 KiB)
//! 0x0022_0000 ─ page-table pool
//! 0x0030_0000 ─ general frame pool  0x0000_0000 ─ user space (12 segments,
//! 0x0200_0000 ─ end of 32 MiB RAM                 0x0 .. 0xC000_0000)
//!                                   0xF000_0000 ─ I/O space (frame buffer)
//! ```

use ppc_mmu::addr::{EffectiveAddress, PhysAddr, PAGE_SHIFT, PAGE_SIZE};

/// Total RAM (32 MiB on every machine in the paper, §4).
pub const RAM_BYTES: u32 = 32 * 1024 * 1024;

/// Kernel virtual base: "the Linux kernel usually resides at virtual address
/// 0xc0000000" (paper §5.1).
pub const KERNEL_VIRT_BASE: u32 = 0xc000_0000;

/// Start of kernel text in physical memory.
pub const KERNEL_TEXT_PA: PhysAddr = 0;

/// Size of kernel text (1.25 MiB of code paths).
pub const KERNEL_TEXT_BYTES: u32 = 0x14_0000;

/// Start of kernel static data.
pub const KERNEL_DATA_PA: PhysAddr = KERNEL_TEXT_PA + KERNEL_TEXT_BYTES;

/// Size of kernel static data (0.75 MiB).
pub const KERNEL_DATA_BYTES: u32 = 0x0c_0000;

/// Physical base of the `mem_map` (the per-frame `struct page` array):
/// 8192 frames x 32 bytes = 256 KiB at the top of kernel data. Allocator
/// and page-cache operations touch it, spreading kernel data references —
/// part of the kernel TLB footprint of §5.1.
pub const MEM_MAP_PA: PhysAddr = KERNEL_DATA_PA + 0x8_0000;

/// Bytes per `struct page` entry.
pub const MEM_MAP_ENTRY_BYTES: u32 = 32;

/// Physical base of the hash table.
pub const HTAB_PA: PhysAddr = 0x20_0000;

/// Hash table size: 16384 PTEs × 8 bytes = 128 KiB = 2048 PTEGs
/// (paper §7: "600–700 out of 16384").
pub const HTAB_BYTES: u32 = 128 * 1024;

/// Number of PTEGs in the hash table.
pub const HTAB_GROUPS: u32 = HTAB_BYTES / 8 / 8;

/// Physical base of the page-table page pool.
pub const PT_POOL_PA: PhysAddr = 0x22_0000;

/// Size of the page-table pool (224 pages).
pub const PT_POOL_BYTES: u32 = 0x0e_0000;

/// Physical base of the general frame pool (user pages, kernel heap).
pub const FRAME_POOL_PA: PhysAddr = 0x30_0000;

/// I/O (frame-buffer) effective-address base; identity-mapped, uncached.
pub const IO_VIRT_BASE: u32 = 0xf000_0000;

/// Size of the mapped I/O aperture (4 MiB of frame buffer).
pub const IO_BYTES: u32 = 4 * 1024 * 1024;

/// Number of user segments (user space is `0x0000_0000 .. 0xC000_0000`,
/// twelve 256 MiB segments).
pub const USER_SEGMENTS: usize = 12;

/// Converts a physical address to its kernel linear-map effective address.
pub fn pa_to_kva(pa: PhysAddr) -> EffectiveAddress {
    debug_assert!(pa < RAM_BYTES);
    EffectiveAddress(KERNEL_VIRT_BASE + pa)
}

/// Converts a kernel linear-map effective address back to physical.
pub fn kva_to_pa(ea: EffectiveAddress) -> PhysAddr {
    debug_assert!(is_kernel_linear(ea));
    ea.0 - KERNEL_VIRT_BASE
}

/// Whether `ea` lies in the kernel linear map.
pub fn is_kernel_linear(ea: EffectiveAddress) -> bool {
    (KERNEL_VIRT_BASE..KERNEL_VIRT_BASE + RAM_BYTES).contains(&ea.0)
}

/// Whether `ea` lies in user space.
pub fn is_user(ea: EffectiveAddress) -> bool {
    ea.0 < KERNEL_VIRT_BASE
}

/// Whether `ea` lies in the I/O aperture.
pub fn is_io(ea: EffectiveAddress) -> bool {
    (IO_VIRT_BASE..IO_VIRT_BASE + IO_BYTES).contains(&ea.0)
}

/// Page frame number of a physical address.
pub fn pfn(pa: PhysAddr) -> u32 {
    pa >> PAGE_SHIFT
}

/// Physical address of a page frame number.
pub fn pfn_to_pa(pfn: u32) -> PhysAddr {
    pfn << PAGE_SHIFT
}

/// Total page frames in RAM.
pub const TOTAL_FRAMES: u32 = RAM_BYTES / PAGE_SIZE;

/// Named kernel code paths, each with a fixed home in kernel text so that
/// executing them produces realistic I-cache and I-TLB traffic (and, without
/// BATs, realistic kernel TLB pressure — the §5.1 "33% of TLB entries").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Syscall entry/exit and dispatch.
    SyscallEntry,
    /// The scheduler and context-switch code.
    Schedule,
    /// The page-fault / reload C handlers.
    FaultHandler,
    /// Pipe read/write.
    Pipe,
    /// File read and page-cache code.
    File,
    /// Memory-management service code (mmap, munmap, fork).
    Mm,
    /// The idle task.
    Idle,
    /// Exec / process setup.
    Exec,
}

impl KernelPath {
    /// Kernel-text effective address of this path's code.
    pub fn text_ea(self) -> EffectiveAddress {
        let off = match self {
            KernelPath::SyscallEntry => 0x0_0000,
            KernelPath::Schedule => 0x1_0000,
            KernelPath::FaultHandler => 0x2_0000,
            KernelPath::Pipe => 0x3_0000,
            KernelPath::File => 0x4_0000,
            KernelPath::Mm => 0x5_0000,
            KernelPath::Idle => 0x6_0000,
            KernelPath::Exec => 0x7_0000,
        };
        pa_to_kva(KERNEL_TEXT_PA + off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn regions_do_not_overlap() {
        assert!(KERNEL_TEXT_PA + KERNEL_TEXT_BYTES <= KERNEL_DATA_PA + KERNEL_DATA_BYTES);
        assert!(KERNEL_DATA_PA + KERNEL_DATA_BYTES <= HTAB_PA);
        assert!(HTAB_PA + HTAB_BYTES <= PT_POOL_PA);
        assert!(PT_POOL_PA + PT_POOL_BYTES <= FRAME_POOL_PA);
        assert!(FRAME_POOL_PA < RAM_BYTES);
    }

    #[test]
    fn htab_is_16384_ptes() {
        assert_eq!(HTAB_GROUPS * 8, 16384);
        assert!(HTAB_GROUPS.is_power_of_two());
    }

    #[test]
    fn kva_round_trip() {
        let pa = 0x123_4560;
        assert_eq!(kva_to_pa(pa_to_kva(pa)), pa);
        assert!(is_kernel_linear(pa_to_kva(pa)));
        assert!(!is_user(pa_to_kva(pa)));
    }

    #[test]
    fn address_classification() {
        assert!(is_user(EffectiveAddress(0)));
        assert!(is_user(EffectiveAddress(0xbfff_ffff)));
        assert!(!is_user(EffectiveAddress(0xc000_0000)));
        assert!(is_io(EffectiveAddress(0xf000_0000)));
        assert!(!is_io(EffectiveAddress(0xefff_ffff)));
    }

    #[test]
    fn kernel_paths_live_in_kernel_text() {
        for p in [
            KernelPath::SyscallEntry,
            KernelPath::Schedule,
            KernelPath::FaultHandler,
            KernelPath::Pipe,
            KernelPath::File,
            KernelPath::Mm,
            KernelPath::Idle,
            KernelPath::Exec,
        ] {
            let ea = p.text_ea();
            assert!(is_kernel_linear(ea));
            assert!(kva_to_pa(ea) < KERNEL_TEXT_BYTES);
        }
    }

    #[test]
    fn frame_arithmetic() {
        assert_eq!(pfn(0x30_0000), 0x300);
        assert_eq!(pfn_to_pa(0x300), 0x30_0000);
        assert_eq!(TOTAL_FRAMES, 8192);
    }
}
