//! Cache geometry and policy configuration.

/// Write policy of a cache.
///
/// The PowerPC 603/604 L1 data caches are write-back; the model also supports
/// write-through so the analysis experiments can contrast the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Dirty lines are written to memory only on eviction.
    WriteBack,
    /// Every store also goes to memory immediately.
    WriteThrough,
}

/// Geometry and timing of a single cache.
///
/// # Examples
///
/// ```
/// use ppc_cache::CacheConfig;
///
/// let cfg = CacheConfig::ppc604_data();
/// assert_eq!(cfg.num_sets(), 16 * 1024 / 32 / 4);
/// assert_eq!(cfg.num_lines(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a power of two.
    pub size_bytes: u32,
    /// Line size in bytes. Must be a power of two (32 on the 603/604).
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Cycles for a hit (pipelined load-use latency folded in).
    pub hit_cycles: u64,
}

impl CacheConfig {
    /// The PowerPC 603 8 KiB, 2-way, 32-byte-line data cache.
    pub fn ppc603_data() -> Self {
        Self {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            ways: 2,
            write_policy: WritePolicy::WriteBack,
            hit_cycles: 1,
        }
    }

    /// The PowerPC 603 8 KiB, 2-way instruction cache.
    pub fn ppc603_insn() -> Self {
        Self::ppc603_data()
    }

    /// The PowerPC 604 16 KiB, 4-way, 32-byte-line data cache.
    pub fn ppc604_data() -> Self {
        Self {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            ways: 4,
            write_policy: WritePolicy::WriteBack,
            hit_cycles: 1,
        }
    }

    /// The PowerPC 604 16 KiB, 4-way instruction cache.
    pub fn ppc604_insn() -> Self {
        Self::ppc604_data()
    }

    /// A direct-mapped board-level L2 of `size_bytes` (1990s PowerMac/PReP
    /// boards shipped 256 KiB – 1 MiB of lookaside SRAM).
    pub fn board_l2(size_bytes: u32) -> Self {
        Self {
            size_bytes,
            line_bytes: 32,
            ways: 1,
            write_policy: WritePolicy::WriteBack,
            hit_cycles: 1,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u32 {
        self.size_bytes / self.line_bytes / self.ways
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// Validates the configuration, panicking with a descriptive message on
    /// nonsensical geometry.
    ///
    /// # Panics
    ///
    /// Panics if any of size, line size or way count is zero or not a
    /// power-of-two-compatible combination.
    pub fn validate(&self) {
        assert!(
            self.size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "cache must have at least one way");
        assert!(
            self.size_bytes >= self.line_bytes * self.ways,
            "cache must hold at least one set"
        );
        assert!(
            (self.size_bytes / self.line_bytes).is_multiple_of(self.ways),
            "line count must divide evenly into ways"
        );
        assert!(
            self.num_sets().is_power_of_two(),
            "set count must be a power of two"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_603() {
        let c = CacheConfig::ppc603_data();
        c.validate();
        assert_eq!(c.num_sets(), 128);
        assert_eq!(c.num_lines(), 256);
    }

    #[test]
    fn geometry_604() {
        let c = CacheConfig::ppc604_data();
        c.validate();
        assert_eq!(c.num_sets(), 128);
        assert_eq!(c.num_lines(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_size() {
        CacheConfig {
            size_bytes: 3000,
            line_bytes: 32,
            ways: 2,
            write_policy: WritePolicy::WriteBack,
            hit_cycles: 1,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn rejects_zero_ways() {
        CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 0,
            write_policy: WritePolicy::WriteBack,
            hit_cycles: 1,
        }
        .validate();
    }

    #[test]
    fn l604_is_twice_l603() {
        // The paper (§6.2) leans on the 604 having twice the L1 of the 603.
        assert_eq!(
            CacheConfig::ppc604_data().size_bytes,
            2 * CacheConfig::ppc603_data().size_bytes
        );
    }
}
