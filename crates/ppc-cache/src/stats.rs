//! Cache statistics counters.

/// Event counters for one cache.
///
/// The paper's measurements (hardware monitor on the 604, software counters
/// on the 603, §4) are mirrored by these counters; experiments read them to
/// report miss counts and pollution effects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total cacheable accesses (reads + writes + zeroing establishes).
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed and caused a line fill.
    pub misses: u64,
    /// Valid lines displaced to make room for a fill.
    pub evictions: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
    /// Cache-inhibited accesses that bypassed the cache entirely.
    pub inhibited: u64,
    /// Lines established by `dcbz`-style zeroing (no memory read).
    pub zero_fills: u64,
    /// Lines brought in speculatively by software prefetch (`dcbt`).
    pub prefetch_fills: u64,
    /// Prefetches that were useless because the line was already present.
    pub prefetch_redundant: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `1.0` when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss rate in `[0, 1]`; `0.0` when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        1.0 - self.hit_rate()
    }

    /// Adds another counter set into this one (for aggregating I + D).
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.inhibited += other.inhibited;
        self.zero_fills += other.zero_fills;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_redundant += other.prefetch_redundant;
    }

    /// Difference `self - baseline`, saturating at zero, for A/B experiments.
    pub fn delta(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses.saturating_sub(baseline.accesses),
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            evictions: self.evictions.saturating_sub(baseline.evictions),
            writebacks: self.writebacks.saturating_sub(baseline.writebacks),
            inhibited: self.inhibited.saturating_sub(baseline.inhibited),
            zero_fills: self.zero_fills.saturating_sub(baseline.zero_fills),
            prefetch_fills: self.prefetch_fills.saturating_sub(baseline.prefetch_fills),
            prefetch_redundant: self
                .prefetch_redundant
                .saturating_sub(baseline.prefetch_redundant),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_empty_is_one() {
        assert_eq!(CacheStats::default().hit_rate(), 1.0);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn hit_rate_basic() {
        let s = CacheStats {
            accesses: 10,
            hits: 9,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = CacheStats {
            accesses: 1,
            hits: 1,
            ..Default::default()
        };
        let b = CacheStats {
            accesses: 2,
            misses: 2,
            writebacks: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 2);
        assert_eq!(a.writebacks, 1);
    }

    #[test]
    fn delta_saturates() {
        let a = CacheStats {
            accesses: 1,
            ..Default::default()
        };
        let b = CacheStats {
            accesses: 5,
            ..Default::default()
        };
        assert_eq!(a.delta(&b).accesses, 0);
        assert_eq!(b.delta(&a).accesses, 4);
    }
}
