//! Set-associative, write-back tag cache with LRU replacement.

use crate::config::{CacheConfig, WritePolicy};
use crate::stats::CacheStats;
use crate::PhysAddr;

/// Whether an access is a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (or instruction fetch).
    Read,
    /// A store.
    Write,
}

/// Outcome of one cacheable access, from which the memory system derives the
/// cycle cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// The access hit in the cache.
    pub hit: bool,
    /// A valid line was evicted to service a fill.
    pub evicted: bool,
    /// The evicted line was dirty and had to be written back.
    pub writeback: bool,
    /// A store went straight to memory (write-through policy).
    pub wrote_through: bool,
    /// Base address of the evicted line, when one was written back (lets
    /// the memory system route the writeback into the next cache level).
    pub victim_pa: Option<PhysAddr>,
}

impl CacheOutcome {
    const HIT: CacheOutcome = CacheOutcome {
        hit: true,
        evicted: false,
        writeback: false,
        wrote_through: false,
        victim_pa: None,
    };
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    locked: bool,
    tag: u32,
    /// Larger = more recently used.
    lru: u64,
}

/// A single set-associative cache (tags only).
///
/// Replacement is true LRU within a set. Lines can be *locked* (paper §10.1,
/// "Locking the Cache"): a locked line is never chosen as a replacement
/// victim, modelling the proposed idle-task cache lock.
///
/// # Examples
///
/// ```
/// use ppc_cache::{AccessKind, Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::ppc603_data());
/// assert!(!c.access(0x100, AccessKind::Read).hit);
/// assert!(c.access(0x104, AccessKind::Read).hit); // same 32-byte line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Every line in one contiguous allocation, indexed `set * ways + way`.
    /// One slab instead of a `Vec<Vec<_>>` keeps a whole set on one or two
    /// host cache lines — the hot probe touches no pointer indirection.
    lines: Box<[Line]>,
    /// The tag of each *valid* line, same indexing as `lines`, with invalid
    /// ways parked at [`INVALID_TAG`]. The way scan in [`Cache::find`] — the
    /// single hottest loop in the simulator, under every probe, fill and
    /// burst — compares `ways` contiguous `u32`s and nothing else; the
    /// sentinel folds the validity check into the tag compare (real tags
    /// are `addr >> (set_shift + set_bits)` with `set_shift >= 2`, so they
    /// can never reach `u32::MAX`).
    tags: Box<[u32]>,
    ways: usize,
    stats: CacheStats,
    tick: u64,
    set_shift: u32,
    set_mask: u32,
}

/// Tag sentinel for an invalid way (see [`Cache::tags`]).
const INVALID_TAG: u32 = u32::MAX;

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let ways = cfg.ways as usize;
        let lines = vec![Line::default(); ways * cfg.num_sets() as usize].into_boxed_slice();
        let tags = vec![INVALID_TAG; lines.len()].into_boxed_slice();
        let set_shift = cfg.line_bytes.trailing_zeros();
        let set_mask = cfg.num_sets() - 1;
        Self {
            cfg,
            lines,
            tags,
            ways,
            stats: CacheStats::default(),
            tick: 0,
            set_shift,
            set_mask,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Event counters accumulated since creation (or the last reset).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes the statistics counters without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn index(&self, addr: PhysAddr) -> (usize, u32) {
        let set = (addr >> self.set_shift) & self.set_mask;
        let tag = addr >> (self.set_shift + self.set_mask.count_ones());
        (set as usize, tag)
    }

    /// Finds the resident line for `(set, tag)`, as a flat index into
    /// `self.lines`.
    #[inline]
    fn find(&self, set: usize, tag: u32) -> Option<usize> {
        let base = set * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag)
            .map(|w| base + w)
    }

    /// Picks the replacement victim in `set`: an invalid way if one exists,
    /// otherwise the least recently used unlocked way. Returns `None` if every
    /// way is locked (the access then bypasses the cache). Flat index.
    fn victim(&self, set: usize) -> Option<usize> {
        let base = set * self.ways;
        let set_lines = &self.lines[base..base + self.ways];
        if let Some(i) = set_lines.iter().position(|l| !l.valid) {
            return Some(base + i);
        }
        set_lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.locked)
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| base + i)
    }

    /// The fused fast path's hit probe: commits exactly the bookkeeping
    /// [`Cache::access`] performs on a hit (tick, demand counters, LRU,
    /// dirty/write-through) and returns the write-through flag — or returns
    /// `None` on a miss *without touching any state*, so the caller can fall
    /// back to the full [`Cache::access`], which then counts the miss (and
    /// the tick) exactly once.
    #[inline]
    pub fn fast_hit(&mut self, addr: PhysAddr, kind: AccessKind) -> Option<bool> {
        let (set, tag) = self.index(addr);
        let idx = self.find(set, tag)?;
        self.tick += 1;
        self.stats.accesses += 1;
        self.stats.hits += 1;
        let mut wrote_through = false;
        let line = &mut self.lines[idx];
        line.lru = self.tick;
        if kind == AccessKind::Write {
            match self.cfg.write_policy {
                WritePolicy::WriteBack => line.dirty = true,
                WritePolicy::WriteThrough => wrote_through = true,
            }
        }
        Some(wrote_through)
    }

    /// Burst form of [`Cache::fast_hit`]: commits the bookkeeping of `n`
    /// consecutive [`Cache::fast_hit`] calls to the *same* line in one step
    /// (the tick, demand and hit counters each advance by `n`; the LRU stamp
    /// lands on the final tick, exactly where `n` repeated probes would leave
    /// it; the dirty/write-through resolution is identical for every access
    /// in the burst, so it is applied once and returned). Returns `None` on a
    /// miss *without touching any state*. `n == 0` is also a no-op.
    #[inline]
    pub fn fast_hit_n(&mut self, addr: PhysAddr, kind: AccessKind, n: u64) -> Option<bool> {
        if n == 0 {
            return Some(false);
        }
        let (set, tag) = self.index(addr);
        let idx = self.find(set, tag)?;
        self.tick += n;
        self.stats.accesses += n;
        self.stats.hits += n;
        let mut wrote_through = false;
        let line = &mut self.lines[idx];
        line.lru = self.tick;
        if kind == AccessKind::Write {
            match self.cfg.write_policy {
                WritePolicy::WriteBack => line.dirty = true,
                WritePolicy::WriteThrough => wrote_through = true,
            }
        }
        Some(wrote_through)
    }

    /// Performs a cacheable access and returns what happened.
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind) -> CacheOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.index(addr);
        if let Some(idx) = self.find(set, tag) {
            self.stats.hits += 1;
            let line = &mut self.lines[idx];
            line.lru = self.tick;
            let mut wrote_through = false;
            if kind == AccessKind::Write {
                match self.cfg.write_policy {
                    WritePolicy::WriteBack => line.dirty = true,
                    WritePolicy::WriteThrough => wrote_through = true,
                }
            }
            return CacheOutcome {
                wrote_through,
                ..CacheOutcome::HIT
            };
        }
        self.stats.misses += 1;
        let Some(idx) = self.victim(set) else {
            // Every way locked: treat as an uncached access.
            self.stats.inhibited += 1;
            return CacheOutcome {
                hit: false,
                evicted: false,
                writeback: false,
                wrote_through: kind == AccessKind::Write,
                victim_pa: None,
            };
        };
        let line = &mut self.lines[idx];
        let evicted = line.valid;
        let writeback = line.valid && line.dirty;
        let victim_pa = writeback.then(|| {
            (line.tag << (self.set_shift + self.set_mask.count_ones()))
                | ((set as u32) << self.set_shift)
        });
        if evicted {
            self.stats.evictions += 1;
        }
        if writeback {
            self.stats.writebacks += 1;
        }
        let mut wrote_through = false;
        let dirty = match (kind, self.cfg.write_policy) {
            (AccessKind::Write, WritePolicy::WriteBack) => true,
            (AccessKind::Write, WritePolicy::WriteThrough) => {
                wrote_through = true;
                false
            }
            (AccessKind::Read, _) => false,
        };
        *line = Line {
            valid: true,
            dirty,
            locked: false,
            tag,
            lru: self.tick,
        };
        self.tags[idx] = tag;
        CacheOutcome {
            hit: false,
            evicted,
            writeback,
            wrote_through,
            victim_pa,
        }
    }

    /// Records a cache-inhibited access: the cache state is untouched.
    pub fn access_inhibited(&mut self) {
        self.stats.inhibited += 1;
    }

    /// `dcbz`-style line zeroing: establishes the line in the cache, dirty,
    /// without reading memory. Returns the outcome of the establish (a "hit"
    /// means the line was already present).
    pub fn zero_line(&mut self, addr: PhysAddr) -> CacheOutcome {
        let out = self.access(addr, AccessKind::Write);
        if !out.hit {
            self.stats.zero_fills += 1;
            // The miss fill for dcbz does not read memory; the caller charges
            // no bus read for it. Account it as a zero-fill, not a demand miss.
            self.stats.misses -= 1;
            self.stats.hits += 1;
        }
        out
    }

    /// Software prefetch (`dcbt`, paper §10.2): brings the line in as a read
    /// without counting as a demand access. Returns `true` if a fill happened.
    pub fn prefetch(&mut self, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        if self.find(set, tag).is_some() {
            self.stats.prefetch_redundant += 1;
            return false;
        }
        let before = self.stats;
        let out = self.access(addr, AccessKind::Read);
        // Prefetches are not demand accesses; rewind the demand counters and
        // record the fill explicitly.
        self.stats.accesses = before.accesses;
        self.stats.hits = before.hits;
        self.stats.misses = before.misses;
        self.stats.prefetch_fills += 1;
        !out.hit
    }

    /// Locks or unlocks the line containing `addr`, if present. Returns
    /// whether the line was found.
    pub fn set_locked(&mut self, addr: PhysAddr, locked: bool) -> bool {
        let (set, tag) = self.index(addr);
        match self.find(set, tag) {
            Some(idx) => {
                self.lines[idx].locked = locked;
                true
            }
            None => false,
        }
    }

    /// Unlocks every line.
    pub fn unlock_all(&mut self) {
        for line in &mut self.lines {
            line.locked = false;
        }
    }

    /// Returns whether the line containing `addr` is currently resident.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        self.find(set, tag).is_some()
    }

    /// Invalidates every line, discarding dirty data (like `hid0` flash
    /// invalidate). Dirty lines are *not* written back.
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
        self.tags.fill(INVALID_TAG);
    }

    /// Writes back and invalidates every line, returning the number of dirty
    /// lines flushed (each costs a bus write in the memory system).
    pub fn flush_all(&mut self) -> u64 {
        let mut flushed = 0;
        for line in &mut self.lines {
            if line.valid && line.dirty {
                flushed += 1;
                self.stats.writebacks += 1;
            }
            *line = Line::default();
        }
        self.tags.fill(INVALID_TAG);
        flushed
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32B lines = 256B, easy to reason about.
        Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 32,
            ways: 2,
            write_policy: WritePolicy::WriteBack,
            hit_cycles: 1,
        })
    }

    /// Address that maps to `set` with tag `tag` in the `small()` cache.
    fn addr(set: u32, tag: u32) -> PhysAddr {
        (tag << 7) | (set << 5)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x40, AccessKind::Read).hit);
        assert!(c.access(0x40, AccessKind::Read).hit);
        assert!(
            c.access(0x5c, AccessKind::Read).hit,
            "same line, different offset"
        );
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        c.access(addr(1, 1), AccessKind::Read);
        c.access(addr(1, 2), AccessKind::Read);
        // Touch tag 1 so tag 2 is LRU.
        c.access(addr(1, 1), AccessKind::Read);
        let out = c.access(addr(1, 3), AccessKind::Read);
        assert!(out.evicted);
        assert!(c.contains(addr(1, 1)));
        assert!(!c.contains(addr(1, 2)));
        assert!(c.contains(addr(1, 3)));
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = small();
        c.access(addr(0, 1), AccessKind::Write);
        c.access(addr(0, 2), AccessKind::Read);
        let out = c.access(addr(0, 3), AccessKind::Read); // evicts dirty tag 1
        assert!(out.evicted && out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small();
        c.access(addr(0, 1), AccessKind::Read);
        c.access(addr(0, 2), AccessKind::Read);
        let out = c.access(addr(0, 3), AccessKind::Read);
        assert!(out.evicted && !out.writeback);
    }

    #[test]
    fn write_through_never_dirties() {
        let mut c = Cache::new(CacheConfig {
            write_policy: WritePolicy::WriteThrough,
            ..*small().config()
        });
        let out = c.access(addr(0, 1), AccessKind::Write);
        assert!(out.wrote_through);
        c.access(addr(0, 2), AccessKind::Read);
        let out = c.access(addr(0, 3), AccessKind::Read);
        assert!(out.evicted && !out.writeback);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn zero_line_fills_without_demand_miss() {
        let mut c = small();
        let out = c.zero_line(addr(2, 5));
        assert!(!out.hit);
        assert_eq!(c.stats().zero_fills, 1);
        assert_eq!(c.stats().misses, 0, "dcbz fill is not a demand miss");
        assert!(c.contains(addr(2, 5)));
        // The established line is dirty: evicting it costs a writeback.
        c.access(addr(2, 6), AccessKind::Read);
        let out = c.access(addr(2, 7), AccessKind::Read);
        assert!(out.writeback);
    }

    #[test]
    fn prefetch_fills_without_demand_counters() {
        let mut c = small();
        assert!(c.prefetch(addr(1, 9)));
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.access(addr(1, 9), AccessKind::Read).hit);
        assert!(!c.prefetch(addr(1, 9)));
        assert_eq!(c.stats().prefetch_redundant, 1);
    }

    #[test]
    fn locked_lines_survive_pressure() {
        let mut c = small();
        c.access(addr(3, 1), AccessKind::Read);
        assert!(c.set_locked(addr(3, 1), true));
        for tag in 2..10 {
            c.access(addr(3, tag), AccessKind::Read);
        }
        assert!(c.contains(addr(3, 1)), "locked line must not be evicted");
        c.unlock_all();
        for tag in 10..14 {
            c.access(addr(3, tag), AccessKind::Read);
        }
        assert!(!c.contains(addr(3, 1)), "unlocked line is evictable again");
    }

    #[test]
    fn fully_locked_set_bypasses() {
        let mut c = small();
        c.access(addr(0, 1), AccessKind::Read);
        c.access(addr(0, 2), AccessKind::Read);
        c.set_locked(addr(0, 1), true);
        c.set_locked(addr(0, 2), true);
        let out = c.access(addr(0, 3), AccessKind::Read);
        assert!(!out.hit && !out.evicted);
        assert!(!c.contains(addr(0, 3)));
        assert_eq!(c.stats().inhibited, 1);
    }

    #[test]
    fn flush_all_counts_dirty_lines() {
        let mut c = small();
        c.access(addr(0, 1), AccessKind::Write);
        c.access(addr(1, 1), AccessKind::Write);
        c.access(addr(2, 1), AccessKind::Read);
        assert_eq!(c.flush_all(), 2);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn invalidate_all_discards() {
        let mut c = small();
        c.access(addr(0, 1), AccessKind::Write);
        c.invalidate_all();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.contains(addr(0, 1)));
    }

    #[test]
    fn resident_lines_tracks_fills() {
        let mut c = small();
        for i in 0..5 {
            c.access(addr(i % 4, 1), AccessKind::Read);
        }
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn set_locked_missing_line_is_false() {
        let mut c = small();
        assert!(!c.set_locked(addr(0, 1), true));
    }
}
