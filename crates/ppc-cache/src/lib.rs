//! Cache and memory-system model for the MMU Tricks (OSDI 1999) reproduction.
//!
//! This crate models the parts of the PowerPC 603/604 memory hierarchy that
//! the paper's experiments depend on:
//!
//! * split, set-associative, write-back L1 instruction and data caches with
//!   LRU replacement ([`Cache`]),
//! * cache-inhibited (uncached) accesses, used by the idle-task page-clearing
//!   experiment (paper §9),
//! * `dcbz`-style cache-line zeroing, which establishes a line without a
//!   memory read,
//! * a fixed-latency memory bus ([`bus::Bus`]),
//! * the combined [`hierarchy::MemSystem`] that the machine model drives, and
//! * the paper's *future work* extensions (§10): cache locking and software
//!   cache preloads (`dcbt`-style touches).
//!
//! Addresses are raw `u32` physical addresses; time is counted in [`Cycles`].
//! The cache contents are tags only — this is a performance model, not a
//! functional memory. All statistics the paper reports (miss counts, eviction
//! counts, pollution from page-table walks) are emergent from the tag state.
//!
//! # Examples
//!
//! ```
//! use ppc_cache::hierarchy::{MemSystem, MemSystemConfig};
//!
//! let mut mem = MemSystem::new(MemSystemConfig::ppc603());
//! let first = mem.data_read(0x1000, true);   // cold miss: bus latency
//! let again = mem.data_read(0x1000, true);   // hit: 1 cycle
//! assert!(first > again);
//! assert_eq!(mem.dcache.stats().misses, 1);
//! ```

pub mod bus;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod host;
pub mod stats;

pub use bus::Bus;
pub use cache::{AccessKind, Cache, CacheOutcome};
pub use config::{CacheConfig, WritePolicy};
pub use hierarchy::{MemSystem, MemSystemConfig};
pub use stats::CacheStats;

/// Simulated time, in processor clock cycles.
pub type Cycles = u64;

/// A raw 32-bit physical address.
pub type PhysAddr = u32;
