//! The combined L1 + bus memory system driven by the machine model.

use crate::bus::Bus;
use crate::cache::{AccessKind, Cache};
use crate::config::CacheConfig;
use crate::stats::CacheStats;
use crate::{Cycles, PhysAddr};

/// Configuration for a complete memory system.
#[derive(Debug, Clone, Copy)]
pub struct MemSystemConfig {
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
    /// Data-cache geometry.
    pub dcache: CacheConfig,
    /// Unified board-level L2 geometry (`None` = no L2).
    pub l2: Option<CacheConfig>,
    /// Cycles for an L1 miss that hits in the L2.
    pub l2_hit: Cycles,
    /// Bus timings.
    pub bus: Bus,
}

impl MemSystemConfig {
    /// PowerPC 603 memory system (8 KiB + 8 KiB, 2-way; 256 KiB board L2)
    /// on a commodity board.
    pub fn ppc603() -> Self {
        Self {
            icache: CacheConfig::ppc603_insn(),
            dcache: CacheConfig::ppc603_data(),
            l2: Some(CacheConfig::board_l2(256 * 1024)),
            l2_hit: 18,
            bus: Bus::commodity(),
        }
    }

    /// PowerPC 603 memory system on a board without L2 (many PReP 603
    /// machines shipped without lookaside cache).
    pub fn ppc603_no_l2() -> Self {
        Self {
            l2: None,
            ..Self::ppc603()
        }
    }

    /// PowerPC 604 memory system (16 KiB + 16 KiB, 4-way; 512 KiB board L2)
    /// on a commodity board.
    pub fn ppc604() -> Self {
        Self {
            icache: CacheConfig::ppc604_insn(),
            dcache: CacheConfig::ppc604_data(),
            l2: Some(CacheConfig::board_l2(512 * 1024)),
            l2_hit: 18,
            bus: Bus::commodity(),
        }
    }
}

/// Split L1 caches plus the memory bus.
///
/// Every method returns the cycle cost of the access, so callers simply sum
/// the returned values into their cycle accumulator.
///
/// # Examples
///
/// ```
/// use ppc_cache::hierarchy::{MemSystem, MemSystemConfig};
///
/// let mut mem = MemSystem::new(MemSystemConfig::ppc604());
/// let miss = mem.data_write(0x2000, true);
/// let hit = mem.data_write(0x2004, true);
/// assert!(miss > hit);
/// ```
#[derive(Debug, Clone)]
pub struct MemSystem {
    /// L1 instruction cache.
    pub icache: Cache,
    /// L1 data cache.
    pub dcache: Cache,
    /// Unified board-level L2, if fitted.
    pub l2: Option<Cache>,
    /// Cycles for an L1 miss satisfied by the L2.
    pub l2_hit: Cycles,
    /// The memory bus.
    pub bus: Bus,
}

impl MemSystem {
    /// Builds an empty memory system.
    pub fn new(cfg: MemSystemConfig) -> Self {
        Self {
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            l2: cfg.l2.map(Cache::new),
            l2_hit: cfg.l2_hit,
            bus: cfg.bus,
        }
    }

    /// Cost of filling an L1 line from the L2 (or memory).
    fn fill_from_below(&mut self, pa: PhysAddr) -> Cycles {
        match &mut self.l2 {
            None => self.bus.line_fill,
            Some(l2) => {
                let out = l2.access(pa, AccessKind::Read);
                if out.hit {
                    self.l2_hit
                } else {
                    let mut c = self.bus.line_fill;
                    if out.writeback {
                        c += self.bus.line_writeback;
                    }
                    c
                }
            }
        }
    }

    /// Cost of an L1 dirty-line writeback landing in the L2 (or memory).
    /// A full line arrives, so the L2 allocates without a memory read.
    fn writeback_below(&mut self, victim_pa: Option<PhysAddr>) -> Cycles {
        match (&mut self.l2, victim_pa) {
            (None, _) | (_, None) => self.bus.line_writeback,
            (Some(l2), Some(pa)) => {
                let out = l2.zero_line(pa); // allocate-without-read, dirty
                let mut c = 2;
                if out.writeback {
                    c += self.bus.line_writeback;
                }
                c
            }
        }
    }

    /// Fetches an instruction from `pa`. `cached = false` models
    /// cache-inhibited (e.g. I/O space or an uncached idle loop).
    pub fn insn_fetch(&mut self, pa: PhysAddr, cached: bool) -> Cycles {
        let _host = crate::host::span(crate::host::PHASE_CACHE);
        if !cached {
            self.icache.access_inhibited();
            return self.bus.read_beat;
        }
        let out = self.icache.access(pa, AccessKind::Read);
        if out.hit {
            self.icache.config().hit_cycles
        } else {
            self.fill_from_below(pa)
        }
    }

    /// Loads a word from `pa` through the data cache.
    pub fn data_read(&mut self, pa: PhysAddr, cached: bool) -> Cycles {
        let _host = crate::host::span(crate::host::PHASE_CACHE);
        if !cached {
            self.dcache.access_inhibited();
            return self.bus.read_beat;
        }
        self.data_read_cached(pa)
    }

    /// The cached read path without the profiler span — the fused bulk
    /// loops below report their span counts in one exact batch instead.
    fn data_read_cached(&mut self, pa: PhysAddr) -> Cycles {
        let out = self.dcache.access(pa, AccessKind::Read);
        let mut cost = if out.hit {
            self.dcache.config().hit_cycles
        } else {
            self.fill_from_below(pa)
        };
        if out.writeback {
            cost += self.writeback_below(out.victim_pa);
        }
        cost
    }

    /// Stores a word to `pa` through the data cache.
    pub fn data_write(&mut self, pa: PhysAddr, cached: bool) -> Cycles {
        let _host = crate::host::span(crate::host::PHASE_CACHE);
        if !cached {
            self.dcache.access_inhibited();
            return self.bus.write_beat;
        }
        self.data_write_cached(pa)
    }

    /// The cached write path without the profiler span (see
    /// [`MemSystem::data_read_cached`]).
    fn data_write_cached(&mut self, pa: PhysAddr) -> Cycles {
        let out = self.dcache.access(pa, AccessKind::Write);
        let mut cost = if out.hit {
            self.dcache.config().hit_cycles
        } else {
            self.fill_from_below(pa)
        };
        if out.writeback {
            cost += self.writeback_below(out.victim_pa);
        }
        if out.wrote_through {
            cost += self.bus.write_beat;
        }
        cost
    }

    /// `dcbz`: zeroes the cache line at `pa` without reading memory.
    /// The paper (§9) avoided this instruction for `bzero()` because of its
    /// cache pollution; the model lets experiments measure that choice.
    pub fn dcbz(&mut self, pa: PhysAddr) -> Cycles {
        let out = self.dcache.zero_line(pa);
        let mut cost = self.dcache.config().hit_cycles;
        if out.writeback {
            cost += self.writeback_below(out.victim_pa);
        }
        cost
    }

    /// `dcbt`-style software prefetch (paper §10.2). Costs one issue cycle;
    /// the fill itself is overlapped (that is the point of prefetching), so
    /// only a fraction of the fill latency is charged.
    pub fn prefetch(&mut self, pa: PhysAddr) -> Cycles {
        self.dcache.prefetch(pa);
        1
    }

    /// Zeroes a whole page with ordinary cached stores (write-allocate: each
    /// line is filled from memory, dirtied, and left resident). This is how
    /// Linux/PPC cleared pages — the paper (§9) deliberately avoided `dcbz`
    /// "for the same reason" (its effect on the data cache). Returns the
    /// total cycle cost.
    pub fn zero_page_stores(&mut self, page_pa: PhysAddr, page_bytes: u32) -> Cycles {
        let line = self.dcache.config().line_bytes;
        let hit_cycles = self.dcache.config().hit_cycles;
        let write_beat = self.bus.write_beat;
        let words = line / 4;
        let mut cost = 0;
        let mut addr = page_pa;
        while addr < page_pa + page_bytes {
            // One store per word; the first store of a line pays the fill,
            // and the remaining words hit the now-resident line, so their
            // bookkeeping commits in one burst probe. A locked set (the
            // first store allocated nothing) falls back to per-word stores.
            cost += match self.dcache.fast_hit(addr, AccessKind::Write) {
                Some(true) => hit_cycles + write_beat,
                Some(false) => hit_cycles,
                None => self.data_write_cached(addr),
            };
            let rest = u64::from(words - 1);
            cost += match self.dcache.fast_hit_n(addr + 4, AccessKind::Write, rest) {
                Some(true) => rest * (hit_cycles + write_beat),
                Some(false) => rest * hit_cycles,
                None => {
                    let mut c = 0;
                    for w in 1..words {
                        c += match self.dcache.fast_hit(addr + w * 4, AccessKind::Write) {
                            Some(true) => hit_cycles + write_beat,
                            Some(false) => hit_cycles,
                            None => self.data_write_cached(addr + w * 4),
                        };
                    }
                    c
                }
            };
            addr += line;
        }
        crate::host::bulk_cache(u64::from(page_bytes / 4));
        cost
    }

    /// Copies `bytes` between two physical regions through the data cache:
    /// one read of each source line, one write of each destination line,
    /// plus two loop cycles of address arithmetic per line — the memory
    /// half of kernel `copy_to/from_user` and pipe buffer copies. The
    /// resident-line common case takes the flat probe; misses take the full
    /// fill/writeback paths. One batched span count per call.
    pub fn copy_range(&mut self, src: PhysAddr, dst: PhysAddr, bytes: u32) -> Cycles {
        let line = self.dcache.config().line_bytes;
        let hit_cycles = self.dcache.config().hit_cycles;
        let write_beat = self.bus.write_beat;
        let mut c: Cycles = 0;
        let mut off = 0;
        let mut lines: u64 = 0;
        while off < bytes {
            c += match self.dcache.fast_hit(src + off, AccessKind::Read) {
                Some(_) => hit_cycles,
                None => self.data_read_cached(src + off),
            };
            c += match self.dcache.fast_hit(dst + off, AccessKind::Write) {
                Some(true) => hit_cycles + write_beat,
                Some(false) => hit_cycles,
                None => self.data_write_cached(dst + off),
            };
            c += 2;
            off += line;
            lines += 1;
        }
        crate::host::bulk_cache(2 * lines);
        c
    }

    /// Zeroes a whole page. `through_cache` selects between `dcbz` line
    /// zeroing (polluting but fill-free) and cache-inhibited stores (§9's
    /// second and third experiments). Returns the total cycle cost.
    pub fn zero_page(&mut self, page_pa: PhysAddr, page_bytes: u32, through_cache: bool) -> Cycles {
        let line = self.dcache.config().line_bytes;
        let mut cost = 0;
        if through_cache {
            let mut addr = page_pa;
            while addr < page_pa + page_bytes {
                cost += self.dcbz(addr);
                addr += line;
            }
        } else {
            // Word stores straight to memory; the bus pipelines consecutive
            // beats within a line, so charge one burst write per line.
            let mut addr = page_pa;
            while addr < page_pa + page_bytes {
                self.dcache.access_inhibited();
                cost += self.bus.line_writeback;
                addr += line;
            }
        }
        cost
    }

    /// Combined I+D statistics.
    pub fn total_stats(&self) -> CacheStats {
        let mut s = *self.icache.stats();
        s.merge(self.dcache.stats());
        s
    }

    /// Resets both caches' statistics counters.
    pub fn reset_stats(&mut self) {
        self.icache.reset_stats();
        self.dcache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inhibited_read_never_fills() {
        let mut m = MemSystem::new(MemSystemConfig::ppc603());
        m.data_read(0x9000, false);
        assert!(!m.dcache.contains(0x9000));
        assert_eq!(m.dcache.stats().inhibited, 1);
    }

    #[test]
    fn cached_zero_page_pollutes_uncached_does_not() {
        let mut cached = MemSystem::new(MemSystemConfig::ppc603());
        let mut uncached = MemSystem::new(MemSystemConfig::ppc603());
        cached.zero_page(0x4000, 4096, true);
        uncached.zero_page(0x4000, 4096, false);
        assert_eq!(
            cached.dcache.resident_lines(),
            128,
            "4 KiB of 32B lines resident"
        );
        assert_eq!(uncached.dcache.resident_lines(), 0);
    }

    #[test]
    fn cached_zero_page_is_cheaper_in_isolation() {
        // dcbz establishes lines without bus reads, so with an empty cache
        // clearing through the cache is fast; the *pollution* is what costs
        // later. This asymmetry is the crux of the paper's §9.
        let mut cached = MemSystem::new(MemSystemConfig::ppc603());
        let mut uncached = MemSystem::new(MemSystemConfig::ppc603());
        let c = cached.zero_page(0x4000, 4096, true);
        let u = uncached.zero_page(0x4000, 4096, false);
        assert!(
            c < u,
            "dcbz clearing ({c}) beats uncached stores ({u}) in isolation"
        );
    }

    #[test]
    fn pollution_costs_show_up_later() {
        // Fill the D-cache with a live working set, then clear a page through
        // the cache; re-touching the working set must now be slower than if
        // the page had been cleared uncached.
        let run = |through_cache: bool| {
            let mut m = MemSystem::new(MemSystemConfig::ppc603());
            for i in 0..256 {
                m.data_read(i * 32, true); // live working set = whole cache
            }
            m.zero_page(0x10_0000, 4096, through_cache);
            let mut cost = 0;
            for i in 0..256 {
                cost += m.data_read(i * 32, true);
            }
            cost
        };
        assert!(run(true) > run(false));
    }

    #[test]
    fn ifetch_uses_icache() {
        let mut m = MemSystem::new(MemSystemConfig::ppc604());
        let a = m.insn_fetch(0x100, true);
        let b = m.insn_fetch(0x100, true);
        assert!(a > b);
        assert_eq!(m.icache.stats().misses, 1);
        assert_eq!(m.dcache.stats().accesses, 0);
    }

    #[test]
    fn writeback_cost_charged_on_dirty_eviction() {
        let mut m = MemSystem::new(MemSystemConfig::ppc603());
        // 128 sets: addresses 4 KiB apart share a set.
        let stride = 4096;
        m.data_write(0, true);
        m.data_write(stride, true);
        let clean_evict = m.data_read(2 * stride, true); // evicts a dirty line
        let plain_miss = m.data_read(0x40, true);
        assert!(clean_evict > plain_miss);
    }

    #[test]
    fn total_stats_merges_both_caches() {
        let mut m = MemSystem::new(MemSystemConfig::ppc603());
        m.insn_fetch(0, true);
        m.data_read(0, true);
        assert_eq!(m.total_stats().accesses, 2);
        m.reset_stats();
        assert_eq!(m.total_stats().accesses, 0);
    }

    #[test]
    fn prefetch_is_one_cycle_and_fills() {
        let mut m = MemSystem::new(MemSystemConfig::ppc604());
        assert_eq!(m.prefetch(0x3000), 1);
        let hit = m.data_read(0x3000, true);
        assert_eq!(hit, m.dcache.config().hit_cycles);
    }
}
