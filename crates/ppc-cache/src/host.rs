//! Host-profiler hook points (see `kernel-sim/src/hostprof.rs`).
//!
//! Mirror of `ppc_mmu::host` for the cache crate: this crate is a
//! dependency leaf, so the profiler installs an enter/exit function-pointer
//! pair here and the [`MemSystem`] entry points wrap themselves in a RAII
//! [`HostSpan`]. Dormant cost is one relaxed atomic load per access.
//!
//! [`PHASE_CACHE`] re-declares the shared phase id (this crate cannot see
//! `ppc_mmu::host`); a `kernel-sim` test pins both namespaces to the same
//! values.
//!
//! [`MemSystem`]: crate::hierarchy::MemSystem

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::OnceLock;

/// Phase id: cache/memory-hierarchy accesses.
pub const PHASE_CACHE: u8 = 1;

/// Called on span entry with the phase id; returns `(previous_phase,
/// start_ns)` where `start_ns == u64::MAX` means "not timed".
pub type EnterFn = fn(u8) -> (u8, u64);
/// Called on span exit with `(previous_phase, phase, start_ns)`.
pub type ExitFn = fn(u8, u8, u64);

/// Called with a batch of cache span *counts* from a fused bulk loop
/// (page zeroing, region copies) whose per-access RAII spans were collapsed
/// into one exact add. Span counts are order-independent sums, so batching
/// them is exact; only the stride-sampled timing loses sample candidates.
pub type BulkFn = fn(u64);

static ENABLED: AtomicBool = AtomicBool::new(false);
static HOOKS: OnceLock<(EnterFn, ExitFn)> = OnceLock::new();
static BULK: OnceLock<BulkFn> = OnceLock::new();

/// Installs the bulk span-count hook (see [`BulkFn`]).
pub fn install_bulk(f: BulkFn) {
    let _ = BULK.set(f);
}

/// Reports `spans` cache-phase span counts in one batch. A no-op unless a
/// profiler is installed and armed — same dormant cost as [`span`].
#[inline]
pub fn bulk_cache(spans: u64) {
    if !ENABLED.load(Relaxed) {
        return;
    }
    if let Some(f) = BULK.get() {
        f(spans);
    }
}

/// Installs the profiler hooks and enables the guards.
pub fn install(enter: EnterFn, exit: ExitFn) {
    let _ = HOOKS.set((enter, exit));
    ENABLED.store(true, Relaxed);
}

/// Disables the guards (the installed pair stays, dormant).
pub fn disable() {
    ENABLED.store(false, Relaxed);
}

/// True when a profiler is installed and armed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// RAII phase guard. Construct with [`span`]; the drop reports the exit.
pub struct HostSpan {
    prev: u8,
    phase: u8,
    start_ns: u64,
    active: bool,
}

/// Opens a phase span if a profiler is armed; otherwise returns an inert
/// guard at the cost of one relaxed load.
#[inline]
pub fn span(phase: u8) -> HostSpan {
    if !ENABLED.load(Relaxed) {
        return HostSpan {
            prev: 0,
            phase: 0,
            start_ns: 0,
            active: false,
        };
    }
    match HOOKS.get() {
        Some((enter, _)) => {
            let (prev, start_ns) = enter(phase);
            HostSpan {
                prev,
                phase,
                start_ns,
                active: true,
            }
        }
        None => HostSpan {
            prev: 0,
            phase: 0,
            start_ns: 0,
            active: false,
        },
    }
}

impl Drop for HostSpan {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            if let Some((_, exit)) = HOOKS.get() {
                exit(self.prev, self.phase, self.start_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_span_is_inert() {
        let s = span(PHASE_CACHE);
        assert!(!s.active);
        drop(s);
        assert!(!enabled());
    }
}
