//! Memory-bus latency model.

use crate::Cycles;

/// A fixed-latency memory bus.
///
/// The paper (§1) notes that "for commodity PC systems, the slow main memory
/// systems and buses intensify" cache effects, and Table 1 attributes part of
/// the 604/200's edge to "significantly faster main memory and a better board
/// design". The bus model captures exactly that: per-machine read/write
/// latencies for a beat (a single word) and a burst (a full cache line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bus {
    /// Cycles to read one word from DRAM (cache-inhibited load, PTE fetch...).
    pub read_beat: Cycles,
    /// Cycles to write one word to DRAM.
    pub write_beat: Cycles,
    /// Cycles to fill a whole cache line (burst read).
    pub line_fill: Cycles,
    /// Cycles to write back a whole cache line (burst write).
    pub line_writeback: Cycles,
}

impl Bus {
    /// A typical 1998-era 66 MHz-bus PReP/PowerMac board driven by a ~180 MHz
    /// CPU: roughly 3:1 clock ratio, ~8-1-1-1 burst reads.
    pub fn commodity() -> Self {
        Self {
            read_beat: 24,
            write_beat: 16,
            line_fill: 48,
            line_writeback: 36,
        }
    }

    /// A faster board ("significantly faster main memory and a better board
    /// design", Table 1's 604/200 machine).
    pub fn fast_board() -> Self {
        Self {
            read_beat: 18,
            write_beat: 12,
            line_fill: 38,
            line_writeback: 28,
        }
    }

    /// Scales every latency by `num/den`, used to derive per-machine boards
    /// from the commodity baseline.
    pub fn scaled(self, num: Cycles, den: Cycles) -> Self {
        let f = |v: Cycles| (v * num).div_ceil(den).max(1);
        Self {
            read_beat: f(self.read_beat),
            write_beat: f(self.write_beat),
            line_fill: f(self.line_fill),
            line_writeback: f(self.line_writeback),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_board_is_faster_everywhere() {
        let c = Bus::commodity();
        let f = Bus::fast_board();
        assert!(f.read_beat < c.read_beat);
        assert!(f.write_beat < c.write_beat);
        assert!(f.line_fill < c.line_fill);
        assert!(f.line_writeback < c.line_writeback);
    }

    #[test]
    fn scaling_rounds_up_and_clamps() {
        let b = Bus {
            read_beat: 3,
            write_beat: 1,
            line_fill: 10,
            line_writeback: 10,
        };
        let s = b.scaled(1, 2);
        assert_eq!(s.read_beat, 2);
        assert_eq!(s.write_beat, 1, "never scales below one cycle");
        let d = b.scaled(3, 2);
        assert_eq!(d.line_fill, 15);
    }
}
