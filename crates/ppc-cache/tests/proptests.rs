//! Property-based tests for the cache model.

use proptest::prelude::*;

use ppc_cache::cache::{AccessKind, Cache};
use ppc_cache::config::{CacheConfig, WritePolicy};
use ppc_cache::hierarchy::{MemSystem, MemSystemConfig};

fn small_cfg(ways: u32) -> CacheConfig {
    CacheConfig {
        size_bytes: 1024,
        line_bytes: 32,
        ways,
        write_policy: WritePolicy::WriteBack,
        hit_cycles: 1,
    }
}

proptest! {
    /// Immediately after any access, the line is resident (no locked ways in
    /// this test), and an immediate re-access hits.
    #[test]
    fn access_makes_resident(addrs in proptest::collection::vec(0u32..0x10_0000, 1..200),
                             ways in prop::sample::select(vec![1u32, 2, 4])) {
        let mut c = Cache::new(small_cfg(ways));
        for &a in &addrs {
            c.access(a, AccessKind::Read);
            prop_assert!(c.contains(a), "line {a:#x} must be resident after access");
            let out = c.access(a, AccessKind::Read);
            prop_assert!(out.hit, "immediate re-access of {a:#x} must hit");
        }
    }

    /// Accounting invariant: hits + misses == accesses, and residency never
    /// exceeds capacity.
    #[test]
    fn stats_add_up(ops in proptest::collection::vec((0u32..0x4000, any::<bool>()), 1..300),
                    ways in prop::sample::select(vec![1u32, 2, 4])) {
        let mut c = Cache::new(small_cfg(ways));
        for &(a, w) in &ops {
            c.access(a, if w { AccessKind::Write } else { AccessKind::Read });
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(c.resident_lines() <= (c.config().num_lines()) as u64);
        prop_assert!(s.writebacks <= s.evictions);
    }

    /// Write-back: a dirty line leaves the cache only via a writeback;
    /// clean lines never write back. Total writebacks never exceed stores.
    #[test]
    fn writebacks_bounded_by_stores(ops in proptest::collection::vec(
        (0u32..0x2000, any::<bool>()), 1..300)) {
        let mut c = Cache::new(small_cfg(2));
        let mut stores = 0u64;
        for &(a, w) in &ops {
            c.access(a, if w { AccessKind::Write } else { AccessKind::Read });
            if w {
                stores += 1;
            }
        }
        let flushed = c.flush_all();
        prop_assert!(c.stats().writebacks <= stores,
            "writebacks {} cannot exceed stores {stores}", c.stats().writebacks);
        prop_assert!(flushed <= stores);
    }

    /// Locked lines survive arbitrary pressure; after unlock they can go.
    #[test]
    fn locking_pins_lines(pressure in proptest::collection::vec(0u32..0x8000, 1..200)) {
        let mut c = Cache::new(small_cfg(2));
        let pinned = 0x1_0000u32;
        c.access(pinned, AccessKind::Read);
        prop_assert!(c.set_locked(pinned, true));
        for &a in &pressure {
            c.access(a, AccessKind::Read);
            prop_assert!(c.contains(pinned));
        }
    }

    /// The memory system charges at least the hit cost for every cacheable
    /// access, and cache-inhibited accesses never allocate.
    #[test]
    fn memsystem_costs_and_inhibition(ops in proptest::collection::vec(
        (0u32..0x100_0000, any::<bool>(), any::<bool>()), 1..200)) {
        let mut m = MemSystem::new(MemSystemConfig::ppc603());
        for &(a, w, cached) in &ops {
            let resident_before = m.dcache.contains(a);
            let c = if w { m.data_write(a, cached) } else { m.data_read(a, cached) };
            prop_assert!(c >= 1);
            if !cached {
                // An inhibited access never changes the line's residency
                // (in particular it never allocates a missing line).
                prop_assert_eq!(m.dcache.contains(a), resident_before);
            }
        }
    }

    /// dcbz never reads memory: zeroing N cold lines in an empty cache
    /// costs less than reading them would.
    #[test]
    fn dcbz_cheaper_than_fills(n in 1u32..64) {
        let mut za = MemSystem::new(MemSystemConfig::ppc604());
        let mut rd = MemSystem::new(MemSystemConfig::ppc604());
        let mut zc = 0;
        let mut rc = 0;
        for i in 0..n {
            zc += za.dcbz(i * 32);
            rc += rd.data_read(i * 32, true);
        }
        prop_assert!(zc < rc, "dcbz {zc} must beat demand fills {rc}");
    }
}
