//! Integration gate: the fused fast path (DESIGN.md §16) is a pure
//! *host-side encoding choice* — a fused run and a layered run of the same
//! cell are simulated-cycle- and counter-identical across the *entire*
//! benchmark grid: every machine row, every kernel variant, every workload.
//!
//! This is the companion to `check_grid.rs` (which, because the checker
//! forces the layered path, already compares checked-layered against
//! bare-fused runs); here the checker stays out of the picture and the only
//! thing varied is the `fused` flag itself.

use mmu_tricks::matrix::{paper_machines, paper_variants, run_cell, WORKLOADS};
use mmu_tricks::Depth;

#[test]
fn fused_and_layered_paths_are_identical_across_the_full_grid() {
    let machines = paper_machines();
    let variants = paper_variants();
    let mut cells = 0;
    for m in &machines {
        for (name, cfg) in &variants {
            for &wl in WORKLOADS {
                let mut layered = *cfg;
                layered.fused = false;
                let mut fused = *cfg;
                fused.fused = true;
                let a = run_cell(m, name, fused, wl, Depth::Quick);
                let b = run_cell(m, name, layered, wl, Depth::Quick);
                assert_eq!(
                    a.cycles, b.cycles,
                    "fused path shifted cycles at {} / {name} / {wl}",
                    m.id
                );
                assert_eq!(
                    a.stats, b.stats,
                    "fused path perturbed counters at {} / {name} / {wl}",
                    m.id
                );
                cells += 1;
            }
        }
    }
    assert_eq!(
        cells,
        machines.len() * variants.len() * WORKLOADS.len(),
        "grid shrank: the gate no longer covers every coordinate"
    );
    assert_eq!(cells, 96, "expected 4 machines x 8 configs x 3 workloads");
}
