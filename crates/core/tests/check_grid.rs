//! Integration gate: the shadow-MM oracle and runtime invariants hold over
//! the *entire* benchmark grid — every machine row, every kernel variant,
//! every workload — not just the configurations the unit tests happen to
//! exercise. A checker that is only green on the optimized 604 would miss
//! exactly the interactions this repository exists to measure (603 without
//! a hash table, eager flushes, uncached page tables, ...).
//!
//! Each cell runs twice: once with [`CheckConfig::full`] armed (any oracle
//! or invariant violation panics the cell and fails the test), once bare.
//! The pair must be cycle- and counter-identical — the zero-cost-when-off
//! obligation of DESIGN.md §12, proven across all 96 coordinates.

use kernel_sim::check::CheckConfig;
use mmu_tricks::matrix::{paper_machines, paper_variants, run_cell, WORKLOADS};
use mmu_tricks::Depth;

#[test]
fn oracle_and_invariants_green_across_the_full_grid() {
    let machines = paper_machines();
    let variants = paper_variants();
    let mut cells = 0;
    for m in &machines {
        for (name, cfg) in &variants {
            for &wl in WORKLOADS {
                let mut checked = *cfg;
                checked.check = Some(CheckConfig::full());
                let on = run_cell(m, name, checked, wl, Depth::Quick);
                let off = run_cell(m, name, *cfg, wl, Depth::Quick);
                assert_eq!(
                    on.cycles, off.cycles,
                    "check mode shifted cycles at {} / {name} / {wl}",
                    m.id
                );
                assert_eq!(
                    on.stats, off.stats,
                    "check mode perturbed counters at {} / {name} / {wl}",
                    m.id
                );
                cells += 1;
            }
        }
    }
    assert_eq!(
        cells,
        machines.len() * variants.len() * WORKLOADS.len(),
        "grid shrank: the gate no longer covers every coordinate"
    );
    assert_eq!(cells, 96, "expected 4 machines x 8 configs x 3 workloads");
}
