//! Property-based tests for the differ: the algebra a diff tool must obey
//! regardless of what the two artifacts contain.

use proptest::prelude::*;

use mmu_tricks::diff::{diff_perf, diff_reports, FlatReport};
use mmu_tricks::perf::PerfData;

/// Leaf paths a generated report draws from (shape matches the real
/// artifacts: nested, mixed subsystems).
fn keys() -> Vec<&'static str> {
    vec![
        "workloads.compile.cycles",
        "workloads.compile.tlb_reloads",
        "workloads.fault_storm.cycles",
        "workloads.trace_ref.cycles",
        "latency.page_fault.p99",
        "telemetry.epoch_cycles",
        "pteg.inserts[7]",
        "self.translate",
        "self.idle",
    ]
}

/// A report with fixed identity headers and the given numeric leaves
/// (values stay in u32 so deltas never overflow i64).
fn report_from(pairs: &[(&'static str, u32)]) -> FlatReport {
    let mut r = FlatReport {
        schema: "mmu-tricks-bench-v1".into(),
        depth: "quick".into(),
        machine: "604-133".into(),
        workload: "compile".into(),
        config: "opt".into(),
        ..FlatReport::default()
    };
    for (k, v) in pairs {
        r.numbers.insert((*k).to_string(), i64::from(*v));
    }
    r
}

/// Collapsed stacks a generated profile draws from.
fn stacks() -> Vec<&'static str> {
    vec![
        "pid1;translate",
        "pid1;translate;htab_insert",
        "pid2;page_fault",
        "pid2;page_fault;htab_insert",
        "pid3;sched",
        "idle;idle",
    ]
}

/// A folded profile from the given stack/weight pairs, on fixed recording
/// axes. The single subsystem row carries the folded total, as in a real
/// recording (every sample lands in exactly one stack and one subsystem).
fn perf_from(pairs: &[(&'static str, u32)]) -> PerfData {
    let mut folded: std::collections::BTreeMap<String, u64> = Default::default();
    for (k, w) in pairs {
        *folded.entry((*k).to_string()).or_default() += u64::from(*w);
    }
    let total: u64 = folded.values().sum();
    PerfData {
        workload: "compile".into(),
        depth: "quick".into(),
        machine: "604-133".into(),
        config: "opt".into(),
        period: 4096,
        total_cycles: total * 4096,
        baseline_cycles: total * 4096,
        interrupts: total,
        supervisor_weight: total,
        user_weight: 0,
        subsystems: vec![("translate".into(), total, total * 4096)],
        pids: vec![],
        folded: folded.into_iter().collect(),
    }
}

proptest! {
    /// diff(A, A) is identically zero on every leaf.
    #[test]
    fn self_diff_is_all_zero(
        pairs in prop::collection::vec((prop::sample::select(keys()), any::<u32>()), 0..16),
    ) {
        let a = report_from(&pairs);
        let d = diff_reports(&a, &a).unwrap();
        prop_assert_eq!(d.entries.len(), a.numbers.len());
        for e in &d.entries {
            prop_assert_eq!(e.delta, 0);
            prop_assert_eq!(e.a, e.b);
        }
        prop_assert!(d.ranked().is_empty());
        prop_assert!(d.to_json().contains("\"changed\": 0"));
    }

    /// diff(A, B) = -diff(B, A), leaf for leaf, even when the two reports
    /// have disjoint key sets.
    #[test]
    fn diff_is_antisymmetric(
        pa in prop::collection::vec((prop::sample::select(keys()), any::<u32>()), 0..16),
        pb in prop::collection::vec((prop::sample::select(keys()), any::<u32>()), 0..16),
    ) {
        let (a, b) = (report_from(&pa), report_from(&pb));
        let ab = diff_reports(&a, &b).unwrap();
        let ba = diff_reports(&b, &a).unwrap();
        prop_assert_eq!(ab.entries.len(), ba.entries.len());
        for (x, y) in ab.entries.iter().zip(ba.entries.iter()) {
            prop_assert_eq!(&x.key, &y.key);
            prop_assert_eq!(x.delta, -y.delta);
            prop_assert_eq!(x.a, y.b);
            prop_assert_eq!(x.b, y.a);
        }
    }

    /// Any identity-header mismatch is refused, whatever the payload.
    #[test]
    fn header_mismatch_is_always_refused(
        pairs in prop::collection::vec((prop::sample::select(keys()), any::<u32>()), 0..16),
        which in 0usize..4,
    ) {
        let a = report_from(&pairs);
        let mut b = a.clone();
        match which {
            0 => b.schema = "mmu-tricks-matrix-v1".into(),
            1 => b.depth = "full".into(),
            2 => b.machine = "603-swload".into(),
            _ => b.workload = "fault_storm".into(),
        }
        prop_assert!(diff_reports(&a, &b).is_err());
        // The config axis alone never refuses.
        let mut c = a.clone();
        c.config = "unopt".into();
        prop_assert!(diff_reports(&a, &c).is_ok());
    }

    /// The folded flamegraph diff conserves weight: per-stack deltas sum
    /// exactly to the headline weight delta (no stack dropped or double
    /// counted, including stacks present on only one side).
    #[test]
    fn folded_diff_weights_sum_to_headline_delta(
        pa in prop::collection::vec((prop::sample::select(stacks()), 0u32..10_000), 0..8),
        pb in prop::collection::vec((prop::sample::select(stacks()), 0u32..10_000), 0..8),
    ) {
        let (a, b) = (perf_from(&pa), perf_from(&pb));
        let d = diff_perf(&a, &b).unwrap();
        let folded_sum: i64 = d.folded.iter().map(|(_, wa, wb)| *wb as i64 - *wa as i64).sum();
        prop_assert_eq!(folded_sum, d.weight_delta());
        // And the rendered folded-diff lines carry the same sum.
        let line_sum: i64 = d
            .folded_diff_lines()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<i64>().unwrap())
            .sum();
        prop_assert_eq!(line_sum, d.weight_delta());
    }
}
