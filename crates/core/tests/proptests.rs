//! Property-based tests for the differ (the algebra a diff tool must obey
//! regardless of what the two artifacts contain) and for the mmtune
//! controller (deterministic, and free when absent or dormant).

use proptest::prelude::*;

use kernel_sim::sched::USER_BASE;
use kernel_sim::{Kernel, KernelConfig, MmtuneConfig, VsidPolicy};
use mmu_tricks::diff::{diff_perf, diff_reports, FlatReport};
use mmu_tricks::perf::PerfData;
use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

/// Leaf paths a generated report draws from (shape matches the real
/// artifacts: nested, mixed subsystems).
fn keys() -> Vec<&'static str> {
    vec![
        "workloads.compile.cycles",
        "workloads.compile.tlb_reloads",
        "workloads.fault_storm.cycles",
        "workloads.trace_ref.cycles",
        "latency.page_fault.p99",
        "telemetry.epoch_cycles",
        "pteg.inserts[7]",
        "self.translate",
        "self.idle",
    ]
}

/// A report with fixed identity headers and the given numeric leaves
/// (values stay in u32 so deltas never overflow i64).
fn report_from(pairs: &[(&'static str, u32)]) -> FlatReport {
    let mut r = FlatReport {
        schema: "mmu-tricks-bench-v1".into(),
        depth: "quick".into(),
        machine: "604-133".into(),
        workload: "compile".into(),
        config: "opt".into(),
        ..FlatReport::default()
    };
    for (k, v) in pairs {
        r.numbers.insert((*k).to_string(), i64::from(*v));
    }
    r
}

/// Collapsed stacks a generated profile draws from.
fn stacks() -> Vec<&'static str> {
    vec![
        "pid1;translate",
        "pid1;translate;htab_insert",
        "pid2;page_fault",
        "pid2;page_fault;htab_insert",
        "pid3;sched",
        "idle;idle",
    ]
}

/// A folded profile from the given stack/weight pairs, on fixed recording
/// axes. The single subsystem row carries the folded total, as in a real
/// recording (every sample lands in exactly one stack and one subsystem).
fn perf_from(pairs: &[(&'static str, u32)]) -> PerfData {
    let mut folded: std::collections::BTreeMap<String, u64> = Default::default();
    for (k, w) in pairs {
        *folded.entry((*k).to_string()).or_default() += u64::from(*w);
    }
    let total: u64 = folded.values().sum();
    PerfData {
        workload: "compile".into(),
        depth: "quick".into(),
        machine: "604-133".into(),
        config: "opt".into(),
        period: 4096,
        total_cycles: total * 4096,
        baseline_cycles: total * 4096,
        interrupts: total,
        supervisor_weight: total,
        user_weight: 0,
        subsystems: vec![("translate".into(), total, total * 4096)],
        pids: vec![],
        folded: folded.into_iter().collect(),
    }
}

proptest! {
    /// diff(A, A) is identically zero on every leaf.
    #[test]
    fn self_diff_is_all_zero(
        pairs in prop::collection::vec((prop::sample::select(keys()), any::<u32>()), 0..16),
    ) {
        let a = report_from(&pairs);
        let d = diff_reports(&a, &a).unwrap();
        prop_assert_eq!(d.entries.len(), a.numbers.len());
        for e in &d.entries {
            prop_assert_eq!(e.delta, 0);
            prop_assert_eq!(e.a, e.b);
        }
        prop_assert!(d.ranked().is_empty());
        prop_assert!(d.to_json().contains("\"changed\": 0"));
    }

    /// diff(A, B) = -diff(B, A), leaf for leaf, even when the two reports
    /// have disjoint key sets.
    #[test]
    fn diff_is_antisymmetric(
        pa in prop::collection::vec((prop::sample::select(keys()), any::<u32>()), 0..16),
        pb in prop::collection::vec((prop::sample::select(keys()), any::<u32>()), 0..16),
    ) {
        let (a, b) = (report_from(&pa), report_from(&pb));
        let ab = diff_reports(&a, &b).unwrap();
        let ba = diff_reports(&b, &a).unwrap();
        prop_assert_eq!(ab.entries.len(), ba.entries.len());
        for (x, y) in ab.entries.iter().zip(ba.entries.iter()) {
            prop_assert_eq!(&x.key, &y.key);
            prop_assert_eq!(x.delta, -y.delta);
            prop_assert_eq!(x.a, y.b);
            prop_assert_eq!(x.b, y.a);
        }
    }

    /// Any identity-header mismatch is refused, whatever the payload.
    #[test]
    fn header_mismatch_is_always_refused(
        pairs in prop::collection::vec((prop::sample::select(keys()), any::<u32>()), 0..16),
        which in 0usize..4,
    ) {
        let a = report_from(&pairs);
        let mut b = a.clone();
        match which {
            0 => b.schema = "mmu-tricks-matrix-v1".into(),
            1 => b.depth = "full".into(),
            2 => b.machine = "603-swload".into(),
            _ => b.workload = "fault_storm".into(),
        }
        prop_assert!(diff_reports(&a, &b).is_err());
        // The config axis alone never refuses.
        let mut c = a.clone();
        c.config = "unopt".into();
        prop_assert!(diff_reports(&a, &c).is_ok());
    }

    /// The folded flamegraph diff conserves weight: per-stack deltas sum
    /// exactly to the headline weight delta (no stack dropped or double
    /// counted, including stacks present on only one side).
    #[test]
    fn folded_diff_weights_sum_to_headline_delta(
        pa in prop::collection::vec((prop::sample::select(stacks()), 0u32..10_000), 0..8),
        pb in prop::collection::vec((prop::sample::select(stacks()), 0u32..10_000), 0..8),
    ) {
        let (a, b) = (perf_from(&pa), perf_from(&pb));
        let d = diff_perf(&a, &b).unwrap();
        let folded_sum: i64 = d.folded.iter().map(|(_, wa, wb)| *wb as i64 - *wa as i64).sum();
        prop_assert_eq!(folded_sum, d.weight_delta());
        // And the rendered folded-diff lines carry the same sum.
        let line_sum: i64 = d
            .folded_diff_lines()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<i64>().unwrap())
            .sum();
        prop_assert_eq!(line_sum, d.weight_delta());
    }
}

/// A small deterministic MMU-churning workload: `procs` processes each
/// touching a sliding window of pages and making syscalls for `rounds`
/// rounds, then an idle stint so idle-task work runs too.
fn churn(k: &mut Kernel, procs: u32, rounds: u32) {
    let pids: Vec<_> = (0..procs)
        .map(|_| k.spawn_process(64).expect("room for a churn process"))
        .collect();
    for r in 0..rounds {
        for &pid in &pids {
            k.switch_to(pid);
            for p in 0..8u32 {
                let page = (r * 8 + p) % 64;
                let _ = k.user_write(USER_BASE + page * PAGE_SIZE, 16);
            }
            k.sys_null();
        }
    }
    k.run_idle(20_000);
}

/// A controller with hair-trigger thresholds (the churn workload is small,
/// so the production defaults would never fire — determinism must be
/// tested over runs that actually retune).
fn eager_mmtune(epoch_shift: u32, cooldown_epochs: u32) -> MmtuneConfig {
    MmtuneConfig {
        epoch_cycles: 1u64 << epoch_shift,
        cooldown_epochs,
        bat_reload_threshold: 1,
        min_tlb_misses: 1,
        ..MmtuneConfig::default()
    }
}

/// A kernel whose knobs start off their tuned values, so the controller has
/// something to move: PTE-mapped kernel, power-of-two scatter.
fn untuned_config(mmtune: Option<MmtuneConfig>) -> KernelConfig {
    KernelConfig {
        use_bats: false,
        vsid_policy: VsidPolicy::ContextCounter { constant: 16 },
        mmtune,
        ..KernelConfig::optimized()
    }
}

/// Guards the determinism property against vacuity: the churn workload on
/// the untuned config must actually make the controller fire, so the
/// decision-log comparison below compares something.
#[test]
fn churn_on_untuned_config_provokes_retunes() {
    let mc = eager_mmtune(12, 2);
    let mut k = Kernel::boot(MachineConfig::ppc604_133(), untuned_config(Some(mc)));
    churn(&mut k, 3, 23);
    let m = k.mmtune.as_ref().expect("mmtune-enabled boot");
    assert!(
        !m.decisions.is_empty(),
        "no retunes fired; the determinism proptest would be vacuous"
    );
}

proptest! {
    /// Same seed inputs ⇒ bit-identical run: cycles, every retune decision
    /// (knob, epoch, cycle, from/to), and the final knob values. This is
    /// the property the `repro tune` artifact's reproducibility rests on.
    #[test]
    fn mmtune_is_deterministic(
        procs in 1u32..4,
        rounds in 1u32..24,
        epoch_shift in 12u32..17,
        cooldown_epochs in 0u32..3,
    ) {
        let mc = eager_mmtune(epoch_shift, cooldown_epochs);
        let run = || {
            let mut k = Kernel::boot(
                MachineConfig::ppc604_133(),
                untuned_config(Some(mc)),
            );
            churn(&mut k, procs, rounds);
            let m = k.mmtune.as_ref().expect("mmtune-enabled boot");
            (k.machine.cycles, m.decisions.clone(), m.final_values(), k.stats)
        };
        let (c1, d1, f1, s1) = run();
        let (c2, d2, f2, s2) = run();
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(f1, f2);
        prop_assert_eq!(s1, s2);
    }

    /// A dormant controller (thresholds set so no knob can ever fire) is
    /// cycle-identical to `mmtune: None` — observation is free, only
    /// applied retunes may cost. With `None` the kernel carries no
    /// controller at all, which is why mmtune-off runs are also
    /// cycle-identical to pre-mmtune kernels (BENCH_PR5.json pins that
    /// against the PR4 baselines).
    #[test]
    fn dormant_mmtune_is_cycle_identical_to_none(
        procs in 1u32..4,
        rounds in 1u32..24,
    ) {
        // Optimized kernel: BATs already on (BAT knob satisfied), scatter
        // already at the target (scatter knob satisfied), and an impossible
        // TLB-miss floor keeps the htab knob quiet.
        let dormant = MmtuneConfig {
            min_tlb_misses: u64::MAX,
            ..MmtuneConfig::default()
        };
        let run = |mmtune: Option<MmtuneConfig>| {
            let mut k = Kernel::boot(
                MachineConfig::ppc604_133(),
                KernelConfig { mmtune, ..KernelConfig::optimized() },
            );
            churn(&mut k, procs, rounds);
            (k.machine.cycles, k.stats.tlb_reloads, k.stats.mmtune_retunes)
        };
        let (on_cycles, on_reloads, retunes) = run(Some(dormant));
        let (off_cycles, off_reloads, _) = run(None);
        prop_assert_eq!(retunes, 0, "dormant controller must not fire");
        prop_assert_eq!(on_cycles, off_cycles);
        prop_assert_eq!(on_reloads, off_reloads);
    }
}
