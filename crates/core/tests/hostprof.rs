//! Host-profiler integration gates:
//!
//! 1. **Cycle identity** — an armed profiler must not perturb the
//!    simulation: a matrix sample run armed is byte-identical (cycles,
//!    stats, self-time, latency) to the same sample run dormant. Same
//!    discipline as the tracer/PMU/telemetry/checker identity tests.
//! 2. **Determinism** — two hostbench runs produce byte-identical
//!    artifacts once the documented timing fields are masked.
//!
//! These tests share one file (= one test binary) and serialize on a mutex
//! because the profiler is a process-global singleton.

use mmu_tricks::hostbench::{deterministic_part, run_hostbench, HostbenchResult};
use mmu_tricks::matrix::{paper_machines, paper_variants, run_matrix_on};
use mmu_tricks::Depth;
use mmu_tricks::{hostprof, HostPhase, PhaseCounters};

use std::sync::Mutex;

static ARM_LOCK: Mutex<()> = Mutex::new(());

/// The sample: two machines (one 603 software-reload row, one 604 hardware
/// row) × the two endpoint configs × two workloads — 8 cells spanning both
/// reload paths, both kernels, and the fault machinery.
fn matrix_sample() -> String {
    let machines: Vec<_> = paper_machines()
        .into_iter()
        .filter(|m| m.id == "603-swload" || m.id == "604-133")
        .collect();
    let variants: Vec<_> = paper_variants()
        .into_iter()
        .filter(|(name, _)| *name == "unopt" || *name == "opt")
        .collect();
    run_matrix_on(&machines, &variants, &["compile", "fault_storm"], Depth::Quick).to_json()
}

#[test]
fn armed_run_is_cycle_and_counter_identical_to_dormant() {
    let _g = ARM_LOCK.lock().unwrap();
    hostprof::disarm();
    let dormant = matrix_sample();
    hostprof::arm();
    let armed = matrix_sample();
    let counted = hostprof::snapshot();
    hostprof::disarm();
    assert!(
        counted.total_spans() > 0,
        "the armed run must actually have been observed"
    );
    assert_eq!(
        dormant, armed,
        "arming the host profiler changed simulated cycles or counters"
    );
}

/// Zeroes the `other` phase before rendering: that bucket absorbs
/// allocations from every thread that never opens a span — including the
/// libtest harness threads running next to this test — so it is excluded
/// here. The cross-process byte-comparison in `tools/host_gate.sh` covers
/// the full document, `other` included.
fn masked_deterministic_json(mut r: HostbenchResult) -> String {
    for item in &mut r.items {
        item.host.phases[HostPhase::Other as usize] = PhaseCounters::default();
    }
    deterministic_part(&r.to_json()).to_string()
}

#[test]
fn hostbench_artifacts_are_byte_identical_after_masking_timing() {
    let _g = ARM_LOCK.lock().unwrap();
    // First run warms up lazy allocations (std one-time initializers land
    // in whatever phase is current the first time a path runs); compare
    // the two runs after it.
    let _warmup = run_hostbench(Depth::Quick, 0);
    let a = run_hostbench(Depth::Quick, 0);
    let b = run_hostbench(Depth::Quick, 0);
    assert!(!hostprof::armed(), "run_hostbench must disarm on exit");
    for (ia, ib) in a.items.iter().zip(&b.items) {
        assert_eq!(ia.name, ib.name);
        assert_eq!(ia.sim_cycles, ib.sim_cycles, "{}: sim cycles drifted", ia.name);
    }
    let ja = masked_deterministic_json(a);
    let jb = masked_deterministic_json(b);
    assert!(
        ja.contains("\"allocs_per_1k_cycles_milli\""),
        "deterministic section lost its gate key"
    );
    assert_eq!(
        ja, jb,
        "hostbench deterministic sections differ between back-to-back runs"
    );
}
