//! `repro tail`: tail-latency forensics as a report and an artifact.
//!
//! The tracer's histograms put a *bound* on the p99; the tail-forensics
//! capture ([`kernel_sim::tail`]) retains the actual slowest samples with
//! their causal context. This module runs the reference workload with a
//! capture-all reservoir, reads the exact percentiles off the retained
//! tail, ranks the [`kernel_sim::TailCause`] taxonomy by cycles above the
//! median, and packages all of it as:
//!
//! * rendered tables — per-path percentiles, the ranked causes, and a dump
//!   of the top exemplars with their span stacks;
//! * the `mmu-tricks-tail-v1` artifact — integer-only JSON (plus
//!   escape-free header strings) that [`crate::diff`] can parse, with
//!   `schema`/`depth`/`machine`/`workload`/`config`/`tail` identity
//!   headers so `repro diff` refuses cross-mode comparisons.
//!
//! The report runs the workload twice, tail dormant and tail armed, and
//! records `overhead_cycles` — zero by construction (capture is purely
//! observational), and gated in CI like the tracer's own overhead.

use kernel_sim::{
    Kernel, KernelConfig, LatencyPath, TailCause, TailConfig, TailExemplar, TailState,
};
use ppc_machine::MachineConfig;

use crate::experiments::reference_workload;
use crate::tables::Table;
use crate::Depth;

/// Exemplars dumped per path in the artifact and the dump table — bounded
/// so a capture-all run does not swamp the report.
pub const DUMP_N: usize = 8;

/// The capture-all configuration the percentile reader uses: a threshold of
/// one cycle arms every sample, and a deep reservoir retains the whole 1%
/// tail of a quick reference run, so the exact p99 is read off retained
/// samples instead of a log2-bucket bound.
pub fn percentile_tail() -> TailConfig {
    TailConfig {
        threshold: Some(1),
        top_n: 512,
        window: 16,
    }
}

/// Stable identity string for an arming mode — the artifact's `tail` header
/// (and a [`crate::diff`] identity axis, so differently-armed recordings
/// refuse to diff). No escapes: the differ's parser rejects them.
pub fn tail_mode(cfg: &TailConfig) -> String {
    match cfg.threshold {
        None => format!("auto-top{}-win{}", cfg.top_n, cfg.window),
        Some(t) => format!("fixed{}-top{}-win{}", t, cfg.top_n, cfg.window),
    }
}

/// Per-path tail summary: the histogram percentiles plus the exact p99 read
/// from the exemplar reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathTail {
    /// Path name (`tlb_reload`, `page_fault`, `signal_delivery`).
    pub path: &'static str,
    /// Samples recorded on the path.
    pub count: u64,
    /// Smallest sample (cycles).
    pub min: u64,
    /// Median (bucket bound, cycles).
    pub p50: u64,
    /// 90th percentile (bucket bound, cycles).
    pub p90: u64,
    /// 99th percentile bucket bound (cycles).
    pub p99: u64,
    /// Exact 99th percentile from the reservoir (cycles).
    pub p99_exact: u64,
    /// Largest sample (cycles).
    pub max: u64,
    /// Exemplars retained for the path.
    pub retained: u64,
}

/// The complete `repro tail` result.
#[derive(Debug, Clone)]
pub struct TailReport {
    /// Depth the workload ran at (`quick` or `full`).
    pub depth: &'static str,
    /// Machine slug the run was measured on.
    pub machine: String,
    /// Kernel optimization-toggle summary.
    pub config: String,
    /// Arming-mode identity string ([`tail_mode`]).
    pub tail: String,
    /// Total cycles of the tail-armed traced run.
    pub total_cycles: u64,
    /// `|armed - dormant|` cycles for the same workload — zero by
    /// construction; CI fails if it ever is not.
    pub overhead_cycles: u64,
    /// Captures offered over the run (not all were retained).
    pub captured: u64,
    /// One summary per [`LatencyPath`].
    pub paths: Vec<PathTail>,
    /// `(cause, cycles above the path median, exemplars)` ranked by cycles
    /// descending — the causal answer to "why is the p99 what it is".
    pub ranked_causes: Vec<(TailCause, u64, u64)>,
    /// The retained exemplars, one vec per path in [`LatencyPath::ALL`]
    /// order, slowest first, trimmed to [`DUMP_N`].
    pub exemplars: Vec<Vec<TailExemplar>>,
}

/// The exact p99 off a slowest-first reservoir: the sample at rank
/// `ceil(0.99 * count)` from the bottom when the reservoir reaches down
/// that far, the bucket bound otherwise.
fn exact_p99(count: u64, bucket_bound: u64, exemplars: &[TailExemplar]) -> u64 {
    if count == 0 {
        return 0;
    }
    let idx = (count - (count * 99).div_ceil(100)) as usize;
    exemplars.get(idx).map_or(bucket_bound, |e| e.latency)
}

/// Runs the reference workload with the tail dormant and then armed with
/// `tcfg`, and assembles the report plus rendered tables: per-path
/// percentiles, ranked causes, and the exemplar dump.
pub fn tail_report_with(depth: Depth, tcfg: TailConfig) -> (TailReport, Vec<Table>) {
    let run = |tail: Option<TailConfig>| -> Kernel {
        let mut cfg = KernelConfig::optimized();
        cfg.trace = true;
        cfg.tail = tail;
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), cfg);
        reference_workload(&mut k, depth);
        k
    };
    let dormant = run(None);
    let armed = run(Some(tcfg));
    let overhead_cycles = armed.machine.cycles.abs_diff(dormant.machine.cycles);

    let t = armed.tracer.as_ref().expect("tracer enabled");
    let tl: &TailState = armed.tail.as_ref().expect("tail armed");
    let mut p50 = [0u64; 3];
    let paths: Vec<PathTail> = LatencyPath::ALL
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let h = t.latency(p);
            let (m, n90, n99) = h.percentiles();
            p50[i] = m;
            PathTail {
                path: p.name(),
                count: h.count(),
                min: h.min(),
                p50: m,
                p90: n90,
                p99: n99,
                p99_exact: exact_p99(h.count(), n99, tl.exemplars(p)),
                max: h.max(),
                retained: tl.exemplars(p).len() as u64,
            }
        })
        .collect();
    let ranked_causes = tl.attribution(p50);
    let exemplars: Vec<Vec<TailExemplar>> = LatencyPath::ALL
        .iter()
        .map(|&p| tl.exemplars(p).iter().take(DUMP_N).cloned().collect())
        .collect();

    let report = TailReport {
        depth: match depth {
            Depth::Quick => "quick",
            Depth::Full => "full",
        },
        machine: MachineConfig::ppc604_133().id(),
        config: KernelConfig::optimized().summary(),
        tail: tail_mode(&tcfg),
        total_cycles: armed.machine.cycles,
        overhead_cycles,
        captured: tl.captured(),
        paths,
        ranked_causes,
        exemplars,
    };
    let tables = report.tables();
    (report, tables)
}

/// [`tail_report_with`] under the default capture-all configuration
/// ([`percentile_tail`]) — what `repro tail` runs.
pub fn tail_report(depth: Depth) -> (TailReport, Vec<Table>) {
    tail_report_with(depth, percentile_tail())
}

impl TailReport {
    /// The top-ranked cause's stable name (`unattributed` when nothing was
    /// captured) — what the planted-regression gate greps for.
    pub fn top_cause(&self) -> &'static str {
        self.ranked_causes
            .first()
            .map_or(TailCause::Unattributed.name(), |(c, _, _)| c.name())
    }

    /// The median of `path` (indexed like [`LatencyPath::ALL`]).
    fn p50_of(&self, i: usize) -> u64 {
        self.paths.get(i).map_or(0, |p| p.p50)
    }

    /// The rendered views: percentiles, ranked causes, exemplar dump.
    pub fn tables(&self) -> Vec<Table> {
        let mut pct = Table::new(
            format!(
                "Tail percentiles per path ({}, {}, tail={}; p99 is the bucket \
                 bound, p99_exact the captured sample)",
                self.machine, self.depth, self.tail
            ),
            vec![
                "path".into(),
                "count".into(),
                "min".into(),
                "p50".into(),
                "p90".into(),
                "p99".into(),
                "p99_exact".into(),
                "max".into(),
                "retained".into(),
            ],
        );
        for p in &self.paths {
            pct.push_row(vec![
                p.path.into(),
                format!("{}", p.count),
                format!("{}", p.min),
                format!("{}", p.p50),
                format!("{}", p.p90),
                format!("{}", p.p99),
                format!("{}", p.p99_exact),
                format!("{}", p.max),
                format!("{}", p.retained),
            ]);
        }

        let above_total: u64 = self.ranked_causes.iter().map(|(_, c, _)| c).sum();
        let mut causes = Table::new(
            format!(
                "Ranked tail causes ({} exemplars retained, {} captures; \
                 cycles above the path median)",
                self.exemplars.iter().map(Vec::len).sum::<usize>(),
                self.captured
            ),
            vec![
                "cause".into(),
                "exemplars".into(),
                "cycles_above_median".into(),
                "share".into(),
            ],
        );
        for (cause, cycles, n) in &self.ranked_causes {
            let share = if above_total == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * *cycles as f64 / above_total as f64)
            };
            causes.push_row(vec![
                cause.name().into(),
                format!("{n}"),
                format!("{cycles}"),
                share,
            ]);
        }

        let mut dump = Table::new(
            format!("Top tail exemplars (up to {DUMP_N} per path, slowest first)"),
            vec![
                "path".into(),
                "latency".into(),
                "cycle".into(),
                "pid".into(),
                "cause".into(),
                "span stack".into(),
                "window".into(),
            ],
        );
        for (i, path) in LatencyPath::ALL.iter().enumerate() {
            for e in &self.exemplars[i] {
                let stack = e
                    .stack
                    .iter()
                    .map(|s| s.name())
                    .collect::<Vec<_>>()
                    .join(">");
                let window = match e.window.last() {
                    Some(r) => format!("{} events, last={}", e.window.len(), r.event.name()),
                    None => "empty".to_string(),
                };
                dump.push_row(vec![
                    path.name().into(),
                    format!("{}", e.latency),
                    format!("{}", e.cycle),
                    format!("{}", e.pid),
                    e.cause.name().into(),
                    stack,
                    window,
                ]);
            }
        }
        vec![pct, causes, dump]
    }

    /// The deterministic `mmu-tricks-tail-v1` artifact: integer-only JSON
    /// with escape-free header strings, byte-for-byte reproducible, and
    /// parseable by [`crate::diff::parse_report`]. The `causes` object
    /// keeps the full taxonomy in fixed order (zeros included) so diffs
    /// between recordings always compare the same keys.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"mmu-tricks-tail-v1\",\n");
        s.push_str("  \"workload\": \"compile+signals\",\n");
        s.push_str(&format!("  \"depth\": \"{}\",\n", self.depth));
        s.push_str(&format!("  \"machine\": \"{}\",\n", self.machine));
        s.push_str(&format!("  \"config\": \"{}\",\n", self.config));
        s.push_str(&format!("  \"tail\": \"{}\",\n", self.tail));
        s.push_str(&format!("  \"total_cycles\": {},\n", self.total_cycles));
        s.push_str(&format!(
            "  \"overhead_cycles\": {},\n",
            self.overhead_cycles
        ));
        s.push_str(&format!("  \"captured\": {},\n", self.captured));
        s.push_str(&format!("  \"top_cause\": \"{}\",\n", self.top_cause()));
        s.push_str("  \"paths\": {\n");
        for (i, p) in self.paths.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"min\": {}, \"p50\": {}, \"p90\": {}, \
                 \"p99\": {}, \"p99_exact\": {}, \"max\": {}, \"retained\": {}}}",
                p.path, p.count, p.min, p.p50, p.p90, p.p99, p.p99_exact, p.max, p.retained
            ));
            s.push_str(if i + 1 < self.paths.len() { ",\n" } else { "\n" });
        }
        s.push_str("  },\n");
        s.push_str("  \"causes\": {\n");
        for (i, cause) in TailCause::ALL.iter().enumerate() {
            let (cycles, n) = self
                .ranked_causes
                .iter()
                .find(|(c, _, _)| c == cause)
                .map_or((0, 0), |(_, cy, n)| (*cy, *n));
            s.push_str(&format!(
                "    \"{}\": {{\"above_median_cycles\": {}, \"exemplars\": {}}}",
                cause.name(),
                cycles,
                n
            ));
            s.push_str(if i + 1 < TailCause::ALL.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  },\n");
        s.push_str("  \"exemplars\": {\n");
        for (i, path) in LatencyPath::ALL.iter().enumerate() {
            s.push_str(&format!("    \"{}\": [", path.name()));
            for (j, e) in self.exemplars[i].iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"seq\": {}, \"cycle\": {}, \"pid\": {}, \"latency\": {}, \
                     \"above_median\": {}, \"cause\": \"{}\", \"stack_depth\": {}, \
                     \"window_events\": {}, \"htab_full_groups\": {}, \"zombies\": {}, \
                     \"free_frames\": {}}}",
                    e.seq,
                    e.cycle,
                    e.pid,
                    e.latency,
                    e.latency.saturating_sub(self.p50_of(i)),
                    e.cause.name(),
                    e.stack.len(),
                    e.window.len(),
                    e.mmu.htab_full_groups,
                    e.mmu.zombies(),
                    e.mmu.free_frames
                ));
            }
            s.push(']');
            s.push_str(if i + 1 < LatencyPath::ALL.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  }\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff_reports, parse_report};

    #[test]
    fn report_is_overhead_free_and_byte_identical_across_runs() {
        let (a, tables) = tail_report(Depth::Quick);
        let (b, _) = tail_report(Depth::Quick);
        assert_eq!(a.overhead_cycles, 0, "tail capture must not charge cycles");
        assert_eq!(a.to_json(), b.to_json(), "artifact must be byte-identical");
        assert!(a.captured > 0);
        assert_eq!(tables.len(), 3);
    }

    #[test]
    fn exact_p99_sits_inside_the_bucket_bound() {
        let (r, _) = tail_report(Depth::Quick);
        assert_eq!(r.paths.len(), 3);
        for p in &r.paths {
            assert!(p.count > 0, "{} has no samples", p.path);
            assert!(p.retained > 0, "{} retained nothing", p.path);
            assert!(
                p.p99_exact > 0 && p.p99_exact <= p.p99,
                "{}: exact {} vs bound {}",
                p.path,
                p.p99_exact,
                p.p99
            );
            assert!(p.p99_exact <= p.max && p.p99_exact >= p.min, "{}", p.path);
        }
    }

    #[test]
    fn causes_rank_and_exemplars_dump() {
        let (r, tables) = tail_report(Depth::Quick);
        assert!(!r.ranked_causes.is_empty());
        // Ranked by cycles-above-median, descending.
        let cycles: Vec<u64> = r.ranked_causes.iter().map(|(_, c, _)| *c).collect();
        let mut sorted = cycles.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(cycles, sorted);
        assert_ne!(r.top_cause(), "", "top cause always names something");
        // The dump is bounded and slowest-first per path.
        for per_path in &r.exemplars {
            assert!(per_path.len() <= DUMP_N);
            assert!(per_path.windows(2).all(|w| w[0].latency >= w[1].latency));
        }
        let causes = tables[1].render();
        assert!(causes.contains(r.top_cause()), "{causes}");
    }

    #[test]
    fn artifact_parses_and_diffs_against_itself() {
        let (r, _) = tail_report(Depth::Quick);
        let j = r.to_json();
        for key in [
            "\"schema\": \"mmu-tricks-tail-v1\"",
            "\"workload\": \"compile+signals\"",
            "\"machine\": \"604-133\"",
            "\"tail\": \"fixed1-top512-win16\"",
            "\"overhead_cycles\": 0",
            "\"top_cause\"",
            "\"p99_exact\"",
            "\"causes\"",
            "\"secondary_probe_storm\"",
            "\"unattributed\"",
            "\"exemplars\"",
        ] {
            assert!(j.contains(key), "artifact missing {key}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        let flat = parse_report(&j).expect("artifact must satisfy the differ");
        assert_eq!(flat.schema, "mmu-tricks-tail-v1");
        assert_eq!(flat.tail, "fixed1-top512-win16");
        assert_eq!(
            flat.numbers["paths.tlb_reload.p99_exact"] as u64,
            r.paths[0].p99_exact
        );
        let d = diff_reports(&flat, &flat.clone()).expect("self-diff");
        assert!(d.entries.iter().all(|e| e.delta == 0));
        // A dormant recording (no tail header) must refuse against this one.
        let mut dormant = flat.clone();
        dormant.tail = String::new();
        let err = diff_reports(&flat, &dormant).unwrap_err();
        assert!(err.contains("tail mismatch"), "{err}");
    }

    #[test]
    fn tail_mode_strings_are_stable() {
        assert_eq!(tail_mode(&percentile_tail()), "fixed1-top512-win16");
        assert_eq!(tail_mode(&TailConfig::auto()), "auto-top8-win16");
        assert_eq!(tail_mode(&TailConfig::fixed(200)), "fixed200-top8-win16");
    }
}
