//! The adversarial kernel driver behind `repro chaos`.
//!
//! A seeded fuzzer generates random syscall-shaped programs — mmap/munmap,
//! fork, exec, brk, pipes, signals, wild accesses that SIGSEGV on purpose —
//! and runs them on a fully-checked kernel ([`kernel_sim::CheckConfig`])
//! under full-spectrum fault injection ([`FaultInjection::chaotic`]),
//! including the mutation-site families inside hash-table rehash, mmtune
//! retune, and fatal-signal unwind. The properties asserted per run:
//!
//! * **never panic** — every generated program either completes or kills
//!   tasks through the fatal-signal machinery; any Rust panic is a bug (or
//!   a checker violation, which is the point);
//! * **never leak** — after the final task teardown, the general frame pool
//!   and the page-table pool hold exactly what they held at boot (page-cache
//!   residency accounted);
//! * **oracle- and invariant-clean** — the shadow MM model and the ported
//!   SchedInv/MMInv invariants stay green throughout;
//! * **deterministic** — the same seed produces a bit-identical
//!   [`ChaosOutcome`], cycles and counters included.
//!
//! On a violation, [`chaos_report`] converts the unwind into a
//! [`ChaosFailure`] carrying the seed, the exact step index, and the kernel
//! config summary — a one-command repro
//! (`repro chaos --seed N --steps K --verbose-from K`).

use std::panic::{catch_unwind, AssertUnwindSafe};

use kernel_sim::fixed_hash::DetHashMap;

use kernel_sim::task::TaskState;
use kernel_sim::{CheckConfig, FaultInjection, Kernel, KernelConfig, KernelError, KernelStats};
use ppc_machine::MachineConfig;

/// User base address mirrored from the kernel's process layout.
const USER_BASE: u32 = 0x1000_0000;
/// Stack top region mirrored from the kernel's process layout.
const STACK_BASE: u32 = 0x7ff0_0000;
const PAGE: u32 = 4096;

/// One chaos run's parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Fuzzer + injector seed.
    pub seed: u64,
    /// Number of fuzzed operations.
    pub steps: u32,
    /// Run with the full checker on ([`CheckConfig::full`]).
    pub check: bool,
    /// Arm the full-spectrum fault injector.
    pub inject: bool,
    /// Print every op from this step on (repro aid).
    pub verbose_from: Option<u32>,
}

impl ChaosConfig {
    /// The standard checked run for `seed`.
    pub fn checked(seed: u64, steps: u32) -> Self {
        Self {
            seed,
            steps,
            check: true,
            inject: true,
            verbose_from: None,
        }
    }

    /// The same program with the checker off (cycle-identity baseline).
    pub fn unchecked(seed: u64, steps: u32) -> Self {
        Self {
            check: false,
            ..Self::checked(seed, steps)
        }
    }
}

/// What a completed chaos run measured. `PartialEq` is the determinism
/// gate: two same-seed runs must compare equal, field for field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Full kernel counter set.
    pub stats: KernelStats,
    /// Steps actually executed.
    pub steps: u32,
    /// Tasks killed by fatal signals along the way.
    pub fatals: u32,
    /// Oracle cross-checks performed (0 when the checker was off).
    pub checked_observations: u64,
    /// Cheap invariant evaluations (0 when the checker was off).
    pub invariant_passes: u64,
    /// Heavy sweeps (0 when the checker was off).
    pub heavy_sweeps: u64,
}

/// A violation caught during a chaos run: everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The seed that found it.
    pub seed: u64,
    /// The step the panic surfaced at (minimal failing prefix: re-running
    /// with `steps = step` reproduces it).
    pub step: u32,
    /// The panic payload.
    pub message: String,
    /// The kernel configuration summary in force.
    pub config: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chaos violation: seed={} step={}\n  {}\n  config: {}\n  \
             repro: repro chaos --seed {} --steps {} --verbose-from {}",
            self.seed,
            self.step,
            self.message,
            self.config,
            self.seed,
            self.step + 1,
            self.step.saturating_sub(4),
        )
    }
}

/// xorshift64* over a SplitMix64-scrambled seed — the same generator family
/// as the kernel's fault injector, deliberately seeded differently so the
/// op stream and the injection stream are independent.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x2545_f491_4f6c_dd1d);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Self((z ^ (z >> 31)) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: u32) -> u32 {
        (self.next() % u64::from(n)) as u32
    }
}

/// Per-task fuzzer knowledge: where this task can legally write, and which
/// mmap regions it still holds.
#[derive(Debug, Clone)]
struct TaskShape {
    /// Writable heap/working-set base.
    wbase: u32,
    /// Writable pages at `wbase`.
    wpages: u32,
    /// Live `sys_mmap` regions `(start, len)`.
    mmaps: Vec<(u32, u32)>,
}

impl TaskShape {
    fn spawned(ws_pages: u32) -> Self {
        Self {
            wbase: USER_BASE,
            wpages: ws_pages,
            mmaps: Vec::new(),
        }
    }
}

struct Driver {
    rng: Rng,
    shapes: DetHashMap<u32, TaskShape>,
    bin: usize,
    pipe: Option<usize>,
    fatals: u32,
}

impl Driver {
    /// Live PIDs, from the kernel's own task table (tasks can die behind
    /// the fuzzer's back — OOM kills, injected unwinds).
    fn alive(&self, k: &Kernel) -> Vec<u32> {
        k.tasks
            .iter()
            .filter(|t| t.state != TaskState::Dead)
            .map(|t| t.pid)
            .collect()
    }

    /// Drops shapes for tasks that died behind the fuzzer's back.
    fn prune(&mut self, k: &Kernel) {
        let alive = self.alive(k);
        self.shapes.retain(|pid, _| alive.contains(pid));
    }

    /// Guarantees a current task, spawning one when the population died out.
    fn ensure_current(&mut self, k: &mut Kernel) {
        if k.current.is_some() {
            return;
        }
        if let Some(&pid) = self.alive(k).first() {
            k.switch_to(pid);
            return;
        }
        let ws = 4 + self.rng.below(12);
        let pid = k.spawn_process(ws).expect("respawn after extinction");
        self.shapes.insert(pid, TaskShape::spawned(ws));
        k.switch_to(pid);
    }

    /// Notes a syscall result: fatal signals kill the task (expected —
    /// count it and move on), resource errors are tolerated adversity.
    fn note(&mut self, r: Result<(), KernelError>) {
        if let Err(KernelError::Fatal { .. }) = r {
            self.fatals += 1;
        }
    }

    fn cur_pid(&self, k: &Kernel) -> u32 {
        k.cur().pid
    }

    /// A writable (address, max_len) window for the current task, stack as
    /// the fallback when the heap shape is unknown.
    fn writable(&mut self, k: &Kernel) -> (u32, u32) {
        let pid = self.cur_pid(k);
        match self.shapes.get(&pid) {
            Some(s) if s.wpages > 0 => (s.wbase, s.wpages * PAGE),
            _ => (STACK_BASE, 8 * PAGE),
        }
    }

    fn step(&mut self, k: &mut Kernel, i: u32, verbose: bool) {
        self.prune(k);
        self.ensure_current(k);
        let op = self.rng.below(100);
        macro_rules! trace_op {
            ($($arg:tt)*) => {
                if verbose {
                    eprintln!("  step {i}: {}", format!($($arg)*));
                }
            };
        }
        match op {
            // Population control.
            0..=7 => {
                if self.alive(k).len() < 8 {
                    let ws = 4 + self.rng.below(12);
                    trace_op!("spawn ws={ws}");
                    if let Ok(pid) = k.spawn_process(ws) {
                        self.shapes.insert(pid, TaskShape::spawned(ws));
                    }
                }
            }
            8..=17 => {
                let alive = self.alive(k);
                let pid = alive[self.rng.below(alive.len() as u32) as usize];
                trace_op!("switch_to {pid}");
                k.switch_to(pid);
            }
            18..=21 => {
                trace_op!("yield");
                k.yield_next();
            }
            // Plain memory traffic over the writable window.
            22..=39 => {
                let (base, len) = self.writable(k);
                let off = self.rng.below(len / PAGE) * PAGE;
                let n = (PAGE * (1 + self.rng.below(4))).min(len - off);
                let write = self.rng.below(2) == 0;
                trace_op!(
                    "user_{} {:#x}+{n:#x}",
                    if write { "write" } else { "read" },
                    base + off
                );
                let r = if write {
                    k.user_write(base + off, n).map(|_| ())
                } else {
                    k.user_read(base + off, n).map(|_| ())
                };
                self.note(r);
            }
            // Address-space surgery.
            40..=46 => {
                trace_op!("fork");
                let parent = self.cur_pid(k);
                if let Ok(child) = k.sys_fork() {
                    let shape = self
                        .shapes
                        .get(&parent)
                        .cloned()
                        .unwrap_or_else(|| TaskShape::spawned(0));
                    self.shapes.insert(child, shape);
                }
            }
            47..=52 => {
                let text = 2 + self.rng.below(4);
                let heap = 2 + self.rng.below(6);
                trace_op!("exec text={text} heap={heap}");
                let pid = self.cur_pid(k);
                if k.sys_exec(self.bin, text, heap).is_ok() {
                    self.shapes.insert(
                        pid,
                        TaskShape {
                            wbase: USER_BASE + text * PAGE,
                            wpages: heap,
                            mmaps: Vec::new(),
                        },
                    );
                }
            }
            53..=57 => {
                let pages = 1 + self.rng.below(32);
                trace_op!("brk {pages}");
                let pid = self.cur_pid(k);
                if k.sys_brk(pages).is_ok() {
                    if let Some(s) = self.shapes.get_mut(&pid) {
                        s.wpages = pages;
                    }
                }
            }
            58..=64 => {
                let pages = 1 + self.rng.below(16);
                trace_op!("mmap {pages} pages");
                let pid = self.cur_pid(k);
                let addr = k.sys_mmap(None, pages * PAGE);
                if let Some(s) = self.shapes.get_mut(&pid) {
                    s.mmaps.push((addr, pages * PAGE));
                }
            }
            65..=70 => {
                let pid = self.cur_pid(k);
                let region = self
                    .shapes
                    .get_mut(&pid)
                    .filter(|s| !s.mmaps.is_empty())
                    .map(|s| s.mmaps.swap_remove(0));
                if let Some((start, len)) = region {
                    trace_op!("munmap {start:#x}+{len:#x}");
                    k.sys_munmap(start, len);
                }
            }
            // Pipes: write-then-read the same count never blocks.
            71..=76 => {
                let pipe = match self.pipe {
                    Some(p) => p,
                    None => match k.pipe_create() {
                        Ok(p) => {
                            self.pipe = Some(p);
                            p
                        }
                        Err(_) => return,
                    },
                };
                let (base, _) = self.writable(k);
                let n = 64 + self.rng.below(PAGE - 64);
                trace_op!("pipe roundtrip {n} bytes");
                let r = k
                    .pipe_write(pipe, base, n)
                    .and_then(|_| k.pipe_read(pipe, base, n));
                self.note(r);
            }
            // Signals: a full install + deliver + sigreturn roundtrip.
            77..=81 => {
                let (base, _) = self.writable(k);
                trace_op!("signal roundtrip handler={base:#x}");
                let r = k.signal_roundtrip(base);
                self.note(r);
            }
            // File reads through the page cache into user memory.
            82..=86 => {
                let (base, len) = self.writable(k);
                let n = PAGE.min(len);
                let off = self.rng.below(4) * PAGE;
                trace_op!("sys_read off={off:#x} len={n:#x}");
                let r = k.sys_read(self.bin, off, base, n).map(|_| ());
                self.note(r);
            }
            87..=90 => {
                trace_op!("sys_null");
                k.sys_null();
            }
            // Wild accesses: most SIGSEGV and kill the task — on purpose.
            91..=95 => {
                let ea = 0x0800_0000 + self.rng.below(0x7000_0000 / PAGE) * PAGE;
                trace_op!("wild read {ea:#x}");
                let r = k.user_read(ea, PAGE).map(|_| ());
                self.note(r);
            }
            // Exits (the respawn in `ensure_current` keeps the run going).
            _ => {
                if self.alive(k).len() > 1 || self.rng.below(4) == 0 {
                    trace_op!("exit");
                    k.exit_current();
                }
            }
        }
    }
}

/// The kernel configuration a chaos run boots: the extended kernel (mmtune
/// on, so retune/rehash injection sites are live) plus the checker and the
/// chaotic injector as requested.
pub fn chaos_kernel_config(cfg: &ChaosConfig) -> KernelConfig {
    KernelConfig {
        check: cfg.check.then(CheckConfig::full),
        fault_injection: cfg.inject.then(|| FaultInjection::chaotic(cfg.seed)),
        ..KernelConfig::extended()
    }
}

/// Runs one chaos program to completion, asserting the never-leak gate and
/// (when checking) sweeping the final state. Panics on any violation;
/// callers wanting a structured failure use [`chaos_report`].
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    let mut step_out = 0u32;
    run_chaos_tracked(cfg, &mut step_out)
}

fn run_chaos_tracked(cfg: &ChaosConfig, at_step: &mut u32) -> ChaosOutcome {
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), chaos_kernel_config(cfg));
    let bin = k.create_file(8 * PAGE).expect("binary page cache");
    // Conservation baseline: general-pool frames free after the page cache
    // is populated, and page-table pages free after boot. Pipe ring buffers
    // hold one frame each for the kernel's lifetime (there is no
    // pipe-destroy path), so they count as accounted, not leaked.
    let free0 = k.frames.free_frames() + resident_cache(&k) + k.pipes.len();
    let pt0 = k.frames.pt_free_pages();
    let mut d = Driver {
        rng: Rng::new(cfg.seed),
        shapes: DetHashMap::default(),
        bin,
        pipe: None,
        fatals: 0,
    };
    for i in 0..cfg.steps {
        *at_step = i;
        let verbose = cfg.verbose_from.is_some_and(|v| i >= v);
        d.step(&mut k, i, verbose);
    }
    *at_step = cfg.steps;
    // Wind down: every surviving task exits through the real teardown path.
    loop {
        let alive = d.alive(&k);
        let Some(&pid) = alive.first() else { break };
        k.switch_to(pid);
        k.exit_current();
    }
    // Never-leak: both pools return exactly to their baselines (page-cache
    // frames accounted — pressure may have evicted or refilled them).
    let free_end = k.frames.free_frames() + resident_cache(&k) + k.pipes.len();
    assert_eq!(
        free_end, free0,
        "frame leak: {free0} frames accounted at boot, {free_end} at exit"
    );
    assert_eq!(
        k.frames.pt_free_pages(),
        pt0,
        "page-table page leak after full teardown"
    );
    k.check_finish();
    let (obs, inv, sweeps) = match k.check.as_ref() {
        Some(c) => (c.checked_observations, c.invariant_passes, c.heavy_sweeps),
        None => (0, 0, 0),
    };
    ChaosOutcome {
        cycles: k.machine.cycles,
        stats: k.stats,
        steps: cfg.steps,
        fatals: d.fatals,
        checked_observations: obs,
        invariant_passes: inv,
        heavy_sweeps: sweeps,
    }
}

fn resident_cache(k: &Kernel) -> usize {
    k.files.iter().map(|f| f.resident_pages()).sum()
}

/// Runs a chaos program, converting any panic into a [`ChaosFailure`] with
/// the minimal failing prefix (the step the violation surfaced at).
pub fn chaos_report(cfg: &ChaosConfig) -> Result<ChaosOutcome, Box<ChaosFailure>> {
    let mut at_step = 0u32;
    let result = catch_unwind(AssertUnwindSafe(|| run_chaos_tracked(cfg, &mut at_step)));
    result.map_err(|e| {
        let message = e
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".into());
        Box::new(ChaosFailure {
            seed: cfg.seed,
            step: at_step,
            message,
            config: chaos_kernel_config(cfg).summary(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_chaos_run_is_clean_and_deterministic() {
        let cfg = ChaosConfig::checked(42, 300);
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a, b, "same seed must be bit-identical");
        assert!(a.checked_observations > 0, "oracle never consulted");
        assert!(a.invariant_passes > 0);
        assert!(a.cycles > 0);
    }

    #[test]
    fn different_seeds_explore_different_programs() {
        let a = run_chaos(&ChaosConfig::checked(1, 200));
        let b = run_chaos(&ChaosConfig::checked(2, 200));
        assert_ne!(a.cycles, b.cycles);
    }

    #[test]
    fn check_off_is_cycle_identical() {
        let on = run_chaos(&ChaosConfig::checked(7, 250));
        let off = run_chaos(&ChaosConfig::unchecked(7, 250));
        assert_eq!(on.cycles, off.cycles, "checker charged cycles");
        assert_eq!(on.stats, off.stats, "checker perturbed counters");
        assert_eq!(off.checked_observations, 0);
    }

    #[test]
    fn failure_report_carries_seed_step_and_config() {
        // A fabricated failing run: the planted stale-VSID bug, armed
        // programmatically inside a tiny chaos-like closure.
        let cfg = ChaosConfig {
            inject: false, // keep the planted-bug repro free of injected ENOMEMs
            ..ChaosConfig::checked(3, 40)
        };
        let mut at = 0u32;
        let r = catch_unwind(AssertUnwindSafe(|| {
            let mut k = Kernel::boot(MachineConfig::ppc604_185(), chaos_kernel_config(&cfg));
            let pid = k.spawn_process(8).unwrap();
            k.switch_to(pid);
            k.user_write(USER_BASE, 8 * PAGE).unwrap();
            k.set_buggy_skip_vsid_flush(true);
            at = 17;
            let idx = k.task_idx(pid).unwrap();
            k.flush_context(idx);
            for _ in 0..8 {
                k.user_read(USER_BASE, 8 * PAGE).unwrap();
            }
            k.check_finish();
        }));
        assert!(r.is_err(), "planted bug escaped");
        assert_eq!(at, 17);
        let f = ChaosFailure {
            seed: cfg.seed,
            step: at,
            message: "MM check violation: ...".into(),
            config: chaos_kernel_config(&cfg).summary(),
        };
        let s = f.to_string();
        assert!(s.contains("seed=3"), "{s}");
        assert!(s.contains("step=17"), "{s}");
        assert!(s.contains("repro chaos --seed 3"), "{s}");
    }
}
