//! `repro diff`: structured comparison of two run artifacts.
//!
//! Every artifact this repository emits (`mmu-tricks-bench-v1`,
//! `mmu-tricks-metrics-v1`, `mmu-tricks-matrix-v1`) is integer-only JSON,
//! so a diff is exact: parse both documents, flatten every numeric leaf to
//! a dotted path (`workloads.compile.cycles`, `latency.page_fault.p99`,
//! `pteg.inserts[17]`), and subtract. The differ *refuses* to compare
//! documents whose identity headers (schema, depth, machine, workload)
//! disagree — a cycles delta between a 603 run and a 604 run is
//! meaningless, and the tool says so instead of printing it. The `config`
//! header is the one axis allowed to differ: comparing the unoptimized
//! kernel against the optimized one is the entire point.
//!
//! `repro perf diff` is the folded-stack counterpart over two `perf.data`
//! profiles: per-subsystem weight/exact deltas plus a flamegraph diff in
//! collapsed format with signed weights (feed it to difffolded.pl-style
//! tooling or read the rendered ranking).

use std::collections::BTreeMap;

use crate::perf::PerfData;
use crate::tables::Table;

/// A parsed JSON value (just enough for this repository's integer-only
/// artifacts; floats are rejected on purpose — none of our schemas emit
/// them, and exact diffing depends on that).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c == b'\\' {
                return Err(self.err("escapes are not used by any repro artifact"));
            }
            if c == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            return Err(self.err("floats are not valid in repro artifacts"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<i64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// A run artifact flattened for diffing: identity headers plus every
/// numeric leaf keyed by dotted path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlatReport {
    /// `schema` header ("" when absent).
    pub schema: String,
    /// `depth` header.
    pub depth: String,
    /// `machine` header.
    pub machine: String,
    /// `workload` header.
    pub workload: String,
    /// `config` header (the one identity field a diff may legitimately
    /// cross).
    pub config: String,
    /// `check` header ("" when absent). Artifacts recorded with the runtime
    /// checker on carry `"check": "on"`; checked and unchecked runs are
    /// cycle-identical by construction, but the header still refuses the
    /// diff — a disagreement here means one run was *observed* differently,
    /// and any delta should be re-recorded under one observer setting.
    pub check: String,
    /// `tail` header ("" when absent). Artifacts recorded with tail
    /// forensics armed declare the arming mode; like `check`, tail-armed
    /// and dormant runs are cycle-identical by construction, but the
    /// header still refuses the diff — pre-tail artifacts carry no header
    /// at all and flatten to `""`, so they stay diffable against each
    /// other.
    pub tail: String,
    /// `causal` header ("" when absent). Artifacts recorded with causal
    /// what-if scaling declare the virtual-speedup grid; a causal run's
    /// cycles are *deliberately* counterfactual, so diffing one against a
    /// plain recording would manufacture exactly the deltas the scaling
    /// injected. Pre-causal artifacts carry no header and flatten to `""`,
    /// so they stay diffable against each other.
    pub causal: String,
    /// Every numeric leaf: dotted path → value.
    pub numbers: BTreeMap<String, i64>,
}

fn flatten(prefix: &str, v: &Json, out: &mut FlatReport) {
    match v {
        Json::Num(n) => {
            out.numbers.insert(prefix.to_string(), *n);
        }
        Json::Str(s) => match prefix {
            "schema" => out.schema = s.clone(),
            "depth" => out.depth = s.clone(),
            "machine" => out.machine = s.clone(),
            "workload" => out.workload = s.clone(),
            "config" => out.config = s.clone(),
            "check" => out.check = s.clone(),
            "tail" => out.tail = s.clone(),
            "causal" => out.causal = s.clone(),
            _ => {}
        },
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), item, out);
            }
        }
        Json::Obj(fields) => {
            for (k, item) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, item, out);
            }
        }
    }
}

/// Parses an artifact into a [`FlatReport`].
pub fn parse_report(text: &str) -> Result<FlatReport, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    if p.peek().is_some() {
        return Err(p.err("trailing garbage after document"));
    }
    let mut out = FlatReport::default();
    flatten("", &v, &mut out);
    Ok(out)
}

/// One compared leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// Dotted path of the leaf.
    pub key: String,
    /// Value in A (0 when the key only exists in B).
    pub a: i64,
    /// Value in B (0 when the key only exists in A).
    pub b: i64,
    /// `b - a`.
    pub delta: i64,
}

/// A structured comparison of two flattened reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportDiff {
    /// Shared schema of the two documents.
    pub schema: String,
    /// `config` header of A.
    pub config_a: String,
    /// `config` header of B.
    pub config_b: String,
    /// Every leaf of either document, sorted by key.
    pub entries: Vec<DiffEntry>,
}

/// Refuses to relate two artifacts whose identity axes differ.
///
/// Every comparison surface in this repository — `repro diff`, `repro perf
/// diff`, and anything diffing `mmu-tricks-tune-v1` artifacts — funnels its
/// identity headers through this one function, so a new artifact schema
/// gets refusal semantics (and the same error wording gates grep for) by
/// listing its axes here instead of re-implementing the check. Each tuple
/// is `(axis name, value in A, value in B)`.
pub fn check_identity(axes: &[(&str, &str, &str)]) -> Result<(), String> {
    for (name, a, b) in axes {
        if a != b {
            return Err(format!(
                "refusing to diff: {name} mismatch (A is \"{a}\", B is \"{b}\") — \
                 these runs measure different things; re-record them on the same {name}"
            ));
        }
    }
    Ok(())
}

/// Diffs two reports, refusing incompatible cells.
///
/// The identity headers (`schema`, `depth`, `machine`, `workload`,
/// `check`) must match exactly; `config` may differ — that is the
/// before/after use case. Pre-checker artifacts carry no `check` header and
/// flatten to `""`, so they stay diffable against each other.
pub fn diff_reports(a: &FlatReport, b: &FlatReport) -> Result<ReportDiff, String> {
    check_identity(&[
        ("schema", &a.schema, &b.schema),
        ("depth", &a.depth, &b.depth),
        ("machine", &a.machine, &b.machine),
        ("workload", &a.workload, &b.workload),
        ("check", &a.check, &b.check),
        ("tail", &a.tail, &b.tail),
        ("causal", &a.causal, &b.causal),
    ])?;
    let mut keys: Vec<&String> = a.numbers.keys().chain(b.numbers.keys()).collect();
    keys.sort();
    keys.dedup();
    let entries = keys
        .into_iter()
        .map(|k| {
            let av = a.numbers.get(k).copied().unwrap_or(0);
            let bv = b.numbers.get(k).copied().unwrap_or(0);
            DiffEntry {
                key: k.clone(),
                a: av,
                b: bv,
                delta: bv - av,
            }
        })
        .collect();
    Ok(ReportDiff {
        schema: a.schema.clone(),
        config_a: a.config.clone(),
        config_b: b.config.clone(),
        entries,
    })
}

impl ReportDiff {
    /// Entries with a nonzero delta, largest absolute delta first
    /// (regressions and improvements ranked together; ties by key).
    pub fn ranked(&self) -> Vec<&DiffEntry> {
        let mut v: Vec<&DiffEntry> = self.entries.iter().filter(|e| e.delta != 0).collect();
        v.sort_by(|x, y| {
            y.delta
                .unsigned_abs()
                .cmp(&x.delta.unsigned_abs())
                .then(x.key.cmp(&y.key))
        });
        v
    }

    /// The deterministic `mmu-tricks-diff-v1` JSON: identity header plus
    /// one line per changed leaf (plus a summary count of unchanged ones).
    pub fn to_json(&self) -> String {
        let changed = self.ranked();
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"mmu-tricks-diff-v1\",\n");
        s.push_str(&format!("  \"compared_schema\": \"{}\",\n", self.schema));
        s.push_str(&format!("  \"config_a\": \"{}\",\n", self.config_a));
        s.push_str(&format!("  \"config_b\": \"{}\",\n", self.config_b));
        s.push_str(&format!("  \"keys\": {},\n", self.entries.len()));
        s.push_str(&format!("  \"changed\": {},\n", changed.len()));
        s.push_str("  \"deltas\": [\n");
        for (i, e) in changed.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"key\": \"{}\", \"a\": {}, \"b\": {}, \"delta\": {}}}",
                e.key, e.a, e.b, e.delta
            ));
            s.push_str(if i + 1 < changed.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// The rendered ranking: top `limit` deltas with percentages.
    pub fn table(&self, limit: usize) -> Table {
        let ranked = self.ranked();
        let mut t = Table::new(
            format!(
                "diff: {} changed of {} keys ({})",
                ranked.len(),
                self.entries.len(),
                self.schema
            ),
            vec![
                "key".into(),
                "a".into(),
                "b".into(),
                "delta".into(),
                "relative".into(),
            ],
        );
        for e in ranked.iter().take(limit) {
            let rel = if e.a != 0 {
                format!(
                    "{:+.1}%",
                    100.0 * e.delta as f64 / e.a.unsigned_abs() as f64
                )
            } else {
                "new".into()
            };
            t.push_row(vec![
                e.key.clone(),
                format!("{}", e.a),
                format!("{}", e.b),
                format!("{:+}", e.delta),
                rel,
            ]);
        }
        t
    }
}

/// A flamegraph/profile diff of two `perf.data` recordings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfDiff {
    /// `config` header of A.
    pub config_a: String,
    /// `config` header of B.
    pub config_b: String,
    /// Exact-cycle totals of A and B.
    pub total_cycles: (u64, u64),
    /// Weighted-sample totals of A and B.
    pub total_weight: (u64, u64),
    /// `(subsystem, weight in A, weight in B, exact cycles in A, exact
    /// cycles in B)`, one row per subsystem appearing in either profile.
    pub subsystems: Vec<(String, u64, u64, u64, u64)>,
    /// `(collapsed stack, weight in A, weight in B)`, union of both folded
    /// profiles sorted by stack.
    pub folded: Vec<(String, u64, u64)>,
}

/// Diffs two profiles, refusing incompatible recordings: workload, depth,
/// machine and sampling period must all match (weights are only comparable
/// at equal periods); kernel config may differ.
pub fn diff_perf(a: &PerfData, b: &PerfData) -> Result<PerfDiff, String> {
    check_identity(&[
        ("workload", &a.workload, &b.workload),
        ("depth", &a.depth, &b.depth),
        ("machine", &a.machine, &b.machine),
        ("period", &a.period.to_string(), &b.period.to_string()),
    ])?;
    let mut subs: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();
    for (name, w, e) in &a.subsystems {
        let s = subs.entry(name.clone()).or_default();
        s.0 = *w;
        s.2 = *e;
    }
    for (name, w, e) in &b.subsystems {
        let s = subs.entry(name.clone()).or_default();
        s.1 = *w;
        s.3 = *e;
    }
    let mut folded: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (k, w) in &a.folded {
        folded.entry(k.clone()).or_default().0 = *w;
    }
    for (k, w) in &b.folded {
        folded.entry(k.clone()).or_default().1 = *w;
    }
    Ok(PerfDiff {
        config_a: a.config.clone(),
        config_b: b.config.clone(),
        total_cycles: (a.total_cycles, b.total_cycles),
        total_weight: (a.total_weight(), b.total_weight()),
        subsystems: subs
            .into_iter()
            .map(|(n, (wa, wb, ea, eb))| (n, wa, wb, ea, eb))
            .collect(),
        folded: folded
            .into_iter()
            .map(|(k, (wa, wb))| (k, wa, wb))
            .collect(),
    })
}

impl PerfDiff {
    /// Exact-cycle delta (B − A): negative means B is faster.
    pub fn cycles_delta(&self) -> i64 {
        self.total_cycles.1 as i64 - self.total_cycles.0 as i64
    }

    /// Weighted-sample delta (B − A).
    pub fn weight_delta(&self) -> i64 {
        self.total_weight.1 as i64 - self.total_weight.0 as i64
    }

    /// The folded flamegraph diff: one `stack signed-delta` line per stack
    /// whose weight changed, sorted by stack. The deltas sum exactly to
    /// [`PerfDiff::weight_delta`] (every sample is accounted for).
    pub fn folded_diff_lines(&self) -> String {
        let mut s = String::new();
        for (key, wa, wb) in &self.folded {
            let d = *wb as i64 - *wa as i64;
            if d != 0 {
                s.push_str(&format!("{key} {d:+}\n"));
            }
        }
        s
    }

    /// Rendered per-subsystem ranking, largest exact-cycle delta first.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "perf diff: {} -> {} exact cycles ({:+})",
                self.total_cycles.0,
                self.total_cycles.1,
                self.cycles_delta()
            ),
            vec![
                "subsystem".into(),
                "weight_a".into(),
                "weight_b".into(),
                "weight_delta".into(),
                "exact_a".into(),
                "exact_b".into(),
                "exact_delta".into(),
            ],
        );
        let mut rows = self.subsystems.clone();
        rows.sort_by(|x, y| {
            let dx = (x.4 as i64 - x.3 as i64).unsigned_abs();
            let dy = (y.4 as i64 - y.3 as i64).unsigned_abs();
            dy.cmp(&dx).then(x.0.cmp(&y.0))
        });
        for (name, wa, wb, ea, eb) in rows {
            if wa == 0 && wb == 0 && ea == 0 && eb == 0 {
                continue;
            }
            t.push_row(vec![
                name,
                format!("{wa}"),
                format!("{wb}"),
                format!("{:+}", wb as i64 - wa as i64),
                format!("{ea}"),
                format!("{eb}"),
                format!("{:+}", eb as i64 - ea as i64),
            ]);
        }
        t
    }

    /// Flat `key value` summary lines (gates grep these).
    pub fn summary(&self) -> String {
        format!(
            "cycles_a {}\ncycles_b {}\ncycles_delta {:+}\nweight_a {}\nweight_b {}\n\
             weight_delta {:+}\nstacks_changed {}\n",
            self.total_cycles.0,
            self.total_cycles.1,
            self.cycles_delta(),
            self.total_weight.0,
            self.total_weight.1,
            self.weight_delta(),
            self.folded.iter().filter(|(_, wa, wb)| wa != wb).count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(config: &str, cycles: u64, faults: u64) -> String {
        format!(
            "{{\"schema\": \"mmu-tricks-bench-v1\", \"depth\": \"quick\", \
             \"machine\": \"604-133\", \"config\": \"{config}\", \
             \"workloads\": {{\"compile\": {{\"cycles\": {cycles}, \
             \"page_faults\": {faults}}}, \"list\": [1, 2, 3]}}}}"
        )
    }

    #[test]
    fn parser_handles_every_artifact_shape() {
        let r = parse_report(&doc("opt", 100, 5)).unwrap();
        assert_eq!(r.schema, "mmu-tricks-bench-v1");
        assert_eq!(r.machine, "604-133");
        assert_eq!(r.numbers["workloads.compile.cycles"], 100);
        assert_eq!(r.numbers["workloads.list[2]"], 3);
        assert!(parse_report("{\"x\": 1.5}").is_err(), "floats rejected");
        assert!(parse_report("{\"x\": 1} trailing").is_err());
        assert!(parse_report("").is_err());
        // Negative numbers parse (diff JSON itself contains them).
        assert_eq!(parse_report("{\"d\": -42}").unwrap().numbers["d"], -42);
    }

    #[test]
    fn diff_subtracts_and_ranks() {
        let a = parse_report(&doc("unopt", 1000, 50)).unwrap();
        let b = parse_report(&doc("opt", 900, 80)).unwrap();
        let d = diff_reports(&a, &b).unwrap();
        let cycles = d
            .entries
            .iter()
            .find(|e| e.key == "workloads.compile.cycles")
            .unwrap();
        assert_eq!(cycles.delta, -100);
        assert_eq!(d.ranked()[0].key, "workloads.compile.cycles");
        assert_eq!(d.config_a, "unopt");
        assert_eq!(d.config_b, "opt");
        let j = d.to_json();
        assert!(j.contains("\"schema\": \"mmu-tricks-diff-v1\""));
        assert!(j.contains("\"delta\": -100"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn incompatible_cells_are_refused_with_a_clear_error() {
        let a = parse_report(&doc("opt", 100, 5)).unwrap();
        let mut b = a.clone();
        b.machine = "603-133".into();
        let err = diff_reports(&a, &b).unwrap_err();
        assert!(err.contains("machine mismatch"), "{err}");
        assert!(err.contains("604-133") && err.contains("603-133"), "{err}");
        let mut c = a.clone();
        c.depth = "full".into();
        assert!(diff_reports(&a, &c).unwrap_err().contains("depth mismatch"));
        // Config difference is the use case, never an error.
        let mut d = a.clone();
        d.config = "other".into();
        assert!(diff_reports(&a, &d).is_ok());
    }

    #[test]
    fn check_header_mismatch_is_refused() {
        // An artifact recorded under the runtime checker declares it; a
        // checked run must not be diffed against an unchecked one.
        let a = parse_report(&doc("opt", 100, 5)).unwrap();
        let mut b = a.clone();
        b.check = "on".into();
        let err = diff_reports(&a, &b).unwrap_err();
        assert!(err.contains("check mismatch"), "{err}");
        assert!(err.contains("re-record"), "{err}");
        // Symmetric: A checked, B not.
        let err = diff_reports(&b, &a).unwrap_err();
        assert!(err.contains("check mismatch"), "{err}");
        // Both checked (or both unchecked) diff fine.
        let c = b.clone();
        assert!(diff_reports(&b, &c).is_ok());
        assert!(diff_reports(&a, &a.clone()).is_ok());
    }

    #[test]
    fn tail_header_mismatch_is_refused() {
        // An artifact recorded with tail forensics armed declares it; it
        // must not be diffed against a dormant recording.
        let a = parse_report(&doc("opt", 100, 5)).unwrap();
        let mut b = a.clone();
        b.tail = "auto".into();
        let err = diff_reports(&a, &b).unwrap_err();
        assert!(err.contains("tail mismatch"), "{err}");
        assert!(err.contains("re-record"), "{err}");
        let err = diff_reports(&b, &a).unwrap_err();
        assert!(err.contains("tail mismatch"), "{err}");
        // Both armed the same way (or both dormant) diff fine.
        assert!(diff_reports(&b, &b.clone()).is_ok());
        assert!(diff_reports(&a, &a.clone()).is_ok());
    }

    #[test]
    fn tail_header_parses_and_old_artifacts_default_to_empty() {
        let with = "{\"schema\": \"mmu-tricks-tail-v1\", \"tail\": \"auto\", \"n\": 1}";
        let r = parse_report(with).unwrap();
        assert_eq!(r.tail, "auto");
        // Every pre-tail artifact (BENCH_PR*.json, matrix, metrics) has no
        // header at all: it must parse, default to "", and stay diffable.
        let without = parse_report(&doc("opt", 1, 1)).unwrap();
        assert_eq!(without.tail, "");
        assert!(diff_reports(&without, &without.clone()).is_ok());
    }

    #[test]
    fn causal_header_mismatch_is_refused() {
        // A causal artifact's cycles are deliberately counterfactual:
        // diffing one against a plain recording would just print the
        // virtual speedups back as "regressions".
        let a = parse_report(&doc("opt", 100, 5)).unwrap();
        let mut b = a.clone();
        b.causal = "grid-f0-25-50-75".into();
        let err = diff_reports(&a, &b).unwrap_err();
        assert!(err.contains("causal mismatch"), "{err}");
        assert!(err.contains("re-record"), "{err}");
        let err = diff_reports(&b, &a).unwrap_err();
        assert!(err.contains("causal mismatch"), "{err}");
        // Same grid on both sides (or neither) diffs fine.
        assert!(diff_reports(&b, &b.clone()).is_ok());
        assert!(diff_reports(&a, &a.clone()).is_ok());
    }

    #[test]
    fn causal_header_parses_and_old_artifacts_default_to_empty() {
        let with = "{\"schema\": \"mmu-tricks-causal-v1\", \"causal\": \"grid-f0-25-50-75\", \"n\": 1}";
        let r = parse_report(with).unwrap();
        assert_eq!(r.causal, "grid-f0-25-50-75");
        // Every pre-causal artifact has no header at all: it must parse,
        // default to "", and stay diffable.
        let without = parse_report(&doc("opt", 1, 1)).unwrap();
        assert_eq!(without.causal, "");
        assert!(diff_reports(&without, &without.clone()).is_ok());
    }

    #[test]
    fn check_header_parses_and_old_artifacts_default_to_empty() {
        let with = "{\"schema\": \"mmu-tricks-bench-v1\", \"check\": \"on\", \"n\": 1}";
        let r = parse_report(with).unwrap();
        assert_eq!(r.check, "on");
        // Pre-checker artifacts (BENCH_PR3/4/5.json) have no header at all.
        let without = parse_report(&doc("opt", 1, 1)).unwrap();
        assert_eq!(without.check, "");
    }

    #[test]
    fn check_identity_reports_the_first_mismatched_axis() {
        assert!(check_identity(&[("depth", "quick", "quick")]).is_ok());
        assert!(check_identity(&[]).is_ok());
        let err = check_identity(&[
            ("depth", "quick", "quick"),
            ("machine", "604-133", "603-swload"),
            ("workload", "compile", "storm"),
        ])
        .unwrap_err();
        assert!(err.contains("machine mismatch"), "{err}");
    }

    #[test]
    fn self_diff_is_all_zero_and_diff_is_antisymmetric() {
        let a = parse_report(&doc("unopt", 1234, 9)).unwrap();
        let b = parse_report(&doc("opt", 777, 30)).unwrap();
        assert!(diff_reports(&a, &a)
            .unwrap()
            .entries
            .iter()
            .all(|e| e.delta == 0));
        let ab = diff_reports(&a, &b).unwrap();
        let ba = diff_reports(&b, &a).unwrap();
        for (x, y) in ab.entries.iter().zip(ba.entries.iter()) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.delta, -y.delta);
        }
    }
}
