//! E-TUNE: does closing the PMU feedback loop beat the static §5.1 config?
//!
//! The paper tunes its MMU knobs by hand, once, with the 604's performance
//! monitor on a compile workload — and §7 leaves "looks inefficient"
//! observations on the table. This experiment gates the closed loop built
//! in this repository (the offline coordinate descent of [`crate::tune`],
//! with the in-kernel mmtune controller as one of its axes) against that
//! static configuration, on the fault-storm workload the static config was
//! *not* hand-tuned for:
//!
//! 1. **Wins** — the tuned configuration strictly beats static `opt` on at
//!    least 2 of the 4 matrix machines. (Empirically it is the §5.2
//!    scatter constant that flips under a fault storm: a constant tuned
//!    for compile-shaped hot-spots is not the best spread for an
//!    injection-driven fault pattern, and the 604s' hardware table walk
//!    pays for every collision.)
//! 2. **Hysteresis bound** — no machine loses by more than 2%. The
//!    descent's candidate set contains the baseline, so a regression means
//!    the tuner itself is broken, not just unlucky.
//! 3. **Determinism** — re-tuning the cheapest row reproduces the identical
//!    outcome, byte for byte (the artifact is diffable and CI-pinnable).

use crate::tables::Table;
use crate::tune::{tune_cell, tune_workload, TuneResult};
use crate::Depth;

/// The complete E-TUNE result.
#[derive(Debug, Clone)]
pub struct TuneGateResult {
    /// The per-machine descent outcomes.
    pub result: TuneResult,
    /// Gate 1: tuned strictly beats static on ≥ 2 of 4 machines.
    pub enough_wins: bool,
    /// Gate 2: no machine regresses past the 2% hysteresis bound.
    pub never_loses: bool,
    /// Gate 3: re-running one cell's descent reproduces it exactly.
    pub deterministic: bool,
}

impl TuneGateResult {
    /// All three gates at once (what CI checks).
    pub fn holds(&self) -> bool {
        self.enough_wins && self.never_loses && self.deterministic
    }
}

/// Runs the fault-storm descent on every machine and gates the signs.
pub fn exp_tune(depth: Depth) -> (TuneGateResult, Table) {
    let result = tune_workload("fault_storm", depth);
    let machines = crate::matrix::paper_machines();
    let again = tune_cell(&machines[1], "fault_storm", depth);
    let deterministic = result.outcomes[1] == again;
    let gates = TuneGateResult {
        enough_wins: result.wins() >= 2,
        never_loses: result.never_loses(),
        deterministic,
        result,
    };

    let mut t = gates.result.table();
    t.push_row(vec![
        "(gates)".into(),
        format!("wins {}/4", gates.result.wins()),
        if gates.enough_wins { "≥2: pass" } else { "≥2: FAIL" }.into(),
        if gates.never_loses {
            "bound: pass"
        } else {
            "bound: FAIL"
        }
        .into(),
        String::new(),
        if gates.deterministic {
            "deterministic: pass"
        } else {
            "deterministic: FAIL"
        }
        .into(),
    ]);
    (gates, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_config_beats_static_opt_where_it_matters() {
        let (r, t) = exp_tune(Depth::Quick);
        assert!(
            r.enough_wins,
            "tuned must beat static opt on ≥2 machines: {:?}",
            r.result
                .outcomes
                .iter()
                .map(|o| (o.machine, o.delta()))
                .collect::<Vec<_>>()
        );
        assert!(r.never_loses, "a tuned cell regressed past the 2% bound");
        assert!(r.deterministic, "descent must be reproducible");
        assert!(r.holds());
        assert_eq!(r.result.outcomes.len(), 4);
        let s = t.render();
        assert!(s.contains("pass") && !s.contains("FAIL"));
    }
}
