//! Figure 1: the PowerPC hash-table translation, as an executable
//! walkthrough.

use ppc_mmu::addr::{EffectiveAddress, Vsid};
use ppc_mmu::hash::HashFunction;
use ppc_mmu::segment::SegmentRegisters;

/// A rendered, step-by-step trace of one address translation through the
/// Figure 1 pipeline: 32-bit EA → segment registers → 52-bit VA → hash →
/// PTEG → 32-bit PA.
pub fn translation_walkthrough(ea_raw: u32, vsid_raw: u32, rpn: u32) -> String {
    let mut srs = SegmentRegisters::new();
    let ea = EffectiveAddress(ea_raw);
    srs.set(ea.sr_index(), Vsid::new(vsid_raw));
    let va = srs.translate(ea);
    let hash = HashFunction::new(2048);
    let primary = hash.pteg_index(va.vsid, va.page_index, false);
    let secondary = hash.pteg_index(va.vsid, va.page_index, true);
    let pa = ppc_mmu::addr::phys(rpn, va.offset);
    let mut s = String::new();
    s.push_str("Figure 1: PowerPC hash table translation\n\n");
    s.push_str(&format!("32-bit effective address   {:#010x}\n", ea.0));
    s.push_str(&format!(
        "  = SR#{:x} | page index {:#06x} | offset {:#05x}\n",
        ea.sr_index(),
        ea.page_index(),
        ea.offset()
    ));
    s.push_str(&format!(
        "segment register {:x} holds VSID {:#08x}\n",
        ea.sr_index(),
        va.vsid.raw()
    ));
    s.push_str(&format!(
        "52-bit virtual address     VSID {:#08x} | page index {:#06x} | offset {:#05x}\n",
        va.vsid.raw(),
        va.page_index,
        va.offset
    ));
    s.push_str(&format!(
        "  VPN = {:#012x}, API = {:#04x}\n",
        va.vpn(),
        va.api()
    ));
    s.push_str(&format!(
        "hash: primary PTEG {primary} (of 2048), secondary PTEG {secondary}\n"
    ));
    s.push_str(&format!(
        "PTE supplies RPN {rpn:#07x}\n32-bit physical address    {pa:#010x}\n"
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkthrough_contains_every_stage() {
        let s = translation_walkthrough(0x3012_3abc, 0x123456, 0x54321);
        assert!(s.contains("SR#3"));
        assert!(s.contains("page index 0x0123"));
        assert!(s.contains("offset 0xabc"));
        assert!(s.contains("VSID 0x123456"));
        assert!(s.contains("primary PTEG"));
        assert!(
            s.contains("0x54321abc"),
            "final PA composed from RPN + offset:\n{s}"
        );
    }

    #[test]
    fn primary_and_secondary_differ() {
        let s = translation_walkthrough(0x0000_1000, 0x42, 1);
        // Crude but effective: both PTEG numbers are printed and differ.
        let line = s.lines().find(|l| l.starts_with("hash:")).unwrap();
        let nums: Vec<&str> = line
            .split(|c: char| !c.is_ascii_digit())
            .filter(|t| !t.is_empty())
            .collect();
        assert!(nums.len() >= 3);
    }
}
