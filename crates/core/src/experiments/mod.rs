//! One runner per table, figure, and quoted experimental result of the
//! paper. Each returns a structured result carrying the paper's published
//! values next to the simulator's measurements, plus a [`crate::tables::Table`]
//! rendering.
//!
//! Experiment index (see DESIGN.md §3):
//!
//! | id | runner |
//! |---|---|
//! | FIG1 | [`fig1::translation_walkthrough`] |
//! | E-BAT | [`narrative::exp_bat`] |
//! | E-HASH | [`narrative::exp_hash_util`] |
//! | E-FAST | [`narrative::exp_fast_reload`] |
//! | T1 | [`paper_tables::table1`] |
//! | E-LAZY | [`narrative::exp_lazy`] |
//! | E-IDLE | [`narrative::exp_idle_reclaim`] |
//! | E-MMAP | [`narrative::exp_mmap_cutoff`] |
//! | T2 | [`paper_tables::table2`] |
//! | E-CACHE | [`cache::exp_cache_pollution`] |
//! | E-CLEAR | [`cache::exp_page_clear`] |
//! | T3 | [`paper_tables::table3`] |
//! | §10 extensions | [`cache::exp_extensions`] |
//! | E-PRESSURE | [`pressure::exp_pressure`] |
//! | E-PMU | [`pmu::exp_pmu`] |
//! | E-MATRIX | [`ematrix::exp_matrix`] |
//! | E-TUNE | [`etune::exp_tune`] |
//! | E-CHECK | [`echeck::exp_check`] |
//! | E-TAIL | [`etail::exp_tail`] |
//! | E-CAUSAL | [`ecausal::exp_causal`] |

pub mod ablate;
pub mod artifacts;
pub mod cache;
pub mod echeck;
pub mod ecausal;
pub mod ematrix;
pub mod etail;
pub mod etune;
pub mod extended;
pub mod fig1;
pub mod iobat;
pub mod multiuser;
pub mod narrative;
pub mod paper_tables;
pub mod pmu;
pub mod pressure;
pub mod trace;

pub use ablate::{
    ablate_htab_size, ablate_reclaim_policy, ablate_replacement, ablate_scatter, ablate_tlb_reach,
};
pub use artifacts::{reference_workload, trace_artifacts, LatencySummary, TraceArtifacts};
pub use cache::{exp_cache_pollution, exp_extensions, exp_page_clear};
pub use ecausal::{exp_causal, CausalGateResult};
pub use echeck::{exp_check, CheckGateResult};
pub use ematrix::{exp_matrix, MatrixResult, OptimizationRow};
pub use etail::{exp_tail, TailGateResult};
pub use etune::{exp_tune, TuneGateResult};
pub use extended::extended_suite;
pub use fig1::translation_walkthrough;
pub use iobat::exp_io_bat;
pub use multiuser::exp_multiuser;
pub use narrative::{
    exp_bat, exp_fast_reload, exp_hash_util, exp_idle_reclaim, exp_lazy, exp_mmap_cutoff,
};
pub use paper_tables::{table1, table2, table3};
pub use pmu::{exp_pmu, PmuConvergenceRow, PmuResult};
pub use pressure::{exp_pressure, run_pressure, run_pressure_on};
pub use trace::{memory_hierarchy, trace_compile};
