//! E-CAUSAL: do exact virtual speedups predict *measured* deltas?
//!
//! A what-if profiler that mispredicts is worse than none — it prices
//! optimizations nobody should buy. This experiment checks the causal
//! engine against ground truth the harness can measure independently:
//!
//! 1. **Delta explained** — the matrix already measures how much slower the
//!    software-reload 603 row is than the same 603 with the hash table off:
//!    the gap is (almost entirely) hash-table reload work. Virtually
//!    zeroing the `tlb_reload` path on *both* rows prices that work
//!    exactly, so the difference of the two causal payoffs must reproduce
//!    the measured row delta within a small epsilon. The residual is real:
//!    reload code also pollutes the cache, and causal scaling honestly
//!    preserves that state evolution while discounting only the charges.
//! 2. **Idle buys nothing** — the paper's §9 cautionary tale, quantified:
//!    on the latency-bound fault-storm workload the idle task runs inside
//!    fixed I/O stalls, so a virtual idle-task speedup just fits more
//!    housekeeping into the same wait — end-to-end payoff must be ~0 ppm,
//!    and the marginal ranking must price it below the reload path. (On
//!    the *compile* workload the same speedup honestly buys ~2%: a faster
//!    idle task pre-clears more pages, which takes clears off the demand
//!    path — a capacity effect, not a latency one. The payoff tables keep
//!    it; the §9 claim is specifically about waits.)
//! 3. **Reproducible** — a trimmed `repro causal` grid recorded twice is
//!    byte-identical (curves, ranking, artifact), and its factor-0 runs
//!    match the plain baselines (`identity_ok`).

use kernel_sim::causal::{CausalConfig, CausalPath, Ratio};
use kernel_sim::{KernelConfig, Subsystem};

use crate::causal::{causal_report_on, measure_cycles, CausalTarget};
use crate::matrix::{paper_machines, MatrixMachine};
use crate::tables::Table;
use crate::Depth;

/// Gate 1 tolerance: the causal explanation must land within 1% of the
/// measured row delta (ppm of the software-reload row's end-to-end
/// cycles; measured residual is ~0.4%). The residual is the reload code's
/// cache pollution, which scaling preserves by design.
pub const DELTA_EPSILON_PPM: i64 = 10_000;

/// Gate 2 bound: zeroing the idle task's self-time may move end-to-end
/// fault-storm cycles by at most 0.2% — "optimizing the idle task" buys
/// nothing when the idle task runs inside I/O waits (§9). The measured
/// value is a few cycles in tens of millions (0 ppm).
pub const IDLE_PAYOFF_BOUND_PPM: i64 = 2_000;

/// The complete E-CAUSAL result.
#[derive(Debug, Clone)]
pub struct CausalGateResult {
    /// Measured end-to-end delta: 603-swload minus 603-nohtab (cycles).
    pub measured_delta: i64,
    /// Causal explanation: difference of the two rows' zeroed-reload
    /// payoffs (cycles).
    pub explained_delta: i64,
    /// `|measured - explained|` in ppm of the swload row's cycles.
    pub residual_ppm: i64,
    /// Gate 1: residual within [`DELTA_EPSILON_PPM`].
    pub delta_explained: bool,
    /// End-to-end payoff of a 100% idle-task speedup on fault_storm (ppm).
    pub idle_payoff_ppm: i64,
    /// Gate 2: `|idle_payoff_ppm|` within [`IDLE_PAYOFF_BOUND_PPM`], and
    /// the marginal ranking prices the idle task below the reload path.
    pub idle_buys_nothing: bool,
    /// Gate 3: trimmed grid byte-identical across recordings, identity ok.
    pub reproducible: bool,
}

impl CausalGateResult {
    /// All three gates at once (what CI checks).
    pub fn holds(&self) -> bool {
        self.delta_explained && self.idle_buys_nothing && self.reproducible
    }
}

fn machine_row(id: &str) -> MatrixMachine {
    paper_machines()
        .into_iter()
        .find(|m| m.id == id)
        .unwrap_or_else(|| panic!("unknown matrix machine {id:?}"))
}

fn ppm_of(delta: i64, baseline: u64) -> i64 {
    (delta as i128 * 1_000_000 / (baseline as i128).max(1)) as i64
}

/// Runs all three gates and renders the verdict table.
pub fn exp_causal(depth: Depth) -> (CausalGateResult, Table) {
    // Gate 1: plain optimized kernel (no mmtune — the rows must differ in
    // reload mechanism only), compile workload, both 603 rows, each run
    // plain and with the reload path virtually zeroed.
    let zero_reload = CausalConfig::identity().scale_path(CausalPath::TlbReload, Ratio::ZERO);
    let plain = KernelConfig::optimized;
    let with_zero = || {
        let mut cfg = plain();
        cfg.causal = Some(zero_reload);
        cfg
    };
    let sw = machine_row("603-swload");
    let no = machine_row("603-nohtab");
    let c_sw = measure_cycles(&sw, plain(), "compile", depth);
    let c_no = measure_cycles(&no, plain(), "compile", depth);
    let c_sw_z = measure_cycles(&sw, with_zero(), "compile", depth);
    let c_no_z = measure_cycles(&no, with_zero(), "compile", depth);
    let measured_delta = c_sw as i64 - c_no as i64;
    let explained_delta = (c_sw as i64 - c_sw_z as i64) - (c_no as i64 - c_no_z as i64);
    let residual_ppm = ppm_of((measured_delta - explained_delta).abs(), c_sw);
    let delta_explained = residual_ppm <= DELTA_EPSILON_PPM;

    // Gates 2 + 3: a trimmed grid (flagship machine, the latency-bound
    // fault storm, reload path vs idle self-time) recorded twice.
    let m604 = [machine_row("604-133")];
    let targets = [
        CausalTarget::Path(CausalPath::TlbReload),
        CausalTarget::Sub(Subsystem::Idle),
    ];
    let report = causal_report_on(&m604, &["fault_storm"], &targets, depth);
    let again = causal_report_on(&m604, &["fault_storm"], &targets, depth);

    let cell = &report.cells[0];
    let mut cfg_idle_zero = crate::causal::cell_config();
    cfg_idle_zero.causal = Some(CausalConfig::identity().scale_subsystem(Subsystem::Idle, Ratio::ZERO));
    let c_idle_zero = measure_cycles(&m604[0], cfg_idle_zero, "fault_storm", depth);
    let idle_payoff_ppm = ppm_of(cell.baseline_cycles as i64 - c_idle_zero as i64, cell.baseline_cycles);
    let rank_of = |id: &str| report.ranking.iter().position(|(t, _)| t == id);
    let idle_ranked_below_reload = rank_of("sub:idle") > rank_of("path:tlb_reload");
    let idle_buys_nothing = idle_payoff_ppm.abs() <= IDLE_PAYOFF_BOUND_PPM && idle_ranked_below_reload;

    let reproducible = report.to_json() == again.to_json() && report.identity_ok();

    let gates = CausalGateResult {
        measured_delta,
        explained_delta,
        residual_ppm,
        delta_explained,
        idle_payoff_ppm,
        idle_buys_nothing,
        reproducible,
    };

    let mut table = Table::new(
        format!(
            "E-CAUSAL: virtual speedups vs ground truth (delta on compile, \
             idle on fault_storm; {}; eps {DELTA_EPSILON_PPM} ppm, idle \
             bound {IDLE_PAYOFF_BOUND_PPM} ppm)",
            match depth {
                Depth::Quick => "quick",
                Depth::Full => "full",
            }
        ),
        vec!["gate".into(), "measured".into(), "predicted".into(), "verdict".into()],
    );
    table.push_row(vec![
        "htab-reload delta explained".into(),
        format!("{measured_delta} cycles"),
        format!("{explained_delta} cycles ({residual_ppm} ppm residual)"),
        if gates.delta_explained {
            "delta explained: pass"
        } else {
            "delta explained: FAIL"
        }
        .into(),
    ]);
    table.push_row(vec![
        "idle speedup buys ~0 (§9)".into(),
        format!("{idle_payoff_ppm} ppm end-to-end"),
        format!(
            "ranked {} reload path",
            if idle_ranked_below_reload { "below" } else { "ABOVE" }
        ),
        if gates.idle_buys_nothing {
            "idle buys nothing: pass"
        } else {
            "idle buys nothing: FAIL"
        }
        .into(),
    ]);
    table.push_row(vec![
        "byte-reproducible + identity".into(),
        format!("identity_ok={}", i32::from(report.identity_ok())),
        "artifact bytes equal across recordings".into(),
        if gates.reproducible {
            "reproducible: pass"
        } else {
            "reproducible: FAIL"
        }
        .into(),
    ]);
    (gates, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_predictions_match_ground_truth() {
        let (r, t) = exp_causal(Depth::Quick);
        assert!(
            r.delta_explained,
            "zeroed reload must explain the row delta: measured {} vs explained {} ({} ppm)",
            r.measured_delta, r.explained_delta, r.residual_ppm
        );
        assert!(
            r.idle_buys_nothing,
            "idle speedup must buy ~0: {} ppm",
            r.idle_payoff_ppm
        );
        assert!(r.reproducible);
        assert!(r.holds());
        let s = t.render();
        assert!(s.contains("pass") && !s.contains("FAIL"), "{s}");
    }
}
