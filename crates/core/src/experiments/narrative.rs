//! The paper's narrative (in-text) experiments: §5.1 BATs, §5.2 hash-table
//! utilization, §6.1 fast reloads, §7 lazy flushes / idle reclaim / the
//! range-flush cutoff.

use kernel_sim::sched::USER_BASE;
use kernel_sim::{Kernel, KernelConfig, VsidPolicy};
use lmbench::access::WorkingSet;
use lmbench::compile::{kernel_compile, CompileConfig};
use lmbench::lat;
use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

use crate::tables::Table;
use crate::Depth;

fn compile_cfg(depth: Depth) -> CompileConfig {
    depth.compile()
}

/// Result of E-BAT (§5.1): kernel-compile counters with and without BAT
/// mapping of kernel space.
#[derive(Debug, Clone, Copy)]
pub struct BatResult {
    /// TLB misses without BATs.
    pub tlb_misses_nobat: u64,
    /// TLB misses with BATs.
    pub tlb_misses_bat: u64,
    /// Hash-table misses without BATs.
    pub htab_misses_nobat: u64,
    /// Hash-table misses with BATs.
    pub htab_misses_bat: u64,
    /// Compile wall-clock (ms) without BATs.
    pub wall_ms_nobat: f64,
    /// Compile wall-clock (ms) with BATs.
    pub wall_ms_bat: f64,
    /// Kernel TLB-slot share without BATs (paper: 33%).
    pub kernel_tlb_frac_nobat: f64,
    /// Kernel TLB-slot high-water mark with BATs (paper: 4 entries).
    pub kernel_tlb_hwm_bat: u32,
}

/// E-BAT (§5.1): BAT-mapping kernel text/data on the kernel compile.
///
/// Paper: −10 % TLB misses (219 M → 197 M), −20 % hash-table misses
/// (1 M → 813 k), kernel TLB share 33 % → ≈0 (high water 4), wall clock
/// 10 → 8 minutes. Run on the otherwise-unoptimized kernel, "each
/// optimization alone" (§4).
pub fn exp_bat(depth: Depth) -> (BatResult, Table) {
    let run = |use_bats: bool| {
        let kcfg = KernelConfig {
            use_bats,
            ..KernelConfig::unoptimized()
        };
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
        kernel_compile(&mut k, compile_cfg(depth))
    };
    let nobat = run(false);
    let bat = run(true);
    let r = BatResult {
        tlb_misses_nobat: nobat.monitor.tlb_misses(),
        tlb_misses_bat: bat.monitor.tlb_misses(),
        htab_misses_nobat: nobat.htab_search_misses,
        htab_misses_bat: bat.htab_search_misses,
        wall_ms_nobat: nobat.wall_ms,
        wall_ms_bat: bat.wall_ms,
        kernel_tlb_frac_nobat: nobat.kernel_tlb_frac,
        kernel_tlb_hwm_bat: bat.kernel_tlb_highwater,
    };
    let mut t = Table::new(
        "E-BAT (5.1): kernel compile with PTE-mapped vs BAT-mapped kernel",
        vec![
            "metric".into(),
            "paper".into(),
            "no BATs".into(),
            "BATs".into(),
            "change".into(),
        ],
    );
    t.push_row(vec![
        "TLB misses".into(),
        "219M -> 197M (-10%)".into(),
        format!("{}", r.tlb_misses_nobat),
        format!("{}", r.tlb_misses_bat),
        format!(
            "{:+.1}%",
            delta_pct(r.tlb_misses_nobat as f64, r.tlb_misses_bat as f64)
        ),
    ]);
    t.push_row(vec![
        "htab misses".into(),
        "1M -> 813k (-20%)".into(),
        format!("{}", r.htab_misses_nobat),
        format!("{}", r.htab_misses_bat),
        format!(
            "{:+.1}%",
            delta_pct(r.htab_misses_nobat as f64, r.htab_misses_bat as f64)
        ),
    ]);
    t.push_row(vec![
        "compile wall clock".into(),
        "10min -> 8min (-20%)".into(),
        format!("{:.1}ms", r.wall_ms_nobat),
        format!("{:.1}ms", r.wall_ms_bat),
        format!("{:+.1}%", delta_pct(r.wall_ms_nobat, r.wall_ms_bat)),
    ]);
    t.push_row(vec![
        "kernel TLB share".into(),
        "33% -> ~0 (HWM 4)".into(),
        format!("{:.0}%", r.kernel_tlb_frac_nobat * 100.0),
        format!("HWM {} entries", r.kernel_tlb_hwm_bat),
        "-".into(),
    ]);
    (r, t)
}

fn delta_pct(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        0.0
    } else {
        (after - before) / before * 100.0
    }
}

/// One row of E-HASH (§5.2).
#[derive(Debug, Clone)]
pub struct HashUtilRow {
    /// Configuration label.
    pub label: String,
    /// Steady-state hash-table occupancy, `[0, 1]`.
    pub occupancy: f64,
    /// Worst-case PTEG fill (0–8) — the hot-spot measure.
    pub worst_group: u8,
    /// PTEGs completely full (inserts there must evict).
    pub full_groups: u32,
    /// PTEGs completely empty (wasted reach).
    pub empty_groups: u32,
    /// Evictions suffered while loading the working sets.
    pub evictions: u64,
}

/// E-HASH (§5.2): hash-table utilization vs VSID scatter tuning.
///
/// Paper: 37 % (untuned) → 57 % (tuned constant) → 75 % (kernel PTEs
/// removed via BATs). Utilization is measured at saturation: many processes
/// with identical logical layouts, enough pages to fill the table. A scaled
/// (512-group) table keeps the runtime in check — ratios, not absolutes,
/// are the claim.
pub fn exp_hash_util(_depth: Depth) -> (Vec<HashUtilRow>, Table) {
    // The full 2048-group table, loaded by 8 identical 900-page address
    // spaces (28 MiB of the 32 MiB machine — a heavy multiuser load). With
    // a small scatter constant, every VSID stays below 2^10, so
    // `vsid XOR page_index` can only reach the low half of the groups:
    // half the table is structurally unreachable and the reachable half
    // overflows. The tuned constant spreads VSIDs across the full hash
    // width. This is §5.2's "hot spots" mechanism.
    let procs = 8u32;
    let ws = 900u32;
    let run = |label: &str, constant: u32, use_bats: bool| {
        let kcfg = KernelConfig {
            use_bats,
            vsid_policy: VsidPolicy::ContextCounter { constant },
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
        for _ in 0..procs {
            let pid = k.spawn_process(ws).expect("spawn");
            k.switch_to(pid);
            k.prefault(USER_BASE, ws).expect("experiment workload is well-formed");
        }
        // Re-touch all working sets once so evicted entries get reinserted
        // and the steady state emerges.
        let pids: Vec<u32> = k.tasks.iter().map(|t| t.pid).collect();
        for pid in pids {
            k.switch_to(pid);
            k.user_read(USER_BASE, ws * PAGE_SIZE).expect("experiment workload is well-formed");
        }
        let hist = k.htab.group_histogram();
        HashUtilRow {
            label: label.into(),
            occupancy: k.htab.occupancy(),
            worst_group: *hist.iter().max().unwrap(),
            full_groups: hist.iter().filter(|&&c| c == 8).count() as u32,
            empty_groups: hist.iter().filter(|&&c| c == 0).count() as u32,
            evictions: k.htab.stats().evictions,
        }
    };
    let rows = vec![
        run("untuned constant (16), kernel PTEs in htab", 16, false),
        run("tuned constant (897), kernel PTEs in htab", 897, false),
        run("tuned constant (897), kernel via BATs", 897, true),
    ];
    let mut t = Table::new(
        "E-HASH (5.2): hash-table utilization vs VSID scatter (paper: 37% -> 57% -> 75% use)",
        vec![
            "configuration".into(),
            "occupancy".into(),
            "worst PTEG".into(),
            "full PTEGs".into(),
            "empty PTEGs".into(),
            "evictions".into(),
        ],
    );
    for r in &rows {
        t.push_row(vec![
            r.label.clone(),
            format!("{:.0}%", r.occupancy * 100.0),
            format!("{}/8", r.worst_group),
            format!("{}", r.full_groups),
            format!("{}", r.empty_groups),
            format!("{}", r.evictions),
        ]);
    }
    (rows, t)
}

/// Result of E-FAST (§6.1).
#[derive(Debug, Clone, Copy)]
pub struct FastReloadResult {
    /// Context-switch latency, slow C handlers (µs).
    pub ctxsw_slow_us: f64,
    /// Context-switch latency, fast asm handlers (µs).
    pub ctxsw_fast_us: f64,
    /// Pipe latency, slow (µs).
    pub pipe_slow_us: f64,
    /// Pipe latency, fast (µs).
    pub pipe_fast_us: f64,
    /// TLB-heavy user workload wall-clock, slow (ms).
    pub user_slow_ms: f64,
    /// TLB-heavy user workload wall-clock, fast (ms).
    pub user_fast_ms: f64,
}

/// E-FAST (§6.1): hand-tuned assembly reload handlers.
///
/// Paper: −33 % context-switch time, −15 % communication latencies, −15 %
/// user wall clock. Both kernels here are otherwise identical (original
/// policies, 603 software reload); only the handler style differs.
pub fn exp_fast_reload(depth: Depth) -> (FastReloadResult, Table) {
    // Both kernels share the *same* path lengths (the original kernel's);
    // only the TLB-miss handler implementation differs — this isolates the
    // §6.1 change the way the paper measured it.
    let kernel = |fast: bool| {
        let kcfg = KernelConfig {
            handler: if fast {
                kernel_sim::HandlerStyle::FastAsm
            } else {
                kernel_sim::HandlerStyle::SlowC
            },
            ..KernelConfig::unoptimized()
        };
        Kernel::boot_with_paths(
            MachineConfig::ppc603_133(),
            kcfg,
            kernel_sim::kernel::PathLengths::original(),
        )
    };
    let rounds = match depth {
        Depth::Quick => 10,
        Depth::Full => 40,
    };
    // TLB-heavy user workload: a working set far beyond TLB reach.
    let user = |fast: bool| {
        let mut k = kernel(fast);
        let pid = k.spawn_process(160).expect("spawn");
        k.switch_to(pid);
        k.prefault(USER_BASE, 160).expect("experiment workload is well-formed");
        // A working set just beyond TLB reach: the moderate, steady miss
        // rate of ordinary user code (the paper's "user code ... in
        // general"), not a TLB torture test.
        let mut ws = WorkingSet::new(USER_BASE, 160, 9);
        ws.locality = 0.9;
        let refs = match depth {
            Depth::Quick => 20_000,
            Depth::Full => 120_000,
        };
        let cycles = ws.run(&mut k, refs, 0.3, 2);
        k.machine.time_of(cycles).as_ms()
    };
    let r = FastReloadResult {
        ctxsw_slow_us: lat::ctx_switch(&mut kernel(false), 2, 8, rounds),
        ctxsw_fast_us: lat::ctx_switch(&mut kernel(true), 2, 8, rounds),
        pipe_slow_us: lat::pipe_latency(&mut kernel(false), rounds),
        pipe_fast_us: lat::pipe_latency(&mut kernel(true), rounds),
        user_slow_ms: user(false),
        user_fast_ms: user(true),
    };
    let mut t = Table::new(
        "E-FAST (6.1): C handlers vs hand-tuned assembly reload handlers (603)",
        vec![
            "metric".into(),
            "paper".into(),
            "slow C".into(),
            "fast asm".into(),
            "change".into(),
        ],
    );
    t.push_row(vec![
        "ctx switch".into(),
        "-33%".into(),
        format!("{:.1}us", r.ctxsw_slow_us),
        format!("{:.1}us", r.ctxsw_fast_us),
        format!("{:+.0}%", delta_pct(r.ctxsw_slow_us, r.ctxsw_fast_us)),
    ]);
    t.push_row(vec![
        "pipe latency".into(),
        "-15%".into(),
        format!("{:.1}us", r.pipe_slow_us),
        format!("{:.1}us", r.pipe_fast_us),
        format!("{:+.0}%", delta_pct(r.pipe_slow_us, r.pipe_fast_us)),
    ]);
    t.push_row(vec![
        "TLB-heavy user code".into(),
        "-15%".into(),
        format!("{:.2}ms", r.user_slow_ms),
        format!("{:.2}ms", r.user_fast_ms),
        format!("{:+.0}%", delta_pct(r.user_slow_ms, r.user_fast_ms)),
    ]);
    (r, t)
}

/// Result of E-LAZY (§7).
#[derive(Debug, Clone, Copy)]
pub struct LazyResult {
    /// Pipe bandwidth without lazy flushes (MB/s).
    pub pipe_bw_eager: f64,
    /// Pipe bandwidth with lazy flushes (MB/s).
    pub pipe_bw_lazy: f64,
    /// 8-process context switch, eager (µs).
    pub ctxsw8_eager_us: f64,
    /// 8-process context switch, lazy (µs).
    pub ctxsw8_lazy_us: f64,
}

/// E-LAZY (§7): lazy VSID-bump flushes.
///
/// Paper: pipe throughput 71 → 76 MB/s, 8-process context switches
/// 20 → 17 µs. The flush policy only matters when address spaces are being
/// torn down, so both benchmarks run under the "typical load on a multiuser
/// system" the paper describes: short-lived processes exec and exit in the
/// background. The eager kernel pays a full hash-table scan and a TLB flush
/// for each teardown — wiping state the benchmark was using.
pub fn exp_lazy(depth: Depth) -> (LazyResult, Table) {
    use kernel_sim::sched::USER_BASE as UB;
    use ppc_machine::time::mb_per_sec;
    // §7 predates §6.2's hash-table elimination: the 603 here emulates the
    // 604's hash-table search, so eager context teardown really does scan
    // the table.
    let kcfg = |lazy: bool| {
        if lazy {
            KernelConfig {
                htab_on_603: true,
                ..KernelConfig::optimized()
            }
        } else {
            KernelConfig {
                htab_on_603: true,
                lazy_flush: false,
                flush_cutoff_pages: None,
                ..KernelConfig::optimized()
            }
        }
    };
    let rounds = match depth {
        Depth::Quick => 10,
        Depth::Full => 40,
    };
    // Pipe bandwidth with background exec/exit churn.
    let pipe_bw = |lazy: bool| {
        let mut k = Kernel::boot(MachineConfig::ppc603_133(), kcfg(lazy));
        let w = k.spawn_process(64).expect("spawn");
        let r = k.spawn_process(64).expect("spawn");
        let p = k.pipe_create().expect("experiment workload is well-formed");
        // Short transfers interleaved with process churn: the flush policy's
        // cost shows up as a fraction of each transfer.
        let buf = 4 * PAGE_SIZE;
        for &pid in &[w, r] {
            k.switch_to(pid);
            k.prefault(UB, 16).expect("experiment workload is well-formed");
        }
        k.pipe_transfer(p, w, r, UB, UB, buf).expect("experiment workload is well-formed");
        let start = k.machine.cycles;
        let mut moved = 0u64;
        for _ in 0..rounds {
            k.pipe_transfer(p, w, r, UB, UB, buf).expect("experiment workload is well-formed");
            moved += buf as u64;
            // A short-lived process comes and goes (shell, ls, make...).
            let pid = k.spawn_process(32).expect("spawn");
            k.switch_to(pid);
            k.prefault(UB, 32).expect("experiment workload is well-formed");
            k.exit_current();
        }
        mb_per_sec(moved, k.machine.time_of(k.machine.cycles - start))
    };
    // 8-process context switching with the same churn.
    let ctxsw8 = |lazy: bool| {
        let mut k = Kernel::boot(MachineConfig::ppc603_133(), kcfg(lazy));
        let pids: Vec<_> = (0..8)
            .map(|_| k.spawn_process(16).expect("spawn"))
            .collect();
        // Stagger each process's hot page so the processes do not all fight
        // over one TLB congruence class.
        for (i, &pid) in pids.iter().enumerate() {
            k.switch_to(pid);
            k.prefault(UB + (i as u32) * PAGE_SIZE, 1).expect("experiment workload is well-formed");
        }
        let mut hop_cycles = 0u64;
        let mut hops = 0u64;
        for round in 0..rounds + 2 {
            let start = k.machine.cycles;
            for (i, &pid) in pids.iter().enumerate() {
                k.switch_to(pid);
                // A light touch per hop: lat_ctx's 0 KiB variant switches
                // far more than it computes, so TLB damage (not cache
                // refill) dominates the per-hop delta.
                k.user_read(UB + (i as u32) * PAGE_SIZE, 256).expect("experiment workload is well-formed");
            }
            if round >= 2 {
                hop_cycles += k.machine.cycles - start;
                hops += 8;
            }
            let pid = k.spawn_process(32).expect("spawn");
            k.switch_to(pid);
            k.prefault(UB, 32).expect("experiment workload is well-formed");
            k.exit_current();
        }
        k.time_us(hop_cycles) / hops as f64
    };
    let r = LazyResult {
        pipe_bw_eager: pipe_bw(false),
        pipe_bw_lazy: pipe_bw(true),
        ctxsw8_eager_us: ctxsw8(false),
        ctxsw8_lazy_us: ctxsw8(true),
    };
    let mut t = Table::new(
        "E-LAZY (7): eager per-page flushes vs lazy VSID flushes (603 133MHz)",
        vec![
            "metric".into(),
            "paper".into(),
            "eager".into(),
            "lazy".into(),
        ],
    );
    t.push_row(vec![
        "pipe bw".into(),
        "71 -> 76 MB/s".into(),
        format!("{:.1} MB/s", r.pipe_bw_eager),
        format!("{:.1} MB/s", r.pipe_bw_lazy),
    ]);
    t.push_row(vec![
        "8-proc ctxsw".into(),
        "20 -> 17 us".into(),
        format!("{:.1}us", r.ctxsw8_eager_us),
        format!("{:.1}us", r.ctxsw8_lazy_us),
    ]);
    (r, t)
}

/// Result of E-IDLE (§7).
#[derive(Debug, Clone, Copy)]
pub struct IdleReclaimResult {
    /// Evict ratio without reclaim (paper: > 0.9).
    pub evict_ratio_without: f64,
    /// Evict ratio with reclaim (paper: ≈ 0.3).
    pub evict_ratio_with: f64,
    /// Live (in-use) hash-table entries without reclaim (paper: 600–700).
    pub inuse_without: u32,
    /// Live entries with reclaim (paper: 1400–2200).
    pub inuse_with: u32,
    /// Hash-table hit rate on TLB misses without reclaim (paper: ~85 %).
    pub hit_rate_without: f64,
    /// Hit rate with reclaim (paper: up to 98 %).
    pub hit_rate_with: f64,
}

/// E-IDLE (§7): idle-task reclamation of zombie hash-table entries.
///
/// A sustained multi-process load with heavy mmap churn saturates the
/// (full-sized, 16384-entry) table with zombies; the idle task's reclaim
/// scan empties them.
pub fn exp_idle_reclaim(depth: Depth) -> (IdleReclaimResult, Table) {
    let run = |idle_reclaim: bool| {
        let kcfg = KernelConfig {
            idle_reclaim,
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
        // Two zombie producers (mmap/munmap churn, as a shell + make would)
        // and eight steady readers whose combined working sets dwarf the
        // TLB, so their reloads constantly consult the hash table.
        let readers = 8u32;
        let ws_pages = 256u32;
        // Heavy churn while filling; a calmer, steady trickle while
        // measuring (the paper measured a running system, not a zombie
        // storm).
        let fill_churn_pages = 320u32;
        let measure_churn_pages = 64u32;
        let (fill_rounds, measure_rounds) = match depth {
            Depth::Quick => (24, 10),
            Depth::Full => (40, 20),
        };
        let producer_pids: Vec<_> = (0..2).map(|_| k.spawn_process(8).unwrap()).collect();
        let reader_pids: Vec<_> = (0..readers)
            .map(|_| k.spawn_process(ws_pages).unwrap())
            .collect();
        for &pid in &reader_pids {
            k.switch_to(pid);
            k.prefault(USER_BASE, ws_pages).expect("experiment workload is well-formed");
        }
        let round = |k: &mut Kernel, churn_pages: u32| {
            for &pid in &producer_pids {
                k.switch_to(pid);
                let addr = k.sys_mmap(None, churn_pages * PAGE_SIZE);
                k.prefault(addr, churn_pages).expect("experiment workload is well-formed");
                k.sys_munmap(addr, churn_pages * PAGE_SIZE);
                k.run_idle(150_000);
            }
            for &pid in &reader_pids {
                k.switch_to(pid);
                k.user_read(USER_BASE, ws_pages * PAGE_SIZE).expect("experiment workload is well-formed");
            }
            k.run_idle(150_000);
        };
        // Phase 1: drive the table to its steady state (zombies saturate it
        // without reclaim).
        for _ in 0..fill_rounds {
            round(&mut k, fill_churn_pages);
        }
        // Phase 2: measure the steady state.
        k.htab.reset_stats();
        let k0 = k.stats;
        for _ in 0..measure_rounds {
            round(&mut k, measure_churn_pages);
        }
        let evict_ratio = k.htab.stats().evict_ratio();
        let inuse = k.htab.live_entries(|v| k.vsids.is_live(v));
        let hit_rate = {
            let d = k.stats.delta(&k0);
            let total = d.htab_hits + d.htab_misses;
            if total == 0 {
                1.0
            } else {
                d.htab_hits as f64 / total as f64
            }
        };
        (evict_ratio, inuse, hit_rate)
    };
    let (er_without, inuse_without, hr_without) = run(false);
    let (er_with, inuse_with, hr_with) = run(true);
    let r = IdleReclaimResult {
        evict_ratio_without: er_without,
        evict_ratio_with: er_with,
        inuse_without,
        inuse_with,
        hit_rate_without: hr_without,
        hit_rate_with: hr_with,
    };
    let mut t = Table::new(
        "E-IDLE (7): idle-task zombie reclamation (604 133MHz, 16384-entry htab)",
        vec![
            "metric".into(),
            "paper".into(),
            "no reclaim".into(),
            "reclaim".into(),
        ],
    );
    t.push_row(vec![
        "evict ratio".into(),
        ">90% -> 30%".into(),
        format!("{:.0}%", r.evict_ratio_without * 100.0),
        format!("{:.0}%", r.evict_ratio_with * 100.0),
    ]);
    t.push_row(vec![
        "in-use entries".into(),
        "600-700 -> 1400-2200".into(),
        format!("{}", r.inuse_without),
        format!("{}", r.inuse_with),
    ]);
    t.push_row(vec![
        "htab hit rate".into(),
        "85% -> 98%".into(),
        format!("{:.1}%", r.hit_rate_without * 100.0),
        format!("{:.1}%", r.hit_rate_with * 100.0),
    ]);
    (r, t)
}

/// One point of the E-MMAP cutoff sweep.
#[derive(Debug, Clone)]
pub struct CutoffPoint {
    /// The cutoff (pages); `None` = always flush per page.
    pub cutoff: Option<u32>,
    /// lat_mmap result (µs).
    pub mmap_lat_us: f64,
    /// TLB hit rate of a mixed workload under this cutoff.
    pub tlb_hit_rate: f64,
}

/// Pages mapped/unmapped by the cutoff sweep: straddles the candidate
/// cutoffs, so the sweep shows the policy transition.
pub const CUTOFF_SWEEP_PAGES: u32 = 64;

/// E-MMAP (§7): the tunable range-flush cutoff.
///
/// Paper: with a 20-page cutoff, mmap latency fell from 3240 µs to 41 µs
/// (80×) "at no cost to the TLB hit rate". The headline 80× is Table 2's
/// mmap row; this sweep maps a 64-page region under varying cutoffs, so
/// cutoffs below 64 take the cheap context bump and cutoffs above it fall
/// back to per-page searching — with the TLB hit rate flat throughout.
pub fn exp_mmap_cutoff(depth: Depth) -> (Vec<CutoffPoint>, Table) {
    let iters = match depth {
        Depth::Quick => 4,
        Depth::Full => 12,
    };
    let cutoffs: Vec<Option<u32>> = vec![
        None,
        Some(5),
        Some(10),
        Some(20),
        Some(40),
        Some(100),
        Some(200),
    ];
    let rows: Vec<CutoffPoint> = cutoffs
        .into_iter()
        .map(|cutoff| {
            let kcfg = match cutoff {
                Some(c) => KernelConfig {
                    flush_cutoff_pages: Some(c),
                    ..KernelConfig::optimized()
                },
                None => KernelConfig {
                    lazy_flush: false,
                    flush_cutoff_pages: None,
                    ..KernelConfig::optimized()
                },
            };
            // mmap latency at the sweep size (hash-table-emulating 603, as
            // in Table 2, so the per-page path really searches the table).
            let kcfg = KernelConfig {
                htab_on_603: true,
                ..kcfg
            };
            let mut k = Kernel::boot(MachineConfig::ppc603_133(), kcfg);
            let mmap_lat_us =
                lat::mmap_latency_sized(&mut k, iters, CUTOFF_SWEEP_PAGES * PAGE_SIZE);
            // TLB hit rate on a mixed map/compute workload: does the blunt
            // context flush cost us useful translations?
            let mut k = Kernel::boot(MachineConfig::ppc603_133(), kcfg);
            let pid = k.spawn_process(64).expect("spawn");
            k.switch_to(pid);
            k.prefault(USER_BASE, 64).expect("experiment workload is well-formed");
            k.machine.reset_stats();
            let mut ws = WorkingSet::new(USER_BASE, 64, 5);
            for _ in 0..8 {
                let addr = k.sys_mmap(None, 32 * PAGE_SIZE);
                k.prefault(addr, 4).expect("experiment workload is well-formed");
                k.sys_munmap(addr, 32 * PAGE_SIZE);
                ws.run(&mut k, 2_000, 0.2, 1);
            }
            let snap = k.machine.snapshot();
            let lookups = snap.itlb.lookups + snap.dtlb.lookups;
            let hits = snap.itlb.hits + snap.dtlb.hits;
            CutoffPoint {
                cutoff,
                mmap_lat_us,
                tlb_hit_rate: if lookups == 0 {
                    1.0
                } else {
                    hits as f64 / lookups as f64
                },
            }
        })
        .collect();
    let mut t = Table::new(
        "E-MMAP (7): range-flush cutoff sweep (603 133MHz; paper: 3240us -> 41us at 20 pages)",
        vec!["cutoff".into(), "mmap lat".into(), "TLB hit rate".into()],
    );
    for p in &rows {
        t.push_row(vec![
            match p.cutoff {
                None => "per-page always".into(),
                Some(c) => format!("{c} pages"),
            },
            format!("{:.0}us", p.mmap_lat_us),
            format!("{:.2}%", p.tlb_hit_rate * 100.0),
        ]);
    }
    (rows, t)
}
