//! E-TAIL: does tail forensics *explain* a planted tail regression?
//!
//! A forensics layer that captures exemplars but misattributes them is
//! worse than a histogram — it prints a confident wrong answer. This
//! experiment plants a regression whose cause is known by construction and
//! gates that the attribution ranking finds it:
//!
//! 1. **Attribution** — booting with a 16-PTEG hash table (128 PTE slots)
//!    and cyclically sweeping a 192-page working set saturates every PTEG:
//!    once the table is full, each reload miss forces an overflow insert
//!    that displaces a live entry, which turns the *next* touch of the
//!    displaced page into another miss — the §5.2 secondary-hash probe
//!    storm, self-sustaining by round two. One warmup sweep takes the
//!    compulsory page faults and cold misses, then the reservoir is
//!    drained ([`kernel_sim::TailState::reset`]) so the retained tail
//!    describes steady state; the oracle-visible cause
//!    (`secondary_probe_storm`) must then *win* the cycles-above-median
//!    ranking, not merely appear in it.
//! 2. **Zero-cost** — the tail-armed storm run is cycle- and
//!    counter-identical to the same run with capture dormant.
//! 3. **Determinism** — re-running captures identical exemplars (sequence,
//!    cycle, latency, cause — the whole reservoir), so a tail regression
//!    in CI is always a one-command repro.
//!
//! The arming threshold is not a magic number: it is read off the dormant
//! run's reload median, so the experiment scales with machine timings.

use kernel_sim::{Kernel, KernelConfig, LatencyPath, TailCause, TailConfig};
use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

use crate::tables::Table;
use crate::Depth;

/// Working-set pages: 1.5× the 128-slot table, so a cyclic sweep has
/// displaced each page again by the time it comes back around.
const STORM_PAGES: u32 = 192;

/// The complete E-TAIL result.
#[derive(Debug, Clone)]
pub struct TailGateResult {
    /// The ranked steady-state attribution of the storm run:
    /// `(cause, cycles above the path median, exemplars)`.
    pub ranked: Vec<(TailCause, u64, u64)>,
    /// Captures offered after the warmup reset.
    pub captured: u64,
    /// The arming threshold derived from the dormant run (cycles).
    pub threshold: u64,
    /// Gate 1: the planted secondary-hash storm tops the ranking.
    pub storm_attributed: bool,
    /// Gate 2: the armed run is cycle- and counter-identical to dormant.
    pub cycle_identical: bool,
    /// Gate 3: a re-run reproduces the reservoirs exactly.
    pub deterministic: bool,
}

impl TailGateResult {
    /// All three gates at once (what CI checks).
    pub fn holds(&self) -> bool {
        self.storm_attributed && self.cycle_identical && self.deterministic
    }
}

/// The planted regression: a 16-PTEG hash table under a cyclic sweep of
/// [`STORM_PAGES`] pages. One warmup sweep maps everything and takes the
/// compulsory misses; if capture is armed, the reservoir is drained after
/// it so only steady-state rounds are retained.
fn storm_run(depth: Depth, tail: Option<TailConfig>) -> Kernel {
    let mut cfg = KernelConfig::optimized();
    cfg.trace = true;
    cfg.tail = tail;
    let mut k = Kernel::boot_with_htab_groups(MachineConfig::ppc604_133(), cfg, 16);
    let pid = k.spawn_process(8).expect("storm task");
    k.switch_to(pid);
    let base = k.sys_mmap(None, STORM_PAGES * PAGE_SIZE);
    let sweep = |k: &mut Kernel| {
        for i in 0..STORM_PAGES {
            k.user_read(base + i * PAGE_SIZE, 64).expect("mapped page");
        }
    };
    sweep(&mut k);
    if let Some(tl) = k.tail.as_mut() {
        tl.reset();
    }
    let rounds = match depth {
        Depth::Quick => 3,
        Depth::Full => 12,
    };
    for _ in 0..rounds {
        sweep(&mut k);
    }
    k
}

/// Runs the planted storm and gates attribution, zero-cost and determinism.
pub fn exp_tail(depth: Depth) -> (TailGateResult, Table) {
    // Dormant probe: supplies the identity baseline *and* the arming
    // threshold (the reload median — capture the slow half of the path).
    let dormant = storm_run(depth, None);
    let threshold = dormant
        .tracer
        .as_ref()
        .expect("tracer enabled")
        .latency(LatencyPath::TlbReload)
        .percentiles()
        .0
        .max(1);
    let tcfg = TailConfig::fixed(threshold);
    let armed = storm_run(depth, Some(tcfg));
    let again = storm_run(depth, Some(tcfg));

    let tl = armed.tail.as_ref().expect("tail armed");
    let t = armed.tracer.as_ref().expect("tracer enabled");
    let mut p50 = [0u64; 3];
    for (i, &p) in LatencyPath::ALL.iter().enumerate() {
        p50[i] = t.latency(p).percentiles().0;
    }
    let ranked = tl.attribution(p50);

    let storm_attributed = ranked
        .first()
        .is_some_and(|(c, _, _)| *c == TailCause::SecondaryProbeStorm);
    let cycle_identical =
        armed.machine.cycles == dormant.machine.cycles && armed.stats == dormant.stats;
    let tl2 = again.tail.as_ref().expect("tail armed");
    let deterministic = tl.captured() == tl2.captured()
        && LatencyPath::ALL
            .iter()
            .all(|&p| tl.exemplars(p) == tl2.exemplars(p));

    let gates = TailGateResult {
        ranked,
        captured: tl.captured(),
        threshold,
        storm_attributed,
        cycle_identical,
        deterministic,
    };

    let mut table = Table::new(
        format!(
            "E-TAIL: planted PTEG-saturation regression under tail forensics \
             (16-PTEG table, {STORM_PAGES}-page cyclic sweep, threshold {threshold})"
        ),
        vec![
            "cause".into(),
            "exemplars".into(),
            "cycles_above_median".into(),
            "verdict".into(),
        ],
    );
    for (i, (cause, cycles, n)) in gates.ranked.iter().enumerate() {
        table.push_row(vec![
            cause.name().into(),
            format!("{n}"),
            format!("{cycles}"),
            if i == 0 { "top-ranked" } else { "" }.into(),
        ]);
    }
    table.push_row(vec![
        "(gates)".into(),
        format!("{} captures", gates.captured),
        if gates.storm_attributed {
            "storm attributed: pass"
        } else {
            "storm attributed: FAIL"
        }
        .into(),
        format!(
            "{}; {}",
            if gates.cycle_identical {
                "zero-cost: pass"
            } else {
                "zero-cost: FAIL"
            },
            if gates.deterministic {
                "deterministic: pass"
            } else {
                "deterministic: FAIL"
            }
        ),
    ]);
    (gates, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_storm_is_attributed_cheap_and_deterministic() {
        let (r, t) = exp_tail(Depth::Quick);
        assert!(
            r.storm_attributed,
            "secondary-hash storm must top the ranking, got {:?}",
            r.ranked
        );
        assert!(r.cycle_identical, "tail capture perturbed the storm run");
        assert!(r.deterministic, "storm exemplars diverged between runs");
        assert!(r.holds());
        assert!(r.captured > 0);
        assert!(r.threshold > 0);
        let s = t.render();
        assert!(s.contains("secondary_probe_storm"), "{s}");
        assert!(s.contains("pass") && !s.contains("FAIL"), "{s}");
    }
}
