//! The §5.1 frame-buffer BAT idea, implemented and measured.
//!
//! "We have considered having the kernel dedicate a BAT mapping to the frame
//! buffer itself so programs such as X do not compete constantly with other
//! applications or the kernel for TLB space." The paper also reports that
//! BAT-mapping I/O space did *not* help their benchmarks, because "the
//! applications we examined rarely accessed a large number of I/O addresses
//! in a short time".
//!
//! Both halves are reproducible: an X-server-like blitter that sprays the
//! 4 MiB frame buffer steals TLB entries from a compute process unless the
//! aperture is BAT-mapped; a light I/O workload shows no effect.

use kernel_sim::layout::IO_VIRT_BASE;
use kernel_sim::sched::USER_BASE;
use kernel_sim::{Kernel, KernelConfig};
use lmbench::access::WorkingSet;
use ppc_machine::MachineConfig;
use ppc_mmu::addr::{EffectiveAddress, PAGE_SIZE};

use crate::tables::Table;
use crate::Depth;

/// Result of the frame-buffer BAT experiment.
#[derive(Debug, Clone, Copy)]
pub struct IoBatResult {
    /// Compute process TLB misses, heavy blitter, PTE-mapped I/O.
    pub heavy_misses_pte: u64,
    /// Compute process TLB misses, heavy blitter, BAT-mapped I/O.
    pub heavy_misses_bat: u64,
    /// Compute wall (µs), heavy blitter, PTE-mapped I/O.
    pub heavy_us_pte: f64,
    /// Compute wall (µs), heavy blitter, BAT-mapped I/O.
    pub heavy_us_bat: f64,
    /// Compute TLB misses, light I/O, PTE-mapped.
    pub light_misses_pte: u64,
    /// Compute TLB misses, light I/O, BAT-mapped.
    pub light_misses_bat: u64,
}

fn run(io_bat: bool, blit_pages: u32, rounds: u32) -> (u64, f64) {
    let kcfg = KernelConfig {
        io_bat,
        ..KernelConfig::optimized()
    };
    let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
    // The X server: blits across the frame buffer every round.
    let x = k.spawn_process(16).unwrap();
    // The compute process whose TLB suffers.
    let c = k.spawn_process(64).unwrap();
    k.switch_to(c);
    k.prefault(USER_BASE, 64).expect("experiment workload is well-formed");
    let mut ws = WorkingSet::new(USER_BASE, 64, 11);
    // Warm round.
    k.switch_to(x);
    for p in 0..blit_pages {
        k.data_ref(EffectiveAddress(IO_VIRT_BASE + p * PAGE_SIZE), true).expect("experiment workload is well-formed");
    }
    let mut compute_cycles = 0u64;
    let m0 = k.machine.snapshot();
    let mut miss0 = 0;
    for _ in 0..rounds {
        // X draws a frame: one store per frame-buffer page touched.
        k.switch_to(x);
        for p in 0..blit_pages {
            k.data_ref(EffectiveAddress(IO_VIRT_BASE + p * PAGE_SIZE), true).expect("experiment workload is well-formed");
        }
        // The compute process runs its working set.
        k.switch_to(c);
        let snap = k.machine.snapshot();
        let c0 = k.machine.cycles;
        ws.run(&mut k, 2_000, 0.3, 1);
        compute_cycles += k.machine.cycles - c0;
        miss0 += k.machine.snapshot().delta(&snap).tlb_misses();
    }
    let _ = m0;
    (miss0, k.time_us(compute_cycles))
}

/// Runs the §5.1 frame-buffer experiment: heavy (X-like) and light I/O
/// interleavings, with the aperture PTE-mapped vs BAT-mapped.
pub fn exp_io_bat(depth: Depth) -> (IoBatResult, Table) {
    let rounds = match depth {
        Depth::Quick => 12,
        Depth::Full => 40,
    };
    let (heavy_misses_pte, heavy_us_pte) = run(false, 512, rounds);
    let (heavy_misses_bat, heavy_us_bat) = run(true, 512, rounds);
    let (light_misses_pte, _) = run(false, 4, rounds);
    let (light_misses_bat, _) = run(true, 4, rounds);
    let r = IoBatResult {
        heavy_misses_pte,
        heavy_misses_bat,
        heavy_us_pte,
        heavy_us_bat,
        light_misses_pte,
        light_misses_bat,
    };
    let mut t = Table::new(
        "Frame-buffer BAT (5.1's unevaluated idea): X-like blitter vs compute TLB",
        vec![
            "I/O load".into(),
            "metric".into(),
            "PTE-mapped I/O".into(),
            "BAT-mapped I/O".into(),
        ],
    );
    t.push_row(vec![
        "heavy (2 MiB blits)".into(),
        "compute TLB misses".into(),
        format!("{}", r.heavy_misses_pte),
        format!("{}", r.heavy_misses_bat),
    ]);
    t.push_row(vec![
        "heavy (2 MiB blits)".into(),
        "compute time".into(),
        format!("{:.0}us", r.heavy_us_pte),
        format!("{:.0}us", r.heavy_us_bat),
    ]);
    t.push_row(vec![
        "light (16 KiB)".into(),
        "compute TLB misses".into(),
        format!("{}", r.light_misses_pte),
        format!("{}", r.light_misses_bat),
    ]);
    (r, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_blitting_competes_for_tlb_without_the_bat() {
        let (r, _) = exp_io_bat(Depth::Quick);
        assert!(
            r.heavy_misses_pte > r.heavy_misses_bat,
            "PTE-mapped fb must cost the compute process TLB misses ({} vs {})",
            r.heavy_misses_pte,
            r.heavy_misses_bat
        );
        // The paper's negative result: with light I/O the BAT buys ~nothing.
        let diff = r.light_misses_pte.abs_diff(r.light_misses_bat);
        assert!(
            diff * 20 <= r.light_misses_pte.max(1),
            "light I/O should show no meaningful difference ({} vs {})",
            r.light_misses_pte,
            r.light_misses_bat
        );
    }
}
