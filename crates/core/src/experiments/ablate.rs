//! Ablations of design choices the paper discusses but does not table:
//!
//! * the hash-table size ↔ RAM tradeoff (§7: "we could have decreased the
//!   size of the hash table and free RAM for use by the system"),
//! * the VSID scatter-constant sweep behind §5.2's histogram tuning,
//! * the §7-rejected *on-scarcity* zombie reclamation, quantifying the
//!   latency inconsistency the paper predicted ("Performance would also be
//!   inconsistent if we had to occasionally scan the hash table ... when we
//!   needed more space"),
//! * TLB reach (§2: "the current trend in chip design to keep TLB size
//!   small").

use kernel_sim::sched::USER_BASE;
use kernel_sim::{Kernel, KernelConfig, VsidPolicy};
use lmbench::compile::kernel_compile;
use ppc_machine::MachineConfig;
use ppc_mmu::addr::{EffectiveAddress, PAGE_SIZE};
use ppc_mmu::tlb::TlbConfig;

use crate::tables::{sparkline, Table};
use crate::Depth;

/// One point of the hash-table-size ablation.
#[derive(Debug, Clone, Copy)]
pub struct HtabSizePoint {
    /// PTEG groups (capacity = groups × 8).
    pub groups: u32,
    /// Table footprint in KiB (RAM not available to the system).
    pub footprint_kb: u32,
    /// Compile wall clock (ms).
    pub wall_ms: f64,
    /// Hash-table hit rate on TLB misses.
    pub htab_hit_rate: f64,
    /// Evictions of valid entries during the run.
    pub evictions: u64,
}

/// Hash-table size ablation (§7's size/RAM tradeoff), on the 604 compile.
pub fn ablate_htab_size(depth: Depth) -> (Vec<HtabSizePoint>, Table) {
    let points: Vec<HtabSizePoint> = [256u32, 512, 1024, 2048]
        .into_iter()
        .map(|groups| {
            let mut k = Kernel::boot_with_htab_groups(
                MachineConfig::ppc604_133(),
                KernelConfig::optimized(),
                groups,
            );
            let r = kernel_compile(&mut k, depth.compile());
            HtabSizePoint {
                groups,
                footprint_kb: groups * 8 * 8 / 1024,
                wall_ms: r.wall_ms,
                htab_hit_rate: r.kernel.htab_hit_rate(),
                evictions: k.htab.stats().evictions,
            }
        })
        .collect();
    let mut t = Table::new(
        "Ablation: hash-table size vs compile performance (7's size/RAM tradeoff)",
        vec![
            "PTEGs".into(),
            "footprint".into(),
            "compile wall".into(),
            "htab hit rate".into(),
            "evictions".into(),
        ],
    );
    for p in &points {
        t.push_row(vec![
            format!("{}", p.groups),
            format!("{} KiB", p.footprint_kb),
            format!("{:.1}ms", p.wall_ms),
            format!("{:.1}%", p.htab_hit_rate * 100.0),
            format!("{}", p.evictions),
        ]);
    }
    (points, t)
}

/// One point of the scatter-constant sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScatterPoint {
    /// The VSID scatter constant.
    pub constant: u32,
    /// Completely full PTEGs at steady state.
    pub full_groups: u32,
    /// Completely empty PTEGs.
    pub empty_groups: u32,
    /// Valid-entry evictions while loading.
    pub evictions: u64,
}

/// The §5.2 tuning loop, automated: sweep the scatter constant and report
/// the hot-spot measures the authors watched on their histogram.
pub fn ablate_scatter(_depth: Depth) -> (Vec<ScatterPoint>, Table) {
    let constants = [1u32, 2, 8, 16, 64, 256, 113, 257, 897, 2731];
    let points: Vec<ScatterPoint> = constants
        .into_iter()
        .map(|constant| {
            let kcfg = KernelConfig {
                vsid_policy: VsidPolicy::ContextCounter { constant },
                ..KernelConfig::optimized()
            };
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
            for _ in 0..8 {
                let pid = k.spawn_process(900).expect("spawn");
                k.switch_to(pid);
                k.prefault(USER_BASE, 900).expect("experiment workload is well-formed");
            }
            let hist = k.htab.group_histogram();
            ScatterPoint {
                constant,
                full_groups: hist.iter().filter(|&&c| c == 8).count() as u32,
                empty_groups: hist.iter().filter(|&&c| c == 0).count() as u32,
                evictions: k.htab.stats().evictions,
            }
        })
        .collect();
    let mut t = Table::new(
        "Ablation: VSID scatter-constant sweep (the 5.2 histogram-tuning loop)",
        vec![
            "constant".into(),
            "full PTEGs".into(),
            "empty PTEGs".into(),
            "evictions".into(),
            "balance".into(),
        ],
    );
    for p in &points {
        t.push_row(vec![
            format!("{}", p.constant),
            format!("{}", p.full_groups),
            format!("{}", p.empty_groups),
            format!("{}", p.evictions),
            if p.full_groups == 0 && p.empty_groups == 0 {
                "even"
            } else {
                "hot-spots"
            }
            .into(),
        ]);
    }
    (points, t)
}

/// Result of the reclaim-policy ablation.
#[derive(Debug, Clone)]
pub struct ReclaimPolicyResult {
    /// Policy label.
    pub label: String,
    /// Mean cost of a measured fault+touch operation (cycles).
    pub mean_cycles: f64,
    /// 99th-percentile cost.
    pub p99_cycles: u64,
    /// Worst-case cost.
    pub max_cycles: u64,
    /// Final evict ratio.
    pub evict_ratio: f64,
}

/// Reclaim-policy ablation: no reclaim vs the idle-task scan (the paper's
/// choice) vs the §7-rejected on-scarcity synchronous scan. The paper
/// predicted the rejected design would make "performance … inconsistent";
/// the p99/max columns quantify exactly that.
pub fn ablate_reclaim_policy(depth: Depth) -> (Vec<ReclaimPolicyResult>, Table) {
    let rounds = match depth {
        Depth::Quick => 24,
        Depth::Full => 48,
    };
    let run = |label: &str, idle: bool, scarcity: bool| {
        let kcfg = KernelConfig {
            idle_reclaim: idle,
            scarcity_reclaim: scarcity,
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot_with_htab_groups(MachineConfig::ppc604_133(), kcfg, 256);
        let pid = k.spawn_process(128).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 128).expect("experiment workload is well-formed");
        let mut samples: Vec<u64> = Vec::new();
        for _ in 0..rounds {
            // Produce zombies...
            let addr = k.sys_mmap(None, 96 * PAGE_SIZE);
            k.prefault(addr, 96).expect("experiment workload is well-formed");
            k.sys_munmap(addr, 96 * PAGE_SIZE);
            k.run_idle(100_000);
            // ...then sample individual TLB-reload latencies: each re-touch
            // reloads through the hash table, and an insert that finds the
            // table scarce triggers the synchronous scan under the rejected
            // policy — the spike lands in exactly one of these samples.
            k.machine.mmu.flush_tlbs();
            for i in 0..128 {
                let c0 = k.machine.cycles;
                k.data_ref(EffectiveAddress(USER_BASE + i * PAGE_SIZE), false).expect("experiment workload is well-formed");
                samples.push(k.machine.cycles - c0);
            }
        }
        samples.sort_unstable();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        ReclaimPolicyResult {
            label: label.into(),
            mean_cycles: mean,
            p99_cycles: samples[samples.len() * 99 / 100],
            max_cycles: *samples.last().unwrap(),
            evict_ratio: k.htab.stats().evict_ratio(),
        }
    };
    let rows = vec![
        run("no reclaim", false, false),
        run("idle-task scan (the paper's choice)", true, false),
        run("on-scarcity scan (the rejected design)", false, true),
    ];
    let mut t = Table::new(
        "Ablation: zombie-reclaim policy — fault-latency consistency (256-PTEG table)",
        vec![
            "policy".into(),
            "mean fault".into(),
            "p99".into(),
            "max".into(),
            "evict ratio".into(),
        ],
    );
    for r in &rows {
        t.push_row(vec![
            r.label.clone(),
            format!("{:.0} cy", r.mean_cycles),
            format!("{} cy", r.p99_cycles),
            format!("{} cy", r.max_cycles),
            format!("{:.0}%", r.evict_ratio * 100.0),
        ]);
    }
    (rows, t)
}

/// One row of the replacement-policy ablation.
#[derive(Debug, Clone)]
pub struct ReplacementRow {
    /// Policy label.
    pub label: String,
    /// Hash-table hit rate on reloads during the measurement window.
    pub hit_rate: f64,
    /// Evictions of live entries.
    pub evict_live: u64,
}

/// Replacement-policy ablation: the paper's reload code "chose an arbitrary
/// PTE to replace" — here round-robin (Linux/PPC), random, and a fixed-slot
/// choice, on a saturated table. The outcome is workload-dependent: under
/// steady re-use the fixed slot sacrifices one way per group and protects
/// the rest (highest hit rate), while under insert-heavy churn it thrashes
/// its own freshly inserted entries — evidence for the paper's implicit
/// position that the choice is second-order next to reclaiming zombies.
pub fn ablate_replacement(depth: Depth) -> (Vec<ReplacementRow>, Table) {
    use ppc_mmu::htab::Replacement;
    let rounds = match depth {
        Depth::Quick => 16,
        Depth::Full => 40,
    };
    let run = |label: &str, policy: Replacement| {
        let kcfg = KernelConfig {
            idle_reclaim: false,
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot_with_htab_groups(MachineConfig::ppc604_133(), kcfg, 128);
        k.htab.set_replacement(policy);
        // Producers make zombies under churning contexts; readers keep
        // stable working sets whose hash-table residency the policy decides.
        let producers: Vec<_> = (0..2).map(|_| k.spawn_process(8).unwrap()).collect();
        let readers: Vec<_> = (0..4).map(|_| k.spawn_process(96).unwrap()).collect();
        for &pid in &readers {
            k.switch_to(pid);
            k.prefault(USER_BASE, 96).expect("experiment workload is well-formed");
        }
        for round in 0..rounds {
            for &pid in &producers {
                k.switch_to(pid);
                let addr = k.sys_mmap(None, 64 * PAGE_SIZE);
                k.prefault(addr, 64).expect("experiment workload is well-formed");
                k.sys_munmap(addr, 64 * PAGE_SIZE);
            }
            for &pid in &readers {
                k.switch_to(pid);
                k.machine.mmu.flush_tlbs();
                k.user_read(USER_BASE, 96 * PAGE_SIZE).expect("experiment workload is well-formed");
            }
            if round == rounds / 2 {
                k.htab.reset_stats();
                k.stats = kernel_sim::KernelStats::default();
            }
        }
        ReplacementRow {
            label: label.into(),
            hit_rate: k.stats.htab_hit_rate(),
            evict_live: k.stats.evict_live,
        }
    };
    let rows = vec![
        run("round-robin (Linux/PPC)", Replacement::RoundRobin),
        run("random", Replacement::Random),
        run("fixed slot 0", Replacement::FirstSlot),
    ];
    let mut t = Table::new(
        "Ablation: full-PTEG replacement choice on a saturated 128-PTEG table",
        vec![
            "policy".into(),
            "htab hit rate".into(),
            "live evictions".into(),
        ],
    );
    for r in &rows {
        t.push_row(vec![
            r.label.clone(),
            format!("{:.1}%", r.hit_rate * 100.0),
            format!("{}", r.evict_live),
        ]);
    }
    (rows, t)
}

/// One point of the TLB-reach ablation.
#[derive(Debug, Clone, Copy)]
pub struct TlbReachPoint {
    /// Entries per TLB side.
    pub entries_per_side: u32,
    /// Compile TLB misses.
    pub tlb_misses: u64,
    /// Compile wall clock (ms).
    pub wall_ms: f64,
}

/// TLB-reach ablation (§2's "trend … to keep TLB size small"): the compile
/// on a 604 with shrunken or grown TLBs.
pub fn ablate_tlb_reach(depth: Depth) -> (Vec<TlbReachPoint>, Table) {
    let points: Vec<TlbReachPoint> = [32u32, 64, 128, 256]
        .into_iter()
        .map(|entries| {
            let mut mcfg = MachineConfig::ppc604_133();
            mcfg.mmu.itlb = TlbConfig { entries, ways: 2 };
            mcfg.mmu.dtlb = TlbConfig { entries, ways: 2 };
            let mut k = Kernel::boot(mcfg, KernelConfig::optimized());
            let r = kernel_compile(&mut k, depth.compile());
            TlbReachPoint {
                entries_per_side: entries,
                tlb_misses: r.monitor.tlb_misses(),
                wall_ms: r.wall_ms,
            }
        })
        .collect();
    let misses: Vec<f64> = points.iter().map(|p| p.tlb_misses as f64).collect();
    let mut t = Table::new(
        format!(
            "Ablation: TLB reach vs compile performance (misses: {})",
            sparkline(&misses)
        ),
        vec![
            "entries/side".into(),
            "TLB misses".into(),
            "compile wall".into(),
        ],
    );
    for p in &points {
        t.push_row(vec![
            format!("{}", p.entries_per_side),
            format!("{}", p.tlb_misses),
            format!("{:.1}ms", p.wall_ms),
        ]);
    }
    (points, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replacement_policies_all_function() {
        let (rows, t) = ablate_replacement(Depth::Quick);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.hit_rate > 0.2 && r.hit_rate < 1.0,
                "{}: {:.2}",
                r.label,
                r.hit_rate
            );
            assert!(r.evict_live > 0);
        }
        assert!(t.render().contains("round-robin"));
    }

    #[test]
    fn smaller_tlbs_miss_more() {
        let (points, _) = ablate_tlb_reach(Depth::Quick);
        assert!(points[0].tlb_misses > points[3].tlb_misses);
        assert!(points[0].wall_ms > points[3].wall_ms);
    }

    #[test]
    fn scarcity_reclaim_is_inconsistent() {
        let (rows, _) = ablate_reclaim_policy(Depth::Quick);
        let idle = &rows[1];
        let scarcity = &rows[2];
        // Both reclaim policies keep the evict ratio down vs none...
        assert!(idle.evict_ratio < rows[0].evict_ratio);
        assert!(scarcity.evict_ratio < rows[0].evict_ratio);
        // ...but the on-scarcity scan pays for it in tail latency, exactly
        // as §7 predicted.
        assert!(
            scarcity.max_cycles > idle.max_cycles,
            "rejected design must have worse worst-case ({} vs {})",
            scarcity.max_cycles,
            idle.max_cycles
        );
    }
}
