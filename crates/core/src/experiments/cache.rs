//! Cache-interaction experiments: §8 page-table cache pollution, §9 idle
//! page clearing, and the §10 future-work extensions.

use kernel_sim::sched::USER_BASE;
use kernel_sim::{Kernel, KernelConfig, PageClearing};
use lmbench::compile::{kernel_compile, CompileConfig};
use lmbench::lat;
use ppc_machine::MachineConfig;

use crate::tables::Table;
use crate::Depth;

/// Result of E-CACHE (§8).
#[derive(Debug, Clone, Copy)]
pub struct CachePollutionResult {
    /// Data-cache accesses performed by one worst-case hash-table fill
    /// (TLB miss → htab search miss → Linux PT walk → htab insert).
    /// Paper's analysis: 16 + 2 + 16 = 34 memory accesses.
    pub fill_memory_accesses: u64,
    /// New cache lines created by that fill (paper: up to 18).
    pub fill_new_lines: u64,
    /// Compile data-cache misses with cached page tables.
    pub compile_misses_cached_pt: u64,
    /// Compile data-cache misses with uncached page tables (§8's proposal).
    pub compile_misses_uncached_pt: u64,
    /// Compile wall clock (ms) with cached page tables.
    pub compile_ms_cached_pt: f64,
    /// Compile wall clock (ms) with uncached page tables.
    pub compile_ms_uncached_pt: f64,
}

/// E-CACHE (§8): cache misuse on page tables.
///
/// First instruments a single worst-case hash-table fill and counts its
/// memory accesses and the cache lines it creates (the paper's 34-access /
/// 18-line analysis); then measures a compile with page-table accesses
/// cached vs uncached.
pub fn exp_cache_pollution(depth: Depth) -> (CachePollutionResult, Table) {
    // --- single-fill instrumentation ---
    let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
    let pid = k.spawn_process(8).expect("spawn");
    k.switch_to(pid);
    k.prefault(USER_BASE, 8).expect("experiment workload is well-formed");
    // Force the worst case the paper analyses: the translation lives only
    // in the Linux page tables, and both candidate PTEGs are full so the
    // insert must probe all sixteen slots before displacing one.
    k.machine.mmu.flush_tlbs();
    let target = ppc_mmu::addr::EffectiveAddress(USER_BASE);
    let vsid = k.user_vsid(k.current.unwrap(), target);
    k.htab.invalidate(vsid, target.page_index());
    for j in 1..=16u32 {
        // Same PTEG (the group index depends only on the low hash bits),
        // different pages: these fill the primary then the secondary group.
        let filler = ppc_mmu::pte::Pte {
            valid: true,
            vsid,
            secondary: false,
            page_index: target.page_index() ^ (j << 11),
            rpn: 0x100 + j,
            referenced: false,
            changed: false,
            cache_inhibited: false,
            pp: 2,
        };
        k.htab.insert(filler);
    }
    k.machine.mem.dcache.invalidate_all();
    let s0 = *k.machine.mem.dcache.stats();
    let lines0 = k.machine.mem.dcache.resident_lines();
    k.data_ref(ppc_mmu::addr::EffectiveAddress(USER_BASE), false).expect("experiment workload is well-formed");
    let s1 = *k.machine.mem.dcache.stats();
    let lines1 = k.machine.mem.dcache.resident_lines();
    let fill_accesses = s1.accesses - s0.accesses;
    let fill_lines = lines1 - lines0;

    // --- workload-level cached vs uncached page tables ---
    let compile = |cached: bool| {
        let kcfg = KernelConfig {
            htab_cached: cached,
            linux_pt_cached: cached,
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
        let r = kernel_compile(&mut k, depth.compile());
        (r.monitor.dcache.misses, r.wall_ms)
    };
    let (miss_cached, ms_cached) = compile(true);
    let (miss_uncached, ms_uncached) = compile(false);
    let r = CachePollutionResult {
        fill_memory_accesses: fill_accesses,
        fill_new_lines: fill_lines,
        compile_misses_cached_pt: miss_cached,
        compile_misses_uncached_pt: miss_uncached,
        compile_ms_cached_pt: ms_cached,
        compile_ms_uncached_pt: ms_uncached,
    };
    let mut t = Table::new(
        "E-CACHE (8): cache misuse on page tables (604 133MHz)",
        vec!["metric".into(), "paper".into(), "measured".into()],
    );
    t.push_row(vec![
        "memory accesses per worst-case htab fill".into(),
        "34".into(),
        format!("{}", r.fill_memory_accesses),
    ]);
    t.push_row(vec![
        "new cache lines per fill".into(),
        "up to 18".into(),
        format!("{}", r.fill_new_lines),
    ]);
    t.push_row(vec![
        "compile D-cache misses (cached vs uncached PTs)".into(),
        "fewer expected uncached".into(),
        format!(
            "{} vs {}",
            r.compile_misses_cached_pt, r.compile_misses_uncached_pt
        ),
    ]);
    t.push_row(vec![
        "compile wall clock".into(),
        "-".into(),
        format!(
            "{:.1}ms vs {:.1}ms",
            r.compile_ms_cached_pt, r.compile_ms_uncached_pt
        ),
    ]);
    (r, t)
}

/// One row of E-CLEAR (§9).
#[derive(Debug, Clone)]
pub struct PageClearRow {
    /// Clearing policy.
    pub policy: PageClearing,
    /// Compile wall clock (ms).
    pub wall_ms: f64,
    /// Compile data-cache misses.
    pub dcache_misses: u64,
    /// Demand-path clears that were skipped thanks to the list.
    pub precleared_hits: u64,
}

/// E-CLEAR (§9): idle-task page clearing.
///
/// Paper: clearing through the cache made the compile "nearly twice as
/// long"; uncached clearing without the list changed nothing; uncached
/// clearing + the pre-cleared list "became much faster".
pub fn exp_page_clear(depth: Depth) -> (Vec<PageClearRow>, Table) {
    // §9's effect lives in the L1: run on the L2-less PReP 603. Each I/O
    // stall is long enough for roughly three page clears — enough to evict
    // both ways of every L1 set — and the compute bursts re-traverse an
    // arena that exactly fits the L1.
    let cfg = CompileConfig {
        units: match depth {
            Depth::Quick => 3,
            Depth::Full => 10,
        },
        hot_pages: 2,
        alloc_pages: 12,
        wide_pages: 0,
        wide_frac: 0.0,
        refs_per_unit: 300_000,
        slices: 20,
        source_bytes: 16 * 1024,
        idle_slice: 30_000,
        seed: 1,
    };
    let run = |policy: PageClearing| {
        let kcfg = KernelConfig {
            page_clearing: policy,
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot(MachineConfig::ppc603_133_no_l2(), kcfg);
        let r = kernel_compile(&mut k, cfg);
        PageClearRow {
            policy,
            wall_ms: r.wall_ms,
            dcache_misses: r.monitor.dcache.misses,
            precleared_hits: k.frames.stats.precleared_hits,
        }
    };
    let rows = vec![
        run(PageClearing::OnDemand),
        run(PageClearing::IdleCached),
        run(PageClearing::IdleUncachedNoList),
        run(PageClearing::IdleUncached),
    ];
    let mut t = Table::new(
        "E-CLEAR (9): idle-task page clearing on the kernel compile (603 133MHz, no L2)",
        vec![
            "policy".into(),
            "paper".into(),
            "wall clock".into(),
            "dcache misses".into(),
            "precleared hits".into(),
        ],
    );
    let paper = ["baseline", "~2x slower", "no change", "much faster"];
    for (row, p) in rows.iter().zip(paper) {
        t.push_row(vec![
            format!("{:?}", row.policy),
            p.into(),
            format!("{:.1}ms", row.wall_ms),
            format!("{}", row.dcache_misses),
            format!("{}", row.precleared_hits),
        ]);
    }
    (rows, t)
}

/// Result of the §10 future-work extensions.
#[derive(Debug, Clone, Copy)]
pub struct ExtensionsResult {
    /// Compile wall clock, published-optimized kernel (ms).
    pub wall_ms_optimized: f64,
    /// Compile wall clock with idle cache locking (§10.1) (ms).
    pub wall_ms_idle_lock: f64,
    /// Context switch without cache preloads (µs).
    pub ctxsw_no_preload_us: f64,
    /// Context switch with cache preloads (§10.2) (µs).
    pub ctxsw_preload_us: f64,
}

/// §10 extensions: idle cache locking and context-switch cache preloads.
///
/// The paper proposes these as future work; we implement and measure them.
pub fn exp_extensions(depth: Depth) -> (ExtensionsResult, Table) {
    let compile = |idle_cache_lock: bool| {
        let kcfg = KernelConfig {
            idle_cache_lock,
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
        kernel_compile(&mut k, depth.compile()).wall_ms
    };
    let rounds = match depth {
        Depth::Quick => 10,
        Depth::Full => 40,
    };
    let ctxsw = |cache_preloads: bool| {
        let kcfg = KernelConfig {
            cache_preloads,
            ..KernelConfig::optimized()
        };
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
        // Eight processes with 32-page sets: enough combined footprint that
        // the incoming task struct has been evicted by the time it is
        // switched to — the case preloading targets.
        lat::ctx_switch(&mut k, 8, 32, rounds)
    };
    let r = ExtensionsResult {
        wall_ms_optimized: compile(false),
        wall_ms_idle_lock: compile(true),
        ctxsw_no_preload_us: ctxsw(false),
        ctxsw_preload_us: ctxsw(true),
    };
    let mut t = Table::new(
        "Extensions (10): idle cache locking and cache preloads",
        vec!["metric".into(), "without".into(), "with".into()],
    );
    t.push_row(vec![
        "compile wall clock (idle cache lock)".into(),
        format!("{:.1}ms", r.wall_ms_optimized),
        format!("{:.1}ms", r.wall_ms_idle_lock),
    ]);
    t.push_row(vec![
        "ctx switch (cache preloads)".into(),
        format!("{:.2}us", r.ctxsw_no_preload_us),
        format!("{:.2}us", r.ctxsw_preload_us),
    ]);
    (r, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fill_matches_paper_analysis() {
        let (r, _) = exp_cache_pollution(Depth::Quick);
        // 16 (search both PTEGs) + ~3 (Linux PT walk) + up to 17 (insert
        // probes + slot write) ≈ the paper's 34; allow the model's exact
        // count to vary a little around it.
        assert!(
            (28..=40).contains(&r.fill_memory_accesses),
            "fill accesses {} should be near the paper's 34",
            r.fill_memory_accesses
        );
        assert!(
            r.fill_new_lines >= 4,
            "a fill must create several new cache lines (got {})",
            r.fill_new_lines
        );
    }

    #[test]
    fn cached_clearing_slows_the_compile() {
        let (rows, _) = exp_page_clear(Depth::Quick);
        let on_demand = rows[0].wall_ms;
        let idle_cached = rows[1].wall_ms;
        let idle_uncached = rows[3].wall_ms;
        assert!(
            idle_cached > on_demand,
            "cached idle clearing ({idle_cached:.1}ms) must slow the compile vs baseline ({on_demand:.1}ms)"
        );
        assert!(
            idle_uncached < on_demand,
            "uncached idle clearing + list ({idle_uncached:.1}ms) must beat baseline ({on_demand:.1}ms)"
        );
    }
}
