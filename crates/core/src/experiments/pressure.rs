//! Robustness under pressure: LmBench-shaped work driven into every failure
//! mode at once — wild pointers (SIGSEGV), mappings past EOF (SIGBUS),
//! memory exhaustion (page-cache eviction, then the OOM killer), hash-table
//! overflow, and the seeded fault injector on top. A real kernel survives
//! all of this with bookkeeping, not a crash; so must the simulated one.
//!
//! The run is fully deterministic: the same injector seed reproduces the
//! same statistics bit for bit, which is what makes injected-fault bugs
//! debuggable.

use kernel_sim::sched::USER_BASE;
use kernel_sim::{FaultInjection, Kernel, KernelConfig, KernelStats};
use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

use crate::tables::Table;
use crate::Depth;

/// Pages each memory hog tries to dirty. A handful of hogs together want
/// more frames than the machine has, forcing reclaim and then OOM kills.
const HOG_PAGES: u32 = 1024;

/// Results of one pressure run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureRun {
    /// Kernel counter deltas for the run.
    pub stats: KernelStats,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Tasks still alive (and runnable) when the storm ended.
    pub survivors: usize,
}

/// Drives the storm on a freshly booted kernel with injector seed `seed`:
/// a victim pool of faulting tasks, a memory-hog pool that outgrows RAM,
/// and a page-cache working set for the reclaimer to feed on.
pub fn run_pressure(seed: u64, hogs: u32) -> PressureRun {
    let cfg = KernelConfig {
        fault_injection: Some(FaultInjection::light(seed)),
        ..KernelConfig::optimized()
    };
    run_pressure_on(cfg, hogs).0
}

/// As [`run_pressure`], but on an arbitrary kernel configuration (the perf
/// recorder runs the same storm with the PMU sampling), returning the
/// kernel too so callers can read tracer/PMU state.
pub fn run_pressure_on(cfg: KernelConfig, hogs: u32) -> (PressureRun, Kernel) {
    run_pressure_on_machine(MachineConfig::ppc604_133(), cfg, hogs)
}

/// The fully parameterized storm: any machine, any kernel configuration —
/// one bench-matrix cell's worth of fault-storm work.
pub fn run_pressure_on_machine(
    machine: MachineConfig,
    cfg: KernelConfig,
    hogs: u32,
) -> (PressureRun, Kernel) {
    let mut k = Kernel::boot(machine, cfg);
    let k0 = k.stats;
    let c0 = k.machine.cycles;

    // Page-cache fodder: a file the reclaimer can evict from (reads fill
    // the cache; nothing maps it, so every page is fair game).
    let cache_file = k
        .create_file(256 * PAGE_SIZE)
        .expect("page cache fits before the storm");
    if let Ok(pid) = k.spawn_process(8) {
        k.switch_to(pid);
        let _ = k.sys_read(cache_file, 0, USER_BASE, 8 * PAGE_SIZE);
    }

    // SIGSEGV: wild pointers between heap and stack.
    for i in 0..4u32 {
        if let Ok(pid) = k.spawn_process(4) {
            k.switch_to(pid);
            let _ = k.user_write(0x5000_0000 + i * 64 * PAGE_SIZE, 4);
        }
    }

    // SIGBUS: map four pages of a one-page file and run off the end.
    if let Ok(short_file) = k.create_file(PAGE_SIZE) {
        if let Ok(pid) = k.spawn_process(4) {
            k.switch_to(pid);
            let addr = k.sys_mmap(Some(short_file), 4 * PAGE_SIZE);
            let _ = k.user_read(addr + PAGE_SIZE, 4);
        }
    }

    // Memory hogs: each wants HOG_PAGES dirty anonymous pages; together
    // they exceed physical memory, so the allocator must evict the page
    // cache and then start killing. Dead hogs donate their frames to the
    // next one — exactly the OOM churn a thrashing box lives through.
    for _ in 0..hogs {
        match k.spawn_process(HOG_PAGES) {
            Ok(pid) => {
                k.switch_to(pid);
                // The hog dirties its set a chunk at a time; any chunk may
                // end the hog (injected failure or its own OOM kill).
                for chunk in 0..HOG_PAGES / 64 {
                    let base = USER_BASE + chunk * 64 * PAGE_SIZE;
                    if k.user_write(base, 64 * PAGE_SIZE).is_err() {
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }

    // Idle sweep: zombie PTEs from all the teardown get reclaimed.
    k.run_idle(1_000_000);

    let survivors = k.tasks.iter().filter(|t| t.is_alive()).count();
    // Wind down: every survivor exits; its frames must come back.
    let alive: Vec<_> = k
        .tasks
        .iter()
        .filter(|t| t.is_alive())
        .map(|t| t.pid)
        .collect();
    for pid in alive {
        if k.task_idx(pid).is_some() {
            k.switch_to(pid);
            k.exit_current();
        }
    }

    k.pmu_finish();
    (
        PressureRun {
            stats: k.stats.delta(&k0),
            cycles: k.machine.cycles - c0,
            survivors,
        },
        k,
    )
}

/// Runs the pressure storm and renders its fault ledger.
pub fn exp_pressure(depth: Depth) -> (PressureRun, Table) {
    let hogs = match depth {
        Depth::Quick => 10,
        Depth::Full => 24,
    };
    let run = run_pressure(42, hogs);
    let mut t = Table::new(
        "Fault storm (604 133MHz, seeded injector): the kernel survives",
        vec!["counter".into(), "count".into()],
    );
    // The full ledger comes straight from the generated counter enumeration
    // (KernelStats::as_named_pairs), so a counter added to the kernel shows
    // up here without touching this table. Zero rows are elided.
    for (name, n) in run.stats.as_named_pairs() {
        if n > 0 {
            t.push_row(vec![name.into(), format!("{n}")]);
        }
    }
    t.push_row(vec![
        "tasks_alive_at_end".into(),
        format!("{}", run.survivors),
    ]);
    (run, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_hits_every_failure_mode_and_no_one_panics() {
        let (run, _) = exp_pressure(Depth::Quick);
        let s = &run.stats;
        assert!(s.sigsegvs >= 4, "wild pointers must SIGSEGV ({})", s.sigsegvs);
        assert!(s.sigbus >= 1, "mapping past EOF must SIGBUS ({})", s.sigbus);
        assert!(s.oom_kills > 0, "hogs must trigger the OOM killer");
        assert!(s.reclaimed_pages > 0, "pressure must evict page cache");
        assert!(s.injected_faults > 0, "the injector must have fired");
    }

    #[test]
    fn same_seed_reproduces_the_storm_bit_for_bit() {
        assert_eq!(run_pressure(7, 8), run_pressure(7, 8));
        assert_eq!(run_pressure(1234, 8), run_pressure(1234, 8));
    }

    #[test]
    fn different_seeds_inject_differently() {
        let a = run_pressure(1, 8);
        let b = run_pressure(2, 8);
        // The workloads are identical; only the injector stream differs.
        assert_ne!(
            (a.stats.injected_faults, a.cycles),
            (b.stats.injected_faults, b.cycles)
        );
    }
}
