//! Extended LmBench rows beyond the paper's tables: signal catch, fork,
//! fork+exec, and streaming memory bandwidth, per machine — the rest of the
//! toolchain the authors ran.

use kernel_sim::{Kernel, KernelConfig};
use lmbench::lat;
use lmbench::mem::{bandwidth_mbs, MemOp};
use ppc_machine::MachineConfig;

use crate::tables::Table;
use crate::Depth;

/// One machine's extended-suite row.
#[derive(Debug, Clone)]
pub struct ExtendedRow {
    /// Machine name.
    pub machine: String,
    /// `lat_sig catch` (µs).
    pub sig_catch_us: f64,
    /// `lat_proc fork` (µs).
    pub fork_us: f64,
    /// `lat_proc exec` (µs).
    pub exec_us: f64,
    /// `bw_mem rd` over 1 MiB (MB/s).
    pub mem_rd_mbs: f64,
    /// `bw_mem cp` over 1 MiB (MB/s).
    pub mem_cp_mbs: f64,
}

/// Runs the extended rows on the optimized kernel across the paper's
/// machines.
pub fn extended_suite(depth: Depth) -> (Vec<ExtendedRow>, Table) {
    let iters = match depth {
        Depth::Quick => 5,
        Depth::Full => 15,
    };
    let machines = [
        MachineConfig::ppc603_133(),
        MachineConfig::ppc603_180(),
        MachineConfig::ppc604_133(),
        MachineConfig::ppc604_185(),
        MachineConfig::ppc604_200(),
    ];
    let rows: Vec<ExtendedRow> = machines
        .into_iter()
        .map(|mcfg| {
            let boot = || Kernel::boot(mcfg, KernelConfig::optimized());
            ExtendedRow {
                machine: mcfg.name.to_string(),
                sig_catch_us: lat::sig_catch(&mut boot(), iters * 4),
                fork_us: lat::fork_latency(&mut boot(), iters),
                exec_us: lat::exec_latency(&mut boot(), iters),
                mem_rd_mbs: bandwidth_mbs(&mut boot(), MemOp::Read, 1024),
                mem_cp_mbs: bandwidth_mbs(&mut boot(), MemOp::Copy, 1024),
            }
        })
        .collect();
    let mut t = Table::new(
        "Extended LmBench rows (optimized kernel)",
        vec![
            "machine".into(),
            "lat_sig".into(),
            "fork".into(),
            "fork+exec".into(),
            "bw_mem rd".into(),
            "bw_mem cp".into(),
        ],
    );
    for r in &rows {
        t.push_row(vec![
            r.machine.clone(),
            format!("{:.1}us", r.sig_catch_us),
            format!("{:.0}us", r.fork_us),
            format!("{:.0}us", r.exec_us),
            format!("{:.0} MB/s", r.mem_rd_mbs),
            format!("{:.0} MB/s", r.mem_cp_mbs),
        ]);
    }
    (rows, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_rows_are_ordered_sensibly() {
        let (rows, _) = extended_suite(Depth::Quick);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.fork_us < r.exec_us, "{}: fork < fork+exec", r.machine);
            assert!(r.mem_rd_mbs > r.mem_cp_mbs, "{}: rd bw > cp bw", r.machine);
            assert!(r.sig_catch_us > 0.5);
        }
        // The 200 MHz 604 with the fast board leads on raw-hardware rows.
        // (fork+exec is *not* asserted: the 604's forced hash-table flushes
        // make its exec path slower than the no-htab 603's — the paper's
        // §6.2 point about software-controlled reloads.)
        let first = &rows[0];
        let last = &rows[4];
        assert!(last.mem_rd_mbs > first.mem_rd_mbs);
        assert!(last.fork_us < first.fork_us);
    }
}
