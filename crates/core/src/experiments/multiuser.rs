//! The multiuser capstone: the §9 closing workload ("users compiling,
//! editing, reading mail") on the four kernel generations, showing where
//! each optimization family earns its share.

use kernel_sim::{Kernel, KernelConfig};
use lmbench::multiuser::{classic_mix, run_multiuser, MultiuserResult};
use ppc_machine::MachineConfig;

use crate::tables::Table;
use crate::Depth;

/// One kernel's multiuser numbers.
#[derive(Debug, Clone)]
pub struct MultiuserRow {
    /// Kernel label.
    pub label: String,
    /// The run's results.
    pub result: MultiuserResult,
}

/// Runs the classic mix on the unoptimized kernel, the optimized kernel,
/// and two intermediate steps (BATs only; BATs + fast handlers), exposing
/// the cumulative build-up the paper performed change by change (§4: "this
/// lets us look more closely at how each change affects the kernel by
/// itself").
pub fn exp_multiuser(depth: Depth) -> (Vec<MultiuserRow>, Table) {
    let rounds = match depth {
        Depth::Quick => 6,
        Depth::Full => 20,
    };
    let configs: Vec<(&str, KernelConfig)> = vec![
        ("unoptimized", KernelConfig::unoptimized()),
        (
            "+ BATs (5.1)",
            KernelConfig {
                use_bats: true,
                ..KernelConfig::unoptimized()
            },
        ),
        (
            "+ fast handlers (6.1)",
            KernelConfig {
                use_bats: true,
                handler: kernel_sim::HandlerStyle::FastAsm,
                ..KernelConfig::unoptimized()
            },
        ),
        ("fully optimized (5-9)", KernelConfig::optimized()),
    ];
    let rows: Vec<MultiuserRow> = configs
        .into_iter()
        .map(|(label, kcfg)| {
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
            let result = run_multiuser(&mut k, &classic_mix(), rounds);
            MultiuserRow {
                label: label.into(),
                result,
            }
        })
        .collect();
    let mut t = Table::new(
        "Multiuser mix (compile + edit + mail, 604 133MHz): the cumulative build-up",
        vec![
            "kernel".into(),
            "wall".into(),
            "idle share".into(),
            "TLB misses".into(),
            "dcache misses".into(),
        ],
    );
    for r in &rows {
        t.push_row(vec![
            r.label.clone(),
            format!("{:.1}ms", r.result.wall_ms),
            format!("{:.0}%", r.result.idle_frac * 100.0),
            format!("{}", r.result.monitor.tlb_misses()),
            format!("{}", r.result.monitor.dcache.misses),
        ]);
    }
    (rows, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_generation_improves_the_mix() {
        let (rows, _) = exp_multiuser(Depth::Quick);
        assert_eq!(rows.len(), 4);
        let walls: Vec<f64> = rows.iter().map(|r| r.result.wall_ms).collect();
        assert!(
            walls[3] < walls[0],
            "fully optimized ({:.1}) must beat unoptimized ({:.1})",
            walls[3],
            walls[0]
        );
        // Fast handlers are the big single win on a software-reload-heavy mix.
        assert!(walls[2] <= walls[1]);
    }
}
