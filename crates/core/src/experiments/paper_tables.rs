//! Tables 1, 2 and 3 of the paper.

use kernel_sim::{Kernel, KernelConfig, OsModel};
use lmbench::report::{run_suite_with, LmbenchResults};
use ppc_machine::MachineConfig;

use crate::tables::{mbs, us, Table};
use crate::Depth;

/// One measured column of a paper table.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column header (machine or OS name).
    pub name: String,
    /// The measured suite.
    pub results: LmbenchResults,
}

/// Runs the suite for a machine/kernel pair under `depth`.
fn suite(machine: MachineConfig, kcfg: KernelConfig, depth: Depth) -> LmbenchResults {
    run_suite_with(|| Kernel::boot(machine, kcfg), depth.suite())
}

/// The kernel with every optimization *except* hash-table elimination on
/// the 603 (Table 1's "603 (htab)" column).
fn optimized_with_htab() -> KernelConfig {
    KernelConfig {
        htab_on_603: true,
        ..KernelConfig::optimized()
    }
}

/// The kernel with every optimization *except* lazy flushing (Table 2's
/// untuned columns).
fn optimized_eager_flush() -> KernelConfig {
    KernelConfig {
        lazy_flush: false,
        flush_cutoff_pages: None,
        ..KernelConfig::optimized()
    }
}

/// Table 2's 603 ran software hash-table searches ("the 603 hash table
/// search is using software TLB miss handlers that emulate the 604").
fn with_htab(cfg: KernelConfig) -> KernelConfig {
    KernelConfig {
        htab_on_603: true,
        ..cfg
    }
}

/// **Table 1** — "LmBench summary for direct (bypassing hash table) TLB
/// reloads": 603/180 with and without the hash table, against hardware-
/// reloading 604s.
pub fn table1(depth: Depth) -> (Vec<Column>, Table) {
    let columns = vec![
        Column {
            name: "603 180MHz (htab)".into(),
            results: suite(MachineConfig::ppc603_180(), optimized_with_htab(), depth),
        },
        Column {
            name: "603 180MHz (no htab)".into(),
            results: suite(
                MachineConfig::ppc603_180(),
                KernelConfig::optimized(),
                depth,
            ),
        },
        Column {
            name: "604 185MHz".into(),
            results: suite(
                MachineConfig::ppc604_185(),
                KernelConfig::optimized(),
                depth,
            ),
        },
        Column {
            name: "604 200MHz".into(),
            results: suite(
                MachineConfig::ppc604_200(),
                KernelConfig::optimized(),
                depth,
            ),
        },
    ];
    let mut t = table_shell(
        "Table 1: LmBench summary for direct (bypassing hash table) TLB reloads",
        &columns,
    );
    push_metric(&mut t, "pstart", &columns, |r| {
        format!("{:.1}ms", r.pstart_ms)
    });
    push_metric(&mut t, "ctxsw", &columns, |r| us(r.ctxsw2_us));
    push_metric(&mut t, "pipe lat.", &columns, |r| us(r.pipe_lat_us));
    push_metric(&mut t, "pipe bw", &columns, |r| mbs(r.pipe_bw_mbs));
    push_metric(&mut t, "file reread", &columns, |r| mbs(r.file_reread_mbs));
    (columns, t)
}

/// **Table 2** — "LmBench summary for tunable TLB range flushing": eager
/// per-page flushing vs lazy VSID flushes (603/133) and the tuned cutoff
/// (604/185).
pub fn table2(depth: Depth) -> (Vec<Column>, Table) {
    let columns = vec![
        Column {
            name: "603 133MHz".into(),
            results: suite(
                MachineConfig::ppc603_133(),
                with_htab(optimized_eager_flush()),
                depth,
            ),
        },
        Column {
            name: "603 133MHz (lazy)".into(),
            results: suite(
                MachineConfig::ppc603_133(),
                with_htab(KernelConfig::optimized()),
                depth,
            ),
        },
        Column {
            name: "604 185MHz".into(),
            results: suite(MachineConfig::ppc604_185(), optimized_eager_flush(), depth),
        },
        Column {
            name: "604 185MHz (tune)".into(),
            results: suite(
                MachineConfig::ppc604_185(),
                KernelConfig::optimized(),
                depth,
            ),
        },
    ];
    let mut t = table_shell(
        "Table 2: LmBench summary for tunable TLB range flushing",
        &columns,
    );
    push_metric(&mut t, "mmap lat.", &columns, |r| us(r.mmap_lat_us));
    push_metric(&mut t, "ctxsw", &columns, |r| us(r.ctxsw2_us));
    push_metric(&mut t, "pipe lat.", &columns, |r| us(r.pipe_lat_us));
    push_metric(&mut t, "pipe bw", &columns, |r| mbs(r.pipe_bw_mbs));
    push_metric(&mut t, "file reread", &columns, |r| mbs(r.file_reread_mbs));
    (columns, t)
}

/// **Table 3** — "LmBench summary for Linux/PPC and other Operating
/// Systems", all on the 133 MHz 604.
pub fn table3(depth: Depth) -> (Vec<Column>, Table) {
    let machine = MachineConfig::ppc604_133();
    let columns: Vec<Column> = OsModel::table3()
        .into_iter()
        .map(|m| Column {
            name: m.name.to_string(),
            results: run_suite_with(|| m.boot(machine), depth.suite()),
        })
        .collect();
    let mut t = table_shell(
        "Table 3: LmBench summary for Linux/PPC and other Operating Systems (133MHz 604)",
        &columns,
    );
    push_metric(&mut t, "Null syscall", &columns, |r| us(r.null_syscall_us));
    push_metric(&mut t, "ctx switch", &columns, |r| us(r.ctxsw2_us));
    push_metric(&mut t, "pipe lat.", &columns, |r| us(r.pipe_lat_us));
    push_metric(&mut t, "pipe bw", &columns, |r| mbs(r.pipe_bw_mbs));
    (columns, t)
}

fn table_shell(title: &str, columns: &[Column]) -> Table {
    let mut headers = vec!["metric".to_string()];
    headers.extend(columns.iter().map(|c| c.name.clone()));
    Table::new(title, headers)
}

fn push_metric(
    t: &mut Table,
    name: &str,
    columns: &[Column],
    f: impl Fn(&LmbenchResults) -> String,
) {
    let mut row = vec![name.to_string()];
    row.extend(columns.iter().map(|c| f(&c.results)));
    t.push_row(row);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_ordering_matches_paper() {
        // The paper's headline: optimized Linux/PPC beats everything; the
        // Mach systems are the slowest.
        let (cols, t) = table3(Depth::Quick);
        let null: Vec<f64> = cols.iter().map(|c| c.results.null_syscall_us).collect();
        assert!(
            null[0] < null[1],
            "optimized beats unoptimized (null syscall)"
        );
        assert!(null[0] < null[2] && null[0] < null[3] && null[0] < null[4]);
        let bw: Vec<f64> = cols.iter().map(|c| c.results.pipe_bw_mbs).collect();
        assert!(
            bw[0] > bw[2] && bw[0] > bw[3],
            "Linux/PPC pipe bw beats Mach systems"
        );
        assert!(t.render().contains("Null syscall"));
    }

    #[test]
    fn table2_lazy_slashes_mmap_latency() {
        let (cols, _) = table2(Depth::Quick);
        let eager = cols[0].results.mmap_lat_us;
        let lazy = cols[1].results.mmap_lat_us;
        assert!(
            eager > 10.0 * lazy,
            "603: lazy flushing must slash mmap latency ({eager:.0} vs {lazy:.0} µs)"
        );
        let eager4 = cols[2].results.mmap_lat_us;
        let tuned4 = cols[3].results.mmap_lat_us;
        assert!(
            eager4 > 10.0 * tuned4,
            "604: same direction ({eager4:.0} vs {tuned4:.0})"
        );
    }
}
