//! E-MATRIX: does the bench matrix reproduce the paper's §8 ordering?
//!
//! §8 sums the paper up as a stack of before/afters: every optimization is
//! worth its section, and on the 603 the best hash table is no hash table
//! at all (§6.2). This experiment runs exactly the matrix cells those
//! claims are stated over and gates each one:
//!
//! 1. **Endpoints** — the optimized kernel beats the unoptimized one on
//!    the compile, on every machine row.
//! 2. **§6.2** — `603-nohtab` beats `603-swload` with both running the
//!    otherwise-optimized kernel.
//! 3. **Per-optimization signs** — each single-toggle ablation
//!    (`opt-no-X`) is slower than `opt` on the machine the paper measured
//!    the trick on. The gate machine matters: the matrix itself shows the
//!    scatter constant only hurts the hardware-walk 604s, and idle-time
//!    page clearing *inverts* on the 604s' cache — exactly the
//!    machine-dependence the paper's per-machine tables exist to show.
//! 4. **Clocks** — the 200MHz 604 beats the 133MHz 604 in wall time
//!    (its slower-in-cycles DRAM means raw cycles would invert).

use crate::matrix::{paper_machines, paper_variants, run_cell, MatrixMachine};
use crate::tables::Table;
use crate::Depth;

/// `(variant id, paper section, gate machine)`: where each optimization's
/// before/after sign is gated. Sections 5.1/6.1 are gated on the
/// software-reload 603 (the machine whose reload path they optimize), 5.2
/// and the §7 pair on the hardware-walk 604 (collision chains and zombie
/// PTEs cost the table-walker), and §9 on the 603 (the matrix shows the
/// 604's cache turns idle clearing into a loss — see the module docs).
pub const ABLATION_GATES: &[(&str, &str, &str)] = &[
    ("opt-no-bats", "5.1", "603-swload"),
    ("opt-untuned-scatter", "5.2", "604-133"),
    ("opt-slow-handlers", "6.1", "603-swload"),
    ("opt-eager-flush", "7", "604-133"),
    ("opt-no-idle-reclaim", "7", "604-133"),
    ("opt-clear-on-demand", "9", "603-swload"),
];

/// One optimization's before/after on its gate machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizationRow {
    /// Ablation variant id (`opt-no-bats`, …).
    pub config: &'static str,
    /// Paper section making the claim.
    pub section: &'static str,
    /// Machine row the claim is gated on.
    pub machine: &'static str,
    /// Compile cycles with the full optimized kernel.
    pub opt_cycles: u64,
    /// Compile cycles with this one optimization removed.
    pub ablated_cycles: u64,
    /// `ablated - opt`: positive means the optimization earns its keep.
    pub delta: i64,
    /// Whether the sign matches the paper (delta strictly positive).
    pub sign_matches_paper: bool,
}

/// The complete E-MATRIX result.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// `quick` or `full`.
    pub depth: &'static str,
    /// `(machine, unopt cycles, opt cycles)` for the compile, every row.
    pub endpoints: Vec<(&'static str, u64, u64)>,
    /// One before/after per paper optimization.
    pub rows: Vec<OptimizationRow>,
    /// Gate 1: opt < unopt on every machine.
    pub opt_beats_unopt_everywhere: bool,
    /// Gate 2 (§6.2): no-htab 603 beats hashed 603 on the compile.
    pub nohtab_beats_swload: bool,
    /// Gate 4: 604-200 beats 604-133 in wall microseconds.
    pub fast_board_wins_wall: bool,
}

impl MatrixResult {
    /// Gate 3: every per-optimization sign matches §8.
    pub fn all_signs_match(&self) -> bool {
        self.rows.iter().all(|r| r.sign_matches_paper)
    }

    /// All four gates at once (what CI checks).
    pub fn ordering_holds(&self) -> bool {
        self.opt_beats_unopt_everywhere
            && self.nohtab_beats_swload
            && self.fast_board_wins_wall
            && self.all_signs_match()
    }
}

fn machine_by_id(machines: &[MatrixMachine], id: &str) -> MatrixMachine {
    *machines
        .iter()
        .find(|m| m.id == id)
        .unwrap_or_else(|| panic!("unknown matrix machine {id:?}"))
}

/// Runs the ordering cells and renders the before/after table.
pub fn exp_matrix(depth: Depth) -> (MatrixResult, Table) {
    let machines = paper_machines();
    let variants = paper_variants();
    let variant = |id: &str| {
        variants
            .iter()
            .find(|(v, _)| *v == id)
            .unwrap_or_else(|| panic!("unknown matrix variant {id:?}"))
            .1
    };

    // Endpoints on every machine row (also yields the §6.2 and wall-time
    // cells).
    let mut endpoints = Vec::new();
    let mut opt_cells = Vec::new();
    for m in &machines {
        let unopt = run_cell(m, "unopt", variant("unopt"), "compile", depth);
        let opt = run_cell(m, "opt", variant("opt"), "compile", depth);
        endpoints.push((m.id, unopt.cycles, opt.cycles));
        opt_cells.push(opt);
    }
    let opt_cell = |id: &str| opt_cells.iter().find(|c| c.machine == id).unwrap();
    let opt_beats_unopt_everywhere = endpoints.iter().all(|&(_, u, o)| o < u);
    let nohtab_beats_swload =
        opt_cell("603-nohtab").cycles < opt_cell("603-swload").cycles;
    let fast_board_wins_wall =
        opt_cell("604-200").wall_us < opt_cell("604-133").wall_us;

    // One ablated cell per optimization, on its gate machine.
    let rows = ABLATION_GATES
        .iter()
        .map(|&(config, section, machine)| {
            let m = machine_by_id(&machines, machine);
            let ablated = run_cell(&m, "ablated", variant(config), "compile", depth);
            let opt_cycles = opt_cell(machine).cycles;
            let delta = ablated.cycles as i64 - opt_cycles as i64;
            OptimizationRow {
                config,
                section,
                machine,
                opt_cycles,
                ablated_cycles: ablated.cycles,
                delta,
                sign_matches_paper: delta > 0,
            }
        })
        .collect();

    let result = MatrixResult {
        depth: match depth {
            Depth::Quick => "quick",
            Depth::Full => "full",
        },
        endpoints,
        rows,
        opt_beats_unopt_everywhere,
        nohtab_beats_swload,
        fast_board_wins_wall,
    };

    let mut t = Table::new(
        "E-MATRIX: each paper optimization, before/after on its gate machine (compile cycles)",
        vec![
            "optimization removed".into(),
            "section".into(),
            "machine".into(),
            "opt".into(),
            "ablated".into(),
            "delta".into(),
            "sign".into(),
        ],
    );
    for r in &result.rows {
        t.push_row(vec![
            r.config.into(),
            format!("§{}", r.section),
            r.machine.into(),
            format!("{}", r.opt_cycles),
            format!("{}", r.ablated_cycles),
            format!("{:+}", r.delta),
            if r.sign_matches_paper { "matches paper" } else { "INVERTED" }.into(),
        ]);
    }
    for (id, u, o) in &result.endpoints {
        t.push_row(vec![
            "(endpoints)".into(),
            "§8".into(),
            (*id).into(),
            format!("{o}"),
            format!("{u}"),
            format!("{:+}", *u as i64 - *o as i64),
            if o < u { "matches paper" } else { "INVERTED" }.into(),
        ]);
    }
    t.push_row(vec![
        "(no htab at all)".into(),
        "§6.2".into(),
        "603-nohtab".into(),
        format!("{}", opt_cell("603-nohtab").cycles),
        format!("{}", opt_cell("603-swload").cycles),
        String::new(),
        if result.nohtab_beats_swload { "matches paper" } else { "INVERTED" }.into(),
    ]);
    t.push_row(vec![
        "(fast board, wall µs)".into(),
        "§8".into(),
        "604-200".into(),
        format!("{}", opt_cell("604-200").wall_us),
        format!("{}", opt_cell("604-133").wall_us),
        String::new(),
        if result.fast_board_wins_wall { "matches paper" } else { "INVERTED" }.into(),
    ]);
    (result, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ordering_reproduces_and_is_gated() {
        let (r, t) = exp_matrix(Depth::Quick);
        assert!(r.opt_beats_unopt_everywhere, "endpoints: {:?}", r.endpoints);
        assert!(r.nohtab_beats_swload, "§6.2 inverted");
        assert!(r.fast_board_wins_wall, "wall-time ordering inverted");
        for row in &r.rows {
            assert!(
                row.sign_matches_paper,
                "§{} sign inverted on {}: {:+}",
                row.section, row.machine, row.delta
            );
            assert!(row.delta.unsigned_abs() > 0);
        }
        assert!(r.ordering_holds());
        assert_eq!(r.rows.len(), ABLATION_GATES.len());
        assert_eq!(r.endpoints.len(), 4);
        let s = t.render();
        assert!(s.contains("matches paper") && !s.contains("INVERTED"));
    }
}
