//! Counter traces — the §4 measurement methodology as a harness.
//!
//! The paper's workflow was: run the workload, watch the 604 hardware
//! monitor (or the 603 software counters), and let the counters drive the
//! next optimization. [`trace_compile`] reproduces that loop: it samples
//! every hardware counter once per compilation unit and renders the series,
//! and [`memory_hierarchy`] sweeps `lat_mem_rd` to chart the cache
//! staircase the cost model rests on.

use kernel_sim::{Kernel, KernelConfig};
use lmbench::compile::CompileConfig;
use lmbench::mem;
use ppc_machine::MachineConfig;

use crate::tables::{sparkline, Table};
use crate::Depth;

/// One per-unit sample of the compile trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceSample {
    /// Cycles spent in this unit.
    pub cycles: u64,
    /// TLB misses (I + D).
    pub tlb_misses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// Hash-table hit rate on TLB misses in this window.
    pub htab_hit_rate: f64,
}

/// Runs the compile one unit at a time on `kcfg`, sampling the monitor
/// between units (the paper's counter-watching loop).
pub fn trace_compile(depth: Depth, kcfg: KernelConfig) -> (Vec<TraceSample>, Table) {
    let cfg = depth.compile();
    let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
    let mut samples = Vec::new();
    let unit_cfg = CompileConfig { units: 1, ..cfg };
    for _ in 0..cfg.units {
        let m0 = k.machine.snapshot();
        let k0 = k.stats;
        lmbench::compile::kernel_compile(&mut k, unit_cfg);
        let dm = k.machine.snapshot().delta(&m0);
        let dk = k.stats.diff(&k0);
        samples.push(TraceSample {
            cycles: dm.cycles,
            tlb_misses: dm.tlb_misses(),
            dcache_misses: dm.dcache.misses,
            htab_hit_rate: dk.htab_hit_rate(),
        });
    }
    let series = |f: fn(&TraceSample) -> f64| -> Vec<f64> { samples.iter().map(f).collect() };
    let mut t = Table::new(
        "Counter trace: one sample per compile unit (604 hardware monitor, 4)",
        vec!["counter".into(), "min".into(), "max".into(), "trend".into()],
    );
    for (name, vals) in [
        ("cycles/unit", series(|s| s.cycles as f64)),
        ("TLB misses/unit", series(|s| s.tlb_misses as f64)),
        ("dcache misses/unit", series(|s| s.dcache_misses as f64)),
        ("htab hit rate", series(|s| s.htab_hit_rate * 100.0)),
    ] {
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        t.push_row(vec![
            name.into(),
            format!("{min:.0}"),
            format!("{max:.0}"),
            sparkline(&vals),
        ]);
    }
    (samples, t)
}

/// One machine's latency staircase.
#[derive(Debug, Clone)]
pub struct MemHierRow {
    /// Machine name.
    pub machine: String,
    /// `(size KiB, ns/access)` points.
    pub points: Vec<(u32, f64)>,
}

/// `lat_mem_rd` sweeps per machine: the L1 → L2 → DRAM staircase that
/// validates the memory-hierarchy model underneath every experiment.
pub fn memory_hierarchy(_depth: Depth) -> (Vec<MemHierRow>, Table) {
    let sizes = [4u32, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let machines = [
        MachineConfig::ppc603_133(),
        MachineConfig::ppc603_133_no_l2(),
        MachineConfig::ppc604_133(),
        MachineConfig::ppc604_200(),
    ];
    let rows: Vec<MemHierRow> = machines
        .into_iter()
        .map(|mcfg| {
            let points: Vec<(u32, f64)> = sizes
                .iter()
                .map(|&kb| {
                    let mut k = Kernel::boot(mcfg, KernelConfig::optimized());
                    (kb, mem::read_latency_ns(&mut k, kb))
                })
                .collect();
            MemHierRow {
                machine: mcfg.name.to_string(),
                points,
            }
        })
        .collect();
    let mut t = Table::new(
        "lat_mem_rd: load latency (ns) vs working-set size — the cache staircase",
        {
            let mut cols = vec!["machine".into()];
            cols.extend(sizes.iter().map(|s| format!("{s}K")));
            cols.push("shape".into());
            cols
        },
    );
    for r in &rows {
        let mut row = vec![r.machine.clone()];
        row.extend(r.points.iter().map(|(_, ns)| format!("{ns:.0}")));
        row.push(sparkline(
            &r.points.iter().map(|(_, ns)| *ns).collect::<Vec<_>>(),
        ));
        t.push_row(row);
    }
    (rows, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_reflects_cache_sizes() {
        let (rows, _) = memory_hierarchy(Depth::Quick);
        // 604/133: 16 KiB L1, 512 KiB L2.
        let m604 = rows.iter().find(|r| r.machine == "604 133MHz").unwrap();
        let at = |kb: u32| m604.points.iter().find(|(s, _)| *s == kb).unwrap().1;
        assert!(at(8) < at(64), "L1 plateau below L2 plateau");
        assert!(at(64) < at(4096), "L2 plateau below DRAM plateau");
        // The no-L2 603 jumps straight from L1 to DRAM.
        let no_l2 = rows.iter().find(|r| r.machine.contains("no L2")).unwrap();
        let at = |kb: u32| no_l2.points.iter().find(|(s, _)| *s == kb).unwrap().1;
        assert!((at(64) - at(2048)).abs() / at(2048) < 0.2);
    }

    #[test]
    fn trace_produces_one_sample_per_unit() {
        let (samples, t) = trace_compile(Depth::Quick, KernelConfig::optimized());
        assert_eq!(samples.len() as u32, Depth::Quick.compile().units);
        assert!(samples.iter().all(|s| s.cycles > 0));
        assert!(t.render().contains("TLB misses/unit"));
    }
}
