//! Machine-readable run artifacts: the §4 measurement loop as files.
//!
//! [`trace_artifacts`] runs one deterministic workload twice — tracer off,
//! then tracer on — and packages everything the observability layer
//! captured into two artifacts a CI job can diff across commits:
//!
//! * `metrics.json` — flat counters: total cycles, the measured tracer
//!   overhead (zero by construction, and *checked* here), per-subsystem
//!   cycle attribution, latency percentiles for the three hot paths,
//!   every [`KernelStats`] counter, and the per-PTEG insert/collision
//!   heatmap;
//! * a Chrome `trace_event` JSON timeline (load it in `about:tracing` or
//!   Perfetto) with cycle stamps as timestamps.
//!
//! Both are byte-for-byte reproducible: no wall-clock timestamps, no
//! paths, no floating-point formatting that varies run to run.

use kernel_sim::sched::USER_BASE;
use kernel_sim::telemetry::SERIES_NAMES;
use kernel_sim::{
    EpochSample, Kernel, KernelConfig, KernelStats, LatencyPath, Subsystem, TelemetryConfig,
};
use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

use crate::tables::{sparkline, Table};
use crate::Depth;

/// Summary of one latency histogram: count, range, and the percentiles the
/// paper's tables quote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Path name (`tlb_reload`, `page_fault`, `signal_delivery`).
    pub path: &'static str,
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample (cycles).
    pub min: u64,
    /// Largest sample (cycles).
    pub max: u64,
    /// Mean in milli-cycles (×1000, kept integral for determinism).
    pub mean_millicycles: u64,
    /// 50th percentile (cycles).
    pub p50: u64,
    /// 90th percentile (cycles).
    pub p90: u64,
    /// 99th percentile (cycles). A log2-bucket **upper bound** — can
    /// overstate the true p99 by up to 2×.
    pub p99: u64,
    /// Exact 99th percentile (cycles), read from the tail-forensics
    /// exemplar reservoir ([`kernel_sim::tail`]) when the 1% tail fits in
    /// the retained samples; falls back to the bucket bound `p99` when it
    /// does not (so `p99_exact <= p99` always).
    pub p99_exact: u64,
}

/// The exact p99 from a slowest-first exemplar reservoir: the sample at
/// rank `ceil(0.99 * count)` from the bottom, when the reservoir reaches
/// down that far; `bucket_bound` otherwise.
fn exact_p99(count: u64, bucket_bound: u64, exemplars: &[kernel_sim::TailExemplar]) -> u64 {
    if count == 0 {
        return 0;
    }
    let idx = (count - (count * 99).div_ceil(100)) as usize;
    exemplars.get(idx).map_or(bucket_bound, |e| e.latency)
}

/// Everything the traced reference run produced, ready for export.
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// Depth the workload ran at (`quick` or `full`).
    pub depth: &'static str,
    /// Machine slug (e.g. `604-133`) the run was measured on — recorded so
    /// the differ can refuse cross-machine comparisons.
    pub machine: String,
    /// The kernel's full optimization-toggle summary
    /// ([`KernelConfig::summary`]).
    pub config: String,
    /// Total cycles of the traced run.
    pub total_cycles: u64,
    /// `|traced - untraced|` cycles for the same workload. The tracer is
    /// purely observational, so this is zero; CI fails if it ever is not.
    pub overhead_cycles: u64,
    /// `(subsystem, self cycles)` in [`Subsystem::ALL`] order; sums to
    /// [`TraceArtifacts::total_cycles`] exactly.
    pub attribution: Vec<(&'static str, u64)>,
    /// One summary per [`LatencyPath`].
    pub latency: Vec<LatencySummary>,
    /// Kernel counters for the run.
    pub stats: KernelStats,
    /// Hash-table inserts per PTEG (index = group).
    pub pteg_inserts: Vec<u32>,
    /// Inserts per PTEG that displaced a live entry.
    pub pteg_collisions: Vec<u32>,
    /// Ring capacity.
    pub ring_capacity: usize,
    /// Records still in the ring.
    pub ring_recorded: usize,
    /// Records pushed over the run (≥ recorded).
    pub ring_pushed: u64,
    /// Records overwritten by wrap-around.
    pub ring_dropped: u64,
    /// Chrome `trace_event` JSON of the ring.
    pub chrome_json: String,
    /// Epoch width of the telemetry sampler (cycles).
    pub telemetry_epoch_cycles: u64,
    /// The MMU time series, one sample per crossed epoch (plus the final
    /// tail sample).
    pub telemetry: Vec<EpochSample>,
}

impl TraceArtifacts {
    /// Sum of the attribution buckets (equals `total_cycles`).
    pub fn attribution_total(&self) -> u64 {
        self.attribution.iter().map(|(_, c)| c).sum()
    }

    /// The `metrics.json` body: a single flat, deterministic JSON object.
    pub fn metrics_json(&self) -> String {
        format!("{{\n{}\n}}\n", self.metrics_fragment())
    }

    /// The key/value pairs of [`TraceArtifacts::metrics_json`] without the
    /// surrounding braces, so callers can splice them into a larger
    /// document (the `repro --json` run report does).
    pub fn metrics_fragment(&self) -> String {
        let mut s = String::new();
        s.push_str("  \"schema\": \"mmu-tricks-metrics-v1\",\n");
        s.push_str("  \"workload\": \"compile+signals\",\n");
        s.push_str(&format!("  \"depth\": \"{}\",\n", self.depth));
        s.push_str(&format!("  \"machine\": \"{}\",\n", self.machine));
        s.push_str(&format!("  \"config\": \"{}\",\n", self.config));
        s.push_str(&format!("  \"total_cycles\": {},\n", self.total_cycles));
        s.push_str(&format!(
            "  \"overhead_cycles\": {},\n",
            self.overhead_cycles
        ));
        s.push_str("  \"attribution\": {");
        for (i, (name, cycles)) in self.attribution.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{name}\": {cycles}"));
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "  \"attribution_total\": {},\n",
            self.attribution_total()
        ));
        s.push_str("  \"latency\": {\n");
        for (i, l) in self.latency.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \
                 \"mean_millicycles\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                 \"p99_exact\": {}}}",
                l.path,
                l.count,
                l.min,
                l.max,
                l.mean_millicycles,
                l.p50,
                l.p90,
                l.p99,
                l.p99_exact
            ));
            s.push_str(if i + 1 < self.latency.len() { ",\n" } else { "\n" });
        }
        s.push_str("  },\n");
        s.push_str("  \"stats\": {");
        for (i, (name, v)) in self.stats.as_named_pairs().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{name}\": {v}"));
        }
        s.push_str("},\n");
        let join = |v: &[u32]| {
            v.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        s.push_str(&format!(
            "  \"pteg\": {{\"groups\": {}, \"inserts_total\": {}, \"collisions_total\": {}, \
             \"inserts\": [{}], \"collisions\": [{}]}},\n",
            self.pteg_inserts.len(),
            self.pteg_inserts.iter().map(|&n| u64::from(n)).sum::<u64>(),
            self.pteg_collisions
                .iter()
                .map(|&n| u64::from(n))
                .sum::<u64>(),
            join(&self.pteg_inserts),
            join(&self.pteg_collisions),
        ));
        s.push_str(&format!(
            "  \"ring\": {{\"capacity\": {}, \"recorded\": {}, \"pushed\": {}, \"dropped\": {}}},\n",
            self.ring_capacity, self.ring_recorded, self.ring_pushed, self.ring_dropped
        ));
        s.push_str(&format!(
            "  \"telemetry\": {{\"epoch_cycles\": {}, \"samples\": {}, \"series\": {{",
            self.telemetry_epoch_cycles,
            self.telemetry.len()
        ));
        for (i, name) in SERIES_NAMES.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let vals = self
                .telemetry
                .iter()
                .map(|e| e.series(name).to_string())
                .collect::<Vec<_>>()
                .join(",");
            s.push_str(&format!("\"{name}\": [{vals}]"));
        }
        s.push_str("}}");
        s
    }

    /// The telemetry time series as a sparkline table (the `repro report`
    /// view): one row per series with its range and an ASCII plot over the
    /// run's epochs.
    pub fn telemetry_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "MMU telemetry over {} epochs of {} cycles ({}, {})",
                self.telemetry.len(),
                self.telemetry_epoch_cycles,
                self.machine,
                self.depth
            ),
            vec![
                "series".into(),
                "min".into(),
                "max".into(),
                "last".into(),
                "trend".into(),
            ],
        );
        for name in SERIES_NAMES {
            let vals: Vec<u64> = self.telemetry.iter().map(|e| e.series(name)).collect();
            let min = vals.iter().min().copied().unwrap_or(0);
            let max = vals.iter().max().copied().unwrap_or(0);
            let last = vals.last().copied().unwrap_or(0);
            t.push_row(vec![
                (*name).into(),
                format!("{min}"),
                format!("{max}"),
                format!("{last}"),
                sparkline(&downsample(&vals, 48)),
            ]);
        }
        t
    }
}

/// Reduces a series to at most `width` points by taking the max of each
/// chunk (peaks are what a trend plot must not lose).
fn downsample(vals: &[u64], width: usize) -> Vec<f64> {
    if vals.is_empty() {
        return Vec::new();
    }
    let chunk = vals.len().div_ceil(width);
    vals.chunks(chunk)
        .map(|c| *c.iter().max().expect("chunks are non-empty") as f64)
        .collect()
}

/// The reference workload: the paper's compile, then a signal-heavy coda so
/// all three latency paths (TLB reload, page fault, signal delivery) carry
/// samples, then an idle sweep. Fully deterministic — the `repro bench`
/// artifact, the perf recorder and the E-PMU experiment all run exactly
/// this, so their cycle totals are comparable.
pub fn reference_workload(k: &mut Kernel, depth: Depth) {
    lmbench::compile::kernel_compile(k, depth.compile());
    let pid = k.spawn_process(8).expect("room for the signal task");
    k.switch_to(pid);
    k.user_write(USER_BASE, PAGE_SIZE).expect("prefault handler page");
    k.sys_signal_install();
    let rounds = match depth {
        Depth::Quick => 32,
        Depth::Full => 256,
    };
    for _ in 0..rounds {
        k.signal_roundtrip(USER_BASE).expect("handler installed");
    }
    k.run_idle(100_000);
    k.exit_current();
}

/// Runs the reference workload untraced and traced on the optimized kernel
/// (604/133), measures the tracer's cycle overhead (zero), and returns the
/// artifacts plus rendered tables: subsystem self-time and latency
/// percentiles.
///
/// The traced run also carries the epoch telemetry sampler *and* the
/// tail-forensics capture, so the `overhead_cycles == 0` gate covers the
/// whole observability stack: a run with tracing, telemetry and tail
/// capture must cost exactly what a bare run costs.
pub fn trace_artifacts(depth: Depth) -> (TraceArtifacts, Vec<Table>) {
    let run = |observe: bool| -> Kernel {
        let mut cfg = KernelConfig::optimized();
        cfg.trace = observe;
        if observe {
            cfg.telemetry = Some(TelemetryConfig::default_epochs());
            // Capture-all with a deep reservoir so the exact p99 is read
            // off the retained tail instead of a bucket bound.
            cfg.tail = Some(crate::tail::percentile_tail());
        }
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), cfg);
        reference_workload(&mut k, depth);
        k.telemetry_finish();
        k
    };
    let off = run(false);
    let mut on = run(true);
    let total_cycles = on.machine.cycles;
    let overhead_cycles = total_cycles.abs_diff(off.machine.cycles);
    let stats = on.stats;
    let telemetry = on
        .telemetry
        .as_ref()
        .map(|t| t.epochs.clone())
        .unwrap_or_default();
    let now = on.machine.cycles;
    let t = on.tracer.as_mut().expect("tracer enabled");
    t.prof.finish(now);

    let attribution: Vec<(&'static str, u64)> = Subsystem::ALL
        .iter()
        .map(|&s| (s.name(), t.prof.self_cycles(s)))
        .collect();
    let tail_state = on.tail.as_ref().expect("tail capture enabled");
    let latency: Vec<LatencySummary> = LatencyPath::ALL
        .iter()
        .map(|&p| {
            let h = t.latency(p);
            let (p50, p90, p99) = h.percentiles();
            LatencySummary {
                path: p.name(),
                count: h.count(),
                min: h.min(),
                max: h.max(),
                mean_millicycles: (h.mean() * 1000.0).round() as u64,
                p50,
                p90,
                p99,
                p99_exact: exact_p99(h.count(), p99, tail_state.exemplars(p)),
            }
        })
        .collect();

    let art = TraceArtifacts {
        depth: match depth {
            Depth::Quick => "quick",
            Depth::Full => "full",
        },
        machine: MachineConfig::ppc604_133().id(),
        config: KernelConfig::optimized().summary(),
        total_cycles,
        overhead_cycles,
        attribution,
        latency,
        stats,
        pteg_inserts: t.pteg_inserts.clone(),
        pteg_collisions: t.pteg_collisions.clone(),
        ring_capacity: kernel_sim::trace::DEFAULT_RING_CAPACITY,
        ring_recorded: t.ring.len(),
        ring_pushed: t.ring.total_pushed(),
        ring_dropped: t.ring.dropped(),
        chrome_json: t.chrome_trace_json(),
        telemetry_epoch_cycles: kernel_sim::telemetry::DEFAULT_EPOCH_CYCLES,
        telemetry,
    };

    let mut self_time = Table::new(
        "Self-time by subsystem (604 133MHz, optimized kernel, traced run)",
        vec!["subsystem".into(), "cycles".into(), "share".into()],
    );
    let mut rows: Vec<(&'static str, u64)> = art.attribution.clone();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (name, cycles) in rows {
        self_time.push_row(vec![
            name.into(),
            format!("{cycles}"),
            format!("{:.1}%", 100.0 * cycles as f64 / art.total_cycles as f64),
        ]);
    }
    self_time.push_row(vec![
        "total".into(),
        format!("{}", art.attribution_total()),
        format!(
            "tracer overhead: {} cycles",
            art.overhead_cycles
        ),
    ]);

    let mut lat = Table::new(
        "Latency percentiles (cycles) per instrumented path \
         (p99 is the bucket bound, p99_exact the captured sample)",
        vec![
            "path".into(),
            "count".into(),
            "min".into(),
            "p50".into(),
            "p90".into(),
            "p99".into(),
            "p99_exact".into(),
            "max".into(),
        ],
    );
    for l in &art.latency {
        lat.push_row(vec![
            l.path.into(),
            format!("{}", l.count),
            format!("{}", l.min),
            format!("{}", l.p50),
            format!("{}", l.p90),
            format!("{}", l.p99),
            format!("{}", l.p99_exact),
            format!("{}", l.max),
        ]);
    }

    let telem = art.telemetry_table();
    (art, vec![self_time, lat, telem])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_deterministic_and_overhead_free() {
        let (a, _) = trace_artifacts(Depth::Quick);
        let (b, _) = trace_artifacts(Depth::Quick);
        assert_eq!(a.overhead_cycles, 0, "tracing must not charge cycles");
        assert_eq!(a.metrics_json(), b.metrics_json());
        assert_eq!(a.chrome_json, b.chrome_json);
    }

    #[test]
    fn attribution_sums_and_latency_paths_populate() {
        let (a, tables) = trace_artifacts(Depth::Quick);
        assert_eq!(a.attribution_total(), a.total_cycles);
        assert_eq!(a.latency.len(), 3);
        for l in &a.latency {
            assert!(l.count > 0, "{} has no samples", l.path);
            assert!(l.p50 <= l.p90 && l.p90 <= l.p99, "{}", l.path);
            assert!(
                l.p99_exact > 0 && l.p99_exact <= l.p99,
                "{}: exact p99 {} must be a real sample under the bucket \
                 bound {}",
                l.path,
                l.p99_exact,
                l.p99
            );
            assert!(l.p99_exact <= l.max, "{}", l.path);
        }
        assert!(a.pteg_inserts.iter().any(|&n| n > 0));
        assert_eq!(tables.len(), 3);
        // The telemetry series covers the run and plots non-trivially.
        assert!(a.telemetry.len() >= 4, "quick run spans many epochs");
        let telem = tables[2].render();
        assert!(telem.contains("htab_valid") && telem.contains('▁'), "{telem}");
    }

    #[test]
    fn metrics_json_has_the_required_keys_and_balances() {
        let (a, _) = trace_artifacts(Depth::Quick);
        let j = a.metrics_json();
        for key in [
            "\"schema\"",
            "\"total_cycles\"",
            "\"overhead_cycles\": 0",
            "\"attribution\"",
            "\"attribution_total\"",
            "\"tlb_reload\"",
            "\"page_fault\"",
            "\"signal_delivery\"",
            "\"p99_exact\"",
            "\"stats\"",
            "\"pteg\"",
            "\"ring\"",
            "\"machine\": \"604-133\"",
            "\"config\": \"bats=1",
            "\"telemetry\"",
            "\"epoch_cycles\"",
            "\"htab_valid\"",
            "\"zombie_ptes\"",
            "\"tlb_kernel\"",
            "\"htab_hit_ppm\"",
        ] {
            assert!(j.contains(key), "metrics.json missing {key}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // Every kernel counter appears by name.
        for name in KernelStats::NAMES {
            assert!(j.contains(&format!("\"{name}\"")), "missing {name}");
        }
    }
}
