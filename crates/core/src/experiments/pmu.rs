//! E-PMU: does sampled attribution converge to the exact span profiler?
//!
//! The paper's measurement methodology (§4) is the 604 hardware monitor;
//! PR 2 gave the simulator an *exact* profiler (every charged cycle
//! attributed at span boundaries) that no real machine can have. This
//! experiment validates the PMU model against that ground truth three ways:
//!
//! 1. **Non-perturbation** — a PMU that only counts (no sampling
//!    interrupts) leaves the run cycle-identical to a PMU-less kernel.
//! 2. **Convergence** — cycle-sampled subsystem shares approach the exact
//!    shares as the sampling period shrinks; the acceptance bar is
//!    agreement within 5 % (50 000 ppm of absolute share) at the finest
//!    period.
//! 3. **Honest overhead** — sampling charges its modeled interrupt cost
//!    (exception entry/exit + handler body), visible as extra cycles over
//!    the unsampled baseline and attributed to the `pmu` bucket.
//!
//! The sampled and exact profiles are read from the *same* run, so the
//! comparison measures sampling error, not run-to-run divergence.

use kernel_sim::{Kernel, KernelConfig, PmuConfig, Subsystem};
use ppc_machine::pmu::PmcEvent;
use ppc_machine::MachineConfig;

use super::artifacts::reference_workload;
use crate::tables::Table;
use crate::Depth;

/// One sampling period's agreement with the exact profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmuConvergenceRow {
    /// Sampling period (cycles between interrupts).
    pub period: u32,
    /// Sampling interrupts delivered.
    pub interrupts: u64,
    /// Weighted samples collected (whole periods observed).
    pub weight: u64,
    /// Largest absolute share disagreement across subsystems, in ppm of
    /// total self-time (50 000 ppm = 5 percentage points).
    pub max_share_err_ppm: u64,
    /// Extra cycles over the unsampled baseline (the sampling cost).
    pub overhead_cycles: u64,
    /// The same, in ppm of the baseline.
    pub overhead_ppm: u64,
}

/// The complete E-PMU result.
#[derive(Debug, Clone)]
pub struct PmuResult {
    /// `quick` or `full`.
    pub depth: &'static str,
    /// Cycles of the traced, PMU-less reference run.
    pub baseline_cycles: u64,
    /// Cycles of the same run with a counting-only PMU installed.
    pub counting_cycles: u64,
    /// Whether the counting run was cycle-identical to the baseline (the
    /// non-perturbation guarantee; CI fails when false).
    pub counting_identical: bool,
    /// One row per sampling period, coarsest first.
    pub rows: Vec<PmuConvergenceRow>,
}

impl PmuResult {
    /// Share error at the finest period (the acceptance-criterion number).
    pub fn finest_err_ppm(&self) -> u64 {
        self.rows.last().map_or(0, |r| r.max_share_err_ppm)
    }
}

fn boot_run(cfg: KernelConfig, depth: Depth) -> Kernel {
    let mut k = Kernel::boot(MachineConfig::ppc604_133(), cfg);
    reference_workload(&mut k, depth);
    k.pmu_finish();
    k
}

/// Runs the convergence study and renders the agreement table.
pub fn exp_pmu(depth: Depth) -> (PmuResult, Table) {
    let mut base_cfg = KernelConfig::optimized();
    base_cfg.trace = true;
    let base = boot_run(base_cfg, depth);
    let baseline_cycles = base.machine.cycles;

    let mut counting_cfg = base_cfg;
    counting_cfg.pmu = Some(PmuConfig::counting(
        PmcEvent::TlbMissBoth,
        PmcEvent::CacheMissBoth,
    ));
    let counting_cycles = boot_run(counting_cfg, depth).machine.cycles;

    let periods: &[u32] = match depth {
        Depth::Quick => &[65_536, 8_192, 1_024],
        Depth::Full => &[262_144, 65_536, 16_384, 4_096, 1_024],
    };
    let mut rows = Vec::new();
    for &period in periods {
        let mut cfg = base_cfg;
        cfg.pmu = Some(PmuConfig::sampling(period));
        let mut k = boot_run(cfg, depth);
        let now = k.machine.cycles;
        let t = k.tracer.as_mut().expect("trace enabled");
        t.prof.finish(now);
        // Exact shares exclude the Pmu bucket: the handler freezes counting
        // while it runs, so the sampler never observes itself.
        let exact_total: u64 = Subsystem::ALL
            .iter()
            .filter(|s| **s != Subsystem::Pmu)
            .map(|s| t.prof.self_cycles(*s))
            .sum::<u64>()
            .max(1);
        let st = k.pmu.as_ref().expect("pmu enabled");
        let sampled_total = st.total_weight().max(1);
        let mut max_err = 0u64;
        for s in Subsystem::ALL {
            if s == Subsystem::Pmu {
                continue;
            }
            let exact_ppm = t.prof.self_cycles(s) * 1_000_000 / exact_total;
            let sampled_ppm = st.by_subsystem[s as usize] * 1_000_000 / sampled_total;
            max_err = max_err.max(exact_ppm.abs_diff(sampled_ppm));
        }
        let overhead = now.saturating_sub(baseline_cycles);
        rows.push(PmuConvergenceRow {
            period,
            interrupts: k.stats.pmu_interrupts,
            weight: st.total_weight(),
            max_share_err_ppm: max_err,
            overhead_cycles: overhead,
            overhead_ppm: overhead * 1_000_000 / baseline_cycles.max(1),
        });
    }

    let result = PmuResult {
        depth: match depth {
            Depth::Quick => "quick",
            Depth::Full => "full",
        },
        baseline_cycles,
        counting_cycles,
        counting_identical: counting_cycles == baseline_cycles,
        rows,
    };

    let mut t = Table::new(
        "E-PMU: sampled vs exact attribution (604 133MHz, reference workload)",
        vec![
            "sample_period".into(),
            "interrupts".into(),
            "weighted_samples".into(),
            "max_share_err_ppm".into(),
            "overhead_cycles".into(),
            "overhead_ppm".into(),
        ],
    );
    for r in &result.rows {
        t.push_row(vec![
            format!("{}", r.period),
            format!("{}", r.interrupts),
            format!("{}", r.weight),
            format!("{}", r.max_share_err_ppm),
            format!("{}", r.overhead_cycles),
            format!("{}", r.overhead_ppm),
        ]);
    }
    t.push_row(vec![
        "counting-only".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        format!(
            "{}",
            result.counting_cycles.abs_diff(result.baseline_cycles)
        ),
        if result.counting_identical {
            "identical".into()
        } else {
            "PERTURBED".into()
        },
    ]);
    (result, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_pmu_never_perturbs_the_run() {
        let (r, _) = exp_pmu(Depth::Quick);
        assert!(
            r.counting_identical,
            "counting run diverged: {} vs {}",
            r.counting_cycles, r.baseline_cycles
        );
    }

    #[test]
    fn sampling_converges_within_5_percent_at_the_finest_period() {
        let (r, t) = exp_pmu(Depth::Quick);
        assert_eq!(r.rows.len(), 3);
        assert!(
            r.finest_err_ppm() <= 50_000,
            "finest-period share error {} ppm exceeds 5%",
            r.finest_err_ppm()
        );
        // Finer sampling can only cost more interrupts.
        assert!(r.rows[0].interrupts < r.rows[2].interrupts);
        // Every sampled run pays a real, positive interrupt cost.
        for row in &r.rows {
            assert!(row.overhead_cycles > 0, "period {} was free", row.period);
            assert!(row.interrupts > 0);
        }
        assert_eq!(t.rows.len(), 4, "three periods + the counting row");
    }

    #[test]
    fn results_are_deterministic() {
        let (a, ta) = exp_pmu(Depth::Quick);
        let (b, tb) = exp_pmu(Depth::Quick);
        assert_eq!(a.rows, b.rows);
        assert_eq!(ta.render_json(), tb.render_json());
    }
}
