//! E-CHECK: does the kernel survive adversarial checking under chaos?
//!
//! The paper's optimizations are exactly the kind that rot silently: a lazy
//! VSID flush that forgets one segment register, a hash-table displacement
//! that leaves a stale PTE, an idle-task reclaim that frees a live frame —
//! none of them crash, they just translate *wrong*. This experiment gates
//! the checking subsystem (shadow-MM oracle + runtime invariants, DESIGN.md
//! §12) against a seeded syscall fuzzer with the full-spectrum fault
//! injector armed:
//!
//! 1. **Clean** — every seed's chaos run completes with no oracle
//!    violation, no invariant failure, no panic, and both frame pools
//!    returning exactly to their boot baselines (never-leak).
//! 2. **Zero-cost** — the same seed with the checker off is cycle- and
//!    counter-identical: observation must not perturb the measurement.
//! 3. **Determinism** — re-running a seed reproduces the outcome field for
//!    field, so a failing seed is always a one-command repro.
//! 4. **Sensitivity** — the planted stale-TLB bug (skipping the VSID bump
//!    in `flush_context`) is caught by the oracle, with a violation message
//!    naming the staleness. A checker that never fires gates nothing.

use crate::chaos::{chaos_report, ChaosConfig, ChaosOutcome};
use crate::tables::Table;
use crate::Depth;

use kernel_sim::check::CheckConfig;
use kernel_sim::kconfig::KernelConfig;
use kernel_sim::kernel::Kernel;
use ppc_machine::MachineConfig;

/// The complete E-CHECK result.
#[derive(Debug, Clone)]
pub struct CheckGateResult {
    /// Per-seed outcomes of the checked chaos runs.
    pub outcomes: Vec<(u64, ChaosOutcome)>,
    /// Gate 1: every seed ran clean (any violation is reported here).
    pub first_failure: Option<String>,
    /// Gate 2: check-off is cycle- and counter-identical on the probe seed.
    pub cycle_identical: bool,
    /// Gate 3: re-running the probe seed reproduces its outcome exactly.
    pub deterministic: bool,
    /// Gate 4: the planted stale-TLB bug trips the oracle.
    pub bug_caught: bool,
}

impl CheckGateResult {
    /// All four gates at once (what CI checks).
    pub fn holds(&self) -> bool {
        self.first_failure.is_none()
            && self.cycle_identical
            && self.deterministic
            && self.bug_caught
    }
}

/// Seed set per depth: enough quick seeds to cross every injection family,
/// a broader sweep at full depth.
fn seeds(depth: Depth) -> (Vec<u64>, u32) {
    match depth {
        Depth::Quick => ((1..=6).collect(), 200),
        Depth::Full => ((1..=24).collect(), 500),
    }
}

/// Plants the deliberate stale-TLB bug in a checked kernel and returns the
/// violation message the oracle dies with (None if it escaped).
fn planted_bug_violation() -> Option<String> {
    let result = std::panic::catch_unwind(|| {
        let cfg = KernelConfig {
            check: Some(CheckConfig::full()),
            ..KernelConfig::extended()
        };
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), cfg);
        let pid = k.spawn_process(8).expect("spawn");
        k.switch_to(pid);
        k.user_write(0x1000_0000, 8 * 4096).expect("touch");
        k.set_buggy_skip_vsid_flush(true);
        let idx = k.task_idx(pid).expect("idx");
        k.flush_context(idx);
        for _ in 0..8 {
            k.user_read(0x1000_0000, 8 * 4096).expect("reread");
        }
        k.check_finish();
    });
    let payload = result.err()?;
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
}

/// Runs the checked chaos fleet and gates clean/zero-cost/determinism/
/// sensitivity.
pub fn exp_check(depth: Depth) -> (CheckGateResult, Table) {
    let (seed_set, steps) = seeds(depth);
    let mut outcomes = Vec::new();
    let mut first_failure = None;
    for &seed in &seed_set {
        match chaos_report(&ChaosConfig::checked(seed, steps)) {
            Ok(o) => outcomes.push((seed, o)),
            Err(f) => {
                first_failure.get_or_insert_with(|| f.to_string());
            }
        }
    }

    // Probe seed for the identity gates: the first of the fleet.
    let probe = seed_set[0];
    let checked = outcomes.iter().find(|(s, _)| *s == probe).map(|(_, o)| o);
    let (cycle_identical, deterministic) = match checked {
        Some(on) => {
            let off = chaos_report(&ChaosConfig::unchecked(probe, steps)).ok();
            let again = chaos_report(&ChaosConfig::checked(probe, steps)).ok();
            (
                off.is_some_and(|o| o.cycles == on.cycles && o.stats == on.stats),
                again.is_some_and(|a| a == *on),
            )
        }
        None => (false, false),
    };

    let bug_caught = planted_bug_violation()
        .is_some_and(|msg| msg.contains("MM check violation") && msg.contains("stale"));

    let gates = CheckGateResult {
        outcomes,
        first_failure,
        cycle_identical,
        deterministic,
        bug_caught,
    };

    let mut t = Table::new(
        "E-CHECK: chaos fuzzing under the shadow-MM oracle",
        vec![
            "seed".into(),
            "cycles".into(),
            "injected".into(),
            "fatals".into(),
            "oracle obs".into(),
            "sweeps".into(),
            "verdict".into(),
        ],
    );
    for (seed, o) in &gates.outcomes {
        t.push_row(vec![
            format!("{seed}"),
            format!("{}", o.cycles),
            format!("{}", o.stats.injected_faults),
            format!("{}", o.fatals),
            format!("{}", o.checked_observations),
            format!("{}", o.heavy_sweeps),
            "clean".into(),
        ]);
    }
    if let Some(f) = &gates.first_failure {
        t.push_row(vec![
            "(violation)".into(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            f.lines().next().unwrap_or("violation").to_string(),
        ]);
    }
    t.push_row(vec![
        "(gates)".into(),
        format!("{}/{} clean", gates.outcomes.len(), seed_set.len()),
        String::new(),
        String::new(),
        if gates.cycle_identical {
            "zero-cost: pass"
        } else {
            "zero-cost: FAIL"
        }
        .into(),
        if gates.deterministic {
            "deterministic: pass"
        } else {
            "deterministic: FAIL"
        }
        .into(),
        if gates.bug_caught {
            "planted bug caught: pass"
        } else {
            "planted bug caught: FAIL"
        }
        .into(),
    ]);
    (gates, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_fleet_is_clean_zero_cost_deterministic_and_sensitive() {
        let (r, t) = exp_check(Depth::Quick);
        assert!(
            r.first_failure.is_none(),
            "chaos violation: {}",
            r.first_failure.as_deref().unwrap_or("")
        );
        assert!(r.cycle_identical, "checker perturbed the measurement");
        assert!(r.deterministic, "same seed diverged between runs");
        assert!(r.bug_caught, "planted stale-TLB bug escaped the oracle");
        assert!(r.holds());
        assert_eq!(r.outcomes.len(), 6);
        // Every seed must actually exercise the checker and the injector.
        for (seed, o) in &r.outcomes {
            assert!(o.checked_observations > 0, "seed {seed}: oracle idle");
            assert!(o.stats.injected_faults > 0, "seed {seed}: injector idle");
        }
        let s = t.render();
        assert!(s.contains("pass") && !s.contains("FAIL"));
    }
}
