//! The `repro perf` engine: record / report / annotate over PMU samples.
//!
//! This is the §4 measurement methodology turned into a tool: `record` runs
//! a workload with the 604 PMU sampling on cycles, captures the weighted
//! sample aggregates next to the exact profiler's ground truth from the
//! *same run*, and serializes everything into a `perf.data`-style text file.
//! `report` renders self-time tables from such a file, `annotate` draws
//! ASCII share bars, and the folded view exports Brendan Gregg's
//! collapsed-stack format for flamegraph tooling.
//!
//! The file format is line-based, deterministic and diff-friendly:
//!
//! ```text
//! # perf.data mmu-tricks-perf-v1
//! workload compile
//! depth quick
//! machine 604-133
//! config bats=1 io_bat=0 vsid=ctx*897 ...
//! period 4096
//! total_cycles 8123456
//! baseline_cycles 8000000
//! interrupts 1940
//! supervisor_weight 1102
//! user_weight 860
//! sub translate 410 3291002
//! pid 1 1204
//! fold pid1;translate;htab_insert 88
//! ```
//!
//! No timestamps, no floats, no hash-order iteration — recording the same
//! workload twice produces byte-identical files.

use kernel_sim::{FaultInjection, Kernel, KernelConfig, PmuConfig, Subsystem};
use ppc_machine::MachineConfig;

use crate::experiments::artifacts::reference_workload;
use crate::experiments::pressure::run_pressure_on;
use crate::tables::Table;
use crate::Depth;

/// File-format magic line.
pub const PERF_MAGIC: &str = "# perf.data mmu-tricks-perf-v1";

/// Workloads the recorder knows how to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfWorkload {
    /// The reference workload: kernel compile + signal coda + idle sweep
    /// (identical to the trace-artifacts and bench-baseline runs).
    Compile,
    /// The E-PRESSURE fault storm (seeded injector, OOM churn).
    Storm,
}

impl PerfWorkload {
    /// Stable name used in files and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            PerfWorkload::Compile => "compile",
            PerfWorkload::Storm => "storm",
        }
    }

    /// Parses a CLI/file name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "compile" => Some(PerfWorkload::Compile),
            "storm" => Some(PerfWorkload::Storm),
            _ => None,
        }
    }
}

/// One recorded profile: the PMU sample aggregates plus the exact profiler's
/// per-subsystem cycles from the same run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfData {
    /// Workload name (`compile` or `storm`).
    pub workload: String,
    /// `quick` or `full`.
    pub depth: String,
    /// Machine slug the profile was recorded on (e.g. `604-133`).
    pub machine: String,
    /// Kernel optimization-toggle summary ([`KernelConfig::summary`]) of
    /// the recorded kernel.
    pub config: String,
    /// Sampling period in cycles.
    pub period: u32,
    /// Total cycles of the sampled run.
    pub total_cycles: u64,
    /// Total cycles of the same workload with the PMU off (so
    /// `total_cycles - baseline_cycles` is the sampling cost).
    pub baseline_cycles: u64,
    /// Sampling interrupts delivered.
    pub interrupts: u64,
    /// Weighted samples that hit supervisor state.
    pub supervisor_weight: u64,
    /// Weighted samples that hit user state.
    pub user_weight: u64,
    /// `(subsystem, sampled weight, exact self-cycles)` in
    /// [`Subsystem::ALL`] order — every subsystem, including zero rows.
    pub subsystems: Vec<(String, u64, u64)>,
    /// `(pid, sampled weight)`, ascending pid.
    pub pids: Vec<(u32, u64)>,
    /// `(collapsed stack, weight)`, sorted by key — flamegraph input.
    pub folded: Vec<(String, u64)>,
}

impl PerfData {
    /// Total weighted samples.
    pub fn total_weight(&self) -> u64 {
        self.subsystems.iter().map(|(_, w, _)| w).sum()
    }

    /// Cycles the sampling interrupts cost over the unsampled baseline.
    pub fn overhead_cycles(&self) -> u64 {
        self.total_cycles.saturating_sub(self.baseline_cycles)
    }

    /// Serializes to the deterministic `perf.data` text format.
    pub fn serialize(&self) -> String {
        let mut s = String::new();
        s.push_str(PERF_MAGIC);
        s.push('\n');
        s.push_str(&format!("workload {}\n", self.workload));
        s.push_str(&format!("depth {}\n", self.depth));
        s.push_str(&format!("machine {}\n", self.machine));
        s.push_str(&format!("config {}\n", self.config));
        s.push_str(&format!("period {}\n", self.period));
        s.push_str(&format!("total_cycles {}\n", self.total_cycles));
        s.push_str(&format!("baseline_cycles {}\n", self.baseline_cycles));
        s.push_str(&format!("interrupts {}\n", self.interrupts));
        s.push_str(&format!("supervisor_weight {}\n", self.supervisor_weight));
        s.push_str(&format!("user_weight {}\n", self.user_weight));
        for (name, weight, exact) in &self.subsystems {
            s.push_str(&format!("sub {name} {weight} {exact}\n"));
        }
        for (pid, weight) in &self.pids {
            s.push_str(&format!("pid {pid} {weight}\n"));
        }
        for (key, weight) in &self.folded {
            s.push_str(&format!("fold {key} {weight}\n"));
        }
        s
    }

    /// Parses a file produced by [`PerfData::serialize`].
    pub fn parse(text: &str) -> Result<PerfData, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(PERF_MAGIC) {
            return Err(format!("not a perf.data file (expected `{PERF_MAGIC}`)"));
        }
        let mut d = PerfData {
            workload: String::new(),
            depth: String::new(),
            machine: String::new(),
            config: String::new(),
            period: 0,
            total_cycles: 0,
            baseline_cycles: 0,
            interrupts: 0,
            supervisor_weight: 0,
            user_weight: 0,
            subsystems: Vec::new(),
            pids: Vec::new(),
            folded: Vec::new(),
        };
        let num = |v: &str, line: &str| -> Result<u64, String> {
            v.parse::<u64>().map_err(|_| format!("bad number in `{line}`"))
        };
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut f = line.split_whitespace();
            let key = f.next().unwrap_or("");
            let rest: Vec<&str> = f.collect();
            let one = || -> Result<&str, String> {
                rest.first()
                    .copied()
                    .ok_or_else(|| format!("missing value in `{line}`"))
            };
            match key {
                "workload" => d.workload = one()?.to_string(),
                "depth" => d.depth = one()?.to_string(),
                "machine" => d.machine = one()?.to_string(),
                // The config summary is a whole space-separated toggle list.
                "config" => d.config = rest.join(" "),
                "period" => d.period = num(one()?, line)? as u32,
                "total_cycles" => d.total_cycles = num(one()?, line)?,
                "baseline_cycles" => d.baseline_cycles = num(one()?, line)?,
                "interrupts" => d.interrupts = num(one()?, line)?,
                "supervisor_weight" => d.supervisor_weight = num(one()?, line)?,
                "user_weight" => d.user_weight = num(one()?, line)?,
                "sub" => {
                    if rest.len() != 3 {
                        return Err(format!("expected `sub name weight exact`: `{line}`"));
                    }
                    d.subsystems.push((
                        rest[0].to_string(),
                        num(rest[1], line)?,
                        num(rest[2], line)?,
                    ));
                }
                "pid" => {
                    if rest.len() != 2 {
                        return Err(format!("expected `pid n weight`: `{line}`"));
                    }
                    d.pids
                        .push((num(rest[0], line)? as u32, num(rest[1], line)?));
                }
                "fold" => {
                    if rest.len() != 2 {
                        return Err(format!("expected `fold key weight`: `{line}`"));
                    }
                    d.folded.push((rest[0].to_string(), num(rest[1], line)?));
                }
                other => return Err(format!("unknown record `{other}` in `{line}`")),
            }
        }
        if d.workload.is_empty() || d.period == 0 {
            return Err("perf.data missing workload/period header".into());
        }
        Ok(d)
    }

    /// The flamegraph export: `stack weight` lines in Brendan Gregg's
    /// collapsed format (feed to `flamegraph.pl` or speedscope).
    pub fn folded_lines(&self) -> String {
        let mut s = String::new();
        for (key, weight) in &self.folded {
            s.push_str(&format!("{key} {weight}\n"));
        }
        s
    }

    /// The `perf report` header: flat `key value` summary lines (the trace
    /// gate greps these).
    pub fn summary(&self) -> String {
        format!(
            "workload {}\ndepth {}\nmachine {}\nconfig {}\nsample_period {}\ntotal_cycles {}\n\
             baseline_cycles {}\nsampling_overhead_cycles {}\ninterrupts {}\n\
             weighted_samples {}\nsupervisor_weight {}\nuser_weight {}\n",
            self.workload,
            self.depth,
            self.machine,
            self.config,
            self.period,
            self.total_cycles,
            self.baseline_cycles,
            self.overhead_cycles(),
            self.interrupts,
            self.total_weight(),
            self.supervisor_weight,
            self.user_weight,
        )
    }

    /// `perf report`: sampled-vs-exact self-time by subsystem, per-task
    /// weights, and the privilege split.
    pub fn report(&self) -> Vec<Table> {
        let weight_total = self.total_weight().max(1);
        let exact_total: u64 = self.subsystems.iter().map(|(_, _, e)| e).sum::<u64>().max(1);

        let mut by_sub = Table::new(
            format!(
                "perf report: self-time by subsystem ({}, period {})",
                self.workload, self.period
            ),
            vec![
                "subsystem".into(),
                "weight".into(),
                "sampled_share_ppm".into(),
                "exact_cycles".into(),
                "exact_share_ppm".into(),
            ],
        );
        let mut rows = self.subsystems.clone();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (name, weight, exact) in rows {
            by_sub.push_row(vec![
                name,
                format!("{weight}"),
                format!("{}", weight * 1_000_000 / weight_total),
                format!("{exact}"),
                format!("{}", exact * 1_000_000 / exact_total),
            ]);
        }

        let mut by_task = Table::new(
            "perf report: weighted samples by task",
            vec!["pid".into(), "weight".into(), "share_ppm".into()],
        );
        let mut pids = self.pids.clone();
        pids.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (pid, weight) in pids {
            by_task.push_row(vec![
                format!("{pid}"),
                format!("{weight}"),
                format!("{}", weight * 1_000_000 / weight_total),
            ]);
        }

        let mut privilege = Table::new(
            "perf report: privilege split",
            vec!["state".into(), "weight".into(), "share_ppm".into()],
        );
        for (state, weight) in [
            ("supervisor", self.supervisor_weight),
            ("user", self.user_weight),
        ] {
            privilege.push_row(vec![
                state.into(),
                format!("{weight}"),
                format!("{}", weight * 1_000_000 / weight_total),
            ]);
        }
        vec![by_sub, by_task, privilege]
    }

    /// `perf annotate`: ASCII share bars per subsystem, sampled next to
    /// exact, heaviest first.
    pub fn annotate(&self) -> String {
        const BAR: usize = 40;
        let weight_total = self.total_weight().max(1);
        let exact_total: u64 = self.subsystems.iter().map(|(_, _, e)| e).sum::<u64>().max(1);
        let mut rows = self.subsystems.clone();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let pct = |ppm: u64| format!("{}.{:02}%", ppm / 10_000, (ppm % 10_000) / 100);
        let mut s = format!(
            "perf annotate: {} (period {}, {} weighted samples)\n",
            self.workload,
            self.period,
            self.total_weight()
        );
        for (name, weight, exact) in rows {
            if weight == 0 && exact == 0 {
                continue;
            }
            let sampled_ppm = weight * 1_000_000 / weight_total;
            let exact_ppm = exact * 1_000_000 / exact_total;
            let filled = (sampled_ppm as usize * BAR) / 1_000_000;
            let mut bar = "#".repeat(filled);
            bar.push_str(&".".repeat(BAR - filled));
            s.push_str(&format!(
                "  {name:<14} |{bar}| sampled {:>7} exact {:>7}\n",
                pct(sampled_ppm),
                pct(exact_ppm),
            ));
        }
        s
    }
}

/// Records a profile on the optimized kernel (see [`perf_record_on`]).
pub fn perf_record(depth: Depth, workload: PerfWorkload, period: u32) -> PerfData {
    perf_record_on(depth, workload, period, KernelConfig::optimized())
}

/// Records a profile: runs `workload` once with the PMU off (baseline) and
/// once with cycle sampling at `period`, reading sampled aggregates and the
/// exact profile from the same sampled run — on an arbitrary kernel
/// configuration, so `repro perf diff` can compare profiles across
/// optimization levels (the machine and config land in the file header).
pub fn perf_record_on(
    depth: Depth,
    workload: PerfWorkload,
    period: u32,
    kcfg: KernelConfig,
) -> PerfData {
    let run = |pmu: Option<PmuConfig>| -> Kernel {
        let mut cfg = kcfg;
        cfg.trace = true;
        cfg.pmu = pmu;
        match workload {
            PerfWorkload::Compile => {
                let mut k = Kernel::boot(MachineConfig::ppc604_133(), cfg);
                reference_workload(&mut k, depth);
                k.pmu_finish();
                k
            }
            PerfWorkload::Storm => {
                cfg.fault_injection = Some(FaultInjection::light(42));
                let hogs = match depth {
                    Depth::Quick => 10,
                    Depth::Full => 24,
                };
                run_pressure_on(cfg, hogs).1
            }
        }
    };
    let baseline_cycles = run(None).machine.cycles;
    let mut k = run(Some(PmuConfig::sampling(period)));
    let now = k.machine.cycles;
    let t = k.tracer.as_mut().expect("perf record always traces");
    t.prof.finish(now);
    let st = k.pmu.as_ref().expect("perf record always samples");

    PerfData {
        workload: workload.name().to_string(),
        depth: match depth {
            Depth::Quick => "quick",
            Depth::Full => "full",
        }
        .to_string(),
        machine: MachineConfig::ppc604_133().id(),
        config: kcfg.summary(),
        period,
        total_cycles: now,
        baseline_cycles,
        interrupts: st.interrupts,
        supervisor_weight: st.supervisor_weight,
        user_weight: st.user_weight,
        subsystems: Subsystem::ALL
            .iter()
            .map(|&s| {
                (
                    s.name().to_string(),
                    st.by_subsystem[s as usize],
                    t.prof.self_cycles(s),
                )
            })
            .collect(),
        pids: st.by_pid.iter().map(|(&p, &w)| (p, w)).collect(),
        folded: st.folded.iter().map(|(k, &w)| (k.clone(), w)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfData {
        perf_record(Depth::Quick, PerfWorkload::Compile, 8192)
    }

    #[test]
    fn record_serialize_parse_roundtrips_exactly() {
        let d = sample();
        let text = d.serialize();
        let back = PerfData::parse(&text).expect("own output parses");
        assert_eq!(back, d);
        // And recording again is byte-identical.
        assert_eq!(sample().serialize(), text);
    }

    #[test]
    fn recorded_profile_is_internally_consistent() {
        let d = sample();
        assert!(d.interrupts > 0);
        assert!(d.total_cycles > d.baseline_cycles, "sampling costs cycles");
        assert_eq!(
            d.pids.iter().map(|(_, w)| w).sum::<u64>(),
            d.total_weight()
        );
        assert_eq!(
            d.folded.iter().map(|(_, w)| w).sum::<u64>(),
            d.total_weight()
        );
        assert_eq!(d.supervisor_weight + d.user_weight, d.total_weight());
        // Exact attribution covers the whole run.
        assert_eq!(
            d.subsystems.iter().map(|(_, _, e)| e).sum::<u64>(),
            d.total_cycles
        );
        // The pmu bucket has exact cycles (the handler) but never samples.
        let pmu = d.subsystems.iter().find(|(n, _, _)| n == "pmu").unwrap();
        assert_eq!(pmu.1, 0);
        assert!(pmu.2 > 0);
    }

    #[test]
    fn report_annotate_and_folded_render() {
        let d = sample();
        let tables = d.report();
        assert_eq!(tables.len(), 3);
        assert!(!tables[0].rows.is_empty());
        let s = d.summary();
        for key in [
            "total_cycles ",
            "sampling_overhead_cycles ",
            "interrupts ",
            "weighted_samples ",
        ] {
            assert!(s.contains(key), "summary missing {key}");
        }
        let a = d.annotate();
        assert!(a.contains('#'), "bars render");
        let folded = d.folded_lines();
        assert!(folded.lines().count() >= 2);
        for line in folded.lines() {
            let mut f = line.split(' ');
            assert!(f.next().unwrap().contains("pid"));
            f.next().unwrap().parse::<u64>().expect("weight is a number");
        }
    }

    #[test]
    fn storm_workload_records_too() {
        let d = perf_record(Depth::Quick, PerfWorkload::Storm, 65_536);
        assert_eq!(d.workload, "storm");
        assert!(d.interrupts > 0);
        assert_eq!(PerfData::parse(&d.serialize()).unwrap(), d);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PerfData::parse("not a perf file").is_err());
        assert!(PerfData::parse(PERF_MAGIC).is_err(), "headers required");
        let bad = format!("{PERF_MAGIC}\nworkload compile\nperiod 4096\nsub onlytwo 1\n");
        assert!(PerfData::parse(&bad).is_err());
    }
}
