//! The multi-machine bench matrix: every CPU model × optimization
//! configuration the paper measures, on the headline workloads.
//!
//! The paper's whole argument is differential — each §5–§9 trick is shown
//! as a before/after across machines (603 software-reload vs 603 with the
//! hash table "improved away" vs the 604s, whose hardware forces the
//! table). `repro matrix` mechanizes that grid: it runs the compile,
//! fault-storm and trace-reference workloads on every
//! [machine](paper_machines) × [variant](paper_variants) cell, capturing
//! per-cell cycles, the full kernel counter set, profiler self-time and
//! latency percentiles, and emits a deterministic `mmu-tricks-matrix-v1`
//! JSON one line per cell (so shell gates can grep a cell and its cycles in
//! one pass). The E-MATRIX experiment gates that the grid reproduces the
//! paper's ordering.

use kernel_sim::{FaultInjection, Kernel, KernelConfig, KernelStats, LatencyPath, Subsystem};
use ppc_machine::MachineConfig;

use crate::experiments::artifacts::reference_workload;
use crate::experiments::pressure::run_pressure_on_machine;
use crate::tables::Table;
use crate::Depth;

/// One machine row of the matrix: a board plus the 603 reload strategy
/// forced on it (the paper treats "603 with hash table" and "603 without"
/// as different machines even though the board is the same).
#[derive(Debug, Clone, Copy)]
pub struct MatrixMachine {
    /// Stable row id (`603-swload`, `603-nohtab`, `604-133`, `604-200`).
    pub id: &'static str,
    /// Human-readable description.
    pub label: &'static str,
    /// The board.
    pub machine: MachineConfig,
    /// Forced value of [`KernelConfig::htab_on_603`] for every variant on
    /// this row; `None` leaves the variant's own setting (604 rows, where
    /// hardware makes it irrelevant).
    pub htab_on_603: Option<bool>,
}

impl MatrixMachine {
    /// The variant configuration as it actually boots on this row.
    pub fn apply(&self, mut cfg: KernelConfig) -> KernelConfig {
        if let Some(h) = self.htab_on_603 {
            cfg.htab_on_603 = h;
        }
        cfg
    }
}

/// The four machine rows the paper's ordering claims are stated over.
pub fn paper_machines() -> Vec<MatrixMachine> {
    vec![
        MatrixMachine {
            id: "603-swload",
            label: "603 133MHz, software reload via hash table",
            machine: MachineConfig::ppc603_133(),
            htab_on_603: Some(true),
        },
        MatrixMachine {
            id: "603-nohtab",
            label: "603 133MHz, hash table improved away (6.2)",
            machine: MachineConfig::ppc603_133(),
            htab_on_603: Some(false),
        },
        MatrixMachine {
            id: "604-133",
            label: "604 133MHz, hardware hash-table walk",
            machine: MachineConfig::ppc604_133(),
            htab_on_603: None,
        },
        MatrixMachine {
            id: "604-200",
            label: "604 200MHz, fast board",
            machine: MachineConfig::ppc604_200(),
            htab_on_603: None,
        },
    ]
}

/// The optimization columns: the two endpoint kernels plus one ablation
/// per paper optimization (each flips a single [`KernelConfig`] field off
/// the optimized kernel, so `opt` vs `opt-no-X` isolates X's contribution).
pub fn paper_variants() -> Vec<(&'static str, KernelConfig)> {
    let opt = KernelConfig::optimized;
    vec![
        ("unopt", KernelConfig::unoptimized()),
        ("opt", opt()),
        // §5.1: kernel mapped by PTEs instead of BATs.
        ("opt-no-bats", KernelConfig { use_bats: false, ..opt() }),
        // §5.2: untuned power-of-two scatter constant (hash hot-spots).
        (
            "opt-untuned-scatter",
            KernelConfig {
                vsid_policy: kernel_sim::VsidPolicy::ContextCounter { constant: 16 },
                ..opt()
            },
        ),
        // §6.1: the original C handlers with the MMU turned back on.
        (
            "opt-slow-handlers",
            KernelConfig { handler: kernel_sim::HandlerStyle::SlowC, ..opt() },
        ),
        // §7: eager per-page flushes instead of lazy VSID retirement.
        (
            "opt-eager-flush",
            KernelConfig { lazy_flush: false, flush_cutoff_pages: None, ..opt() },
        ),
        // §7: no idle-task zombie reclaim.
        ("opt-no-idle-reclaim", KernelConfig { idle_reclaim: false, ..opt() }),
        // §9: no idle page clearing, get_free_page clears on demand.
        (
            "opt-clear-on-demand",
            KernelConfig { page_clearing: kernel_sim::PageClearing::OnDemand, ..opt() },
        ),
    ]
}

/// The headline workload names, in matrix order.
pub const WORKLOADS: &[&str] = &["compile", "fault_storm", "trace_ref"];

/// Latency percentiles of one instrumented path in one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellLatency {
    /// Path name (`tlb_reload`, `page_fault`, `signal_delivery`).
    pub path: &'static str,
    /// Samples recorded.
    pub count: u64,
    /// 50th percentile (cycles).
    pub p50: u64,
    /// 90th percentile (cycles).
    pub p90: u64,
    /// 99th percentile (cycles).
    pub p99: u64,
}

/// One cell: machine × config × workload, with everything a reviewer
/// diffs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    /// Machine row id.
    pub machine: &'static str,
    /// Config column id.
    pub config: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Headline cycles (measurement window of the workload; bench-baseline
    /// semantics per workload).
    pub cycles: u64,
    /// Wall-clock microseconds (`cycles / clock_mhz`). Cycle counts are not
    /// comparable across clock speeds — a 200MHz part pays *more cycles*
    /// for the same DRAM latency — so cross-machine ordering claims (the
    /// paper's tables are in seconds) are stated over this field.
    pub wall_us: u64,
    /// Kernel counter deltas over the measurement window.
    pub stats: KernelStats,
    /// Profiler self-cycles per subsystem ([`Subsystem::ALL`] order) for
    /// the whole traced run.
    pub self_cycles: Vec<(&'static str, u64)>,
    /// Latency percentiles per instrumented path.
    pub latency: Vec<CellLatency>,
}

impl MatrixCell {
    /// The composite `machine/config/workload` key used in JSON and gates.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.machine, self.config, self.workload)
    }
}

/// The whole grid plus its axes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchMatrix {
    /// `quick` or `full`.
    pub depth: &'static str,
    /// `(row id, label)` per machine row.
    pub machines: Vec<(&'static str, String)>,
    /// `(column id, full toggle summary)` per config column.
    pub configs: Vec<(&'static str, String)>,
    /// Workload names.
    pub workloads: Vec<&'static str>,
    /// All cells, machine-major, then config, then workload.
    pub cells: Vec<MatrixCell>,
}

fn finish_cell(
    m: &MatrixMachine,
    config: &'static str,
    workload: &'static str,
    cycles: u64,
    stats: KernelStats,
    k: &mut Kernel,
) -> MatrixCell {
    let now = k.machine.cycles;
    let t = k.tracer.as_mut().expect("matrix cells always trace");
    t.prof.finish(now);
    let self_cycles = Subsystem::ALL
        .iter()
        .map(|&s| (s.name(), t.prof.self_cycles(s)))
        .collect();
    let latency = LatencyPath::ALL
        .iter()
        .map(|&p| {
            let h = t.latency(p);
            let (p50, p90, p99) = h.percentiles();
            CellLatency { path: p.name(), count: h.count(), p50, p90, p99 }
        })
        .collect();
    MatrixCell {
        machine: m.id,
        config,
        workload,
        cycles,
        wall_us: cycles / u64::from(m.machine.clock_mhz),
        stats,
        self_cycles,
        latency,
    }
}

/// Runs one cell. Tracing is always on (it is proven free), so every cell
/// carries attribution and latency percentiles.
pub fn run_cell(
    m: &MatrixMachine,
    config: &'static str,
    cfg: KernelConfig,
    workload: &'static str,
    depth: Depth,
) -> MatrixCell {
    let mut cfg = m.apply(cfg);
    cfg.trace = true;
    match workload {
        "compile" => {
            let mut k = Kernel::boot(m.machine, cfg);
            let c0 = k.machine.cycles;
            let s0 = k.stats;
            lmbench::compile::kernel_compile(&mut k, depth.compile());
            let cycles = k.machine.cycles - c0;
            let stats = k.stats.delta(&s0);
            finish_cell(m, config, workload, cycles, stats, &mut k)
        }
        "fault_storm" => {
            cfg.fault_injection = Some(FaultInjection::light(42));
            let hogs = match depth {
                Depth::Quick => 10,
                Depth::Full => 24,
            };
            let (run, mut k) = run_pressure_on_machine(m.machine, cfg, hogs);
            finish_cell(m, config, workload, run.cycles, run.stats, &mut k)
        }
        "trace_ref" => {
            let mut k = Kernel::boot(m.machine, cfg);
            reference_workload(&mut k, depth);
            let cycles = k.machine.cycles;
            let stats = k.stats;
            finish_cell(m, config, workload, cycles, stats, &mut k)
        }
        other => panic!("unknown matrix workload {other:?}"),
    }
}

/// Runs an arbitrary sub-grid (tests and the E-MATRIX experiment trim the
/// axes; `repro matrix` runs the full grid).
pub fn run_matrix_on(
    machines: &[MatrixMachine],
    variants: &[(&'static str, KernelConfig)],
    workloads: &[&'static str],
    depth: Depth,
) -> BenchMatrix {
    run_matrix_on_jobs(machines, variants, workloads, depth, 1)
}

/// [`run_matrix_on`] with up to `jobs` cells in flight at once.
///
/// Cells are independent simulations (each boots its own kernel and
/// machine; nothing is shared), so the grid parallelizes trivially: workers
/// claim cell indices from an atomic counter and write into pre-indexed
/// slots, and the grid is assembled in serial cell order afterwards — the
/// output, including [`BenchMatrix::to_json`], is **byte-identical** to a
/// serial run for every `jobs` value (`tools/matrix_gate.sh` asserts it).
/// `jobs <= 1` takes the serial path with no thread machinery at all.
pub fn run_matrix_on_jobs(
    machines: &[MatrixMachine],
    variants: &[(&'static str, KernelConfig)],
    workloads: &[&'static str],
    depth: Depth,
    jobs: usize,
) -> BenchMatrix {
    let mut work = Vec::new();
    for m in machines {
        for (config, cfg) in variants {
            for &w in workloads {
                work.push((*m, *config, *cfg, w));
            }
        }
    }
    let cells: Vec<MatrixCell> = if jobs <= 1 {
        work.iter()
            .map(|(m, config, cfg, w)| run_cell(m, config, *cfg, w, depth))
            .collect()
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let slots: Vec<std::sync::Mutex<Option<MatrixCell>>> =
            work.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..jobs.min(work.len()) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((m, config, cfg, w)) = work.get(i) else {
                        break;
                    };
                    let cell = run_cell(m, config, *cfg, w, depth);
                    *slots[i].lock().expect("matrix worker panicked") = Some(cell);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("matrix worker panicked")
                    .expect("every claimed cell is filled before scope exit")
            })
            .collect()
    };
    BenchMatrix {
        depth: match depth {
            Depth::Quick => "quick",
            Depth::Full => "full",
        },
        machines: machines.iter().map(|m| (m.id, m.label.to_string())).collect(),
        configs: variants
            .iter()
            .map(|(id, cfg)| (*id, cfg.summary()))
            .collect(),
        workloads: workloads.to_vec(),
        cells,
    }
}

/// The full paper grid: 4 machines × 8 configs × 3 workloads.
pub fn run_matrix(depth: Depth) -> BenchMatrix {
    run_matrix_jobs(depth, 1)
}

/// [`run_matrix`] with up to `jobs` cells in flight (`repro matrix --jobs`).
pub fn run_matrix_jobs(depth: Depth, jobs: usize) -> BenchMatrix {
    run_matrix_on_jobs(&paper_machines(), &paper_variants(), WORKLOADS, depth, jobs)
}

impl BenchMatrix {
    /// Looks a cell up by its axes.
    pub fn cell(&self, machine: &str, config: &str, workload: &str) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.machine == machine && c.config == config && c.workload == workload)
    }

    /// The deterministic `mmu-tricks-matrix-v1` JSON: header objects for
    /// each axis, then exactly one line per cell (grep a cell key and its
    /// cycles in one pass).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"mmu-tricks-matrix-v1\",\n");
        s.push_str(&format!("  \"depth\": \"{}\",\n", self.depth));
        s.push_str("  \"machines\": {");
        for (i, (id, label)) in self.machines.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{id}\": \"{label}\""));
        }
        s.push_str("},\n  \"configs\": {");
        for (i, (id, summary)) in self.configs.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{id}\": \"{summary}\""));
        }
        s.push_str("},\n  \"workloads\": [");
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{w}\""));
        }
        s.push_str("],\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"cell\": \"{}\", \"machine\": \"{}\", \"config\": \"{}\", \
                 \"workload\": \"{}\", \"cycles\": {}, \"wall_us\": {}, \"stats\": {{",
                c.key(),
                c.machine,
                c.config,
                c.workload,
                c.cycles,
                c.wall_us
            ));
            for (j, (name, v)) in c.stats.as_named_pairs().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{name}\": {v}"));
            }
            s.push_str("}, \"self\": {");
            for (j, (name, v)) in c.self_cycles.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{name}\": {v}"));
            }
            s.push_str("}, \"latency\": {");
            for (j, l) in c.latency.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "\"{}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    l.path, l.count, l.p50, l.p90, l.p99
                ));
            }
            s.push_str("}}");
            s.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// One cycles table per workload: machine rows × config columns.
    pub fn tables(&self) -> Vec<Table> {
        self.workloads
            .iter()
            .map(|&w| {
                let mut cols = vec!["machine".to_string()];
                cols.extend(self.configs.iter().map(|(id, _)| id.to_string()));
                let mut t = Table::new(
                    format!("Bench matrix: {w} cycles ({} depth)", self.depth),
                    cols,
                );
                for (mid, _) in &self.machines {
                    let mut row = vec![mid.to_string()];
                    for (cid, _) in &self.configs {
                        row.push(
                            self.cell(mid, cid, w)
                                .map_or("-".into(), |c| c.cycles.to_string()),
                        );
                    }
                    t.push_row(row);
                }
                t
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One trimmed grid shared by every test in this module (matrix cells
    /// are compile-sized; running them once keeps the suite fast).
    fn grid() -> &'static BenchMatrix {
        static GRID: OnceLock<BenchMatrix> = OnceLock::new();
        GRID.get_or_init(|| {
            let machines = paper_machines();
            let variants = paper_variants();
            let trimmed: Vec<_> = variants
                .into_iter()
                .filter(|(id, _)| matches!(*id, "unopt" | "opt"))
                .collect();
            run_matrix_on(&machines[..], &trimmed, WORKLOADS, Depth::Quick)
        })
    }

    #[test]
    fn grid_covers_every_cell_with_live_data() {
        let g = grid();
        assert_eq!(g.cells.len(), 4 * 2 * 3);
        for c in &g.cells {
            assert!(c.cycles > 0, "{} is empty", c.key());
            let total: u64 = c.self_cycles.iter().map(|(_, v)| v).sum();
            assert!(total > 0, "{} has no attribution", c.key());
            assert!(
                c.latency.iter().any(|l| l.count > 0),
                "{} has no latency samples",
                c.key()
            );
        }
    }

    #[test]
    fn matrix_is_deterministic() {
        let g = grid();
        let machines = paper_machines();
        let variants: Vec<_> = paper_variants()
            .into_iter()
            .filter(|(id, _)| *id == "opt")
            .collect();
        let again = run_matrix_on(&machines[..1], &variants, &["compile"], Depth::Quick);
        assert_eq!(
            again.cells[0],
            *g.cell("603-swload", "opt", "compile").unwrap()
        );
    }

    #[test]
    fn parallel_matrix_is_byte_identical_to_serial() {
        let machines = paper_machines();
        let variants: Vec<_> = paper_variants()
            .into_iter()
            .filter(|(id, _)| matches!(*id, "unopt" | "opt"))
            .collect();
        // The serial half of the comparison is the shared grid fixture.
        let serial = grid().to_json();
        let par =
            run_matrix_on_jobs(&machines[..], &variants, WORKLOADS, Depth::Quick, 3);
        assert_eq!(par.to_json(), serial, "--jobs must not change a byte");
    }

    #[test]
    fn json_shape_is_grepable_and_balanced() {
        let g = grid();
        let j = g.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"schema\": \"mmu-tricks-matrix-v1\""));
        for c in &g.cells {
            // Cell key and cycles grep-able from the same line.
            let line = j
                .lines()
                .find(|l| l.contains(&format!("\"cell\": \"{}\"", c.key())))
                .unwrap_or_else(|| panic!("missing {}", c.key()));
            assert!(line.contains(&format!("\"cycles\": {}", c.cycles)));
            assert!(line.contains("\"tlb_reloads\""));
            assert!(line.contains("\"p99\""));
        }
        // Config summaries ride in the header for diff refusal.
        assert!(j.contains("\"configs\": {\"unopt\": \"bats=0"));
    }

    #[test]
    fn paper_orderings_hold_on_the_trimmed_grid() {
        let g = grid();
        let cycles =
            |m: &str, c: &str, w: &str| g.cell(m, c, w).map(|x| x.cycles).unwrap();
        // Optimization helps on every machine row for the compile.
        for (m, _) in &g.machines {
            assert!(
                cycles(m, "opt", "compile") < cycles(m, "unopt", "compile"),
                "optimized kernel must beat the baseline on {m}"
            );
        }
        // §6.2: improving the hash table away wins on the 603.
        assert!(
            cycles("603-nohtab", "opt", "compile") < cycles("603-swload", "opt", "compile")
        );
        // The fast board beats the slow 604 on identical work — in wall
        // time: its DRAM costs more *cycles*, so raw cycles would invert.
        let wall =
            |m: &str, c: &str, w: &str| g.cell(m, c, w).map(|x| x.wall_us).unwrap();
        assert!(
            wall("604-200", "opt", "compile") < wall("604-133", "opt", "compile")
        );
        assert!(
            cycles("604-200", "opt", "compile") != cycles("604-133", "opt", "compile")
        );
    }

    #[test]
    fn variant_axis_is_complete_and_valid() {
        let vs = paper_variants();
        assert_eq!(vs.len(), 8);
        for (id, cfg) in &vs {
            cfg.validate();
            for m in paper_machines() {
                m.apply(*cfg).validate();
            }
            assert!(!id.is_empty());
        }
        // Each ablation differs from opt in exactly the intended way.
        let opt = KernelConfig::optimized();
        let by_id = |want: &str| vs.iter().find(|(id, _)| *id == want).unwrap().1;
        assert!(!by_id("opt-no-bats").use_bats && opt.use_bats);
        assert_eq!(by_id("opt-slow-handlers").handler, kernel_sim::HandlerStyle::SlowC);
        assert!(!by_id("opt-eager-flush").lazy_flush);
        assert!(!by_id("opt-no-idle-reclaim").idle_reclaim);
    }
}
