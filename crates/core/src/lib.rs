//! `mmu-tricks` — public API of the reproduction of *Optimizing the Idle
//! Task and Other MMU Tricks* (Dougan, Mackerras, Yodaiken; OSDI 1999).
//!
//! The paper optimizes the memory management of Linux on 32-bit PowerPC:
//! BAT-mapping the kernel (§5.1), tuning the hashed page table's VSID
//! scatter (§5.2), hand-written TLB reload handlers (§6.1), eliminating the
//! hash table on the 603 (§6.2), lazy VSID-based TLB flushes with a tunable
//! range cutoff (§7), idle-task reclamation of zombie hash-table entries
//! (§7), and idle-task page clearing with the cache inhibited (§9).
//!
//! This crate stitches the substrates together and exposes:
//!
//! * [`experiments`] — one runner per table/figure/quoted result of the
//!   paper, each returning a structured result with the paper's expected
//!   values alongside the simulator's measurements;
//! * [`tables`] — plain-text table rendering for the `repro` harness;
//! * re-exports of the main substrate types.
//!
//! # Quickstart
//!
//! ```
//! use mmu_tricks::{Kernel, KernelConfig, MachineConfig};
//!
//! // Boot the optimized kernel of the paper on a 185 MHz 604.
//! let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
//! let pid = k.spawn_process(16).unwrap();
//! k.switch_to(pid);
//! k.sys_null();
//! println!("null syscall era: {} cycles so far", k.machine.cycles);
//! ```

pub mod bench;
pub mod causal;
pub mod chaos;
pub mod diff;
pub mod experiments;
pub mod hostbench;
pub mod matrix;
pub mod perf;
pub mod tables;
pub mod tail;
pub mod tune;

pub use kernel_sim::{
    hostprof, HandlerStyle, HostPhase, Kernel, KernelConfig, KernelStats, OsModel, PageClearing,
    PhaseCounters, VsidPolicy,
};
pub use lmbench::{run_suite, CompileConfig, LmbenchResults, SuiteConfig};
pub use ppc_machine::{CpuModel, Machine, MachineConfig, SimTime};
pub use ppc_mmu::{HashTable, Mmu, Tlb};

/// Depth of the reproduction: quick (CI-sized) or full (paper-sized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Depth {
    /// Small iteration counts; minutes of simulated time.
    Quick,
    /// Full iteration counts for the recorded EXPERIMENTS.md numbers.
    Full,
}

impl Depth {
    /// The LmBench suite settings for this depth.
    pub fn suite(self) -> SuiteConfig {
        match self {
            Depth::Quick => SuiteConfig::quick(),
            Depth::Full => SuiteConfig::full(),
        }
    }

    /// The compile settings for this depth.
    pub fn compile(self) -> CompileConfig {
        match self {
            Depth::Quick => CompileConfig::small(),
            Depth::Full => CompileConfig::full(),
        }
    }
}
