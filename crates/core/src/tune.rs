//! `repro tune`: deterministic offline autotuning over the matrix axes.
//!
//! The in-kernel mmtune controller ([`kernel_sim::tune`]) adjusts knobs
//! *online*, mid-run, from PMU feedback. This module is the offline half of
//! the loop: a greedy coordinate descent over the same optimization axes
//! the bench matrix ablates ([`crate::matrix::paper_variants`]) plus the
//! mmtune controller itself, per machine and workload, measured by actually
//! running the cell. The §5.1 static `opt` kernel is both the starting
//! point and the baseline, so the tuned configuration can never be worse
//! than static `opt` on the cell it was tuned on — the candidate set
//! contains the baseline — and every improvement it reports is a real,
//! reproducible cycle delta (all cells are deterministic).
//!
//! The matrix itself motivates this: the §8 grid shows several axes
//! *invert* per machine and workload (idle-time page clearing loses on the
//! 604s' cache; the §5.2 scatter constant tuned for compile hot-spots is
//! not the best constant under a fault storm). A single static config
//! cannot win every cell; a per-cell descent can. `repro tune` emits the
//! deterministic `mmu-tricks-tune-v1` artifact naming each machine's
//! winning configuration and its delta, and the E-TUNE experiment
//! ([`crate::experiments::etune`]) gates the signs.

use kernel_sim::{HandlerStyle, KernelConfig, MmtuneConfig, PageClearing, VsidPolicy};

use crate::matrix::{paper_machines, run_cell, MatrixMachine, WORKLOADS};
use crate::tables::Table;
use crate::Depth;

/// The tuning axes, in descent order, each with its candidate settings
/// (first candidate = the static `opt` value). These are exactly the
/// matrix's ablation axes plus the mmtune controller.
pub const AXES: &[(&str, &[&str])] = &[
    ("mmtune", &["off", "on"]),
    ("bats", &["on", "off"]),
    ("scatter", &["897", "16"]),
    ("handler", &["fast_asm", "slow_c"]),
    ("flush", &["lazy_cutoff20", "eager"]),
    ("idle_reclaim", &["on", "off"]),
    ("page_clearing", &["idle_uncached", "on_demand"]),
];

/// Applies one axis choice to a configuration.
///
/// # Panics
///
/// Panics on an unknown axis/choice pair (the descent only passes values
/// from [`AXES`]).
pub fn apply_choice(cfg: &mut KernelConfig, axis: &str, choice: &str) {
    match (axis, choice) {
        ("mmtune", "off") => cfg.mmtune = None,
        ("mmtune", "on") => cfg.mmtune = Some(MmtuneConfig::default()),
        ("bats", "on") => cfg.use_bats = true,
        ("bats", "off") => cfg.use_bats = false,
        ("scatter", c) => {
            cfg.vsid_policy = VsidPolicy::ContextCounter {
                constant: c.parse().expect("scatter candidates are numeric"),
            }
        }
        ("handler", "fast_asm") => cfg.handler = HandlerStyle::FastAsm,
        ("handler", "slow_c") => cfg.handler = HandlerStyle::SlowC,
        ("flush", "lazy_cutoff20") => {
            cfg.lazy_flush = true;
            cfg.flush_cutoff_pages = Some(20);
        }
        ("flush", "eager") => {
            cfg.lazy_flush = false;
            cfg.flush_cutoff_pages = None;
        }
        ("idle_reclaim", "on") => cfg.idle_reclaim = true,
        ("idle_reclaim", "off") => cfg.idle_reclaim = false,
        ("page_clearing", "idle_uncached") => cfg.page_clearing = PageClearing::IdleUncached,
        ("page_clearing", "on_demand") => cfg.page_clearing = PageClearing::OnDemand,
        (a, c) => panic!("unknown tune axis/choice {a:?}/{c:?}"),
    }
}

/// Builds the kernel configuration selected by a full choice vector.
fn build(choices: &[(&'static str, &'static str)]) -> KernelConfig {
    let mut cfg = KernelConfig::optimized();
    for (axis, choice) in choices {
        apply_choice(&mut cfg, axis, choice);
    }
    cfg
}

/// The descent outcome on one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineTune {
    /// Matrix machine row id.
    pub machine: &'static str,
    /// Cycles of the static §5.1 `opt` kernel on this cell (the baseline).
    pub static_cycles: u64,
    /// Cycles of the winning configuration (`<= static_cycles` by
    /// construction).
    pub tuned_cycles: u64,
    /// Cells actually run (baseline + one per rejected/accepted candidate).
    pub evals: u32,
    /// The winning choice per axis, in [`AXES`] order.
    pub choices: Vec<(&'static str, &'static str)>,
    /// Online retunes the mmtune controller applied in the winning run
    /// (0 whenever the descent left mmtune off).
    pub mmtune_retunes: u64,
}

impl MachineTune {
    /// `tuned - static`: zero or negative.
    pub fn delta(&self) -> i64 {
        self.tuned_cycles as i64 - self.static_cycles as i64
    }

    /// Whether the descent found a strict improvement.
    pub fn wins(&self) -> bool {
        self.tuned_cycles < self.static_cycles
    }
}

/// The tuned configurations for one workload across the matrix machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneResult {
    /// `quick` or `full`.
    pub depth: &'static str,
    /// The workload tuned for.
    pub workload: &'static str,
    /// One outcome per machine row, in [`paper_machines`] order.
    pub outcomes: Vec<MachineTune>,
}

/// Tunes one machine × workload cell by greedy coordinate descent: walk
/// [`AXES`] in order, try each non-current candidate, keep a move only on
/// strict cycle improvement. Everything is deterministic — same depth and
/// workload, same result, byte for byte.
pub fn tune_cell(m: &MatrixMachine, workload: &'static str, depth: Depth) -> MachineTune {
    let mut choices: Vec<(&'static str, &'static str)> =
        AXES.iter().map(|(name, cands)| (*name, cands[0])).collect();
    let baseline = run_cell(m, "opt", build(&choices), workload, depth);
    let static_cycles = baseline.cycles;
    let mut best = baseline;
    let mut evals = 1u32;
    for (ai, (_, cands)) in AXES.iter().enumerate() {
        for cand in cands.iter() {
            if *cand == choices[ai].1 {
                continue;
            }
            let mut trial = choices.clone();
            trial[ai].1 = cand;
            let cell = run_cell(m, "tuned", build(&trial), workload, depth);
            evals += 1;
            if cell.cycles < best.cycles {
                best = cell;
                choices = trial;
            }
        }
    }
    MachineTune {
        machine: m.id,
        static_cycles,
        tuned_cycles: best.cycles,
        evals,
        choices,
        mmtune_retunes: best.stats.mmtune_retunes,
    }
}

/// Runs the descent on every matrix machine for `workload`.
///
/// # Panics
///
/// Panics if `workload` is not one of [`WORKLOADS`].
pub fn tune_workload(workload: &'static str, depth: Depth) -> TuneResult {
    tune_workload_jobs(workload, depth, 1)
}

/// [`tune_workload`] with up to `jobs` machines descending concurrently.
/// Each machine's descent is an independent deterministic computation and
/// the outcomes are assembled in [`paper_machines`] order, so the result —
/// and the `mmu-tricks-tune-v1` artifact — is byte-identical to a serial
/// run (`tools/tune_gate.sh` cmp-checks this).
///
/// # Panics
///
/// Panics if `workload` is not one of [`WORKLOADS`].
pub fn tune_workload_jobs(workload: &'static str, depth: Depth, jobs: usize) -> TuneResult {
    assert!(
        WORKLOADS.contains(&workload),
        "unknown tune workload {workload:?} (expected one of {WORKLOADS:?})"
    );
    let machines = paper_machines();
    let outcomes: Vec<MachineTune> = if jobs <= 1 {
        machines
            .iter()
            .map(|m| tune_cell(m, workload, depth))
            .collect()
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let slots: Vec<std::sync::Mutex<Option<MachineTune>>> =
            machines.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..jobs.min(machines.len()) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(m) = machines.get(i) else {
                        break;
                    };
                    let outcome = tune_cell(m, workload, depth);
                    *slots[i].lock().expect("tune worker panicked") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("tune worker panicked")
                    .expect("every claimed machine is filled before scope exit")
            })
            .collect()
    };
    TuneResult {
        depth: match depth {
            Depth::Quick => "quick",
            Depth::Full => "full",
        },
        workload,
        outcomes,
    }
}

impl TuneResult {
    /// Machines where the tuned configuration strictly beats static `opt`.
    pub fn wins(&self) -> usize {
        self.outcomes.iter().filter(|o| o.wins()).count()
    }

    /// Whether no machine regressed past the mmtune hysteresis bound
    /// (tuned ≤ static + 2%). The descent's candidate set contains the
    /// baseline, so this can only fail if the descent logic itself breaks —
    /// which is exactly why the E-TUNE gate keeps checking it.
    pub fn never_loses(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| o.tuned_cycles * 100 <= o.static_cycles * 102)
    }

    /// The deterministic `mmu-tricks-tune-v1` artifact: identity headers,
    /// then one line per machine naming the winning configuration and its
    /// delta vs static `opt`. Integer-only, so `repro diff` can compare two
    /// tune artifacts — and refuse mismatched depth/workload headers — with
    /// the same [`crate::diff::check_identity`] semantics as every other
    /// artifact.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"mmu-tricks-tune-v1\",\n");
        s.push_str(&format!("  \"depth\": \"{}\",\n", self.depth));
        s.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        s.push_str(&format!("  \"wins\": {},\n", self.wins()));
        s.push_str("  \"machines\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"machine\": \"{}\", \"static_cycles\": {}, \"tuned_cycles\": {}, \
                 \"delta\": {}, \"evals\": {}, \"retunes\": {}, \"config\": {{",
                o.machine,
                o.static_cycles,
                o.tuned_cycles,
                o.delta(),
                o.evals,
                o.mmtune_retunes
            ));
            for (j, (axis, choice)) in o.choices.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{axis}\": \"{choice}\""));
            }
            s.push_str("}}");
            s.push_str(if i + 1 < self.outcomes.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Rendered per-machine summary.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "repro tune: {} ({} depth) — coordinate descent vs static opt",
                self.workload, self.depth
            ),
            vec![
                "machine".into(),
                "static".into(),
                "tuned".into(),
                "delta".into(),
                "evals".into(),
                "winning non-default axes".into(),
            ],
        );
        for o in &self.outcomes {
            let moved: Vec<String> = o
                .choices
                .iter()
                .zip(AXES.iter())
                .filter(|((_, choice), (_, cands))| *choice != cands[0])
                .map(|((axis, choice), _)| format!("{axis}={choice}"))
                .collect();
            t.push_row(vec![
                o.machine.into(),
                format!("{}", o.static_cycles),
                format!("{}", o.tuned_cycles),
                format!("{:+}", o.delta()),
                format!("{}", o.evals),
                if moved.is_empty() {
                    "(static opt already optimal)".into()
                } else {
                    moved.join(" ")
                },
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff_reports, parse_report};

    #[test]
    fn axes_cover_optimized_as_first_candidates() {
        let first: Vec<(&'static str, &'static str)> =
            AXES.iter().map(|(n, c)| (*n, c[0])).collect();
        let built = build(&first);
        let opt = KernelConfig::optimized();
        // Identical toggles (summary covers every matrix axis) and no
        // controller: the descent starts exactly at static opt.
        assert_eq!(built.summary(), opt.summary());
        assert!(built.mmtune.is_none());
    }

    #[test]
    fn every_axis_choice_applies_and_validates() {
        for (axis, cands) in AXES {
            for cand in cands.iter() {
                let mut cfg = KernelConfig::optimized();
                apply_choice(&mut cfg, axis, cand);
                cfg.validate();
            }
        }
    }

    #[test]
    fn tune_artifact_diffs_and_refuses_like_every_other_artifact() {
        let r = TuneResult {
            depth: "quick",
            workload: "fault_storm",
            outcomes: vec![MachineTune {
                machine: "604-133",
                static_cycles: 1000,
                tuned_cycles: 950,
                evals: 8,
                choices: AXES.iter().map(|(n, c)| (*n, c[0])).collect(),
                mmtune_retunes: 0,
            }],
        };
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"mmu-tricks-tune-v1\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let flat = parse_report(&j).unwrap();
        assert_eq!(flat.numbers["machines[0].delta"], -50);
        // Same headers diff fine; a different workload header is refused —
        // the shared check_identity semantics, for free.
        assert!(diff_reports(&flat, &flat).is_ok());
        let mut other = flat.clone();
        other.workload = "compile".into();
        let err = diff_reports(&flat, &other).unwrap_err();
        assert!(err.contains("workload mismatch"), "{err}");
    }
}
