//! Plain-text table rendering for the reproduction harness.

/// A rectangular table with a title, column headers, and string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers; the first column is the row label.
    pub columns: Vec<String>,
    /// Rows of cells; each must have `columns.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<w$}", c, w = widths[i]));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (title omitted; quotes cells containing commas).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a JSON object `{"title", "columns", "rows"}` — the shape
    /// the `repro --json` run report embeds, one object per experiment.
    pub fn render_json(&self) -> String {
        let arr = |cells: &[String]| {
            let inner = cells
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("[{inner}]")
        };
        let rows = self
            .rows
            .iter()
            .map(|r| arr(r))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"title\": \"{}\", \"columns\": {}, \"rows\": [{}]}}",
            json_escape(&self.title),
            arr(&self.columns),
            rows
        )
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a series as a Unicode sparkline (▁▂▃▄▅▆▇█), scaled to its own
/// min..max. Empty input gives an empty string.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(f64::EPSILON);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Formats a microsecond value the way the paper's tables do.
pub fn us(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}us")
    } else {
        format!("{v:.1}us")
    }
}

/// Formats a MB/s value.
pub fn mbs(v: f64) -> String {
    format!("{v:.0} MB/s")
}

/// Formats a ratio as `N.Nx`.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.1}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", vec!["metric".into(), "a".into(), "bbbb".into()]);
        t.push_row(vec!["pipe lat".into(), "17".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("metric    a   bbbb"));
        assert!(r.contains("pipe lat  17  2"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", vec!["a".into(), "b".into()]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("My Table", vec!["x".into(), "y".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.starts_with("### My Table"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("T", vec!["a".into(), "b".into()]);
        t.push_row(vec!["plain".into(), "with, comma".into()]);
        let csv = t.render_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("plain,\"with, comma\""));
    }

    #[test]
    fn json_escapes_and_balances() {
        let mut t = Table::new("Quote \"me\"", vec!["a".into(), "b".into()]);
        t.push_row(vec!["x\\y".into(), "line\nbreak".into()]);
        let j = t.render_json();
        assert!(j.contains("Quote \\\"me\\\""));
        assert!(j.contains("x\\\\y"));
        assert!(j.contains("line\\nbreak"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn sparkline_scales() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 1.0, 0.5]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.contains('█'));
    }

    #[test]
    fn formatters() {
        assert_eq!(us(3240.4), "3240us");
        assert_eq!(us(41.23), "41.2us");
        assert_eq!(mbs(52.4), "52 MB/s");
        assert_eq!(ratio(80.0, 1.0), "80.0x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }
}
