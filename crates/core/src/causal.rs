//! `repro causal`: exact virtual-speedup payoff curves (DESIGN.md §15).
//!
//! Every other observability layer explains cycles the kernel *did* spend;
//! this one prices optimizations that do not exist yet. For each target —
//! an instrumented path ([`kernel_sim::CausalPath`]) or a profiler
//! subsystem's self-time — the harness re-runs the identical deterministic
//! workload with that target's cycle charges scaled to a virtual speedup
//! factor and records the exact end-to-end cycle count, downstream
//! interactions included. The result per machine × workload cell is a
//! payoff curve (factors 0%/25%/50%/75%), a marginal payoff ("1% faster X
//! buys Y ppm end-to-end"), and a ranking of targets by marginal payoff —
//! the measured headroom the ROADMAP's prospective optimizations are
//! bounded by.
//!
//! Everything is integers: payoffs are parts-per-million
//! (`(baseline - scaled) * 1_000_000 / baseline`), so the
//! `mmu-tricks-causal-v1` artifact stays byte-reproducible and parseable
//! by the float-rejecting [`crate::diff`] parser. The factor-0 cell of
//! every curve runs a real all-1/1 [`CausalConfig`] and the artifact's
//! `identity_ok` field asserts it matched the plain (causal-off) baseline
//! — every recording carries its own live proof of the identity guarantee.

use kernel_sim::causal::{CausalConfig, CausalPath, Ratio};
use kernel_sim::{FaultInjection, Kernel, KernelConfig, Subsystem};

use crate::experiments::pressure::run_pressure_on_machine;
use crate::matrix::{paper_machines, MatrixMachine};
use crate::tables::Table;
use crate::Depth;

/// Virtual speedup factors (percent) of every payoff curve, in order.
/// Factor 0 is a real all-1/1 causal run, doubling as the identity proof.
pub const FACTORS: [u32; 4] = [0, 25, 50, 75];

/// A virtual-speedup target: an instrumented path's whole dynamic extent,
/// or one subsystem's self-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalTarget {
    /// Scale the entire extent of an instrumented path.
    Path(CausalPath),
    /// Scale one profiler subsystem's self-time.
    Sub(Subsystem),
}

impl CausalTarget {
    /// Stable artifact/CLI identifier (`path:tlb_reload`, `sub:idle`).
    pub fn id(&self) -> String {
        match self {
            CausalTarget::Path(p) => format!("path:{}", p.name()),
            CausalTarget::Sub(s) => format!("sub:{}", s.name()),
        }
    }

    /// The causal configuration that speeds this target up by `factor`
    /// percent and leaves everything else untouched.
    pub fn config(&self, factor: u32) -> CausalConfig {
        let r = Ratio::speedup_pct(factor);
        match self {
            CausalTarget::Path(p) => CausalConfig::identity().scale_path(*p, r),
            CausalTarget::Sub(s) => CausalConfig::identity().scale_subsystem(*s, r),
        }
    }
}

/// The default target list: every instrumented path, plus the subsystems
/// whose self-time the ROADMAP's open items speculate about (scheduling,
/// the idle task — the paper's §9 cautionary tale — and syscall entry).
pub fn default_targets() -> Vec<CausalTarget> {
    let mut t: Vec<CausalTarget> = CausalPath::ALL.into_iter().map(CausalTarget::Path).collect();
    t.extend([
        CausalTarget::Sub(Subsystem::Sched),
        CausalTarget::Sub(Subsystem::Idle),
        CausalTarget::Sub(Subsystem::Syscall),
    ]);
    t
}

/// The machine rows `repro causal` measures: the hardware-walk flagship and
/// the software-reload 603, where reload scaling has the most to say.
pub fn default_machines() -> Vec<MatrixMachine> {
    paper_machines()
        .into_iter()
        .filter(|m| m.id == "604-133" || m.id == "603-swload")
        .collect()
}

/// The workloads `repro causal` measures.
pub const CAUSAL_WORKLOADS: &[&str] = &["compile", "fault_storm"];

/// The kernel the grid runs: the optimized paper kernel with the mmtune
/// epoch controller on, so the hash-table-rehash path has real work to
/// scale. No tracing — the grid only needs end-to-end cycles.
pub fn cell_config() -> KernelConfig {
    let mut cfg = KernelConfig::optimized();
    cfg.mmtune = Some(kernel_sim::MmtuneConfig::default());
    cfg
}

/// Runs `workload` on machine row `m` under `cfg` and returns end-to-end
/// cycles (bench-baseline semantics per workload, mirroring the matrix).
pub fn measure_cycles(
    m: &MatrixMachine,
    mut cfg: KernelConfig,
    workload: &str,
    depth: Depth,
) -> u64 {
    cfg = m.apply(cfg);
    match workload {
        "compile" => {
            let mut k = Kernel::boot(m.machine, cfg);
            let c0 = k.machine.cycles;
            lmbench::compile::kernel_compile(&mut k, depth.compile());
            k.machine.cycles - c0
        }
        "fault_storm" => {
            cfg.fault_injection = Some(FaultInjection::light(42));
            let hogs = match depth {
                Depth::Quick => 10,
                Depth::Full => 24,
            };
            let (run, _k) = run_pressure_on_machine(m.machine, cfg, hogs);
            run.cycles
        }
        other => panic!("unknown causal workload {other:?}"),
    }
}

/// One target's payoff curve in one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetCurve {
    /// Target identifier ([`CausalTarget::id`]).
    pub target: String,
    /// End-to-end cycles at each [`FACTORS`] entry.
    pub cycles: [u64; 4],
    /// Payoff in parts-per-million of the baseline at each factor
    /// (signed: a virtual speedup that perturbs downstream policy can in
    /// principle cost cycles, and the artifact would say so).
    pub payoff_ppm: [i64; 4],
    /// `payoff_ppm(25%) / 25` — ppm of end-to-end time bought per 1% of
    /// target speedup, read off the shallow end of the curve.
    pub marginal_ppm_per_pct: i64,
}

/// One machine × workload cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalCell {
    /// Machine row id.
    pub machine: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Plain run, `causal = None`.
    pub baseline_cycles: u64,
    /// All-1/1 causal run — must equal `baseline_cycles`.
    pub identity_cycles: u64,
    /// One curve per target.
    pub targets: Vec<TargetCurve>,
}

impl CausalCell {
    /// The composite `machine/workload` key used in JSON and gates.
    pub fn key(&self) -> String {
        format!("{}/{}", self.machine, self.workload)
    }
}

/// The complete `repro causal` result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalReport {
    /// `quick` or `full`.
    pub depth: &'static str,
    /// Kernel toggle summary of [`cell_config`].
    pub config: String,
    /// The `causal` identity header: the factor grid this recording ran
    /// (so [`crate::diff`] refuses causal-vs-plain comparisons).
    pub causal: String,
    /// All cells, machine-major then workload.
    pub cells: Vec<CausalCell>,
    /// `(target id, sum of marginal payoffs over cells)`, descending —
    /// the "what should we optimize next" answer.
    pub ranking: Vec<(String, i64)>,
}

/// The `causal` header value for the default factor grid.
pub fn causal_mode() -> String {
    let f: Vec<String> = FACTORS.iter().map(u32::to_string).collect();
    format!("grid-f{}", f.join("-"))
}

fn payoff_ppm(baseline: u64, scaled: u64) -> i64 {
    let b = baseline as i128;
    let s = scaled as i128;
    ((b - s) * 1_000_000 / b.max(1)) as i64
}

/// Runs an arbitrary sub-grid (tests and E-CAUSAL trim the axes;
/// `repro causal` runs the default grid).
pub fn causal_report_on(
    machines: &[MatrixMachine],
    workloads: &[&'static str],
    targets: &[CausalTarget],
    depth: Depth,
) -> CausalReport {
    let mut cells = Vec::new();
    for m in machines {
        for &w in workloads {
            let baseline = measure_cycles(m, cell_config(), w, depth);
            let mut cfg_ident = cell_config();
            cfg_ident.causal = Some(CausalConfig::identity());
            let identity = measure_cycles(m, cfg_ident, w, depth);
            let curves = targets
                .iter()
                .map(|t| {
                    let mut cycles = [0u64; 4];
                    let mut ppm = [0i64; 4];
                    for (i, &f) in FACTORS.iter().enumerate() {
                        let c = if f == 0 {
                            // Factor 0 is the identity run, shared across
                            // targets (one all-1/1 config, same effect).
                            identity
                        } else {
                            let mut cfg = cell_config();
                            cfg.causal = Some(t.config(f));
                            measure_cycles(m, cfg, w, depth)
                        };
                        cycles[i] = c;
                        ppm[i] = payoff_ppm(baseline, c);
                    }
                    TargetCurve {
                        target: t.id(),
                        cycles,
                        payoff_ppm: ppm,
                        marginal_ppm_per_pct: ppm[1] / 25,
                    }
                })
                .collect();
            cells.push(CausalCell {
                machine: m.id,
                workload: w,
                baseline_cycles: baseline,
                identity_cycles: identity,
                targets: curves,
            });
        }
    }
    // Rank by summed marginal payoff, descending; target id breaks ties so
    // the ranking (and the artifact) is byte-reproducible.
    let mut ranking: Vec<(String, i64)> = targets
        .iter()
        .map(|t| {
            let id = t.id();
            let sum = cells
                .iter()
                .flat_map(|c| &c.targets)
                .filter(|tc| tc.target == id)
                .map(|tc| tc.marginal_ppm_per_pct)
                .sum();
            (id, sum)
        })
        .collect();
    ranking.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    CausalReport {
        depth: match depth {
            Depth::Quick => "quick",
            Depth::Full => "full",
        },
        config: KernelConfig::optimized().summary(),
        causal: causal_mode(),
        cells,
        ranking,
    }
}

/// The default grid — what `repro causal` runs.
pub fn causal_report(depth: Depth) -> (CausalReport, Vec<Table>) {
    let report = causal_report_on(
        &default_machines(),
        CAUSAL_WORKLOADS,
        &default_targets(),
        depth,
    );
    let tables = report.tables();
    (report, tables)
}

impl CausalReport {
    /// Whether every cell's all-1/1 run matched its plain baseline — the
    /// identity guarantee, live in every recording (1 in the artifact;
    /// `tools/causal_gate.sh` fails on 0).
    pub fn identity_ok(&self) -> bool {
        self.cells
            .iter()
            .all(|c| c.identity_cycles == c.baseline_cycles)
    }

    /// The rendered views: one payoff-curve table per cell plus the
    /// marginal ranking.
    pub fn tables(&self) -> Vec<Table> {
        let mut out = Vec::new();
        for cell in &self.cells {
            let mut t = Table::new(
                format!(
                    "Causal payoff curves — {} ({}, baseline {} cycles, identity {})",
                    cell.key(),
                    self.depth,
                    cell.baseline_cycles,
                    if cell.identity_cycles == cell.baseline_cycles {
                        "ok"
                    } else {
                        "VIOLATED"
                    }
                ),
                vec![
                    "target".into(),
                    "payoff@25% (ppm)".into(),
                    "payoff@50% (ppm)".into(),
                    "payoff@75% (ppm)".into(),
                    "marginal ppm/1%".into(),
                ],
            );
            for c in &cell.targets {
                t.push_row(vec![
                    c.target.clone(),
                    format!("{}", c.payoff_ppm[1]),
                    format!("{}", c.payoff_ppm[2]),
                    format!("{}", c.payoff_ppm[3]),
                    format!("{}", c.marginal_ppm_per_pct),
                ]);
            }
            out.push(t);
        }
        let mut rank = Table::new(
            format!(
                "Marginal payoff ranking ({} cells; \"1% faster X buys Y ppm \
                 end-to-end\", summed over cells)",
                self.cells.len()
            ),
            vec!["rank".into(), "target".into(), "sum marginal ppm/1%".into()],
        );
        for (i, (id, m)) in self.ranking.iter().enumerate() {
            rank.push_row(vec![format!("{}", i + 1), id.clone(), format!("{m}")]);
        }
        out.push(rank);
        out
    }

    /// The deterministic `mmu-tricks-causal-v1` artifact: integer-only
    /// JSON with escape-free header strings, byte-for-byte reproducible,
    /// parseable by [`crate::diff::parse_report`]. Carries the `causal`
    /// identity header so `repro diff` refuses causal-vs-plain diffs.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"mmu-tricks-causal-v1\",\n");
        s.push_str(&format!("  \"depth\": \"{}\",\n", self.depth));
        s.push_str(&format!("  \"config\": \"{}\",\n", self.config));
        s.push_str(&format!("  \"causal\": \"{}\",\n", self.causal));
        s.push_str(&format!(
            "  \"identity_ok\": {},\n",
            i32::from(self.identity_ok())
        ));
        s.push_str("  \"cells\": {\n");
        for (i, cell) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {{\"baseline_cycles\": {}, \"identity_cycles\": {}, \"targets\": {{\n",
                cell.key(),
                cell.baseline_cycles,
                cell.identity_cycles
            ));
            for (j, c) in cell.targets.iter().enumerate() {
                s.push_str(&format!(
                    "      \"{}\": {{\"cycles\": [{}, {}, {}, {}], \
                     \"payoff_ppm\": [{}, {}, {}, {}], \"marginal_ppm_per_pct\": {}}}",
                    c.target,
                    c.cycles[0],
                    c.cycles[1],
                    c.cycles[2],
                    c.cycles[3],
                    c.payoff_ppm[0],
                    c.payoff_ppm[1],
                    c.payoff_ppm[2],
                    c.payoff_ppm[3],
                    c.marginal_ppm_per_pct
                ));
                s.push_str(if j + 1 < cell.targets.len() { ",\n" } else { "\n" });
            }
            s.push_str("    }}");
            s.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        s.push_str("  },\n");
        s.push_str("  \"ranking\": {\n");
        for (i, (id, m)) in self.ranking.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {{\"rank\": {}, \"sum_marginal_ppm_per_pct\": {}}}",
                id,
                i + 1,
                m
            ));
            s.push_str(if i + 1 < self.ranking.len() { ",\n" } else { "\n" });
        }
        s.push_str("  }\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff_reports, parse_report};

    /// The trimmed grid the tests run: one machine, one workload, one path
    /// and one subsystem target — 8 simulator runs, not the full default
    /// grid (the CI gate covers that).
    fn trimmed() -> CausalReport {
        let machines: Vec<MatrixMachine> = paper_machines()
            .into_iter()
            .filter(|m| m.id == "604-133")
            .collect();
        let targets = [
            CausalTarget::Path(CausalPath::TlbReload),
            CausalTarget::Sub(Subsystem::Sched),
        ];
        causal_report_on(&machines, &["compile"], &targets, Depth::Quick)
    }

    #[test]
    fn trimmed_grid_is_identity_clean_and_byte_reproducible() {
        let a = trimmed();
        let b = trimmed();
        assert!(a.identity_ok(), "all-1/1 must match the plain baseline");
        assert_eq!(a.to_json(), b.to_json(), "artifact must be byte-identical");
        // Payoff at factor 0 is exactly zero by the identity guarantee.
        for c in a.cells.iter().flat_map(|c| &c.targets) {
            assert_eq!(c.payoff_ppm[0], 0, "{}", c.target);
        }
    }

    #[test]
    fn payoff_curves_are_monotone_for_real_work() {
        let r = trimmed();
        let cell = &r.cells[0];
        let reload = cell
            .targets
            .iter()
            .find(|t| t.target == "path:tlb_reload")
            .unwrap();
        assert!(
            reload.payoff_ppm[1] > 0,
            "25% faster reloads must buy something on compile: {:?}",
            reload.payoff_ppm
        );
        assert!(reload.payoff_ppm[2] >= reload.payoff_ppm[1]);
        assert!(reload.payoff_ppm[3] >= reload.payoff_ppm[2]);
        assert!(reload.marginal_ppm_per_pct > 0);
    }

    #[test]
    fn artifact_parses_carries_causal_header_and_refuses_plain() {
        let r = trimmed();
        let j = r.to_json();
        let flat = parse_report(&j).expect("artifact must satisfy the differ");
        assert_eq!(flat.schema, "mmu-tricks-causal-v1");
        assert_eq!(flat.causal, causal_mode());
        assert_eq!(flat.numbers["identity_ok"], 1);
        assert_eq!(
            flat.numbers["cells.604-133/compile.baseline_cycles"] as u64,
            r.cells[0].baseline_cycles
        );
        let d = diff_reports(&flat, &flat.clone()).expect("self-diff");
        assert!(d.entries.iter().all(|e| e.delta == 0));
        // A plain artifact (empty causal header) must refuse.
        let mut plain = flat.clone();
        plain.causal = String::new();
        let err = diff_reports(&flat, &plain).unwrap_err();
        assert!(err.contains("causal mismatch"), "{err}");
    }

    #[test]
    fn ranking_is_sorted_and_covers_every_target() {
        let r = trimmed();
        assert_eq!(r.ranking.len(), 2);
        assert!(r.ranking.windows(2).all(|w| w[0].1 >= w[1].1));
        let ids: Vec<&str> = r.ranking.iter().map(|(id, _)| id.as_str()).collect();
        assert!(ids.contains(&"path:tlb_reload") && ids.contains(&"sub:sched"));
    }

    #[test]
    fn target_ids_and_mode_are_stable() {
        assert_eq!(
            CausalTarget::Path(CausalPath::HtabRehash).id(),
            "path:htab_rehash"
        );
        assert_eq!(CausalTarget::Sub(Subsystem::Idle).id(), "sub:idle");
        assert_eq!(causal_mode(), "grid-f0-25-50-75");
        assert_eq!(default_targets().len(), 8);
        assert_eq!(default_machines().len(), 2);
    }
}
