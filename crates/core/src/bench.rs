//! The benchmark-regression baseline behind `repro bench --json`.
//!
//! Three deterministic headline workloads, each reduced to the counters a
//! reviewer would watch for a performance regression:
//!
//! * `compile` — the paper's kernel-compile benchmark on the optimized
//!   604/133 kernel: total cycles plus TLB/cache miss counts and rates;
//! * `fault_storm` — the E-PRESSURE run (seed 42): cycles, survivors, and
//!   the fault ledger;
//! * `trace_ref` — the reference workload with tracing and the PMU both
//!   off. Its cycle count must equal the traced run's
//!   ([`trace_artifacts`]) *and* any counting-PMU run's — this is the
//!   PMU-off/trace-off identity the gates pin.
//!
//! The emitted JSON (`mmu-tricks-bench-v1`) is integer-only and
//! byte-reproducible; cycle-regression gating rides on the committed
//! `BENCH_PR5.json` tune rows (`tools/bench_gate.sh`).
//!
//! [`trace_artifacts`]: crate::experiments::trace_artifacts

use kernel_sim::{Kernel, KernelConfig, KernelStats};
use ppc_machine::MachineConfig;

use crate::experiments::artifacts::reference_workload;
use crate::experiments::pressure::{run_pressure, PressureRun};
use crate::Depth;

/// Headline counters for the compile workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileHeadline {
    /// Cycles spent in the compile (workload window, boot excluded).
    pub cycles: u64,
    /// Instruction-TLB misses.
    pub itlb_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// TLB reloads the kernel serviced.
    pub tlb_reloads: u64,
    /// Real page faults.
    pub page_faults: u64,
    /// Hash-table hit rate on reloads, in ppm.
    pub htab_hit_ppm: u64,
    /// ITLB miss rate (misses/lookups), in ppm.
    pub itlb_miss_ppm: u64,
    /// DTLB miss rate, in ppm.
    pub dtlb_miss_ppm: u64,
    /// I-cache miss rate (misses/accesses), in ppm.
    pub icache_miss_ppm: u64,
    /// D-cache miss rate, in ppm.
    pub dcache_miss_ppm: u64,
}

/// The whole baseline: one struct per workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchBaseline {
    /// `quick` or `full`.
    pub depth: &'static str,
    /// Machine slug the baseline was recorded on ([`MachineConfig::id`]);
    /// `repro diff` refuses baselines from different machines.
    pub machine: String,
    /// Optimization-toggle summary ([`KernelConfig::summary`]) of the
    /// measured kernel — the axis a diff is allowed to cross.
    pub config: String,
    /// Compile headline.
    pub compile: CompileHeadline,
    /// Fault-storm result (seed 42).
    pub storm: PressureRun,
    /// Reference-workload total cycles with tracing and PMU off (must match
    /// the traced total exactly).
    pub trace_ref_cycles: u64,
    /// TLB reloads of the reference run.
    pub trace_ref_reloads: u64,
    /// Page faults of the reference run.
    pub trace_ref_faults: u64,
}

fn ppm(part: u64, whole: u64) -> u64 {
    (part * 1_000_000).checked_div(whole).unwrap_or(0)
}

fn run_compile(depth: Depth) -> CompileHeadline {
    let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
    let snap0 = k.machine.snapshot();
    let stats0 = k.stats;
    lmbench::compile::kernel_compile(&mut k, depth.compile());
    let d = k.machine.snapshot().delta(&snap0);
    let s: KernelStats = k.stats.delta(&stats0);
    CompileHeadline {
        cycles: d.cycles,
        itlb_misses: d.itlb.misses,
        dtlb_misses: d.dtlb.misses,
        icache_misses: d.icache.misses,
        dcache_misses: d.dcache.misses,
        tlb_reloads: s.tlb_reloads,
        page_faults: s.page_faults,
        htab_hit_ppm: ppm(s.htab_hits, s.htab_hits + s.htab_misses),
        itlb_miss_ppm: ppm(d.itlb.misses, d.itlb.lookups),
        dtlb_miss_ppm: ppm(d.dtlb.misses, d.dtlb.lookups),
        icache_miss_ppm: ppm(d.icache.misses, d.icache.accesses),
        dcache_miss_ppm: ppm(d.dcache.misses, d.dcache.accesses),
    }
}

/// Runs all three workloads and packages the baseline.
pub fn bench_baseline(depth: Depth) -> BenchBaseline {
    let compile = run_compile(depth);
    let hogs = match depth {
        Depth::Quick => 10,
        Depth::Full => 24,
    };
    let storm = run_pressure(42, hogs);
    let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
    reference_workload(&mut k, depth);
    BenchBaseline {
        depth: match depth {
            Depth::Quick => "quick",
            Depth::Full => "full",
        },
        machine: MachineConfig::ppc604_133().id(),
        config: KernelConfig::optimized().summary(),
        compile,
        storm,
        trace_ref_cycles: k.machine.cycles,
        trace_ref_reloads: k.stats.tlb_reloads,
        trace_ref_faults: k.stats.page_faults,
    }
}

impl BenchBaseline {
    /// The `mmu-tricks-bench-v1` JSON document (integer-only,
    /// byte-reproducible).
    pub fn to_json(&self) -> String {
        let c = &self.compile;
        let s = &self.storm.stats;
        format!(
            "{{\n  \"schema\": \"mmu-tricks-bench-v1\",\n  \"depth\": \"{}\",\n  \
             \"machine\": \"{}\",\n  \"config\": \"{}\",\n  \
             \"workloads\": {{\n    \"compile\": {{\"cycles\": {}, \"itlb_misses\": {}, \
             \"dtlb_misses\": {}, \"icache_misses\": {}, \"dcache_misses\": {}, \
             \"tlb_reloads\": {}, \"page_faults\": {}, \"htab_hit_ppm\": {}, \
             \"itlb_miss_ppm\": {}, \"dtlb_miss_ppm\": {}, \"icache_miss_ppm\": {}, \
             \"dcache_miss_ppm\": {}}},\n    \"fault_storm\": {{\"cycles\": {}, \
             \"survivors\": {}, \"sigsegvs\": {}, \"sigbus\": {}, \"oom_kills\": {}, \
             \"reclaimed_pages\": {}, \"injected_faults\": {}, \"tlb_reloads\": {}}},\n    \
             \"trace_ref\": {{\"cycles\": {}, \"tlb_reloads\": {}, \"page_faults\": {}}}\n  \
             }}\n}}\n",
            self.depth,
            self.machine,
            self.config,
            c.cycles,
            c.itlb_misses,
            c.dtlb_misses,
            c.icache_misses,
            c.dcache_misses,
            c.tlb_reloads,
            c.page_faults,
            c.htab_hit_ppm,
            c.itlb_miss_ppm,
            c.dtlb_miss_ppm,
            c.icache_miss_ppm,
            c.dcache_miss_ppm,
            self.storm.cycles,
            self.storm.survivors,
            s.sigsegvs,
            s.sigbus,
            s.oom_kills,
            s.reclaimed_pages,
            s.injected_faults,
            s.tlb_reloads,
            self.trace_ref_cycles,
            self.trace_ref_reloads,
            self.trace_ref_faults,
        )
    }
}

/// `repro bench --json` body: runs the baseline and renders the JSON.
pub fn bench_report(depth: Depth) -> String {
    bench_baseline(depth).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::trace_artifacts;

    #[test]
    fn baseline_is_deterministic() {
        let a = bench_baseline(Depth::Quick);
        let b = bench_baseline(Depth::Quick);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn headline_counters_are_live() {
        let b = bench_baseline(Depth::Quick);
        assert!(b.compile.cycles > 0);
        // ITLB misses are legitimately zero here: the optimized kernel's
        // instruction fetches hit the IBATs (§5.1).
        assert!(b.compile.dtlb_misses > 0);
        assert!(b.compile.htab_hit_ppm > 500_000, "optimized htab mostly hits");
        assert!(b.compile.dtlb_miss_ppm < 1_000_000);
        assert!(b.storm.stats.oom_kills > 0);
        assert!(b.trace_ref_cycles > b.compile.cycles, "ref includes boot+coda");
    }

    #[test]
    fn json_shape_is_valid_and_complete() {
        let j = bench_report(Depth::Quick);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        for key in [
            "\"schema\": \"mmu-tricks-bench-v1\"",
            "\"machine\": \"604-133\"",
            "\"config\": \"bats=1",
            "\"compile\"",
            "\"fault_storm\"",
            "\"trace_ref\"",
            "\"cycles\"",
            "\"htab_hit_ppm\"",
            "\"oom_kills\"",
        ] {
            assert!(j.contains(key), "bench json missing {key}");
        }
    }

    #[test]
    fn trace_ref_matches_the_traced_run_exactly() {
        // The PMU-off/trace-off identity: the untraced bench reference and
        // the traced artifacts run count identical cycles.
        let b = bench_baseline(Depth::Quick);
        let (art, _) = trace_artifacts(Depth::Quick);
        assert_eq!(b.trace_ref_cycles, art.total_cycles);
    }
}
