//! `repro hostbench`: the simulator's own speed and allocation baseline.
//!
//! Runs a fixed workload basket — the compile benchmark, the E-PRESSURE
//! fault storm, one full matrix row (604/133 × all 8 configs × 3
//! workloads), and a small checked chaos fleet — under the armed
//! [`hostprof`] profiler, and reduces it to the `mmu-tricks-hostbench-v1`
//! artifact.
//!
//! The artifact is split in two, *in this order*:
//!
//! * `"deterministic"` — simulated cycles executed, per-phase span counts,
//!   allocations/bytes (total and per 1k simulated cycles). These are exact
//!   and byte-reproducible run to run, so `tools/host_gate.sh` can `cmp`
//!   them and gate **hard** on allocation regressions.
//! * `"timing"` — the **last** top-level key: median/IQR host-ns per basket
//!   item and per phase, the simulated-cycles-per-host-second headline, and
//!   the peak-live-bytes RSS proxy (order-sensitive via std's randomized
//!   HashMap hashing, hence not a deterministic count). Host time is
//!   inherently noisy, so the gate only soft-warns here. Masking
//!   "everything from the `"timing"` line on" (see [`deterministic_part`])
//!   recovers the byte-comparable document.
//!
//! Every timing pass re-asserts that each basket item executed exactly the
//! simulated cycles the counting pass saw — a hostbench run is itself a
//! determinism check.

use std::time::Instant;

use kernel_sim::hostprof::{self, HostPhase, HostSnapshot, ALL_PHASES, NUM_PHASES};
use kernel_sim::{Kernel, KernelConfig};
use ppc_machine::MachineConfig;

use crate::chaos::{chaos_report, ChaosConfig};
use crate::experiments::pressure::run_pressure;
use crate::matrix::{paper_machines, paper_variants, run_matrix_on, WORKLOADS};
use crate::tables::Table;
use crate::Depth;

/// The basket item names, in run order.
pub const BASKET: [&str; 4] = ["compile", "fault_storm", "matrix_row", "chaos_fleet"];

/// Default number of timing passes (after the one counting pass).
pub const DEFAULT_ITERS: u32 = 3;

/// Chaos-fleet shape: seeds 1..=SEEDS at STEPS steps, checker on.
const CHAOS_SEEDS: u64 = 4;
const CHAOS_STEPS: u32 = 300;

/// Runs one basket item to completion; returns simulated cycles executed.
fn run_item(name: &str, depth: Depth) -> u64 {
    match name {
        "compile" => {
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
            let c0 = k.machine.cycles;
            lmbench::compile::kernel_compile(&mut k, depth.compile());
            k.machine.cycles - c0
        }
        "fault_storm" => {
            let hogs = match depth {
                Depth::Quick => 10,
                Depth::Full => 24,
            };
            run_pressure(42, hogs).cycles
        }
        "matrix_row" => {
            let machines = paper_machines();
            let row: Vec<_> = machines.into_iter().filter(|m| m.id == "604-133").collect();
            let grid = run_matrix_on(&row, &paper_variants(), WORKLOADS, depth);
            grid.cells.iter().map(|c| c.cycles).sum()
        }
        "chaos_fleet" => {
            let mut total = 0u64;
            for seed in 1..=CHAOS_SEEDS {
                let out = chaos_report(&ChaosConfig::checked(seed, CHAOS_STEPS))
                    .unwrap_or_else(|f| panic!("hostbench chaos seed {seed} failed: {f}"));
                total += out.cycles;
            }
            total
        }
        other => panic!("unknown hostbench basket item {other:?}"),
    }
}

/// Deterministic result of one basket item's counting pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemCounts {
    /// Basket item name.
    pub name: &'static str,
    /// Simulated cycles the item executed.
    pub sim_cycles: u64,
    /// Host-profiler window for the run (exact counters; the `sampled_ns`
    /// fields are ignored by the deterministic artifact section).
    pub host: HostSnapshot,
}

impl ItemCounts {
    /// Allocations per 1000 simulated cycles, in thousandths
    /// (`allocs * 1_000_000 / cycles` — integer, deterministic).
    pub fn allocs_per_1k_cycles_milli(&self) -> u64 {
        ((self.host.total_allocs() as u128 * 1_000_000) / self.sim_cycles.max(1) as u128) as u64
    }

    /// Bytes allocated per 1000 simulated cycles.
    pub fn alloc_bytes_per_1k_cycles(&self) -> u64 {
        ((self.host.total_alloc_bytes() as u128 * 1_000) / self.sim_cycles.max(1) as u128) as u64
    }
}

/// The full hostbench result: one counting pass plus `iters` timing passes.
#[derive(Debug, Clone)]
pub struct HostbenchResult {
    /// `quick` or `full`.
    pub depth: &'static str,
    /// Number of timing passes.
    pub iters: u32,
    /// Counting-pass results, in [`BASKET`] order.
    pub items: Vec<ItemCounts>,
    /// Wall-ns per timing pass, per item (`runs_ns[item][pass]`).
    pub runs_ns: Vec<Vec<u64>>,
    /// Estimated ns per phase per timing pass
    /// (`phase_ns[pass][phase]`, from stride-sampled span durations).
    pub phase_ns: Vec<[u64; NUM_PHASES]>,
}

/// Median of a sample (mean of the middle two when even). 0 for empty.
pub fn median(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut v = xs.to_vec();
    v.sort_unstable();
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2
    }
}

/// Interquartile range of a sample (q3 − q1 by nearest-rank). 0 for empty.
pub fn iqr(xs: &[u64]) -> u64 {
    if xs.len() < 2 {
        return 0;
    }
    let mut v = xs.to_vec();
    v.sort_unstable();
    let n = v.len();
    // Nearest-rank quartiles: q1 = v[ceil(n/4) - 1], q3 = v[ceil(3n/4) - 1].
    v[(3 * n).div_ceil(4) - 1].saturating_sub(v[n.div_ceil(4) - 1])
}

fn cycles_per_sec(cycles: u64, ns: u64) -> u64 {
    ((cycles as u128 * 1_000_000_000) / ns.max(1) as u128) as u64
}

/// Runs the basket: arms [`hostprof`], takes one counting pass (exact
/// deterministic counters per item), then `iters` timing passes (wall
/// clock per item, sampled phase durations per pass), then disarms.
///
/// # Panics
///
/// Panics if a timing pass executes a different simulated-cycle count than
/// the counting pass — the simulator would no longer be deterministic.
pub fn run_hostbench(depth: Depth, iters: u32) -> HostbenchResult {
    hostprof::arm();
    let mut items = Vec::with_capacity(BASKET.len());
    for name in BASKET {
        hostprof::reset_peak();
        let before = hostprof::snapshot();
        let sim_cycles = {
            let _d = hostprof::span(HostPhase::Driver);
            run_item(name, depth)
        };
        let after = hostprof::snapshot();
        items.push(ItemCounts {
            name,
            sim_cycles,
            host: after.delta(&before),
        });
    }
    let mut runs_ns: Vec<Vec<u64>> = vec![Vec::with_capacity(iters as usize); BASKET.len()];
    let mut phase_ns = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let pass_before = hostprof::snapshot();
        for (i, name) in BASKET.iter().enumerate() {
            let t0 = Instant::now();
            let sim_cycles = {
                let _d = hostprof::span(HostPhase::Driver);
                run_item(name, depth)
            };
            runs_ns[i].push(t0.elapsed().as_nanos() as u64);
            assert_eq!(
                sim_cycles, items[i].sim_cycles,
                "hostbench item {name} executed a different cycle count on a \
                 timing pass — the simulator is not deterministic"
            );
        }
        let d = hostprof::snapshot().delta(&pass_before);
        let mut per_phase = [0u64; NUM_PHASES];
        for (p, slot) in per_phase.iter_mut().enumerate() {
            *slot = d.phases[p].est_total_ns();
        }
        phase_ns.push(per_phase);
    }
    hostprof::disarm();
    HostbenchResult {
        depth: match depth {
            Depth::Quick => "quick",
            Depth::Full => "full",
        },
        iters,
        items,
        runs_ns,
        phase_ns,
    }
}

impl HostbenchResult {
    /// Total simulated cycles across the basket (deterministic).
    pub fn total_sim_cycles(&self) -> u64 {
        self.items.iter().map(|i| i.sim_cycles).sum()
    }

    /// Wall-ns of each whole-basket timing pass.
    pub fn pass_totals_ns(&self) -> Vec<u64> {
        (0..self.iters as usize)
            .map(|p| self.runs_ns.iter().map(|r| r[p]).sum())
            .collect()
    }

    /// The headline: simulated cycles per host second, at the median
    /// whole-basket pass.
    pub fn headline_cycles_per_sec(&self) -> u64 {
        cycles_per_sec(self.total_sim_cycles(), median(&self.pass_totals_ns()))
    }

    /// The `mmu-tricks-hostbench-v1` JSON document. Integer-only; the
    /// `"timing"` key is the last top-level key, so truncating the document
    /// at the line containing `"timing":` yields the byte-comparable
    /// deterministic part (see [`deterministic_part`]).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"mmu-tricks-hostbench-v1\",\n");
        s.push_str(&format!("  \"depth\": \"{}\",\n", self.depth));
        s.push_str(&format!("  \"iters\": {},\n", self.iters));
        s.push_str(&format!(
            "  \"sample_stride\": {},\n",
            hostprof::SAMPLE_STRIDE
        ));
        // ---- deterministic section (exact, byte-reproducible) ----
        s.push_str("  \"deterministic\": {\n");
        let total_allocs: u64 = self.items.iter().map(|i| i.host.total_allocs()).sum();
        let total_bytes: u64 = self.items.iter().map(|i| i.host.total_alloc_bytes()).sum();
        let total_spans: u64 = self.items.iter().map(|i| i.host.total_spans()).sum();
        s.push_str(&format!(
            "    \"total\": {{\"sim_cycles\": {}, \"allocs\": {}, \"alloc_bytes\": {}, \
             \"spans\": {}}},\n",
            self.total_sim_cycles(),
            total_allocs,
            total_bytes,
            total_spans
        ));
        s.push_str("    \"workloads\": {\n");
        for (i, it) in self.items.iter().enumerate() {
            s.push_str(&format!(
                "      \"{}\": {{\"sim_cycles\": {}, \"allocs\": {}, \"alloc_bytes\": {}, \
                 \"frees\": {}, \"allocs_per_1k_cycles_milli\": {}, \
                 \"alloc_bytes_per_1k_cycles\": {}, \"phases\": {{",
                it.name,
                it.sim_cycles,
                it.host.total_allocs(),
                it.host.total_alloc_bytes(),
                it.host.phases.iter().map(|p| p.frees).sum::<u64>(),
                it.allocs_per_1k_cycles_milli(),
                it.alloc_bytes_per_1k_cycles()
            ));
            for (pi, phase) in ALL_PHASES.iter().enumerate() {
                let c = it.host.phases[pi];
                if pi > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "\"{}\": {{\"spans\": {}, \"allocs\": {}, \"alloc_bytes\": {}}}",
                    phase.name(),
                    c.spans,
                    c.allocs,
                    c.alloc_bytes
                ));
            }
            s.push_str("}}");
            s.push_str(if i + 1 < self.items.len() { ",\n" } else { "\n" });
        }
        s.push_str("    }\n  },\n");
        // ---- timing section (noisy; masked by the determinism gates) ----
        let totals = self.pass_totals_ns();
        s.push_str("  \"timing\": {\n");
        s.push_str(&format!(
            "    \"headline\": {{\"sim_cycles_per_host_sec\": {}, \"total_median_ns\": {}, \
             \"total_iqr_ns\": {}}},\n",
            self.headline_cycles_per_sec(),
            median(&totals),
            iqr(&totals)
        ));
        s.push_str("    \"workloads\": {\n");
        for (i, it) in self.items.iter().enumerate() {
            let m = median(&self.runs_ns[i]);
            // peak_live_bytes lives here, not under "deterministic":
            // allocation *counts* are order-independent, but the transient
            // high-water mark follows std HashMap iteration order, which is
            // per-process-randomized. It is an RSS proxy, not a count.
            s.push_str(&format!(
                "      \"{}\": {{\"median_ns\": {}, \"iqr_ns\": {}, \
                 \"sim_cycles_per_host_sec\": {}, \"peak_live_bytes\": {}}}{}\n",
                it.name,
                m,
                iqr(&self.runs_ns[i]),
                cycles_per_sec(it.sim_cycles, m),
                it.host.peak_live_bytes,
                if i + 1 < self.items.len() { "," } else { "" }
            ));
        }
        s.push_str("    },\n    \"phases\": {\n");
        for (pi, phase) in ALL_PHASES.iter().enumerate() {
            let per_pass: Vec<u64> = self.phase_ns.iter().map(|p| p[pi]).collect();
            s.push_str(&format!(
                "      \"{}\": {{\"median_est_ns\": {}, \"iqr_est_ns\": {}}}{}\n",
                phase.name(),
                median(&per_pass),
                iqr(&per_pass),
                if pi + 1 < ALL_PHASES.len() { "," } else { "" }
            ));
        }
        s.push_str("    }\n  }\n}\n");
        s
    }

    /// Renders the human-readable report (deterministic table, phase
    /// table, headline line).
    pub fn render(&self) -> String {
        let mut det = Table::new(
            format!("Hostbench (depth {}, {} timing passes)", self.depth, self.iters),
            vec![
                "item".into(),
                "sim Mcycles".into(),
                "allocs".into(),
                "allocs/1k cyc".into(),
                "KiB/1k cyc".into(),
                "median ms".into(),
                "Mcyc/s".into(),
            ],
        );
        for (i, it) in self.items.iter().enumerate() {
            let m = median(&self.runs_ns[i]);
            det.push_row(vec![
                it.name.into(),
                format!("{:.1}", it.sim_cycles as f64 / 1e6),
                it.host.total_allocs().to_string(),
                format!("{:.3}", it.allocs_per_1k_cycles_milli() as f64 / 1000.0),
                format!("{:.2}", it.alloc_bytes_per_1k_cycles() as f64 / 1024.0),
                format!("{:.1}", m as f64 / 1e6),
                format!("{:.1}", cycles_per_sec(it.sim_cycles, m) as f64 / 1e6),
            ]);
        }
        let mut phases = Table::new(
            "Host phases (exact spans, stride-sampled time)",
            vec![
                "phase".into(),
                "spans".into(),
                "allocs".into(),
                "est ms/pass".into(),
            ],
        );
        for (pi, phase) in ALL_PHASES.iter().enumerate() {
            let spans: u64 = self.items.iter().map(|i| i.host.phases[pi].spans).sum();
            let allocs: u64 = self.items.iter().map(|i| i.host.phases[pi].allocs).sum();
            let per_pass: Vec<u64> = self.phase_ns.iter().map(|p| p[pi]).collect();
            phases.push_row(vec![
                phase.name().into(),
                spans.to_string(),
                allocs.to_string(),
                format!("{:.1}", median(&per_pass) as f64 / 1e6),
            ]);
        }
        format!(
            "{}\n{}\nheadline: {:.2} M sim-cycles per host second\n",
            det.render(),
            phases.render(),
            self.headline_cycles_per_sec() as f64 / 1e6
        )
    }
}

/// The deterministic prefix of a hostbench JSON document: everything
/// before the line introducing the `"timing"` key. Two artifacts from the
/// same build must be byte-identical here; `tools/host_gate.sh` and the
/// determinism test both compare exactly this slice.
pub fn deterministic_part(json: &str) -> &str {
    match json.find("\n  \"timing\":") {
        Some(i) => &json[..i],
        None => json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_iqr() {
        assert_eq!(median(&[]), 0);
        assert_eq!(median(&[7]), 7);
        assert_eq!(median(&[1, 9]), 5);
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(iqr(&[5]), 0);
        assert_eq!(iqr(&[1, 2, 3, 4]), 2);
    }

    #[test]
    fn deterministic_part_stops_at_timing() {
        let doc = "{\n  \"a\": 1,\n  \"timing\": {\n    \"x\": 2\n  }\n}\n";
        assert_eq!(deterministic_part(doc), "{\n  \"a\": 1,");
        assert_eq!(deterministic_part("{}"), "{}");
    }

    #[test]
    fn basket_names_match_run_item() {
        // Every basket name must dispatch (panic would fail the test), and
        // the cheap items must report nonzero simulated cycles.
        let c = run_item("fault_storm", Depth::Quick);
        assert!(c > 0);
    }
}
