//! Benchmark harness for the MMU Tricks (OSDI 1999) reproduction.
//!
//! Two entry points:
//!
//! * the `repro` binary — regenerates every table and figure of the paper
//!   (`cargo run -p bench --release --bin repro -- all`);
//! * Criterion micro-benchmarks under `benches/` — per-mechanism
//!   regressions (translation, hash table, reload paths, flushes, pipes,
//!   context switches).

use mmu_tricks::Depth;

/// Parses the depth flags: `--depth quick|full`, or the `--full` shorthand.
pub fn depth_from_args(args: &[String]) -> Depth {
    if let Some(v) = flag_value(args, "--depth") {
        match v.as_str() {
            "full" => return Depth::Full,
            "quick" => return Depth::Quick,
            other => {
                eprintln!("unknown --depth {other:?} (expected quick|full), using quick");
                return Depth::Quick;
            }
        }
    }
    if args.iter().any(|a| a == "--full") {
        Depth::Full
    } else {
        Depth::Quick
    }
}

/// Returns the value following a `--flag value` pair, if present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Command-line flags that consume the next argument (so experiment-id
/// parsing can skip their values).
pub const VALUE_FLAGS: &[&str] = &[
    "--depth",
    "--json",
    "--trace-out",
    "--workload",
    "--period",
    "--out",
    "--in",
    "--folded",
    "--config",
    "--limit",
    "--jobs",
    "--seed",
    "--runs",
    "--steps",
    "--verbose-from",
    "--check",
    "--iters",
];

/// Flags that stand alone (no value argument).
pub const BARE_FLAGS: &[&str] = &["--full", "--markdown", "--csv", "--help"];

/// Every `repro` subcommand (dispatch names that are not experiment ids),
/// with a one-line summary. The binary's usage text renders this list, and
/// `tools/host_gate.sh` asserts `repro --help` mentions every entry — so a
/// new subcommand that forgets to register here fails CI, not code review.
pub const SUBCOMMANDS: &[(&str, &str)] = &[
    ("bench", "benchmark-regression baseline (mmu-tricks-bench-v1)"),
    ("matrix", "machine × config × workload grid (mmu-tricks-matrix-v1)"),
    ("tune", "offline per-machine coordinate descent (mmu-tricks-tune-v1)"),
    ("report", "counters, self-time, latency, telemetry sparklines"),
    ("diff", "structured comparison of two run reports"),
    ("chaos", "adversarial fuzzing under the shadow-MM checker"),
    ("perf", "sampled profiling: record/report/annotate/diff"),
    (
        "hostbench",
        "simulator speed + allocation baseline (mmu-tricks-hostbench-v1)",
    ),
    (
        "tail",
        "p99 exemplar capture + causal attribution (mmu-tricks-tail-v1)",
    ),
    (
        "causal",
        "exact virtual speedups: payoff curves + ranking (mmu-tricks-causal-v1)",
    ),
];

/// Every artifact schema the harness can emit, with the producer and a
/// one-line contents summary. `repro --help` renders this table, and
/// `tools/causal_gate.sh` greps the workspace for `mmu-tricks-*-v*` schema
/// literals and asserts each one is registered here — an artifact added
/// without a registry row fails CI, not code review.
pub const ARTIFACTS: &[(&str, &str, &str)] = &[
    (
        "mmu-tricks-bench-v1",
        "repro bench",
        "headline cycles + miss rates per workload",
    ),
    (
        "mmu-tricks-matrix-v1",
        "repro matrix",
        "machine × config × workload grid cells",
    ),
    (
        "mmu-tricks-tune-v1",
        "repro tune",
        "per-machine coordinate-descent winners",
    ),
    (
        "mmu-tricks-metrics-v1",
        "repro <experiment> --json",
        "run report: tables + trace metrics",
    ),
    (
        "mmu-tricks-diff-v1",
        "repro diff --json",
        "structured report comparison",
    ),
    (
        "mmu-tricks-chaos-v1",
        "repro chaos --json",
        "fuzzing outcomes under the shadow-MM oracle",
    ),
    (
        "mmu-tricks-perf-v1",
        "repro perf record",
        "sampled profile (perf.data text)",
    ),
    (
        "mmu-tricks-hostbench-v1",
        "repro hostbench",
        "simulator speed + allocation baseline",
    ),
    (
        "mmu-tricks-tail-v1",
        "repro tail",
        "p99 exemplars + ranked causal attribution",
    ),
    (
        "mmu-tricks-causal-v1",
        "repro causal",
        "virtual-speedup payoff curves + marginal ranking",
    ),
];

/// Any `--flag` the harness does not know about. A typo'd flag must be an
/// error, not a silently ignored no-op — `--dpeth full` running the quick
/// depth cost real debugging time once.
pub fn unknown_flags(args: &[String]) -> Vec<&str> {
    let mut skip = false;
    let mut out = Vec::new();
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip = true;
            continue;
        }
        if a.starts_with("--") && !BARE_FLAGS.contains(&a.as_str()) {
            out.push(a.as_str());
        }
    }
    out
}

/// The positional (non-flag) arguments, with value-flag payloads removed.
pub fn positional_args(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip = true;
            continue;
        }
        if !a.starts_with("--") {
            out.push(a.as_str());
        }
    }
    out
}

/// All experiment ids the `repro` binary accepts, with one-line summaries.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig1", "Figure 1: hash-table translation walkthrough"),
    ("bat", "E-BAT (5.1): BAT-mapping the kernel on the compile"),
    (
        "hash-util",
        "E-HASH (5.2): hash-table utilization vs VSID scatter",
    ),
    (
        "fast-reload",
        "E-FAST (6.1): C vs hand-tuned reload handlers",
    ),
    (
        "table1",
        "Table 1: direct TLB reloads (603 htab/no-htab vs 604s)",
    ),
    ("lazy", "E-LAZY (7): lazy VSID flushes"),
    ("idle-reclaim", "E-IDLE (7): idle-task zombie reclamation"),
    ("mmap-cutoff", "E-MMAP (7): range-flush cutoff sweep"),
    ("table2", "Table 2: tunable TLB range flushing"),
    ("cache-pollution", "E-CACHE (8): page-table cache pollution"),
    ("page-clear", "E-CLEAR (9): idle-task page clearing"),
    ("table3", "Table 3: Linux/PPC vs other operating systems"),
    (
        "extensions",
        "Extensions (10): idle cache lock + cache preloads",
    ),
    (
        "trace",
        "Observability: counter trace, self-time, latency percentiles (4)",
    ),
    (
        "memhier",
        "lat_mem_rd staircase: L1/L2/DRAM plateaus per machine",
    ),
    (
        "ablate-htab-size",
        "Ablation: hash-table size vs RAM tradeoff (7)",
    ),
    (
        "ablate-scatter",
        "Ablation: VSID scatter-constant sweep (5.2)",
    ),
    (
        "ablate-reclaim",
        "Ablation: idle-scan vs rejected on-scarcity reclaim (7)",
    ),
    (
        "ablate-tlb",
        "Ablation: TLB reach vs compile performance (2)",
    ),
    (
        "io-bat",
        "Frame-buffer BAT: X-like blitter vs compute TLB (5.1)",
    ),
    (
        "ablate-replacement",
        "Ablation: full-PTEG replacement policy (7)",
    ),
    (
        "lmbench-extended",
        "Extended LmBench rows (sig, fork, exec, mem) per machine",
    ),
    (
        "multiuser",
        "Multiuser mix (compile+edit+mail): the cumulative build-up",
    ),
    (
        "pressure",
        "E-PRESSURE: fault storm (SIGSEGV/SIGBUS/OOM/injection) survival",
    ),
    (
        "pmu",
        "E-PMU: 604 sampled profiling converges to the exact profiler (4)",
    ),
    (
        "ematrix",
        "E-MATRIX (8): every optimization's before/after sign across machines",
    ),
    (
        "etune",
        "E-TUNE: PMU-guided tuned config beats static opt on the fault storm",
    ),
    (
        "echeck",
        "E-CHECK: chaos fuzzing survives the shadow-MM oracle and invariants",
    ),
    (
        "etail",
        "E-TAIL: planted PTEG-saturation regression wins tail attribution",
    ),
    (
        "ecausal",
        "E-CAUSAL: virtual speedups reproduce measured deltas; idle buys ~0",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_parsing() {
        assert_eq!(depth_from_args(&[]), Depth::Quick);
        assert_eq!(depth_from_args(&["--full".into()]), Depth::Full);
        assert_eq!(
            depth_from_args(&["all".into(), "--full".into()]),
            Depth::Full
        );
        assert_eq!(
            depth_from_args(&["--depth".into(), "full".into()]),
            Depth::Full
        );
        assert_eq!(
            depth_from_args(&["--depth".into(), "quick".into(), "--full".into()]),
            Depth::Quick,
            "--depth wins over --full"
        );
    }

    #[test]
    fn positional_args_skip_flag_values() {
        let args: Vec<String> = [
            "trace",
            "--json",
            "metrics.json",
            "--trace-out",
            "trace.json",
            "--depth",
            "quick",
            "pressure",
            "--markdown",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(positional_args(&args), vec!["trace", "pressure"]);
        assert_eq!(flag_value(&args, "--json").as_deref(), Some("metrics.json"));
        assert_eq!(
            flag_value(&args, "--trace-out").as_deref(),
            Some("trace.json")
        );
        assert_eq!(flag_value(&args, "--missing"), None);
    }

    #[test]
    fn unknown_flags_are_reported_not_swallowed() {
        let args: Vec<String> = ["trace", "--json", "m.json", "--dpeth", "full", "--markdown"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(unknown_flags(&args), vec!["--dpeth"]);
        // "full" after the unknown flag is NOT skipped: it stays positional,
        // which is also wrong — hence the hard error in the binary.
        let clean: Vec<String> = ["bench", "--json", "b.json", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(unknown_flags(&clean).is_empty());
    }

    #[test]
    fn experiment_ids_unique() {
        let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXPERIMENTS.len());
    }

    #[test]
    fn subcommands_unique_and_disjoint_from_experiments() {
        let mut names: Vec<&str> = SUBCOMMANDS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SUBCOMMANDS.len());
        for (n, _) in SUBCOMMANDS {
            assert!(
                !EXPERIMENTS.iter().any(|(id, _)| id == n),
                "subcommand {n} shadows an experiment id"
            );
        }
        assert!(SUBCOMMANDS.iter().any(|(n, _)| *n == "hostbench"));
    }

    #[test]
    fn artifact_registry_is_unique_and_versioned() {
        let mut schemas: Vec<&str> = ARTIFACTS.iter().map(|(s, _, _)| *s).collect();
        schemas.sort_unstable();
        schemas.dedup();
        assert_eq!(schemas.len(), ARTIFACTS.len());
        for (schema, producer, _) in ARTIFACTS {
            assert!(
                schema.starts_with("mmu-tricks-") && schema.contains("-v"),
                "schema {schema} must be named mmu-tricks-<kind>-v<n>"
            );
            assert!(
                producer.starts_with("repro"),
                "producer {producer} must be a repro invocation"
            );
        }
    }

    #[test]
    fn every_schema_named_in_a_subcommand_summary_is_registered() {
        for (name, desc) in SUBCOMMANDS {
            if let Some(i) = desc.find("mmu-tricks-") {
                let schema: String = desc[i..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                    .collect();
                assert!(
                    ARTIFACTS.iter().any(|(s, _, _)| *s == schema),
                    "subcommand {name} mentions unregistered schema {schema}"
                );
            }
        }
    }
}
