//! `repro` — regenerate every table and figure of *Optimizing the Idle Task
//! and Other MMU Tricks* (OSDI 1999).
//!
//! ```text
//! cargo run -p bench --release --bin repro -- <experiment|all> [--full] [--markdown|--csv]
//! ```

use bench::{depth_from_args, EXPERIMENTS};
use mmu_tricks::experiments as ex;
use mmu_tricks::tables::Table;
use mmu_tricks::Depth;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let depth = depth_from_args(&args);
    let markdown = args.iter().any(|a| a == "--markdown");
    let csv = args.iter().any(|a| a == "--csv");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    if wanted.is_empty() {
        usage();
        return;
    }
    let run_all = wanted.contains(&"all");
    let mut ran = 0;
    let style = if csv {
        Style::Csv
    } else if markdown {
        Style::Markdown
    } else {
        Style::Plain
    };
    for (id, _) in EXPERIMENTS {
        if run_all || wanted.contains(id) {
            run(id, depth, style);
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment(s): {wanted:?}\n");
        usage();
        std::process::exit(1);
    }
}

fn usage() {
    println!("repro — regenerate the paper's tables and figures\n");
    println!("usage: repro <experiment...|all> [--full] [--markdown|--csv]\n");
    println!("experiments:");
    for (id, desc) in EXPERIMENTS {
        println!("  {id:<16} {desc}");
    }
    println!("\n--full      paper-sized iteration counts (slower)");
    println!("--markdown  render tables as markdown");
    println!("--csv       render tables as CSV");
}

fn emit(t: &Table, style: Style) {
    match style {
        Style::Markdown => println!("{}", t.render_markdown()),
        Style::Csv => println!("{}", t.render_csv()),
        Style::Plain => println!("{}", t.render()),
    }
}

/// Output rendering selected on the command line.
#[derive(Clone, Copy)]
enum Style {
    Plain,
    Markdown,
    Csv,
}

fn run(id: &str, depth: Depth, markdown: Style) {
    match id {
        "fig1" => {
            println!(
                "{}",
                ex::translation_walkthrough(0x3012_3abc, 0x123456, 0x54321)
            );
        }
        "bat" => emit(&ex::exp_bat(depth).1, markdown),
        "hash-util" => emit(&ex::exp_hash_util(depth).1, markdown),
        "fast-reload" => emit(&ex::exp_fast_reload(depth).1, markdown),
        "table1" => emit(&ex::table1(depth).1, markdown),
        "lazy" => emit(&ex::exp_lazy(depth).1, markdown),
        "idle-reclaim" => emit(&ex::exp_idle_reclaim(depth).1, markdown),
        "mmap-cutoff" => emit(&ex::exp_mmap_cutoff(depth).1, markdown),
        "table2" => emit(&ex::table2(depth).1, markdown),
        "cache-pollution" => emit(&ex::exp_cache_pollution(depth).1, markdown),
        "page-clear" => emit(&ex::exp_page_clear(depth).1, markdown),
        "table3" => emit(&ex::table3(depth).1, markdown),
        "extensions" => emit(&ex::exp_extensions(depth).1, markdown),
        "trace" => {
            emit(
                &ex::trace_compile(depth, mmu_tricks::KernelConfig::unoptimized()).1,
                markdown,
            );
            emit(
                &ex::trace_compile(depth, mmu_tricks::KernelConfig::optimized()).1,
                markdown,
            );
        }
        "memhier" => emit(&ex::memory_hierarchy(depth).1, markdown),
        "ablate-htab-size" => emit(&ex::ablate_htab_size(depth).1, markdown),
        "ablate-scatter" => emit(&ex::ablate_scatter(depth).1, markdown),
        "ablate-reclaim" => emit(&ex::ablate_reclaim_policy(depth).1, markdown),
        "ablate-tlb" => emit(&ex::ablate_tlb_reach(depth).1, markdown),
        "io-bat" => emit(&ex::exp_io_bat(depth).1, markdown),
        "ablate-replacement" => emit(&ex::ablate_replacement(depth).1, markdown),
        "lmbench-extended" => emit(&ex::extended_suite(depth).1, markdown),
        "multiuser" => emit(&ex::exp_multiuser(depth).1, markdown),
        "pressure" => emit(&ex::exp_pressure(depth).1, markdown),
        other => unreachable!("unknown experiment {other}"),
    }
}
