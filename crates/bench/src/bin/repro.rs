//! `repro` — regenerate every table and figure of *Optimizing the Idle Task
//! and Other MMU Tricks* (OSDI 1999).
//!
//! ```text
//! cargo run -p bench --release --bin repro -- <experiment|all> \
//!     [--depth quick|full] [--full] [--markdown|--csv] \
//!     [--json <path>] [--trace-out <path>]
//! ```
//!
//! `--json` writes a machine-readable run report: every rendered table plus,
//! for the `trace` experiment, the full `metrics.json` payload (cycle
//! attribution, latency percentiles, PTEG heatmap, tracer overhead).
//! `--trace-out` writes the Chrome `trace_event` timeline. Both artifacts
//! are deterministic, so CI can diff them across commits.
//!
//! Two subcommands sit next to the experiments:
//!
//! ```text
//! repro bench [--json <path>]                     # regression baseline JSON
//! repro matrix [--json <path>]                    # machine × config × workload grid
//! repro report                                    # counters, latency, telemetry sparklines
//! repro diff A.json B.json [--json <path>]        # structured report comparison
//! repro chaos [--seed N] [--runs N] [--steps N]   # adversarial fuzzing under the checker
//!             [--check on|off] [--verbose-from N] [--json <path>]
//! repro perf record [--workload compile|storm] [--period N] [--config unopt|opt]
//! repro perf report [--in <path>] [--folded <path>]
//! repro perf annotate [--in <path>]
//! repro perf diff A.perf B.perf [--folded <path>] # profile/flamegraph diff
//! repro hostbench [--iters N] [--json <path>]     # simulator speed/alloc baseline
//! repro tail [--json <path>]                      # p99 exemplars + causal attribution
//! repro causal [--json <path>]                    # exact virtual-speedup payoff curves
//! ```
//!
//! `perf record` samples the workload with the modeled 604 PMU and writes a
//! deterministic `perf.data` text file; `report`/`annotate` render it (or
//! record in-memory when no `--in` is given); `--folded` exports collapsed
//! stacks for flamegraph tooling. `diff` and `perf diff` refuse to compare
//! artifacts whose machine/depth/workload headers disagree — only the
//! kernel-config axis may differ between the two sides.

use bench::{
    depth_from_args, flag_value, positional_args, unknown_flags, ARTIFACTS, EXPERIMENTS,
    SUBCOMMANDS,
};
use mmu_tricks::bench::bench_report;
use mmu_tricks::chaos::{chaos_report, ChaosConfig};
use mmu_tricks::diff::{diff_perf, diff_reports, parse_report};
use mmu_tricks::experiments as ex;
use mmu_tricks::experiments::TraceArtifacts;
use mmu_tricks::hostbench::{run_hostbench, DEFAULT_ITERS};
use mmu_tricks::matrix::run_matrix_jobs;
use mmu_tricks::perf::{perf_record_on, PerfData, PerfWorkload};
use mmu_tricks::tables::Table;
use mmu_tricks::tune::tune_workload_jobs;
use mmu_tricks::{Depth, KernelConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let depth = depth_from_args(&args);
    let markdown = args.iter().any(|a| a == "--markdown");
    let csv = args.iter().any(|a| a == "--csv");
    let json_path = flag_value(&args, "--json");
    let trace_out = flag_value(&args, "--trace-out");
    let wanted = positional_args(&args);
    if args.iter().any(|a| a == "--help") || wanted.first() == Some(&"help") {
        println!("{}", usage_text());
        return;
    }
    let bad = unknown_flags(&args);
    if !bad.is_empty() {
        eprintln!("unknown flag(s): {}\n", bad.join(" "));
        usage();
        std::process::exit(2);
    }
    if wanted.is_empty() {
        eprintln!("missing experiment or subcommand\n");
        usage();
        std::process::exit(2);
    }
    match wanted[0] {
        "bench" => return bench_main(&args, depth),
        "chaos" => return chaos_main(&args),
        "perf" => return perf_main(&args, depth),
        "matrix" => return matrix_main(&args, depth),
        "tune" => return tune_main(&args, depth),
        "diff" => return diff_main(&args, &wanted),
        "report" => return report_main(depth),
        "hostbench" => return hostbench_main(&args, depth),
        "tail" => return tail_main(&args, depth),
        "causal" => return causal_main(&args, depth),
        _ => {}
    }
    let run_all = wanted.contains(&"all");
    let mut ran = 0;
    let style = if csv {
        Style::Csv
    } else if markdown {
        Style::Markdown
    } else {
        Style::Plain
    };
    let mut out = RunOutput::default();
    for (id, _) in EXPERIMENTS {
        if run_all || wanted.contains(id) {
            run(id, depth, style, &mut out);
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment(s): {wanted:?}\n");
        usage();
        std::process::exit(1);
    }
    if let Some(path) = json_path {
        let report = out.run_report(depth);
        write_artifact(&path, &report);
    }
    if let Some(path) = trace_out {
        let chrome = out.ensure_artifacts(depth).chrome_json.clone();
        write_artifact(&path, &chrome);
    }
}

/// `repro bench`: the benchmark-regression baseline (headline cycle counts
/// and miss rates for the compile and fault-storm workloads, plus the
/// PMU-off reference total the gates pin).
fn bench_main(args: &[String], depth: Depth) {
    let json = bench_report(depth);
    match flag_value(args, "--json") {
        Some(path) => write_artifact(&path, &json),
        None => print!("{json}"),
    }
}

/// `repro matrix`: the full machine × config × workload grid. `--jobs N`
/// runs up to N cells concurrently; the output is byte-identical to a
/// serial run.
fn matrix_main(args: &[String], depth: Depth) {
    let jobs = flag_value(args, "--jobs")
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("bad --jobs {v:?} (expected a positive worker count)");
                std::process::exit(1);
            }
        })
        .unwrap_or(1);
    let grid = run_matrix_jobs(depth, jobs);
    match flag_value(args, "--json") {
        Some(path) => write_artifact(&path, &grid.to_json()),
        None => {
            for t in grid.tables() {
                println!("{}", t.render());
            }
        }
    }
}

/// `repro tune`: offline coordinate descent per machine, emitting the
/// `mmu-tricks-tune-v1` artifact naming each winning configuration.
/// `--jobs N` descends up to N machines concurrently; the artifact is
/// byte-identical to a serial run.
fn tune_main(args: &[String], depth: Depth) {
    let wl = flag_value(args, "--workload").unwrap_or_else(|| "fault_storm".into());
    let workload = mmu_tricks::matrix::WORKLOADS
        .iter()
        .copied()
        .find(|w| *w == wl)
        .unwrap_or_else(|| {
            eprintln!(
                "unknown --workload {wl:?} (expected one of {:?})",
                mmu_tricks::matrix::WORKLOADS
            );
            std::process::exit(1);
        });
    let jobs = flag_value(args, "--jobs")
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("bad --jobs {v:?} (expected a positive worker count)");
                std::process::exit(1);
            }
        })
        .unwrap_or(1);
    let result = tune_workload_jobs(workload, depth, jobs);
    match flag_value(args, "--json") {
        Some(path) => write_artifact(&path, &result.to_json()),
        None => println!("{}", result.table().render()),
    }
}

/// Parses a numeric `--flag N`, exiting with a diagnostic on garbage.
fn numeric_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad {flag} {v:?} (expected a number)");
            std::process::exit(2);
        }),
    }
}

/// `repro chaos`: seeded adversarial fuzzing with the shadow-MM oracle,
/// runtime invariants, and the full-spectrum fault injector. Exits nonzero
/// on the first violation, printing the seed, step, config, and a
/// one-command repro line.
fn chaos_main(args: &[String]) {
    let seed0: u64 = numeric_flag(args, "--seed", 1);
    let runs: u64 = numeric_flag(args, "--runs", 1);
    let steps: u32 = numeric_flag(args, "--steps", 400);
    let verbose_from = flag_value(args, "--verbose-from").map(|v| {
        v.parse::<u32>().unwrap_or_else(|_| {
            eprintln!("bad --verbose-from {v:?} (expected a step number)");
            std::process::exit(2);
        })
    });
    let check = match flag_value(args, "--check").as_deref() {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            eprintln!("bad --check {other:?} (expected on|off)");
            std::process::exit(2);
        }
    };
    let mut lines = Vec::new();
    let mut failures = 0u64;
    for seed in seed0..seed0 + runs.max(1) {
        let mut cfg = if check {
            ChaosConfig::checked(seed, steps)
        } else {
            ChaosConfig::unchecked(seed, steps)
        };
        cfg.verbose_from = verbose_from;
        match chaos_report(&cfg) {
            Ok(o) => {
                let line = format!(
                    "seed {seed}: clean  cycles={} injected={} fatals={} oracle_obs={} invariant_passes={} sweeps={}",
                    o.cycles,
                    o.stats.injected_faults,
                    o.fatals,
                    o.checked_observations,
                    o.invariant_passes,
                    o.heavy_sweeps
                );
                println!("{line}");
                lines.push((seed, o));
            }
            Err(f) => {
                eprintln!("{f}");
                failures += 1;
            }
        }
    }
    if let Some(path) = flag_value(args, "--json") {
        let mut j = String::from("{\n  \"schema\": \"mmu-tricks-chaos-v1\",\n");
        j.push_str(&format!(
            "  \"check\": \"{}\",\n  \"steps\": {steps},\n  \"seeds\": [\n",
            if check { "on" } else { "off" }
        ));
        for (i, (seed, o)) in lines.iter().enumerate() {
            j.push_str(&format!(
                "    {{\"seed\": {seed}, \"cycles\": {}, \"injected\": {}, \"fatals\": {}, \"oracle_obs\": {}, \"sweeps\": {}}}{}\n",
                o.cycles,
                o.stats.injected_faults,
                o.fatals,
                o.checked_observations,
                o.heavy_sweeps,
                if i + 1 < lines.len() { "," } else { "" }
            ));
        }
        j.push_str("  ]\n}\n");
        write_artifact(&path, &j);
    }
    if failures > 0 {
        eprintln!("{failures} chaos run(s) FAILED");
        std::process::exit(1);
    }
}

/// `repro report`: the traced reference run's observability artifacts —
/// counters, self-time, latency percentiles, and the epoch-telemetry
/// sparklines.
fn report_main(depth: Depth) {
    let (_, tables) = ex::trace_artifacts(depth);
    for t in &tables {
        println!("{}", t.render());
    }
}

/// `repro diff A.json B.json`: structured report comparison.
fn diff_main(args: &[String], wanted: &[&str]) {
    let (Some(a_path), Some(b_path)) = (wanted.get(1), wanted.get(2)) else {
        eprintln!("usage: repro diff <a.json> <b.json> [--json <path>] [--limit N]\n");
        std::process::exit(1);
    };
    let read = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        parse_report(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        })
    };
    let d = diff_reports(&read(a_path), &read(b_path)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let limit = flag_value(args, "--limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(25);
    println!("config A: {}", d.config_a);
    println!("config B: {}\n", d.config_b);
    println!("{}", d.table(limit).render());
    if let Some(path) = flag_value(args, "--json") {
        write_artifact(&path, &d.to_json());
    }
}

/// `repro perf diff A B`: profile comparison (subsystems + folded stacks).
fn perf_diff_main(args: &[String], positional: &[&str]) {
    let (Some(a_path), Some(b_path)) = (positional.get(2), positional.get(3)) else {
        eprintln!("usage: repro perf diff <a.perf> <b.perf> [--folded <path>]\n");
        std::process::exit(1);
    };
    let read = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        PerfData::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        })
    };
    let d = diff_perf(&read(a_path), &read(b_path)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", d.summary());
    println!();
    println!("{}", d.table().render());
    if let Some(path) = flag_value(args, "--folded") {
        write_artifact(&path, &d.folded_diff_lines());
    }
}

/// Maps `--config unopt|opt` to a kernel configuration for `perf record`.
fn config_preset(args: &[String]) -> KernelConfig {
    match flag_value(args, "--config").as_deref() {
        None | Some("opt") => KernelConfig::optimized(),
        Some("unopt") => KernelConfig::unoptimized(),
        Some(other) => {
            eprintln!("unknown --config {other:?} (expected unopt|opt)");
            std::process::exit(1);
        }
    }
}

/// `repro perf <record|report|annotate|diff>`: the sampled-profiling
/// surface.
fn perf_main(args: &[String], depth: Depth) {
    let positional = positional_args(args);
    let sub = positional.get(1).copied().unwrap_or("report");
    if sub == "diff" {
        return perf_diff_main(args, &positional);
    }
    let data = match flag_value(args, "--in") {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            PerfData::parse(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            let wl = flag_value(args, "--workload").unwrap_or_else(|| "compile".into());
            let workload = PerfWorkload::from_name(&wl).unwrap_or_else(|| {
                eprintln!("unknown --workload {wl:?} (expected compile|storm)");
                std::process::exit(1);
            });
            let period = flag_value(args, "--period")
                .map(|p| match p.parse::<u32>() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("bad --period {p:?} (expected a positive cycle count)");
                        std::process::exit(1);
                    }
                })
                .unwrap_or(4096);
            perf_record_on(depth, workload, period, config_preset(args))
        }
    };
    match sub {
        "record" => {
            let path = flag_value(args, "--out").unwrap_or_else(|| "perf.data".into());
            write_artifact(&path, &data.serialize());
        }
        "report" => {
            print!("{}", data.summary());
            println!();
            for t in data.report() {
                println!("{}", t.render());
            }
        }
        "annotate" => print!("{}", data.annotate()),
        other => {
            eprintln!("unknown perf subcommand {other:?} (expected record|report|annotate|diff)\n");
            usage();
            std::process::exit(1);
        }
    }
    if let Some(path) = flag_value(args, "--folded") {
        write_artifact(&path, &data.folded_lines());
    }
}

/// `repro hostbench`: the simulator's own speed/allocation baseline. One
/// counting pass (exact, deterministic) plus `--iters` timing passes over
/// the fixed basket; `--json` writes the `mmu-tricks-hostbench-v1`
/// artifact whose `"timing"` section is the only non-reproducible part.
fn hostbench_main(args: &[String], depth: Depth) {
    let iters: u32 = numeric_flag(args, "--iters", DEFAULT_ITERS);
    if iters == 0 {
        eprintln!("bad --iters 0 (need at least one timing pass)");
        std::process::exit(2);
    }
    let result = run_hostbench(depth, iters);
    match flag_value(args, "--json") {
        Some(path) => write_artifact(&path, &result.to_json()),
        None => print!("{}", result.render()),
    }
}

/// `repro tail`: p99 forensics over the traced reference run — exemplar
/// percentiles per latency path, the ranked causal attribution, and the
/// retained exemplar dumps. `--json` writes the `mmu-tricks-tail-v1`
/// artifact, which `repro diff` compares like any other run report.
fn tail_main(args: &[String], depth: Depth) {
    let (report, tables) = mmu_tricks::tail::tail_report(depth);
    match flag_value(args, "--json") {
        Some(path) => write_artifact(&path, &report.to_json()),
        None => {
            for t in &tables {
                println!("{}", t.render());
            }
        }
    }
}

/// `repro causal`: exact what-if profiling — re-runs the deterministic
/// grid under virtual speedups of each instrumented path and subsystem,
/// printing payoff curves and the marginal ranking ("1% faster X buys Y
/// ppm end-to-end"). `--json` writes the `mmu-tricks-causal-v1` artifact.
fn causal_main(args: &[String], depth: Depth) {
    let (report, tables) = mmu_tricks::causal::causal_report(depth);
    match flag_value(args, "--json") {
        Some(path) => write_artifact(&path, &report.to_json()),
        None => {
            for t in &tables {
                println!("{}", t.render());
            }
        }
    }
}

fn write_artifact(path: &str, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() {
    eprintln!("{}", usage_text());
}

/// The full help text. `repro --help` / `repro help` print it to stdout
/// (exit 0); errors print it to stderr. Subcommands and experiments are
/// rendered from the registries in the `bench` crate so the listing cannot
/// drift from the dispatcher.
fn usage_text() -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "repro — regenerate the paper's tables and figures\n");
    let _ = writeln!(
        s,
        "usage: repro <experiment...|all> [--depth quick|full] [--full] \
         [--markdown|--csv] [--json <path>] [--trace-out <path>]"
    );
    let _ = writeln!(s, "       repro <subcommand> [flags]   (see below)");
    let _ = writeln!(s, "       repro help | --help\n");
    let _ = writeln!(s, "subcommands:");
    for (name, desc) in SUBCOMMANDS {
        let _ = writeln!(s, "  {name:<16} {desc}");
    }
    let _ = writeln!(s, "\nsubcommand usage:");
    let _ = writeln!(s, "  repro bench [--json <path>]");
    let _ = writeln!(
        s,
        "  repro matrix [--depth quick|full] [--jobs N] [--json <path>]"
    );
    let _ = writeln!(
        s,
        "  repro tune [--workload compile|fault_storm|trace_ref] [--jobs N] [--json <path>]"
    );
    let _ = writeln!(s, "  repro report [--depth quick|full]");
    let _ = writeln!(s, "  repro diff <a.json> <b.json> [--json <path>] [--limit N]");
    let _ = writeln!(
        s,
        "  repro chaos [--seed N] [--runs N] [--steps N] [--check on|off] \
         [--verbose-from N] [--json <path>]"
    );
    let _ = writeln!(
        s,
        "  repro perf <record|report|annotate> [--workload compile|storm] \
         [--period N] [--config unopt|opt] [--out <path>] [--in <path>] [--folded <path>]"
    );
    let _ = writeln!(s, "  repro perf diff <a.perf> <b.perf> [--folded <path>]");
    let _ = writeln!(
        s,
        "  repro hostbench [--depth quick|full] [--iters N] [--json <path>]"
    );
    let _ = writeln!(s, "  repro tail [--depth quick|full] [--json <path>]");
    let _ = writeln!(s, "  repro causal [--depth quick|full] [--json <path>]\n");
    let _ = writeln!(s, "experiments:");
    for (id, desc) in EXPERIMENTS {
        let _ = writeln!(s, "  {id:<16} {desc}");
    }
    let _ = writeln!(s, "\nartifact schemas:");
    for (schema, producer, desc) in ARTIFACTS {
        let _ = writeln!(s, "  {schema:<26} {producer:<28} {desc}");
    }
    let _ = writeln!(s, "\n--depth     quick (CI-sized, default) or full (paper-sized)");
    let _ = writeln!(s, "--full      shorthand for --depth full");
    let _ = writeln!(s, "--markdown  render tables as markdown");
    let _ = writeln!(s, "--csv       render tables as CSV");
    let _ = writeln!(s, "--json      write a machine-readable run report (metrics.json)");
    let _ = writeln!(s, "--trace-out write the Chrome trace_event timeline JSON");
    let _ = writeln!(
        s,
        "--workload  perf: workload to sample (compile, storm; default compile)"
    );
    let _ = writeln!(s, "--period    perf: sampling period in cycles (default 4096)");
    let _ = writeln!(
        s,
        "--config    perf record: kernel preset to sample (unopt, opt; default opt)"
    );
    let _ = writeln!(s, "--out       perf record: output path (default perf.data)");
    let _ = writeln!(s, "--in        perf report/annotate: read an existing perf.data");
    let _ = writeln!(
        s,
        "--folded    perf: collapsed stacks (flamegraph input; diff writes signed weights)"
    );
    let _ = writeln!(s, "--limit     diff: ranked rows to render (default 25)");
    let _ = writeln!(
        s,
        "--jobs      matrix/tune: cells or machines to run concurrently (default 1; \
         output is byte-identical)"
    );
    let _ = writeln!(s, "--seed      chaos: first fuzzer seed (default 1)");
    let _ = writeln!(s, "--runs      chaos: number of consecutive seeds to run (default 1)");
    let _ = writeln!(s, "--steps     chaos: fuzzed operations per run (default 400)");
    let _ = writeln!(
        s,
        "--check     chaos: shadow-MM oracle + invariants on|off (default on)"
    );
    let _ = writeln!(
        s,
        "--iters     hostbench: timing passes after the counting pass (default {DEFAULT_ITERS})"
    );
    let _ = write!(
        s,
        "--verbose-from  chaos: print every op from this step on (repro aid)"
    );
    s
}

/// Everything a run accumulates for the `--json` / `--trace-out` artifacts.
#[derive(Default)]
struct RunOutput {
    tables: Vec<Table>,
    artifacts: Option<TraceArtifacts>,
}

impl RunOutput {
    /// The traced reference run, computed at most once.
    fn ensure_artifacts(&mut self, depth: Depth) -> &TraceArtifacts {
        if self.artifacts.is_none() {
            self.artifacts = Some(ex::trace_artifacts(depth).0);
        }
        self.artifacts.as_ref().unwrap()
    }

    /// The `--json` run report: the metrics payload spliced with one JSON
    /// object per rendered table. Deterministic — no timestamps, no paths.
    fn run_report(&mut self, depth: Depth) -> String {
        let metrics = self.ensure_artifacts(depth).metrics_fragment();
        let mut s = String::from("{\n");
        s.push_str(&metrics);
        s.push_str(",\n  \"experiments\": [\n");
        for (i, t) in self.tables.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&t.render_json());
            s.push_str(if i + 1 < self.tables.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Output rendering selected on the command line.
#[derive(Clone, Copy)]
enum Style {
    Plain,
    Markdown,
    Csv,
}

fn emit(t: &Table, style: Style, out: &mut RunOutput) {
    match style {
        Style::Markdown => println!("{}", t.render_markdown()),
        Style::Csv => println!("{}", t.render_csv()),
        Style::Plain => println!("{}", t.render()),
    }
    out.tables.push(t.clone());
}

fn run(id: &str, depth: Depth, style: Style, out: &mut RunOutput) {
    match id {
        "fig1" => {
            println!(
                "{}",
                ex::translation_walkthrough(0x3012_3abc, 0x123456, 0x54321)
            );
        }
        "bat" => emit(&ex::exp_bat(depth).1, style, out),
        "hash-util" => emit(&ex::exp_hash_util(depth).1, style, out),
        "fast-reload" => emit(&ex::exp_fast_reload(depth).1, style, out),
        "table1" => emit(&ex::table1(depth).1, style, out),
        "lazy" => emit(&ex::exp_lazy(depth).1, style, out),
        "idle-reclaim" => emit(&ex::exp_idle_reclaim(depth).1, style, out),
        "mmap-cutoff" => emit(&ex::exp_mmap_cutoff(depth).1, style, out),
        "table2" => emit(&ex::table2(depth).1, style, out),
        "cache-pollution" => emit(&ex::exp_cache_pollution(depth).1, style, out),
        "page-clear" => emit(&ex::exp_page_clear(depth).1, style, out),
        "table3" => emit(&ex::table3(depth).1, style, out),
        "extensions" => emit(&ex::exp_extensions(depth).1, style, out),
        "trace" => {
            emit(
                &ex::trace_compile(depth, mmu_tricks::KernelConfig::unoptimized()).1,
                style,
                out,
            );
            emit(
                &ex::trace_compile(depth, mmu_tricks::KernelConfig::optimized()).1,
                style,
                out,
            );
            let (art, tables) = ex::trace_artifacts(depth);
            for t in &tables {
                emit(t, style, out);
            }
            out.artifacts = Some(art);
        }
        "memhier" => emit(&ex::memory_hierarchy(depth).1, style, out),
        "ablate-htab-size" => emit(&ex::ablate_htab_size(depth).1, style, out),
        "ablate-scatter" => emit(&ex::ablate_scatter(depth).1, style, out),
        "ablate-reclaim" => emit(&ex::ablate_reclaim_policy(depth).1, style, out),
        "ablate-tlb" => emit(&ex::ablate_tlb_reach(depth).1, style, out),
        "io-bat" => emit(&ex::exp_io_bat(depth).1, style, out),
        "ablate-replacement" => emit(&ex::ablate_replacement(depth).1, style, out),
        "lmbench-extended" => emit(&ex::extended_suite(depth).1, style, out),
        "multiuser" => emit(&ex::exp_multiuser(depth).1, style, out),
        "pressure" => emit(&ex::exp_pressure(depth).1, style, out),
        "pmu" => emit(&ex::exp_pmu(depth).1, style, out),
        "ematrix" => emit(&ex::exp_matrix(depth).1, style, out),
        "etune" => emit(&ex::exp_tune(depth).1, style, out),
        "echeck" => emit(&ex::exp_check(depth).1, style, out),
        "etail" => emit(&ex::exp_tail(depth).1, style, out),
        "ecausal" => emit(&ex::exp_causal(depth).1, style, out),
        other => unreachable!("unknown experiment {other}"),
    }
}
